//! Criterion benchmark of the §3.1 cell-level executor: a small
//! phase-1 grid (2 datasets × 3 criteria × 3 severities) at 1 worker
//! vs one worker per core. The same grid, timed once per worker count
//! with plain wall-clock and written to `BENCH_experiment_grid.json`,
//! lives in the `grid_bench` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use openbi::datagen::{make_blobs, BlobsConfig};
use openbi::experiment::{
    run_phase1, Criterion as DqCriterion, ExperimentConfig, ExperimentDataset,
};
use openbi::kb::SharedKnowledgeBase;
use openbi::mining::AlgorithmSpec;
use std::hint::black_box;

fn grid_datasets() -> Vec<ExperimentDataset> {
    (0..2u64)
        .map(|i| {
            ExperimentDataset::new(
                format!("grid-blobs-{i}"),
                make_blobs(&BlobsConfig {
                    n_rows: 200,
                    n_features: 4,
                    n_classes: 2,
                    class_separation: 2.5,
                    seed: 10 + i,
                }),
                "class",
            )
        })
        .collect()
}

const GRID_CRITERIA: [DqCriterion; 3] = [
    DqCriterion::Completeness,
    DqCriterion::LabelNoise,
    DqCriterion::AttributeNoise,
];

fn grid_config(workers: usize) -> ExperimentConfig {
    ExperimentConfig {
        algorithms: vec![
            AlgorithmSpec::NaiveBayes,
            AlgorithmSpec::DecisionTree {
                max_depth: 12,
                min_leaf: 2,
            },
            AlgorithmSpec::Knn { k: 5 },
        ],
        severities: vec![0.0, 0.5, 1.0],
        folds: 3,
        seed: 42,
        parallel: workers > 1,
        workers,
        ..ExperimentConfig::default()
    }
}

fn bench_grid(c: &mut Criterion) {
    let datasets = grid_datasets();
    let all_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut worker_counts = vec![1usize];
    if all_cores > 1 {
        worker_counts.push(all_cores);
    }
    let mut group = c.benchmark_group("experiment_grid");
    group.sample_size(10);
    for workers in worker_counts {
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &w| {
            b.iter(|| {
                let kb = SharedKnowledgeBase::default();
                let n = run_phase1(&datasets, &GRID_CRITERIA, &grid_config(w), &kb)
                    .expect("benchmark grid");
                black_box(n)
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(10))
        .warm_up_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_grid
}
criterion_main!(benches);
