//! Criterion micro-benchmarks of the OpenBI substrates (M1–M6 in
//! DESIGN.md): triple-store operations, tabularization, CSV parsing,
//! quality measurement, classifier training/prediction, and OLAP
//! rollups.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use openbi::datagen::{air_quality, make_blobs, scenario_to_lod, BlobsConfig};
use openbi::mining::eval::crossval::holdout_split;
use openbi::mining::{AlgorithmSpec, Instances};
use openbi::olap::{Cube, Measure};
use openbi::quality::{measure_profile, MeasureOptions};
use openbi::table::{read_csv_str, write_csv_str, CsvOptions};
use openbi_lod::{tabularize, Graph, Iri, Node, Query, TabularizeOptions, Term, Triple};
use std::hint::black_box;

fn bench_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("m1_triple_store");
    let triples: Vec<Triple> = (0..5_000)
        .map(|i| {
            Triple::new(
                Term::iri(&format!("http://e.org/s{}", i % 500)),
                Term::iri(&format!("http://e.org/p{}", i % 7)),
                Term::iri(&format!("http://e.org/o{}", i % 300)),
            )
        })
        .collect();
    group.bench_function("insert_5k", |b| {
        b.iter_batched(
            || triples.clone(),
            |ts| {
                let mut g = Graph::new();
                for t in ts {
                    g.insert(t);
                }
                black_box(g.len())
            },
            BatchSize::SmallInput,
        )
    });
    let mut g = Graph::new();
    for t in &triples {
        g.insert(t.clone());
    }
    let pred = Term::iri("http://e.org/p3");
    group.bench_function("match_by_predicate", |b| {
        b.iter(|| black_box(g.match_pattern(None, Some(&pred), None).len()))
    });
    group.bench_function("two_hop_join_query", |b| {
        let q = Query::new()
            .pattern(Node::var("a"), Node::iri("http://e.org/p1"), Node::var("b"))
            .pattern(Node::var("b"), Node::iri("http://e.org/p2"), Node::var("c"));
        b.iter(|| black_box(q.execute(&g).unwrap().len()))
    });
    group.finish();
}

fn bench_tabularize(c: &mut Criterion) {
    let scenario = air_quality(500, 1);
    let graph = scenario_to_lod(&scenario, "http://openbi.org", 0.2, 1).unwrap();
    let class = Iri::new("http://openbi.org/dataset/air-quality/Row").unwrap();
    c.bench_function("m2_tabularize_500_entities", |b| {
        b.iter(|| {
            black_box(
                tabularize(&graph, &class, &TabularizeOptions::default())
                    .unwrap()
                    .n_rows(),
            )
        })
    });
}

fn bench_csv(c: &mut Criterion) {
    let table = air_quality(2_000, 2).table;
    let text = write_csv_str(&table, ',');
    c.bench_function("m3_csv_parse_2k_rows", |b| {
        b.iter(|| {
            black_box(
                read_csv_str(&text, &CsvOptions::default())
                    .unwrap()
                    .n_rows(),
            )
        })
    });
}

fn bench_quality(c: &mut Criterion) {
    let table = make_blobs(&BlobsConfig {
        n_rows: 1_000,
        n_features: 8,
        n_classes: 3,
        class_separation: 3.0,
        seed: 3,
    });
    let opts = MeasureOptions::with_target("class");
    c.bench_function("m4_quality_profile_1k_rows", |b| {
        b.iter(|| black_box(measure_profile(&table, &opts).completeness))
    });
}

fn bench_classifiers(c: &mut Criterion) {
    let table = make_blobs(&BlobsConfig {
        n_rows: 600,
        n_features: 6,
        n_classes: 3,
        class_separation: 3.0,
        seed: 4,
    });
    let instances = Instances::from_table(&table, Some("class"), &[]).unwrap();
    let (train, test) = holdout_split(&instances, 0.3, 1).unwrap();
    let mut group = c.benchmark_group("m5_classifiers");
    for spec in [
        AlgorithmSpec::NaiveBayes,
        AlgorithmSpec::DecisionTree {
            max_depth: 12,
            min_leaf: 2,
        },
        AlgorithmSpec::Knn { k: 5 },
    ] {
        group.bench_function(format!("train_{spec}"), |b| {
            b.iter(|| {
                let mut m = spec.build();
                m.fit_view(&train).unwrap();
                black_box(m.model_size())
            })
        });
        let mut model = spec.build();
        model.fit_view(&train).unwrap();
        group.bench_function(format!("predict_{spec}"), |b| {
            b.iter(|| black_box(model.predict_view(&test).unwrap().len()))
        });
    }
    group.finish();
}

fn bench_olap(c: &mut Criterion) {
    let facts = air_quality(5_000, 5).table;
    let cube = Cube::new(
        facts,
        &["district", "traffic", "aqi_band"],
        vec![
            Measure::Mean("pm10".into()),
            Measure::Count("station".into()),
        ],
    )
    .unwrap();
    c.bench_function("m6_cube_rollup_2dims_5k_rows", |b| {
        b.iter(|| black_box(cube.rollup(&["district", "traffic"]).unwrap().n_rows()))
    });
}

fn config() -> Criterion {
    // Keep the whole suite under a few minutes while staying well above
    // noise for these micro-scale workloads.
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_graph,
        bench_tabularize,
        bench_csv,
        bench_quality,
        bench_classifiers,
        bench_olap
}
criterion_main!(benches);
