//! Criterion benchmarks of the mining kernels in both data layouts
//! (DESIGN.md §11): for each kernel, a `columnar` function running on
//! zero-copy `InstancesView`s and a `row_major_reference` function
//! running the frozen pre-rewrite implementation on the same rows —
//! so `cargo bench -p openbi-bench --bench mining_kernels` shows the
//! layout speedup per kernel with criterion's statistics behind it.

use criterion::{criterion_group, criterion_main, Criterion};
use openbi_bench::kernels::{
    holdout_indices, kernel_dataset, kernel_suite, run_columnar, run_reference,
};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let n = 1_000;
    let (columnar, row_major) = kernel_dataset(n, 0x1234_5678);
    let (train_idx, test_idx) = holdout_indices(n);
    let train = columnar.view().select_rows_owned(train_idx.clone());
    let test = columnar.view().select_rows_owned(test_idx.clone());
    let ref_train = row_major.subset(&train_idx);
    let ref_test = row_major.subset(&test_idx);
    for kernel in kernel_suite() {
        let mut group = c.benchmark_group(format!("kernel_{}", kernel.name));
        group.bench_function("columnar", |b| {
            b.iter(|| black_box(run_columnar(&kernel.spec, &train, &test)))
        });
        group.bench_function("row_major_reference", |b| {
            b.iter(|| black_box(run_reference(&kernel.spec, &ref_train, &ref_test)))
        });
        group.finish();
    }
}

fn config() -> Criterion {
    // Small samples keep the suite fast; these workloads are far above
    // timer noise at 1k rows.
    Criterion::default()
        .sample_size(15)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_kernels
}
criterion_main!(benches);
