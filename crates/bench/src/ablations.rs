//! Ablation studies of the design choices DESIGN.md calls out:
//!
//! * **A1** — advisor hyperparameters (neighbor count × kernel
//!   bandwidth): is the similarity-weighted aggregation doing work?
//! * **A2** — kNN's `k` under the dimensionality defect: does a larger
//!   neighborhood buy robustness to irrelevant attributes?
//! * **A3** — decision-tree capacity (depth × min-leaf) under label
//!   noise: does capping capacity act as noise regularization?

use crate::harness::default_datasets;
use crate::result_table::{Cell, ResultTable};
use openbi::experiment::{evaluate_variant, Criterion, ExperimentConfig, ExperimentDataset};
use openbi::kb::{leave_one_dataset_out, Advisor, SharedKnowledgeBase};
use openbi::mining::AlgorithmSpec;
use openbi::Result;

const SEED: u64 = 42;

/// A1 — advisor hyperparameter grid, evaluated by leave-one-dataset-out
/// on a phase-1 knowledge base.
pub fn a1_advisor_params() -> Result<Vec<ResultTable>> {
    let mut out = ResultTable::new(
        "A1",
        "ablation: advisor neighbors × bandwidth (LODO hit rate / regret)",
        &["neighbors", "bandwidth", "top1_hit_rate", "mean_regret"],
    );
    // Build one KB, reuse it for the whole grid.
    let datasets = default_datasets(SEED);
    let kb = SharedKnowledgeBase::default();
    let config = ExperimentConfig {
        algorithms: crate::harness::fast_suite(),
        severities: vec![0.0, 0.5, 1.0],
        folds: 3,
        seed: SEED,
        parallel: true,
        workers: 0,
        ..ExperimentConfig::default()
    };
    openbi::experiment::run_phase1(
        &datasets,
        &[
            Criterion::Completeness,
            Criterion::LabelNoise,
            Criterion::Dimensionality,
        ],
        &config,
        &kb,
    )?;
    let snapshot = kb.snapshot();
    for neighbors in [1usize, 5, 25, 100] {
        for bandwidth in [0.05, 0.25, 1.0] {
            let advisor = Advisor {
                neighbors,
                bandwidth,
            };
            let eval = leave_one_dataset_out(&snapshot, &advisor)?;
            out.push(vec![
                neighbors.into(),
                bandwidth.into(),
                eval.top1_hit_rate.into(),
                eval.mean_regret.into(),
            ]);
        }
    }
    Ok(vec![out])
}

/// A2 — kNN `k` under growing dimensionality.
pub fn a2_knn_k_under_dimensionality() -> Result<Vec<ResultTable>> {
    let mut out = ResultTable::new(
        "A2",
        "ablation: kNN k vs irrelevant-attribute severity (accuracy)",
        &["dataset", "severity", "k", "accuracy"],
    );
    let datasets = default_datasets(SEED);
    let kb = SharedKnowledgeBase::default();
    for dataset in &datasets {
        for &severity in &[0.0, 0.5, 1.0] {
            let degradation = Criterion::Dimensionality.degradation(severity, dataset)?;
            for k in [1usize, 5, 15, 35] {
                let config = ExperimentConfig {
                    algorithms: vec![AlgorithmSpec::Knn { k }],
                    severities: vec![],
                    folds: 3,
                    seed: SEED,
                    parallel: false,
                    workers: 0,
                    ..ExperimentConfig::default()
                };
                let results = evaluate_variant(dataset, &degradation, &config, SEED, &kb)?;
                out.push(vec![
                    Cell::Str(dataset.name.clone()),
                    severity.into(),
                    k.into(),
                    results[0].1.accuracy().into(),
                ]);
            }
        }
    }
    Ok(vec![out])
}

/// A3 — decision-tree capacity under label noise.
pub fn a3_tree_capacity_under_noise() -> Result<Vec<ResultTable>> {
    let mut out = ResultTable::new(
        "A3",
        "ablation: tree depth × min_leaf vs label noise (accuracy)",
        &["dataset", "noise_sev", "max_depth", "min_leaf", "accuracy"],
    );
    let datasets: Vec<ExperimentDataset> = default_datasets(SEED);
    let kb = SharedKnowledgeBase::default();
    for dataset in &datasets {
        for &severity in &[0.0, 0.5, 1.0] {
            let degradation = Criterion::LabelNoise.degradation(severity, dataset)?;
            for (max_depth, min_leaf) in [(20usize, 1usize), (12, 2), (6, 5), (3, 10)] {
                let config = ExperimentConfig {
                    algorithms: vec![AlgorithmSpec::DecisionTree {
                        max_depth,
                        min_leaf,
                    }],
                    severities: vec![],
                    folds: 3,
                    seed: SEED,
                    parallel: false,
                    workers: 0,
                    ..ExperimentConfig::default()
                };
                let results = evaluate_variant(dataset, &degradation, &config, SEED, &kb)?;
                out.push(vec![
                    Cell::Str(dataset.name.clone()),
                    severity.into(),
                    max_depth.into(),
                    min_leaf.into(),
                    results[0].1.accuracy().into(),
                ]);
            }
        }
    }
    Ok(vec![out])
}

/// The ablation index: `(id, runner)`.
#[allow(clippy::type_complexity)]
pub fn all_ablations() -> Vec<(&'static str, fn() -> Result<Vec<ResultTable>>)> {
    vec![
        ("A1", a1_advisor_params),
        ("A2", a2_knn_k_under_dimensionality),
        ("A3", a3_tree_capacity_under_noise),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_index_is_complete() {
        let ids: Vec<&str> = all_ablations().iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec!["A1", "A2", "A3"]);
    }
}
