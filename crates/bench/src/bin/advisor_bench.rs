//! Advisor serving-path benchmark: queries/sec of the indexed advise
//! path (and the scratch-reusing `advise_many` batch API) vs the
//! linear-scan reference advisor, across knowledge-base sizes.
//!
//! Prints a table and writes `BENCH_advisor.json` (shared schema, see
//! `openbi_bench::report`) so the serving-path perf trajectory is
//! tracked across PRs. Also spot-checks, on every KB size, that the
//! indexed path returns exactly the reference's advice.
//!
//! The throughput sweep runs with no `openbi-obs` registry installed,
//! so the q/s columns stay comparable across PRs. A separate
//! instrumented pass over the largest KB then populates the document's
//! **metrics** block (`advisor.advise.seconds` latency histogram, index
//! hit counters, batch amortization stats).
//!
//! ```text
//! cargo run --release -p openbi-bench --bin advisor_bench [-- out.json]
//! ```

use openbi::kb::{Advisor, ExperimentRecord, KnowledgeBase, PerfMetrics};
use openbi::obs;
use openbi::quality::QualityProfile;
use openbi_bench::{bench_doc, queries_per_second, write_bench_json};
use std::sync::Arc;
use std::time::Instant;

const KB_SIZES: [usize; 3] = [5_000, 20_000, 50_000];
const ALGORITHMS: usize = 12;
const DATASETS: usize = 40;
const QUERY_PROFILES: usize = 64;
/// Queries timed per (size, path) measurement.
const INDEXED_QUERIES: usize = 2_000;
/// The reference path is O(records × algorithms) per query; keep its
/// timed query count small so the largest KB still finishes promptly.
const REFERENCE_QUERIES: usize = 20;
const REPS: usize = 3;

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn unit(state: &mut u64) -> f64 {
    (xorshift(state) >> 11) as f64 / (1u64 << 53) as f64
}

fn random_profile(state: &mut u64) -> QualityProfile {
    QualityProfile {
        completeness: unit(state),
        duplicate_ratio: unit(state) * 0.3,
        class_balance: unit(state),
        outlier_ratio: unit(state) * 0.2,
        label_noise_estimate: unit(state) * 0.4,
        attr_noise_estimate: unit(state) * 0.4,
        ..Default::default()
    }
}

fn synthetic_kb(records: usize, state: &mut u64) -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    kb.add_batch((0..records).map(|i| {
        let acc = 0.4 + unit(state) * 0.6;
        ExperimentRecord {
            dataset: format!("dataset-{}", i % DATASETS),
            degradations: vec![],
            profile: random_profile(state),
            algorithm: format!("algorithm-{:02}", i % ALGORITHMS),
            metrics: PerfMetrics {
                accuracy: acc,
                macro_f1: acc - 0.05,
                minority_f1: acc - 0.1,
                kappa: 2.0 * acc - 1.0,
                train_ms: 1.0,
                model_size: 1.0,
            },
            seed: i as u64,
        }
    }));
    kb
}

/// Best-of-REPS queries/sec for `queries` advise calls round-robining
/// over the query profiles.
fn measure_qps(
    queries: usize,
    profiles: &[QualityProfile],
    mut advise_one: impl FnMut(&QualityProfile),
) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..REPS {
        let t0 = Instant::now();
        for q in 0..queries {
            advise_one(&profiles[q % profiles.len()]);
        }
        best = best.max(queries_per_second(queries, t0.elapsed().as_secs_f64()));
    }
    best
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_advisor.json".to_string());
    let advisor = Advisor::default();
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let profiles: Vec<QualityProfile> = (0..QUERY_PROFILES)
        .map(|_| random_profile(&mut state))
        .collect();

    let mut rows = Vec::new();
    let mut largest_kb: Option<KnowledgeBase> = None;
    for &size in &KB_SIZES {
        let kb = synthetic_kb(size, &mut state);

        // Correctness spot-check before timing anything: the indexed
        // path must be bitwise-identical to the reference on this KB.
        for profile in profiles.iter().take(8) {
            assert_eq!(
                advisor.advise(&kb, profile),
                advisor.advise_reference(&kb, profile),
                "indexed/reference divergence at {size} records"
            );
        }

        let reference_qps = measure_qps(REFERENCE_QUERIES, &profiles, |p| {
            advisor.advise_reference(&kb, p).expect("reference advise");
        });
        let indexed_qps = measure_qps(INDEXED_QUERIES, &profiles, |p| {
            advisor.advise(&kb, p).expect("indexed advise");
        });
        // advise_many: one batch call over all query profiles, repeated
        // to reach the same query count as the single-query path.
        let batch_rounds = INDEXED_QUERIES / QUERY_PROFILES;
        let mut batch_qps = 0.0f64;
        for _ in 0..REPS {
            let t0 = Instant::now();
            for _ in 0..batch_rounds {
                advisor.advise_many(&kb, &profiles).expect("batch advise");
            }
            batch_qps = batch_qps.max(queries_per_second(
                batch_rounds * QUERY_PROFILES,
                t0.elapsed().as_secs_f64(),
            ));
        }

        let speedup = if reference_qps > 0.0 {
            indexed_qps / reference_qps
        } else {
            0.0
        };
        println!(
            "{size:>6} records: reference {reference_qps:>9.1} q/s | indexed {indexed_qps:>9.1} q/s \
             | advise_many {batch_qps:>9.1} q/s | speedup ×{speedup:.1}"
        );
        rows.push(serde_json::json!({
            "kb_records": size,
            "reference_qps": reference_qps,
            "indexed_qps": indexed_qps,
            "advise_many_qps": batch_qps,
            "indexed_speedup_vs_reference": speedup,
        }));
        largest_kb = Some(kb);
    }

    // Instrumented pass over the largest KB: populates the metrics
    // block without touching the (uninstrumented) q/s columns above.
    let kb = largest_kb.expect("at least one KB size");
    let registry = Arc::new(obs::MetricsRegistry::new());
    obs::install(Arc::clone(&registry));
    for profile in &profiles {
        advisor.advise(&kb, profile).expect("instrumented advise");
    }
    advisor
        .advise_many(&kb, &profiles)
        .expect("instrumented batch advise");
    obs::uninstall();
    let snapshot = registry.snapshot();

    let doc = bench_doc(
        "advisor_serving",
        serde_json::json!({
            "kb": {
                "algorithms": ALGORITHMS,
                "datasets": DATASETS,
                "sizes": KB_SIZES,
            },
            "advisor": { "neighbors": advisor.neighbors, "bandwidth": advisor.bandwidth },
            "query_profiles": QUERY_PROFILES,
            "reps": REPS,
            "metrics_pass": {
                "kb_records": KB_SIZES[KB_SIZES.len() - 1],
                "advise_calls": QUERY_PROFILES,
                "advise_many_batches": 1,
            },
        }),
        serde_json::json!(rows),
        &snapshot,
    );
    write_bench_json(&out_path, &doc);
}
