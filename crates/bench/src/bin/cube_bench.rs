//! Sharded OLAP cube benchmark (DESIGN.md §14).
//!
//! Times the sharded cube engine across a shard-count sweep against the
//! frozen single-threaded `openbi::olap::reference` cube building the
//! identical rollup in the same process, re-checks bitwise equivalence
//! at every shard count (a benchmark that drifted from the oracle would
//! be measuring a different computation), and writes `BENCH_olap.json`
//! (shared schema, see `openbi_bench::report`): per-shard-count
//! `best_of_seconds`, the speedup over the reference, cube cell counts,
//! and an embedded `openbi-obs` metrics snapshot
//! (`olap.cube.build.seconds`, `olap.shard.seconds`, `olap.cube.cells`)
//! from the instrumented live runs.
//!
//! ```text
//! cargo run --release -p openbi-bench --bin cube_bench [-- [--quick] [out.json]]
//! ```
//!
//! `--quick` shrinks the fact table and rep count for CI smoke runs;
//! the headline speedups quoted in the README come from the full mode.

use openbi::obs;
use openbi_bench::olap::{cube_dataset, reference_rollup, sharded_rollup, CUBE_DIMS, CUBE_FACTS};
use openbi_bench::{bench_doc, best_of_seconds, write_bench_json};
use std::sync::Arc;

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_olap.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }
    let (n, reps) = if quick { (20_000, 2) } else { (200_000, 3) };
    let shard_counts: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };

    let facts = cube_dataset(n, 0x01AB);

    let reference_secs = best_of_seconds(reps, || {
        std::hint::black_box(reference_rollup(&facts));
    });
    let oracle = reference_rollup(&facts);
    println!(
        "reference ({} rows, {} dims, {} measures): {:>9.3}ms",
        n,
        CUBE_DIMS.len(),
        CUBE_FACTS.len() * 5,
        reference_secs * 1e3,
    );

    // Live runs are instrumented; the snapshot rides along in the
    // document so shard timings land next to the `olap.*` metrics the
    // engine itself records.
    let registry = Arc::new(obs::MetricsRegistry::new());
    obs::install(Arc::clone(&registry));

    let mut per_shards = Vec::new();
    for &shards in shard_counts {
        let live_secs = best_of_seconds(reps, || {
            std::hint::black_box(sharded_rollup(&facts, shards));
        });
        let result = sharded_rollup(&facts, shards);
        let bitwise_equal = result.table.fingerprint() == oracle.fingerprint();
        assert!(
            bitwise_equal,
            "sharded cube at {shards} shard(s) diverged from the reference"
        );
        let speedup = if live_secs > 0.0 {
            reference_secs / live_secs
        } else {
            0.0
        };
        println!(
            "shards {shards}: reference {:>9.3}ms  sharded {:>9.3}ms  speedup ×{speedup:.2}  ({} cells)",
            reference_secs * 1e3,
            live_secs * 1e3,
            result.table.n_rows(),
        );
        per_shards.push(serde_json::json!({
            "shards": shards,
            "reference_best_of_seconds": reference_secs,
            "sharded_best_of_seconds": live_secs,
            "best_of_seconds": live_secs,
            "speedup_vs_reference": speedup,
            "cells": result.table.n_rows(),
            "bitwise_equal": bitwise_equal,
        }));
    }

    obs::uninstall();
    let snapshot = registry.snapshot();
    let doc = bench_doc(
        "olap_cube",
        serde_json::json!({
            "rows": n,
            "dims": CUBE_DIMS,
            "measures": CUBE_FACTS.len() * 5,
            "reps": reps,
            "quick": quick,
        }),
        serde_json::json!({
            "shard_sweep": per_shards,
        }),
        &snapshot,
    );
    write_bench_json(&out_path, &doc);
}
