//! Grid-throughput benchmark for the cell-level experiment executor.
//!
//! Runs the small phase-1 grid (2 datasets × 3 criteria × 3 severities
//! × 3 algorithms) at several worker counts, prints a table, and writes
//! `BENCH_experiment_grid.json` (shared schema, see
//! `openbi_bench::report`) so the perf trajectory is tracked across
//! PRs. The document also carries:
//!
//! * an **overhead** block — the same grid at the highest worker count
//!   with an `openbi-obs` registry installed vs without, verifying that
//!   instrumentation stays within its ~2% budget (DESIGN.md §9), and
//! * a **metrics** block — the full [`MetricsSnapshot`] captured from
//!   the instrumented run (per-cell latency histogram, steal counters,
//!   queue-wait, flush batch sizes).
//!
//! ```text
//! cargo run --release -p openbi-bench --bin grid_bench [-- [--quick] [out.json]]
//! ```
//!
//! `--quick` shrinks the grid, rep count, and worker sweep for CI smoke
//! runs that only validate the document shape.
//!
//! [`MetricsSnapshot`]: openbi::obs::MetricsSnapshot

use openbi::datagen::{make_blobs, BlobsConfig};
use openbi::experiment::{run_phase1_report, Criterion, ExperimentConfig, ExperimentDataset};
use openbi::kb::SharedKnowledgeBase;
use openbi::mining::AlgorithmSpec;
use openbi::obs;
use openbi_bench::{bench_doc, best_of_seconds, write_bench_json};
use std::sync::Arc;

const REPS: usize = 3;

fn grid_datasets(n_rows: usize) -> Vec<ExperimentDataset> {
    (0..2u64)
        .map(|i| {
            ExperimentDataset::new(
                format!("grid-blobs-{i}"),
                make_blobs(&BlobsConfig {
                    n_rows,
                    n_features: 4,
                    n_classes: 2,
                    class_separation: 2.5,
                    seed: 10 + i,
                }),
                "class",
            )
        })
        .collect()
}

fn grid_config(workers: usize) -> ExperimentConfig {
    ExperimentConfig {
        algorithms: vec![
            AlgorithmSpec::NaiveBayes,
            AlgorithmSpec::DecisionTree {
                max_depth: 12,
                min_leaf: 2,
            },
            AlgorithmSpec::Knn { k: 5 },
        ],
        severities: vec![0.0, 0.5, 1.0],
        folds: 3,
        seed: 42,
        parallel: workers > 1,
        workers,
        ..ExperimentConfig::default()
    }
}

/// One full grid run; returns the records produced.
fn run_grid(datasets: &[ExperimentDataset], criteria: &[Criterion], workers: usize) -> usize {
    let kb = SharedKnowledgeBase::default();
    let report =
        run_phase1_report(datasets, criteria, &grid_config(workers), &kb).expect("benchmark grid");
    assert!(
        report.failures.is_empty(),
        "benchmark grid must not skip cells"
    );
    report.records
}

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_experiment_grid.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }
    let (n_rows, reps) = if quick { (120, 1) } else { (200, REPS) };
    let datasets = grid_datasets(n_rows);
    let criteria = [
        Criterion::Completeness,
        Criterion::LabelNoise,
        Criterion::AttributeNoise,
    ];
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut worker_counts = if quick {
        vec![1usize, 2]
    } else {
        vec![1usize, 2, 4, 8]
    };
    if !quick && !worker_counts.contains(&cores) {
        worker_counts.push(cores);
    }
    worker_counts.sort_unstable();
    worker_counts.dedup();

    // Worker sweep, uninstrumented (no registry installed).
    let mut rows = Vec::new();
    let mut base_secs = 0.0f64;
    for &workers in &worker_counts {
        let mut records = 0usize;
        let best = best_of_seconds(reps, || {
            records = run_grid(&datasets, &criteria, workers);
        });
        if workers == 1 {
            base_secs = best;
        }
        let speedup = if best > 0.0 { base_secs / best } else { 0.0 };
        println!("workers {workers:>2}: {best:.3}s  ({records} records, speedup ×{speedup:.2})");
        rows.push(serde_json::json!({
            "workers": workers,
            "seconds": best,
            "records": records,
            "speedup_vs_1": speedup,
        }));
    }

    // Instrumentation overhead at the highest worker count: same grid,
    // best-of-REPS, with a registry installed vs the sweep's
    // uninstrumented time. The registry stays live across reps, so the
    // captured snapshot aggregates REPS instrumented runs.
    let max_workers = *worker_counts.last().expect("non-empty worker sweep");
    let uninstrumented_secs = rows
        .last()
        .and_then(|r| r["seconds"].as_f64())
        .expect("sweep row");
    let registry = Arc::new(obs::MetricsRegistry::new());
    obs::install(Arc::clone(&registry));
    let instrumented_secs = best_of_seconds(reps, || {
        run_grid(&datasets, &criteria, max_workers);
    });
    obs::uninstall();
    let snapshot = registry.snapshot();
    let overhead_pct = if uninstrumented_secs > 0.0 {
        (instrumented_secs - uninstrumented_secs) / uninstrumented_secs * 100.0
    } else {
        0.0
    };
    println!(
        "instrumented workers {max_workers}: {instrumented_secs:.3}s \
         (overhead {overhead_pct:+.2}% vs {uninstrumented_secs:.3}s)"
    );

    let doc = bench_doc(
        "experiment_grid",
        serde_json::json!({
            "grid": {
                "datasets": 2,
                "rows_per_dataset": n_rows,
                "criteria": 3,
                "severities": 3,
                "algorithms": 3,
                "folds": 3,
            },
            "available_cores": cores,
            "reps": reps,
            "quick": quick,
        }),
        serde_json::json!({
            "sweep": rows,
            "overhead": {
                "workers": max_workers,
                "uninstrumented_seconds": uninstrumented_secs,
                "instrumented_seconds": instrumented_secs,
                "overhead_pct": overhead_pct,
            },
        }),
        &snapshot,
    );
    write_bench_json(&out_path, &doc);
}
