//! Grid-throughput benchmark for the cell-level experiment executor.
//!
//! Runs the small phase-1 grid (2 datasets × 3 criteria × 3 severities
//! × 3 algorithms) at several worker counts, prints a table, and writes
//! `BENCH_experiment_grid.json` so the perf trajectory is tracked
//! across PRs.
//!
//! ```text
//! cargo run --release -p openbi-bench --bin grid_bench [-- out.json]
//! ```

use openbi::datagen::{make_blobs, BlobsConfig};
use openbi::experiment::{run_phase1_report, Criterion, ExperimentConfig, ExperimentDataset};
use openbi::kb::SharedKnowledgeBase;
use openbi::mining::AlgorithmSpec;
use std::time::Instant;

const REPS: usize = 3;

fn grid_datasets() -> Vec<ExperimentDataset> {
    (0..2u64)
        .map(|i| {
            ExperimentDataset::new(
                format!("grid-blobs-{i}"),
                make_blobs(&BlobsConfig {
                    n_rows: 200,
                    n_features: 4,
                    n_classes: 2,
                    class_separation: 2.5,
                    seed: 10 + i,
                }),
                "class",
            )
        })
        .collect()
}

fn grid_config(workers: usize) -> ExperimentConfig {
    ExperimentConfig {
        algorithms: vec![
            AlgorithmSpec::NaiveBayes,
            AlgorithmSpec::DecisionTree {
                max_depth: 12,
                min_leaf: 2,
            },
            AlgorithmSpec::Knn { k: 5 },
        ],
        severities: vec![0.0, 0.5, 1.0],
        folds: 3,
        seed: 42,
        parallel: workers > 1,
        workers,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_experiment_grid.json".to_string());
    let datasets = grid_datasets();
    let criteria = [
        Criterion::Completeness,
        Criterion::LabelNoise,
        Criterion::AttributeNoise,
    ];
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut worker_counts = vec![1usize, 2, 4, 8];
    if !worker_counts.contains(&cores) {
        worker_counts.push(cores);
    }
    worker_counts.sort_unstable();
    worker_counts.dedup();

    let mut rows = Vec::new();
    let mut base_secs = 0.0f64;
    for &workers in &worker_counts {
        // Best of REPS, so one scheduling hiccup does not skew the curve.
        let mut best = f64::INFINITY;
        let mut records = 0usize;
        for _ in 0..REPS {
            let kb = SharedKnowledgeBase::default();
            let t0 = Instant::now();
            let report = run_phase1_report(&datasets, &criteria, &grid_config(workers), &kb)
                .expect("benchmark grid");
            let secs = t0.elapsed().as_secs_f64();
            assert!(
                report.failures.is_empty(),
                "benchmark grid must not skip cells"
            );
            records = report.records;
            best = best.min(secs);
        }
        if workers == 1 {
            base_secs = best;
        }
        let speedup = if best > 0.0 { base_secs / best } else { 0.0 };
        println!("workers {workers:>2}: {best:.3}s  ({records} records, speedup ×{speedup:.2})");
        rows.push(serde_json::json!({
            "workers": workers,
            "seconds": best,
            "records": records,
            "speedup_vs_1": speedup,
        }));
    }

    let doc = serde_json::json!({
        "benchmark": "experiment_grid",
        "grid": {
            "datasets": 2,
            "rows_per_dataset": 200,
            "criteria": 3,
            "severities": 3,
            "algorithms": 3,
            "folds": 3,
        },
        "available_cores": cores,
        "reps": REPS,
        "results": rows,
    });
    std::fs::write(
        &out_path,
        serde_json::to_string_pretty(&doc).expect("serialize"),
    )
    .expect("write benchmark json");
    println!("wrote {out_path}");
}
