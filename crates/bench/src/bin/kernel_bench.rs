//! Columnar-vs-row-major kernel benchmark (DESIGN.md §11).
//!
//! Times each mining kernel — `fit` plus holdout `predict`, best-of-N —
//! on the columnar struct-of-arrays layout against the frozen row-major
//! `openbi::mining::reference` implementation running the identical
//! workload on the identical rows in the same process, then writes
//! `BENCH_mining_kernels.json` (shared schema, see
//! `openbi_bench::report`): per-kernel `best_of_seconds` for both
//! layouts, the speedup, and an embedded `openbi-obs` metrics snapshot
//! from the instrumented columnar runs.
//!
//! ```text
//! cargo run --release -p openbi-bench --bin kernel_bench [-- [--quick] [out.json]]
//! ```
//!
//! `--quick` shrinks the dataset and rep count for CI smoke runs; the
//! headline speedups quoted in the README come from the full mode.

use openbi::obs;
use openbi_bench::kernels::{
    holdout_indices, kernel_dataset, kernel_suite, run_columnar, run_reference, KERNEL_ATTRS,
};
use openbi_bench::{bench_doc, best_of_seconds, write_bench_json};
use std::sync::Arc;

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_mining_kernels.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }
    let (n, reps) = if quick { (600, 2) } else { (2_000, 5) };

    let (columnar, row_major) = kernel_dataset(n, 0x1234_5678);
    let (train_idx, test_idx) = holdout_indices(n);
    let train = columnar.view().select_rows_owned(train_idx.clone());
    let test = columnar.view().select_rows_owned(test_idx.clone());
    let ref_train = row_major.subset(&train_idx);
    let ref_test = row_major.subset(&test_idx);

    // Columnar runs are instrumented; the snapshot rides along in the
    // document so kernel timings land next to whatever the kernels
    // themselves record.
    let registry = Arc::new(obs::MetricsRegistry::new());
    obs::install(Arc::clone(&registry));

    let mut per_kernel = Vec::new();
    for kernel in kernel_suite() {
        let columnar_secs = best_of_seconds(reps, || {
            let _span = obs::span(&format!("kernel.{}.seconds", kernel.name));
            std::hint::black_box(run_columnar(&kernel.spec, &train, &test));
        });
        let reference_secs = best_of_seconds(reps, || {
            std::hint::black_box(run_reference(&kernel.spec, &ref_train, &ref_test));
        });
        let speedup = if columnar_secs > 0.0 {
            reference_secs / columnar_secs
        } else {
            0.0
        };
        println!(
            "{:<14} row-major {:>9.3}ms  columnar {:>9.3}ms  speedup ×{speedup:.2}",
            kernel.name,
            reference_secs * 1e3,
            columnar_secs * 1e3,
        );
        per_kernel.push(serde_json::json!({
            "kernel": kernel.name,
            "algorithm": kernel.spec.to_string(),
            "reference_best_of_seconds": reference_secs,
            "columnar_best_of_seconds": columnar_secs,
            "best_of_seconds": columnar_secs,
            "speedup_vs_row_major": speedup,
        }));
    }

    obs::uninstall();
    let snapshot = registry.snapshot();
    let doc = bench_doc(
        "mining_kernels",
        serde_json::json!({
            "rows": n,
            "attributes": KERNEL_ATTRS,
            "classes": 3,
            "train_rows": train_idx.len(),
            "test_rows": test_idx.len(),
            "reps": reps,
            "quick": quick,
        }),
        serde_json::json!({ "kernels": per_kernel }),
        &snapshot,
    );
    write_bench_json(&out_path, &doc);
}
