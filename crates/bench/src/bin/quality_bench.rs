//! Quality-measurement kernel benchmark (DESIGN.md §12).
//!
//! Times each quality criterion — and the full profile end to end —
//! best-of-N on the columnar single-pass kernels against the frozen
//! row-wise `openbi::quality::reference` implementation running on the
//! identical table in the same process, then exercises the profile cache
//! and writes `BENCH_quality.json` (shared schema, see
//! `openbi_bench::report`): per-criterion `best_of_seconds` for both
//! implementations, the speedup, cache hit/miss timings, and an embedded
//! `openbi-obs` metrics snapshot from the instrumented live runs.
//!
//! ```text
//! cargo run --release -p openbi-bench --bin quality_bench [-- [--quick] [out.json]]
//! ```
//!
//! `--quick` shrinks the table and rep count for CI smoke runs; the
//! headline speedups quoted in the README come from the full mode.

use openbi::obs;
use openbi::quality::ProfileCache;
use openbi_bench::quality::{criterion_suite, quality_dataset, quality_options, QUALITY_ATTRS};
use openbi_bench::{bench_doc, best_of_seconds, write_bench_json};
use std::sync::Arc;

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_quality.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }
    let (n, reps) = if quick { (600, 2) } else { (2_000, 5) };

    let table = quality_dataset(n, 0x0B1_DA7A);
    let options = quality_options();

    // Live runs are instrumented; the snapshot rides along in the
    // document so criterion timings land next to the
    // `quality.measure.seconds` / `quality.cache.*` metrics the kernels
    // themselves record.
    let registry = Arc::new(obs::MetricsRegistry::new());
    obs::install(Arc::clone(&registry));

    let mut per_criterion = Vec::new();
    for criterion in criterion_suite() {
        let live_secs = best_of_seconds(reps, || {
            std::hint::black_box((criterion.live)(&table, &options));
        });
        let reference_secs = best_of_seconds(reps, || {
            std::hint::black_box((criterion.reference)(&table, &options));
        });
        let speedup = if live_secs > 0.0 {
            reference_secs / live_secs
        } else {
            0.0
        };
        println!(
            "{:<14} row-wise {:>9.3}ms  columnar {:>9.3}ms  speedup ×{speedup:.2}",
            criterion.name,
            reference_secs * 1e3,
            live_secs * 1e3,
        );
        per_criterion.push(serde_json::json!({
            "criterion": criterion.name,
            "reference_best_of_seconds": reference_secs,
            "columnar_best_of_seconds": live_secs,
            "best_of_seconds": live_secs,
            "speedup_vs_row_wise": speedup,
        }));
    }

    // Cache demonstration on a private cache (the global one would keep
    // state across benchmark runs): first measurement misses and pays
    // the full profile, the repeat hits and pays only a fingerprint.
    let cache = ProfileCache::new(16);
    let miss_secs = best_of_seconds(1, || {
        std::hint::black_box(cache.measure(&table, &options));
    });
    let hit_secs = best_of_seconds(reps, || {
        std::hint::black_box(cache.measure(&table, &options));
    });
    println!(
        "profile cache  miss {:>9.3}ms  hit {:>9.3}ms  speedup ×{:.2}",
        miss_secs * 1e3,
        hit_secs * 1e3,
        if hit_secs > 0.0 {
            miss_secs / hit_secs
        } else {
            0.0
        },
    );

    obs::uninstall();
    let snapshot = registry.snapshot();
    let doc = bench_doc(
        "quality_profile",
        serde_json::json!({
            "rows": n,
            "attributes": QUALITY_ATTRS,
            "classes": 3,
            "reps": reps,
            "quick": quick,
        }),
        serde_json::json!({
            "criteria": per_criterion,
            "cache": {
                "miss_seconds": miss_secs,
                "hit_best_of_seconds": hit_secs,
                "speedup_vs_miss": if hit_secs > 0.0 { miss_secs / hit_secs } else { 0.0 },
            },
        }),
        &snapshot,
    );
    write_bench_json(&out_path, &doc);
}
