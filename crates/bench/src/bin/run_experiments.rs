//! Run the experiment suite and export results.
//!
//! Usage:
//!   run_experiments              # all experiments
//!   run_experiments E1 E12 F2    # a subset, by id
//!
//! Result tables are printed and also written as CSV under `results/`.

use openbi_bench::ablations::all_ablations;
use openbi_bench::experiments::all_experiments;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_uppercase()).collect();
    let selected: Vec<_> = all_experiments()
        .into_iter()
        .chain(all_ablations())
        .filter(|(id, _)| args.is_empty() || args.iter().any(|a| a == id))
        .collect();
    if selected.is_empty() {
        eprintln!("no experiment matches {args:?}; known: E1..E12, F1, F2, A1..A3");
        std::process::exit(2);
    }
    let out_dir = std::path::Path::new("results");
    for (id, runner) in selected {
        let start = Instant::now();
        match runner() {
            Ok(tables) => {
                for table in &tables {
                    print!("{}", table.render());
                    match table.save_csv(out_dir) {
                        Ok(path) => println!("(csv: {})\n", path.display()),
                        Err(e) => eprintln!("warning: could not save CSV: {e}"),
                    }
                }
                println!("== {id} done in {:.1}s ==\n", start.elapsed().as_secs_f64());
            }
            Err(e) => {
                eprintln!("{id} failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
