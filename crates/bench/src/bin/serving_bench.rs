//! Closed-loop knowledge-base serving benchmark: N client threads each
//! fire M advisor queries against a store that is concurrently
//! receiving publishes, comparing three read paths:
//!
//! - `snapshot` — [`AdvisorService`] over the lock-free snapshot-swap
//!   [`SnapshotKnowledgeBase`] (readers pin a generation, never block);
//! - `rwlock_clone` — the pre-serving baseline: deep-clone the
//!   [`SharedKnowledgeBase`] under its read lock for every query;
//! - `rwlock_read` — advise inside the read lock without cloning
//!   (fast, but publisher writes stall every reader).
//!
//! Each (path, clients) cell reports queries/sec, exact p50/p90/p99
//! query latency, and the generations (publish batches) applied while
//! the clients ran. Writes `BENCH_serving.json` in the shared schema
//! (`openbi_bench::report`, see EXPERIMENTS.md); a separate
//! instrumented pass populates the document's metrics block
//! (`serving.advise.seconds`, `kb.publish.*`, `kb.snapshot.generation`).
//!
//! ```text
//! cargo run --release -p openbi-bench --bin serving_bench [-- --quick] [-- out.json]
//! ```

use openbi::kb::{Advisor, AdvisorService, ExperimentRecord, KnowledgeBase};
use openbi::kb::{SharedKnowledgeBase, SnapshotKnowledgeBase};
use openbi::obs;
use openbi::quality::QualityProfile;
use openbi_bench::{
    bench_doc, latency_summary, queries_per_second, random_profile, synthetic_records,
    write_bench_json, LatencySummary,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const QUERY_PROFILES: usize = 64;
/// Records per publish batch fed to the store while clients query.
const PUBLISH_BATCH: usize = 64;
/// Distinct pre-generated publish batches the publisher cycles over.
const PUBLISH_BATCHES: usize = 32;

struct Scale {
    seed_records: usize,
    clients: &'static [usize],
    /// Queries per client on the pin/read paths.
    queries: usize,
    /// Queries per client on the deep-clone baseline — O(KB) per query,
    /// so kept small the same way `advisor_bench` caps its reference
    /// path.
    clone_queries: usize,
}

const FULL: Scale = Scale {
    seed_records: 20_000,
    clients: &[1, 2, 4, 8],
    queries: 2_000,
    clone_queries: 50,
};

const QUICK: Scale = Scale {
    seed_records: 2_000,
    clients: &[2, 8],
    queries: 200,
    clone_queries: 10,
};

/// One measured (path, clients) cell.
struct Row {
    path: &'static str,
    clients: usize,
    queries: usize,
    qps: f64,
    latency_us: LatencySummary,
    generations: u64,
}

/// Run `clients` closed-loop query threads to completion while a
/// publisher thread applies `publish_tick` until they finish. Returns
/// wall-clock queries/sec and every per-query latency in microseconds.
fn closed_loop(
    clients: usize,
    queries_per_client: usize,
    profiles: &[QualityProfile],
    advise: &(impl Fn(&QualityProfile) + Sync),
    mut publish_tick: impl FnMut() + Send,
) -> (f64, Vec<f64>) {
    let stop = AtomicBool::new(false);
    let t0 = Instant::now();
    let (elapsed, latencies) = std::thread::scope(|s| {
        let workers: Vec<_> = (0..clients)
            .map(|c| {
                s.spawn(move || {
                    let mut lat = Vec::with_capacity(queries_per_client);
                    for q in 0..queries_per_client {
                        // Stagger clients across the profile pool so
                        // they do not query in lockstep.
                        let profile = &profiles[(c * 31 + q) % profiles.len()];
                        let q0 = Instant::now();
                        advise(profile);
                        lat.push(q0.elapsed().as_secs_f64() * 1e6);
                    }
                    lat
                })
            })
            .collect();
        let publisher = s.spawn({
            let stop = &stop;
            move || {
                while !stop.load(Ordering::Relaxed) {
                    publish_tick();
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        });
        let mut latencies = Vec::with_capacity(clients * queries_per_client);
        for w in workers {
            latencies.extend(w.join().expect("client thread"));
        }
        let elapsed = t0.elapsed().as_secs_f64();
        stop.store(true, Ordering::Relaxed);
        publisher.join().expect("publisher thread");
        (elapsed, latencies)
    });
    (
        queries_per_second(clients * queries_per_client, elapsed),
        latencies,
    )
}

fn run_snapshot_path(
    clients: usize,
    queries: usize,
    seed_kb: &KnowledgeBase,
    profiles: &[QualityProfile],
    batches: &[Vec<ExperimentRecord>],
) -> Row {
    let store = Arc::new(SnapshotKnowledgeBase::new(seed_kb.clone()));
    let service = AdvisorService::new(Advisor::default(), Arc::clone(&store));
    let mut next = 0usize;
    let publisher_store = Arc::clone(&store);
    let (qps, mut lat) = closed_loop(
        clients,
        queries,
        profiles,
        &|p| {
            service.advise(p).expect("snapshot advise");
        },
        move || {
            publisher_store.add_batch(batches[next % batches.len()].clone());
            next += 1;
        },
    );
    Row {
        path: "snapshot",
        clients,
        queries: clients * queries,
        qps,
        latency_us: latency_summary(&mut lat),
        generations: store.generation(),
    }
}

fn rwlock_row(
    path: &'static str,
    clients: usize,
    queries: usize,
    seed_kb: &KnowledgeBase,
    profiles: &[QualityProfile],
    batches: &[Vec<ExperimentRecord>],
    advise: &(impl Fn(&SharedKnowledgeBase, &QualityProfile) + Sync),
) -> Row {
    let shared = SharedKnowledgeBase::new(seed_kb.clone());
    let published = AtomicU64::new(0);
    let mut next = 0usize;
    let (qps, mut lat) = {
        let shared_pub = shared.clone();
        let published = &published;
        closed_loop(
            clients,
            queries,
            profiles,
            &|p| advise(&shared, p),
            move || {
                shared_pub.add_batch(batches[next % batches.len()].clone());
                next += 1;
                published.fetch_add(1, Ordering::Relaxed);
            },
        )
    };
    Row {
        path,
        clients,
        queries: clients * queries,
        qps,
        latency_us: latency_summary(&mut lat),
        generations: published.load(Ordering::Relaxed),
    }
}

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_serving.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }
    let scale = if quick { QUICK } else { FULL };

    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut seed_kb = KnowledgeBase::new();
    seed_kb.add_batch(synthetic_records(scale.seed_records, &mut state));
    let profiles: Vec<QualityProfile> = (0..QUERY_PROFILES)
        .map(|_| random_profile(&mut state))
        .collect();
    let batches: Vec<Vec<ExperimentRecord>> = (0..PUBLISH_BATCHES)
        .map(|_| synthetic_records(PUBLISH_BATCH, &mut state))
        .collect();

    let advisor = Advisor::default();
    let mut rows = Vec::new();
    for &clients in scale.clients {
        let snapshot = run_snapshot_path(clients, scale.queries, &seed_kb, &profiles, &batches);
        let clone = rwlock_row(
            "rwlock_clone",
            clients,
            scale.clone_queries,
            &seed_kb,
            &profiles,
            &batches,
            &|shared, p| {
                let kb = shared.snapshot();
                advisor.advise(&kb, p).expect("clone advise");
            },
        );
        let read = rwlock_row(
            "rwlock_read",
            clients,
            scale.queries,
            &seed_kb,
            &profiles,
            &batches,
            &|shared, p| {
                shared
                    .with_read(|kb| advisor.advise(kb, p))
                    .expect("read advise");
            },
        );
        let speedup = if clone.qps > 0.0 {
            snapshot.qps / clone.qps
        } else {
            0.0
        };
        for row in [&snapshot, &clone, &read] {
            println!(
                "{:>2} clients  {:<12}  {:>10.1} q/s  p50 {:>8.1}µs  p99 {:>9.1}µs  {:>4} gen",
                row.clients,
                row.path,
                row.qps,
                row.latency_us.p50,
                row.latency_us.p99,
                row.generations
            );
        }
        println!("            snapshot vs rwlock_clone: ×{speedup:.1}");
        rows.extend([snapshot, clone, read].map(|row| {
            serde_json::json!({
                "path": row.path,
                "clients": row.clients,
                "queries": row.queries,
                "queries_per_second": row.qps,
                "latency_us": {
                    "p50": row.latency_us.p50,
                    "p90": row.latency_us.p90,
                    "p99": row.latency_us.p99,
                },
                "generations_published": row.generations,
            })
        }));
    }

    // Instrumented pass (outside the timed sweep): a short snapshot-path
    // run with a registry installed, so the document's metrics block
    // carries serving.advise.seconds, kb.publish.*, and the final
    // kb.snapshot.generation gauge.
    let registry = Arc::new(obs::MetricsRegistry::new());
    obs::install(Arc::clone(&registry));
    let store = Arc::new(SnapshotKnowledgeBase::new(seed_kb.clone()));
    let service = AdvisorService::new(Advisor::default(), Arc::clone(&store));
    for (i, profile) in profiles.iter().enumerate() {
        service.advise(profile).expect("instrumented advise");
        if i % 8 == 0 {
            store.add_batch(batches[(i / 8) % batches.len()].clone());
        }
    }
    service
        .advise_many(&profiles)
        .expect("instrumented batch advise");
    store.flush().expect("instrumented flush");
    obs::uninstall();
    let snapshot = registry.snapshot();

    let doc = bench_doc(
        "kb_serving",
        serde_json::json!({
            "quick": quick,
            "seed_kb_records": scale.seed_records,
            "query_profiles": QUERY_PROFILES,
            "clients": scale.clients,
            "queries_per_client": scale.queries,
            "clone_queries_per_client": scale.clone_queries,
            "publish_batch_records": PUBLISH_BATCH,
        }),
        serde_json::json!(rows),
        &snapshot,
    );
    write_bench_json(&out_path, &doc);
}
