//! Write-ahead-log benchmark: append throughput per fsync policy,
//! recovery replay rate, and checkpoint cost.
//!
//! Three measured sections:
//!
//! - `append` — one row per fsync policy (`always`, `batch`, `never`):
//!   records/sec and bytes/sec for batched appends into a fresh log.
//!   The `always` policy fsyncs every batch, so it runs a smaller
//!   workload the same way `serving_bench` caps its deep-clone baseline
//!   — the per-record numbers stay comparable, the wall clock stays
//!   sane.
//! - `recovery` — replay the `never` log (the largest) from a cold
//!   start: wall-clock seconds, frames/sec, and the headline
//!   seconds-per-million-frames rate perf tooling trends across PRs.
//! - `checkpoint` — snapshot + compaction cost over the recovered
//!   knowledge base, then a second recovery showing what the watermark
//!   buys (replay restarts from the checkpoint, not from frame zero).
//!
//! Writes `BENCH_wal.json` in the shared schema (`openbi_bench::report`,
//! see EXPERIMENTS.md); a separate instrumented pass populates the
//! document's metrics block (`kb.wal.*`, `kb.recovery.*`,
//! `kb.checkpoint.seconds`).
//!
//! ```text
//! cargo run --release -p openbi-bench --bin wal_bench [-- --quick] [-- out.json]
//! ```

use openbi::kb::{recover, ExperimentRecord, FsyncPolicy, WalOptions, WalWriter};
use openbi::obs;
use openbi_bench::{bench_doc, synthetic_records, write_bench_json};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Records per `append_batch` call — the unit the batch policy fsyncs.
const BATCH: usize = 64;

struct Scale {
    /// Records appended on the `batch` and `never` policies.
    records: usize,
    /// Records appended on the `always` policy — one fsync per batch
    /// makes it orders of magnitude slower, so it gets a small workload.
    always_records: usize,
    segment_bytes: u64,
}

const FULL: Scale = Scale {
    records: 200_000,
    always_records: 2_000,
    segment_bytes: 4 * 1024 * 1024,
};

const QUICK: Scale = Scale {
    records: 2_000,
    always_records: 128,
    segment_bytes: 256 * 1024,
};

/// Fresh per-policy WAL directory under the system temp dir.
fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("openbi-wal-bench-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench wal dir");
    dir
}

/// Total bytes of every file in `dir` (segments + checkpoints).
fn dir_bytes(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .expect("read wal dir")
        .filter_map(|entry| entry.ok())
        .filter_map(|entry| entry.metadata().ok())
        .map(|meta| meta.len())
        .sum()
}

/// One measured append row.
struct AppendRow {
    policy: FsyncPolicy,
    records: usize,
    seconds: f64,
    wal_bytes: u64,
    segments: u64,
}

/// Append `records` in [`BATCH`]-sized batches under `policy` into a
/// fresh directory; the final `sync` is inside the timed window so the
/// `never` row still pays for its one flush-on-close.
fn append_run(policy: FsyncPolicy, records: &[ExperimentRecord], segment_bytes: u64) -> AppendRow {
    let dir = fresh_dir(&policy.to_string());
    let mut writer = WalWriter::open(
        WalOptions::new(&dir)
            .segment_bytes(segment_bytes)
            .fsync(policy),
    )
    .expect("open bench wal");
    let t0 = Instant::now();
    for batch in records.chunks(BATCH) {
        writer.append_batch(batch).expect("append bench batch");
    }
    writer.sync().expect("final bench sync");
    let seconds = t0.elapsed().as_secs_f64();
    let segments = writer.generation() + 1;
    drop(writer);
    let wal_bytes = dir_bytes(&dir);
    let row = AppendRow {
        policy,
        records: records.len(),
        seconds,
        wal_bytes,
        segments,
    };
    if policy != FsyncPolicy::Never {
        // The `never` log is reused by the recovery + checkpoint
        // sections; the rest are done.
        let _ = std::fs::remove_dir_all(&dir);
    }
    row
}

fn per_second(count: usize, seconds: f64) -> f64 {
    if seconds > 0.0 {
        count as f64 / seconds
    } else {
        0.0
    }
}

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_wal.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }
    let scale = if quick { QUICK } else { FULL };

    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let records = synthetic_records(scale.records, &mut state);

    // --- append throughput per fsync policy -------------------------
    let mut append_rows = Vec::new();
    for policy in [FsyncPolicy::Always, FsyncPolicy::Batch, FsyncPolicy::Never] {
        let workload = if policy == FsyncPolicy::Always {
            &records[..scale.always_records.min(records.len())]
        } else {
            &records[..]
        };
        let row = append_run(policy, workload, scale.segment_bytes);
        println!(
            "append {:<6}  {:>7} records  {:>11.1} rec/s  {:>8.2} MB/s  {:>3} segment(s)",
            row.policy,
            row.records,
            per_second(row.records, row.seconds),
            row.wal_bytes as f64 / row.seconds.max(1e-9) / 1e6,
            row.segments,
        );
        append_rows.push(row);
    }

    // --- recovery replay rate (cold start over the `never` log) -----
    let wal_dir =
        std::env::temp_dir().join(format!("openbi-wal-bench-{}-never", std::process::id()));
    let (kb, recovery) = recover(&wal_dir).expect("bench recovery");
    assert_eq!(kb.len(), scale.records, "recovery must replay every record");
    let recovery_spmf = recovery.seconds / (recovery.frames_replayed.max(1) as f64) * 1e6;
    println!(
        "recover       {:>7} frames   {:>11.1} frames/s  {:>8.3} s/Mframe  {:>3} segment(s)",
        recovery.frames_replayed,
        per_second(recovery.frames_replayed as usize, recovery.seconds),
        recovery_spmf,
        recovery.segments_scanned,
    );

    // --- checkpoint cost + what the watermark buys ------------------
    let mut writer = WalWriter::open(
        WalOptions::new(&wal_dir)
            .segment_bytes(scale.segment_bytes)
            .fsync(FsyncPolicy::Batch),
    )
    .expect("reopen bench wal");
    let checkpoint = writer.checkpoint(&kb).expect("bench checkpoint");
    drop(writer);
    let (kb_after, recovery_after) = recover(&wal_dir).expect("post-checkpoint recovery");
    assert_eq!(kb_after.len(), kb.len(), "checkpoint must preserve the KB");
    println!(
        "checkpoint    {:>7} records  {:>8.3} s  {:>3} segment(s) compacted  recover-after {:.3} s",
        checkpoint.records,
        checkpoint.seconds,
        checkpoint.compacted_segments,
        recovery_after.seconds,
    );

    // --- instrumented pass (outside the timed sweep) ----------------
    // A short always-fsync round trip with a registry installed so the
    // document's metrics block carries kb.wal.*, kb.recovery.*, and
    // kb.checkpoint.seconds.
    let registry = Arc::new(obs::MetricsRegistry::new());
    obs::install(Arc::clone(&registry));
    let probe_dir = fresh_dir("probe");
    let mut probe = WalWriter::open(
        WalOptions::new(&probe_dir)
            .segment_bytes(scale.segment_bytes)
            .fsync(FsyncPolicy::Always),
    )
    .expect("open probe wal");
    for batch in records[..scale.always_records.min(records.len())].chunks(BATCH) {
        probe.append_batch(batch).expect("probe append");
    }
    drop(probe);
    let (probe_kb, _) = recover(&probe_dir).expect("probe recovery");
    let mut probe = WalWriter::open(WalOptions::new(&probe_dir).fsync(FsyncPolicy::Always))
        .expect("reopen probe wal");
    probe.checkpoint(&probe_kb).expect("probe checkpoint");
    drop(probe);
    obs::uninstall();
    let snapshot = registry.snapshot();
    let _ = std::fs::remove_dir_all(&probe_dir);
    let _ = std::fs::remove_dir_all(&wal_dir);

    let append_json: Vec<serde_json::Value> = append_rows
        .iter()
        .map(|row| {
            serde_json::json!({
                "fsync": row.policy.to_string(),
                "records": row.records,
                "seconds": row.seconds,
                "records_per_second": per_second(row.records, row.seconds),
                "wal_bytes": row.wal_bytes,
                "segments": row.segments,
            })
        })
        .collect();
    let recovery_json = serde_json::json!({
        "frames": recovery.frames_replayed,
        "seconds": recovery.seconds,
        "frames_per_second": per_second(recovery.frames_replayed as usize, recovery.seconds),
        "seconds_per_million_frames": recovery_spmf,
        "truncated_bytes": recovery.truncated_bytes,
        "segments_scanned": recovery.segments_scanned,
    });
    let recovery_after_json = serde_json::json!({
        "seconds": recovery_after.seconds,
        "frames_replayed": recovery_after.frames_replayed,
        "checkpoint_records": recovery_after.checkpoint_records,
    });
    let checkpoint_json = serde_json::json!({
        "watermark": checkpoint.watermark,
        "records": checkpoint.records,
        "seconds": checkpoint.seconds,
        "compacted_segments": checkpoint.compacted_segments,
        "removed_checkpoints": checkpoint.removed_checkpoints,
        "recovery_after": recovery_after_json,
    });

    let doc = bench_doc(
        "kb_wal",
        serde_json::json!({
            "quick": quick,
            "records": scale.records,
            "always_records": scale.always_records,
            "batch_records": BATCH,
            "segment_bytes": scale.segment_bytes,
        }),
        serde_json::json!({
            "append": append_json,
            "recovery": recovery_json,
            "checkpoint": checkpoint_json,
        }),
        &snapshot,
    );
    write_bench_json(&out_path, &doc);
}
