//! The experiment implementations, one function per entry of the
//! DESIGN.md experiment index (E1–E12, F1, F2). Each returns one or more
//! [`ResultTable`]s ready to print and export.

use crate::harness::{default_datasets, fast_suite, severity_sweep, SEVERITIES};
use crate::result_table::{Cell, ResultTable};
use openbi::datagen::{
    high_dim_class, high_dim_lod, municipal_budget, scenario_to_lod, HighDimLodConfig,
};
use openbi::experiment::{evaluate_variant, Criterion, ExperimentConfig, ExperimentDataset};
use openbi::kb::{leave_one_dataset_out, Advisor, SharedKnowledgeBase};
use openbi::mining::eval::crossval::cross_validate;
use openbi::mining::preprocess::{discretize_all, impute_knn, impute_mean_mode, BinStrategy};
use openbi::mining::{AlgorithmSpec, Apriori, Instances, Pca};
use openbi::pipeline::{run_pipeline, DataSource, PipelineConfig};
use openbi::quality::{Degradation, Injector, MissingInjector};
use openbi::Result;
use openbi_lod::{tabularize, Iri, TabularizeOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

const FOLDS: usize = 5;
const SEED: u64 = 42;

/// E1 — completeness: accuracy vs MCAR/MAR missing-value ratio.
pub fn e1_completeness() -> Result<Vec<ResultTable>> {
    let datasets = default_datasets(SEED);
    let kb = SharedKnowledgeBase::default();
    let mcar = severity_sweep(
        "E1a",
        "accuracy vs MCAR missingness (ratio = 0.4×severity)",
        &datasets,
        Criterion::Completeness,
        &SEVERITIES,
        &fast_suite(),
        FOLDS,
        SEED,
        &kb,
    )?;
    let mar = severity_sweep(
        "E1b",
        "accuracy vs MAR missingness (driver-skewed)",
        &datasets,
        Criterion::CompletenessMar,
        &SEVERITIES,
        &fast_suite(),
        FOLDS,
        SEED + 1,
        &kb,
    )?;
    Ok(vec![
        crate::harness::summarize_series(&mcar),
        mcar,
        crate::harness::summarize_series(&mar),
        mar,
    ])
}

/// E2 — label noise: accuracy vs class-flip ratio.
pub fn e2_label_noise() -> Result<Vec<ResultTable>> {
    let datasets = default_datasets(SEED);
    let kb = SharedKnowledgeBase::default();
    let sweep = severity_sweep(
        "E2",
        "accuracy vs label noise (flip ratio = 0.35×severity)",
        &datasets,
        Criterion::LabelNoise,
        &SEVERITIES,
        &fast_suite(),
        FOLDS,
        SEED,
        &kb,
    )?;
    Ok(vec![crate::harness::summarize_series(&sweep), sweep])
}

/// E3 — attribute noise: accuracy vs Gaussian perturbation.
pub fn e3_attribute_noise() -> Result<Vec<ResultTable>> {
    let datasets = default_datasets(SEED);
    let kb = SharedKnowledgeBase::default();
    let sweep = severity_sweep(
        "E3",
        "accuracy vs attribute noise (N(0,(2·std)²) on severity of cells)",
        &datasets,
        Criterion::AttributeNoise,
        &SEVERITIES,
        &fast_suite(),
        FOLDS,
        SEED,
        &kb,
    )?;
    Ok(vec![crate::harness::summarize_series(&sweep), sweep])
}

/// E4 — imbalance: accuracy AND minority-F1 vs majority fraction.
pub fn e4_imbalance() -> Result<Vec<ResultTable>> {
    // Overlapping classes so the prior can dominate (see DESIGN.md).
    let table = openbi::datagen::make_blobs(&openbi::datagen::BlobsConfig {
        n_rows: 600,
        n_features: 4,
        n_classes: 2,
        class_separation: 1.2,
        seed: SEED,
    });
    let datasets = vec![ExperimentDataset::new("blobs-overlap", table, "class")];
    let kb = SharedKnowledgeBase::default();
    let sweep = severity_sweep(
        "E4",
        "accuracy & minority-F1 vs imbalance (majority = 50%+45%×severity)",
        &datasets,
        Criterion::Imbalance,
        &SEVERITIES,
        &fast_suite(),
        FOLDS,
        SEED,
        &kb,
    )?;
    Ok(vec![sweep])
}

/// E5 — redundancy: accuracy & model size vs correlated copies (the
/// paper's own "correct but not useful" example).
pub fn e5_redundancy() -> Result<Vec<ResultTable>> {
    let datasets = default_datasets(SEED);
    let kb = SharedKnowledgeBase::default();
    let sweep = severity_sweep(
        "E5",
        "accuracy & model size vs correlated attribute copies (1–4)",
        &datasets,
        Criterion::Redundancy,
        &SEVERITIES,
        &fast_suite(),
        FOLDS,
        SEED,
        &kb,
    )?;
    Ok(vec![sweep])
}

/// E6 — dimensionality: accuracy and train time vs irrelevant
/// attributes, including the LOD high-dimensionality case.
pub fn e6_dimensionality() -> Result<Vec<ResultTable>> {
    let mut out = ResultTable::new(
        "E6",
        "accuracy & train time vs irrelevant attributes",
        &[
            "dataset",
            "extra_attrs",
            "algorithm",
            "accuracy",
            "train_ms",
        ],
    );
    let datasets = default_datasets(SEED);
    let counts = [0usize, 8, 16, 32, 64, 128];
    let config = ExperimentConfig {
        algorithms: fast_suite(),
        severities: vec![],
        folds: FOLDS,
        seed: SEED,
        parallel: false,
        workers: 0,
        ..ExperimentConfig::default()
    };
    let kb = SharedKnowledgeBase::default();
    for dataset in &datasets {
        for &count in &counts {
            let degradation = if count == 0 {
                Degradation::new()
            } else {
                Degradation::new().then(openbi::quality::IrrelevantInjector::gaussian(count))
            };
            for (spec, eval) in evaluate_variant(dataset, &degradation, &config, SEED, &kb)? {
                out.push(vec![
                    Cell::Str(dataset.name.clone()),
                    count.into(),
                    Cell::Str(spec.to_string()),
                    eval.accuracy().into(),
                    eval.train_ms.into(),
                ]);
            }
        }
    }
    // The same defect arising naturally from sparse LOD.
    let mut lod_table = ResultTable::new(
        "E6b",
        "accuracy vs sparse extra LOD properties (tabularized graph)",
        &["extra_properties", "algorithm", "accuracy"],
    );
    for extra in [0usize, 16, 48] {
        let graph = high_dim_lod(&HighDimLodConfig {
            n_entities: 300,
            n_informative: 4,
            n_extra: extra,
            extra_density: 0.5,
            n_classes: 2,
            seed: SEED,
        });
        let table = tabularize(&graph, &high_dim_class(), &TabularizeOptions::default())
            .map_err(openbi::OpenBiError::Lod)?;
        let instances = Instances::from_table(&table, Some("category"), &["iri"])?;
        for spec in [AlgorithmSpec::Knn { k: 5 }, AlgorithmSpec::NaiveBayes] {
            let eval = cross_validate(&instances, &spec, FOLDS, SEED)?;
            lod_table.push(vec![
                extra.into(),
                Cell::Str(spec.to_string()),
                eval.accuracy().into(),
            ]);
        }
    }
    Ok(vec![out, lod_table])
}

/// E7 — duplicates: accuracy vs duplicate ratio.
pub fn e7_duplicates() -> Result<Vec<ResultTable>> {
    let datasets = default_datasets(SEED);
    let kb = SharedKnowledgeBase::default();
    let sweep = severity_sweep(
        "E7",
        "accuracy vs near-duplicate ratio (0.45×severity of rows)",
        &datasets,
        Criterion::Duplicates,
        &SEVERITIES,
        &fast_suite(),
        FOLDS,
        SEED,
        &kb,
    )?;
    Ok(vec![crate::harness::summarize_series(&sweep), sweep])
}

/// E8 — phase-2 mixed criteria: missingness × label-noise interaction
/// grid.
pub fn e8_mixed() -> Result<Vec<ResultTable>> {
    let mut out = ResultTable::new(
        "E8",
        "mixed criteria grid: accuracy at missingness × label noise",
        &[
            "dataset",
            "missing_sev",
            "noise_sev",
            "algorithm",
            "accuracy",
            "kappa",
        ],
    );
    let datasets = default_datasets(SEED);
    let grid = [0.0, 0.5, 1.0];
    let config = ExperimentConfig {
        algorithms: vec![
            AlgorithmSpec::NaiveBayes,
            AlgorithmSpec::DecisionTree {
                max_depth: 12,
                min_leaf: 2,
            },
        ],
        severities: vec![],
        folds: FOLDS,
        seed: SEED,
        parallel: false,
        workers: 0,
        ..ExperimentConfig::default()
    };
    let kb = SharedKnowledgeBase::default();
    for dataset in &datasets {
        for &ms in &grid {
            for &ns in &grid {
                let mut degradation = Criterion::Completeness.degradation(ms, dataset)?;
                degradation.extend(Criterion::LabelNoise.degradation(ns, dataset)?);
                for (spec, eval) in evaluate_variant(dataset, &degradation, &config, SEED, &kb)? {
                    out.push(vec![
                        Cell::Str(dataset.name.clone()),
                        ms.into(),
                        ns.into(),
                        Cell::Str(spec.to_string()),
                        eval.accuracy().into(),
                        eval.kappa().into(),
                    ]);
                }
            }
        }
    }
    Ok(vec![out])
}

/// E9 — PCA trade-off: accuracy vs retained components, with explained
/// variance (the "information lost" of §1).
pub fn e9_pca() -> Result<Vec<ResultTable>> {
    let mut out = ResultTable::new(
        "E9",
        "PCA trade-off: accuracy & explained variance vs components",
        &[
            "dataset",
            "representation",
            "components",
            "explained_var",
            "algorithm",
            "accuracy",
        ],
    );
    for (name, table, target) in openbi::datagen::reference_datasets(SEED) {
        let instances = Instances::from_table(&table, Some(&target), &[])?;
        let d = instances
            .attributes
            .iter()
            .filter(|a| a.kind == openbi::mining::AttrKind::Numeric)
            .count();
        let algorithms = [AlgorithmSpec::Knn { k: 5 }, AlgorithmSpec::NaiveBayes];
        for spec in &algorithms {
            let eval = cross_validate(&instances, spec, FOLDS, SEED)?;
            out.push(vec![
                Cell::Str(name.clone()),
                "raw".into(),
                d.into(),
                1.0f64.into(),
                Cell::Str(spec.to_string()),
                eval.accuracy().into(),
            ]);
        }
        for k in [1usize, 2, d.saturating_sub(1).max(1)] {
            if k >= d {
                continue;
            }
            let pca = Pca::fit(&instances, k)?;
            let reduced = pca.transform(&instances)?;
            for spec in &algorithms {
                let eval = cross_validate(&reduced, spec, FOLDS, SEED)?;
                out.push(vec![
                    Cell::Str(name.clone()),
                    "pca".into(),
                    k.into(),
                    pca.explained_variance_ratio().into(),
                    Cell::Str(spec.to_string()),
                    eval.accuracy().into(),
                ]);
            }
        }
    }
    Ok(vec![out])
}

/// E10 — association-rule quality under degradation.
pub fn e10_rules() -> Result<Vec<ResultTable>> {
    let mut out = ResultTable::new(
        "E10",
        "association rules vs data quality (municipal budget)",
        &[
            "missing_ratio",
            "rules_mined",
            "mean_confidence",
            "mean_lift",
            "mean_quality_score",
        ],
    );
    let scenario = municipal_budget(600, SEED);
    let base = scenario
        .table
        .select(&["district", "category", "headcount", "overspend"])?;
    let apriori = Apriori {
        min_support: 0.05,
        min_confidence: 0.6,
        max_len: 3,
    };
    for ratio in [0.0, 0.1, 0.2, 0.3, 0.4] {
        let degraded = if ratio == 0.0 {
            base.clone()
        } else {
            let mut rng = StdRng::seed_from_u64(SEED);
            MissingInjector::mcar(ratio)
                .exclude(["overspend"])
                .apply(&base, &mut rng)?
        };
        let discretized = discretize_all(&degraded, 3, BinStrategy::EqualFrequency, &[])?;
        let rules = apriori.mine_rules(&discretized)?;
        let n = rules.len();
        let mean = |f: &dyn Fn(&openbi::mining::Rule) -> f64| {
            if n == 0 {
                0.0
            } else {
                rules.iter().map(f).sum::<f64>() / n as f64
            }
        };
        out.push(vec![
            ratio.into(),
            n.into(),
            mean(&|r| r.confidence).into(),
            mean(&|r| r.lift).into(),
            mean(&|r| r.quality_score()).into(),
        ]);
    }
    Ok(vec![out])
}

/// E11 — imputation baselines: how much accuracy each strategy recovers
/// at 30% MCAR missingness.
pub fn e11_imputation() -> Result<Vec<ResultTable>> {
    let mut out = ResultTable::new(
        "E11",
        "imputation recovery at 30% MCAR missingness",
        &["dataset", "strategy", "algorithm", "accuracy"],
    );
    for (name, table, target) in openbi::datagen::reference_datasets(SEED) {
        let mut rng = StdRng::seed_from_u64(SEED);
        let missing = MissingInjector::mcar(0.3)
            .exclude([target.clone()])
            .apply(&table, &mut rng)?;
        let variants: Vec<(&str, openbi::table::Table)> = vec![
            ("clean", table.clone()),
            ("missing-raw", missing.clone()),
            ("mean-mode", impute_mean_mode(&missing, &[target.as_str()])?),
            ("knn-impute", impute_knn(&missing, 5, &[target.as_str()])?),
        ];
        for (strategy, variant) in variants {
            let instances = Instances::from_table(&variant, Some(&target), &[])?;
            for spec in [
                AlgorithmSpec::Knn { k: 5 },
                AlgorithmSpec::Logistic {
                    epochs: 200,
                    learning_rate: 0.1,
                },
            ] {
                let eval = cross_validate(&instances, &spec, FOLDS, SEED)?;
                out.push(vec![
                    Cell::Str(name.clone()),
                    strategy.into(),
                    Cell::Str(spec.to_string()),
                    eval.accuracy().into(),
                ]);
            }
        }
    }
    Ok(vec![out])
}

/// E12 — advisor evaluation: leave-one-dataset-out hit rate and regret
/// vs the static always-best baseline, at growing KB sizes.
pub fn e12_advisor() -> Result<Vec<ResultTable>> {
    let mut out = ResultTable::new(
        "E12",
        "advisor leave-one-dataset-out: regret vs static baseline",
        &[
            "kb_records",
            "decisions",
            "top1_hit_rate",
            "advisor_regret",
            "baseline_regret",
            "baseline_algorithm",
        ],
    );
    let datasets = default_datasets(SEED);
    let kb = SharedKnowledgeBase::default();
    let criteria_stages: [&[Criterion]; 3] = [
        &[Criterion::Completeness],
        &[Criterion::LabelNoise, Criterion::Imbalance],
        &[Criterion::Dimensionality, Criterion::Redundancy],
    ];
    let config = ExperimentConfig {
        algorithms: fast_suite(),
        severities: vec![0.0, 0.5, 1.0],
        folds: 3,
        seed: SEED,
        parallel: true,
        workers: 0,
        ..ExperimentConfig::default()
    };
    for stage in criteria_stages {
        openbi::experiment::run_phase1(&datasets, stage, &config, &kb)?;
        let snapshot = kb.snapshot();
        let eval = leave_one_dataset_out(&snapshot, &Advisor::default())?;
        out.push(vec![
            snapshot.len().into(),
            eval.decisions.into(),
            eval.top1_hit_rate.into(),
            eval.mean_regret.into(),
            eval.baseline_regret.into(),
            Cell::Str(eval.baseline_algorithm),
        ]);
    }
    Ok(vec![out])
}

/// F1 — KDD phase timing shares (Figure 1: preprocessing dominates).
pub fn f1_kdd_phases() -> Result<Vec<ResultTable>> {
    let mut out = ResultTable::new(
        "F1",
        "KDD pipeline phase shares (messy scenario data)",
        &["dataset", "phase", "ms", "share_pct"],
    );
    for scenario in openbi::datagen::all_scenarios(400, SEED) {
        // Dirty the scenario so preprocessing has real work to do.
        let dirty = Degradation::new()
            .then(MissingInjector::mcar(0.15).exclude([scenario.target.clone()]))
            .then(openbi::quality::DuplicateInjector::exact(0.1))
            .apply(&scenario.table, SEED)?;
        let outcome = run_pipeline(
            DataSource::Table {
                name: scenario.name.clone(),
                table: dirty,
            },
            &PipelineConfig {
                target: Some(scenario.target.clone()),
                exclude: scenario.id_columns.clone(),
                folds: 3,
                ..Default::default()
            },
            None,
        )?;
        let total: f64 = outcome.phase_timings.iter().map(|(_, ms)| ms).sum();
        for (phase, ms) in &outcome.phase_timings {
            out.push(vec![
                Cell::Str(scenario.name.clone()),
                Cell::Str(phase.clone()),
                (*ms).into(),
                (ms / total * 100.0).into(),
            ]);
        }
    }
    Ok(vec![out])
}

/// F2 — the full OpenBI flow of Figure 2 on a generated LOD portal.
pub fn f2_openbi_flow() -> Result<Vec<ResultTable>> {
    let mut out = ResultTable::new(
        "F2",
        "OpenBI end-to-end flow on a LOD portal (Figure 2)",
        &["step", "measure", "value"],
    );
    // Build a knowledge base first (abbreviated phase 1).
    let datasets = default_datasets(SEED);
    let kb = SharedKnowledgeBase::default();
    let config = ExperimentConfig {
        algorithms: fast_suite(),
        severities: vec![0.0, 0.5, 1.0],
        folds: 3,
        seed: SEED,
        parallel: true,
        workers: 0,
        ..ExperimentConfig::default()
    };
    let records = openbi::experiment::run_phase1(
        &datasets,
        &[Criterion::Completeness, Criterion::LabelNoise],
        &config,
        &kb,
    )?;
    out.push(vec![
        "experiments".into(),
        "kb_records".into(),
        records.into(),
    ]);
    // The citizen's portal.
    let scenario = municipal_budget(400, SEED + 5);
    let graph = scenario_to_lod(&scenario, "http://openbi.org", 0.2, SEED)
        .map_err(openbi::OpenBiError::Lod)?;
    out.push(vec!["portal".into(), "triples".into(), graph.len().into()]);
    let snapshot = kb.snapshot();
    let outcome = run_pipeline(
        DataSource::Lod {
            name: "municipal-budget".into(),
            graph,
            class: Iri::new("http://openbi.org/dataset/municipal-budget/Row")
                .map_err(openbi::OpenBiError::Lod)?,
        },
        &PipelineConfig {
            target: Some("overspend".into()),
            exclude: vec!["id".into()],
            folds: 3,
            ..Default::default()
        },
        Some(&snapshot),
    )?;
    let advice = outcome.advice.as_ref().expect("kb supplied");
    out.push(vec![
        "advice".into(),
        "best_algorithm".into(),
        Cell::Str(advice.best().to_string()),
    ]);
    out.push(vec![
        "advice".into(),
        "expected_score".into(),
        advice.ranking[0].expected_score.into(),
    ]);
    let eval = outcome.evaluation.as_ref().expect("target configured");
    out.push(vec![
        "mining".into(),
        "accuracy".into(),
        eval.accuracy().into(),
    ]);
    out.push(vec!["mining".into(), "kappa".into(), eval.kappa().into()]);
    out.push(vec![
        "publish".into(),
        "triples_out".into(),
        outcome.published.len().into(),
    ]);
    out.push(vec![
        "preprocessing".into(),
        "steps".into(),
        outcome.plan.steps.len().into(),
    ]);
    Ok(vec![out])
}

/// Every experiment, in index order: `(id, runner)`.
#[allow(clippy::type_complexity)]
pub fn all_experiments() -> Vec<(&'static str, fn() -> Result<Vec<ResultTable>>)> {
    vec![
        ("E1", e1_completeness),
        ("E2", e2_label_noise),
        ("E3", e3_attribute_noise),
        ("E4", e4_imbalance),
        ("E5", e5_redundancy),
        ("E6", e6_dimensionality),
        ("E7", e7_duplicates),
        ("E8", e8_mixed),
        ("E9", e9_pca),
        ("E10", e10_rules),
        ("E11", e11_imputation),
        ("E12", e12_advisor),
        ("F1", f1_kdd_phases),
        ("F2", f2_openbi_flow),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    // Full experiments are exercised by the binaries; here we only smoke
    // the cheapest ones to keep `cargo test` fast.

    #[test]
    fn e10_rules_runs_and_degrades() {
        let tables = e10_rules().unwrap();
        let t = &tables[0];
        assert_eq!(t.rows.len(), 5);
        let rules_at = |i: usize| match t.rows[i][1] {
            Cell::Int(n) => n,
            _ => unreachable!(),
        };
        assert!(rules_at(0) > 0, "clean data must yield rules");
        assert!(
            rules_at(4) <= rules_at(0),
            "40% missingness must not increase mined rules"
        );
    }

    #[test]
    fn f2_flow_produces_all_steps() {
        let tables = f2_openbi_flow().unwrap();
        let steps: Vec<String> = tables[0]
            .rows
            .iter()
            .map(|r| r[0].clone())
            .map(|c| match c {
                Cell::Str(s) => s,
                _ => unreachable!(),
            })
            .collect();
        for expected in ["experiments", "portal", "advice", "mining", "publish"] {
            assert!(steps.iter().any(|s| s == expected), "missing {expected}");
        }
    }

    #[test]
    fn experiment_index_is_complete() {
        let ids: Vec<&str> = all_experiments().iter().map(|(id, _)| *id).collect();
        assert_eq!(ids.len(), 14);
        assert_eq!(ids[0], "E1");
        assert_eq!(ids[13], "F2");
    }
}
