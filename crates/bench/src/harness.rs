//! Shared experiment harness: severity sweeps of one quality criterion
//! across datasets and algorithms — the engine under experiments E1–E8.

use crate::result_table::{Cell, ResultTable};
use openbi::experiment::{evaluate_variant, Criterion, ExperimentConfig, ExperimentDataset};
use openbi::kb::SharedKnowledgeBase;
use openbi::mining::AlgorithmSpec;
use openbi::Result;

/// Default experiment datasets: the three clean reference generators.
pub fn default_datasets(seed: u64) -> Vec<ExperimentDataset> {
    openbi::datagen::reference_datasets(seed)
        .into_iter()
        .map(|(name, table, target)| ExperimentDataset::new(name, table, target))
        .collect()
}

/// Default severity grid for the sweeps.
pub const SEVERITIES: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// Run a one-criterion severity sweep and tabulate
/// `(dataset, severity, algorithm, accuracy, macro_f1, minority_f1,
/// kappa, model_size)` rows. Also fills `kb` if the caller wants the
/// records.
#[allow(clippy::too_many_arguments)] // experiment harness: each knob is load-bearing
pub fn severity_sweep(
    id: &str,
    title: &str,
    datasets: &[ExperimentDataset],
    criterion: Criterion,
    severities: &[f64],
    algorithms: &[AlgorithmSpec],
    folds: usize,
    seed: u64,
    kb: &SharedKnowledgeBase,
) -> Result<ResultTable> {
    let mut table = ResultTable::new(
        id,
        title,
        &[
            "dataset",
            "severity",
            "algorithm",
            "accuracy",
            "macro_f1",
            "minority_f1",
            "kappa",
            "model_size",
        ],
    );
    let config = ExperimentConfig {
        algorithms: algorithms.to_vec(),
        severities: severities.to_vec(),
        folds,
        seed,
        parallel: false,
        workers: 0,
        ..ExperimentConfig::default()
    };
    for dataset in datasets {
        for (si, &severity) in severities.iter().enumerate() {
            let degradation = criterion.degradation(severity, dataset)?;
            let results = evaluate_variant(
                dataset,
                &degradation,
                &config,
                seed.wrapping_add(si as u64),
                kb,
            )?;
            for (spec, eval) in results {
                table.push(vec![
                    Cell::Str(dataset.name.clone()),
                    severity.into(),
                    Cell::Str(spec.to_string()),
                    eval.accuracy().into(),
                    eval.macro_f1().into(),
                    eval.minority_f1().into(),
                    eval.kappa().into(),
                    eval.model_size.into(),
                ]);
            }
        }
    }
    Ok(table)
}

/// Compact algorithm suite used where the full 7-way suite is too slow.
pub fn fast_suite() -> Vec<AlgorithmSpec> {
    vec![
        AlgorithmSpec::ZeroR,
        AlgorithmSpec::NaiveBayes,
        AlgorithmSpec::DecisionTree {
            max_depth: 12,
            min_leaf: 2,
        },
        AlgorithmSpec::Knn { k: 5 },
    ]
}

/// Summarize a sweep: mean accuracy per (severity, algorithm), averaged
/// over datasets — the "series" view of each figure.
pub fn summarize_series(sweep: &ResultTable) -> ResultTable {
    let mut out = ResultTable::new(
        &format!("{}-series", sweep.id),
        &format!("{} (mean accuracy over datasets)", sweep.title),
        &["severity", "algorithm", "mean_accuracy"],
    );
    let mut groups: Vec<(String, String, Vec<f64>)> = Vec::new();
    for row in &sweep.rows {
        let severity = row[1].clone();
        let algo = row[2].clone();
        let acc = match row[3] {
            Cell::Float(f) => f,
            _ => continue,
        };
        let key_sev = match &severity {
            Cell::Float(f) => format!("{f:.3}"),
            other => format!("{other:?}"),
        };
        let key_alg = match &algo {
            Cell::Str(s) => s.clone(),
            other => format!("{other:?}"),
        };
        if let Some(entry) = groups
            .iter_mut()
            .find(|(s, a, _)| *s == key_sev && *a == key_alg)
        {
            entry.2.push(acc);
        } else {
            groups.push((key_sev, key_alg, vec![acc]));
        }
    }
    for (severity, algorithm, accs) in groups {
        let mean = accs.iter().sum::<f64>() / accs.len() as f64;
        out.push(vec![Cell::Str(severity), Cell::Str(algorithm), mean.into()]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use openbi::datagen::{make_blobs, BlobsConfig};

    #[test]
    fn sweep_produces_expected_rows_and_monotone_degradation() {
        let dataset = ExperimentDataset::new(
            "t",
            make_blobs(&BlobsConfig {
                n_rows: 120,
                n_features: 3,
                n_classes: 2,
                class_separation: 3.0,
                seed: 4,
            }),
            "class",
        );
        let kb = SharedKnowledgeBase::default();
        let sweep = severity_sweep(
            "T1",
            "test sweep",
            &[dataset],
            Criterion::LabelNoise,
            &[0.0, 1.0],
            &[AlgorithmSpec::NaiveBayes],
            3,
            1,
            &kb,
        )
        .unwrap();
        assert_eq!(sweep.rows.len(), 2);
        let acc_at = |sev: f64| {
            sweep
                .rows
                .iter()
                .find(|r| matches!(r[1], Cell::Float(f) if f == sev))
                .map(|r| match r[3] {
                    Cell::Float(f) => f,
                    _ => unreachable!(),
                })
                .unwrap()
        };
        assert!(acc_at(0.0) > acc_at(1.0) + 0.1, "label noise must hurt");
        assert_eq!(kb.len(), 2);
        let series = summarize_series(&sweep);
        assert_eq!(series.rows.len(), 2);
    }
}
