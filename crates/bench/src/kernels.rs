//! Shared workload for the mining-kernel benchmarks: one deterministic
//! dataset and one kernel roster, used by both the `mining_kernels`
//! criterion bench and the `kernel_bench` binary so their numbers are
//! directly comparable.
//!
//! The dataset is the **discretized-sensor regime** the paper's BI
//! scenarios live in: numeric attributes quantized to 24 levels (think
//! binned pollutant readings or pre-aggregated measures), ~5% missing
//! cells, three classes, a deterministic LCG so every run sees the same
//! bytes. Low-cardinality columns are where the columnar layout earns
//! its keep — candidate thresholds collapse and the kernels spend their
//! time in sort/gather/scan, exactly the paths the struct-of-arrays
//! rewrite targets.
//!
//! Each kernel is timed end to end — `fit` on the training view plus
//! `predict` over the holdout — against the frozen row-major
//! [`reference`] implementation running the identical workload on the
//! identical rows.

use openbi::mining::instances::{AttrKind, Attribute, Instances, InstancesView};
use openbi::mining::{reference, AlgorithmSpec};

/// Attributes in the kernel dataset.
pub const KERNEL_ATTRS: usize = 8;

/// One benchmarked kernel: a display name and its algorithm spec.
pub struct Kernel {
    /// Stable snake_case identifier used in JSON and criterion IDs.
    pub name: &'static str,
    /// The algorithm under test.
    pub spec: AlgorithmSpec,
}

/// The kernel roster: the classifiers whose inner loops the columnar
/// rewrite touched most.
pub fn kernel_suite() -> Vec<Kernel> {
    vec![
        Kernel {
            name: "knn",
            spec: AlgorithmSpec::Knn { k: 5 },
        },
        Kernel {
            name: "decision_tree",
            spec: AlgorithmSpec::DecisionTree {
                max_depth: 10,
                min_leaf: 2,
            },
        },
        Kernel {
            name: "naive_bayes",
            spec: AlgorithmSpec::NaiveBayes,
        },
        Kernel {
            name: "random_forest",
            spec: AlgorithmSpec::RandomForest {
                trees: 10,
                max_depth: 8,
                seed: 42,
            },
        },
    ]
}

/// Build the shared workload in both layouts from the same rows:
/// `n` rows × [`KERNEL_ATTRS`] quantized numeric attributes, 3 classes,
/// ~5% missing cells.
pub fn kernel_dataset(n: usize, seed: u64) -> (Instances, reference::Instances) {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / ((1u64 << 31) as f64)
    };
    let attrs: Vec<Attribute> = (0..KERNEL_ATTRS)
        .map(|i| Attribute {
            name: format!("f{i}"),
            kind: AttrKind::Numeric,
        })
        .collect();
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let cls = (next() * 3.0) as usize % 3;
        let row: Vec<Option<f64>> = (0..KERNEL_ATTRS)
            .map(|a| {
                if next() < 0.05 {
                    None
                } else {
                    // 24 discrete levels, shifted per class so the
                    // problem is learnable but not separable.
                    Some((next() * 24.0).floor() / 6.0 + (cls as f64) * (a as f64 % 3.0))
                }
            })
            .collect();
        rows.push(row);
        labels.push(Some(cls));
    }
    let class_names = vec!["low".into(), "mid".into(), "high".into()];
    let columnar = Instances::from_rows(
        attrs.clone(),
        rows.clone(),
        labels.clone(),
        class_names.clone(),
    );
    let row_major = reference::Instances {
        attributes: attrs,
        rows,
        labels,
        class_names,
    };
    (columnar, row_major)
}

/// Deterministic 75/25 train/holdout row split.
pub fn holdout_indices(n: usize) -> (Vec<usize>, Vec<usize>) {
    (
        (0..n).filter(|i| i % 4 != 0).collect(),
        (0..n).filter(|i| i % 4 == 0).collect(),
    )
}

/// One columnar kernel run: fit on the training view, predict the
/// holdout view. Returns a sink value so the optimizer can't discard
/// the work.
pub fn run_columnar(
    spec: &AlgorithmSpec,
    train: &InstancesView<'_>,
    test: &InstancesView<'_>,
) -> usize {
    let mut model = spec.build();
    model.fit_view(train).expect("kernel fit");
    model.predict_view(test).expect("kernel predict").len() + model.model_size()
}

/// The same kernel run through the frozen row-major reference.
pub fn run_reference(
    spec: &AlgorithmSpec,
    train: &reference::Instances,
    test: &reference::Instances,
) -> usize {
    let mut model = reference::build(spec);
    model.fit(train).expect("reference fit");
    model.predict(test).expect("reference predict").len() + model.model_size()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_layouts_hold_identical_rows() {
        let (cols, rows) = kernel_dataset(300, 7);
        assert_eq!(cols.len(), rows.len());
        let view = cols.view();
        for i in 0..rows.len() {
            assert_eq!(
                cols.row_vec(i),
                rows.rows[i],
                "row {i} differs between layouts"
            );
            assert_eq!(view.label(i), rows.labels[i]);
        }
    }

    #[test]
    fn kernels_agree_across_layouts() {
        let (cols, rows) = kernel_dataset(240, 21);
        let (train_idx, test_idx) = holdout_indices(cols.len());
        let train = cols.view().select_rows_owned(train_idx.clone());
        let test = cols.view().select_rows_owned(test_idx.clone());
        let ref_train = rows.subset(&train_idx);
        let ref_test = rows.subset(&test_idx);
        for kernel in kernel_suite() {
            let mut new_model = kernel.spec.build();
            new_model.fit_view(&train).unwrap();
            let new_preds = new_model.predict_view(&test).unwrap();
            let mut old_model = reference::build(&kernel.spec);
            old_model.fit(&ref_train).unwrap();
            let old_preds = old_model.predict(&ref_test).unwrap();
            assert_eq!(new_preds, old_preds, "kernel {} diverged", kernel.name);
        }
    }
}
