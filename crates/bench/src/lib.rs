//! # openbi-bench
//!
//! Experiment and benchmark harness: regenerates every experiment of the
//! DESIGN.md index (E1–E12, F1, F2) as printable/exportable result
//! tables, plus Criterion micro-benchmarks of the substrates.
//!
//! Run everything: `cargo run -p openbi-bench --release --bin run_experiments`
//! Run one:        `cargo run -p openbi-bench --release --bin run_experiments -- E4 E12`
//! Micro benches:  `cargo bench -p openbi-bench`

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod experiments;
pub mod harness;
pub mod kernels;
pub mod olap;
pub mod quality;
pub mod report;
pub mod result_table;
pub mod serving;

pub use harness::{default_datasets, fast_suite, severity_sweep, summarize_series, SEVERITIES};
pub use report::{bench_doc, best_of_seconds, queries_per_second, write_bench_json};
pub use result_table::{Cell, ResultTable};
pub use serving::{latency_summary, percentile, random_profile, synthetic_records, LatencySummary};
