//! Shared workload for the OLAP cube benchmark: one deterministic
//! municipal-budget fact table and one measure roster, used by the
//! `cube_bench` binary so sharded-vs-reference numbers are directly
//! comparable.
//!
//! The workload is the paper's §1 BI regime: a city-budget fact table
//! (`openbi::datagen::municipal_budget` — nulls, skewed spend, a few
//! hundred distinct dimension values) rolled up by
//! `district × category × year` under a wide measure roster (sum, mean,
//! min, max, count over every numeric column). Wide rosters are where
//! the sharded engine earns its keep: each extra measure deepens the
//! single pass instead of adding another full `group_by` scan.

use openbi::olap::{build_cube, reference, CubeOptions, CubeResult, Measure};
use openbi::table::Table;

/// The rollup dimensions of the cube workload.
pub const CUBE_DIMS: [&str; 3] = ["district", "category", "year"];

/// Numeric fact columns the measure roster aggregates.
pub const CUBE_FACTS: [&str; 3] = ["budgeted_eur", "headcount", "spent_eur"];

/// Build the deterministic fact table: `n` municipal-budget rows
/// (deterministic in `seed`), with the nulls and skew the generator
/// bakes in.
pub fn cube_dataset(n: usize, seed: u64) -> Table {
    openbi::datagen::municipal_budget(n, seed).table
}

/// The measure roster: all five aggregates over every numeric fact
/// column — 15 measures, one shared pass in the sharded engine,
/// 15 `group_by` value scans in the reference.
pub fn cube_measures() -> Vec<Measure> {
    CUBE_FACTS
        .iter()
        .flat_map(|c| {
            [
                Measure::Sum((*c).into()),
                Measure::Mean((*c).into()),
                Measure::Count((*c).into()),
                Measure::Min((*c).into()),
                Measure::Max((*c).into()),
            ]
        })
        .collect()
}

/// Run the frozen single-threaded reference cube over the workload and
/// return its rollup table.
pub fn reference_rollup(facts: &Table) -> Table {
    reference::Cube::new(facts.clone(), &CUBE_DIMS, cube_measures())
        .expect("workload dims exist")
        .rollup(&CUBE_DIMS)
        .expect("reference rollup")
}

/// Run the sharded engine over the workload at the given shard count
/// and return the full quality-annotated result.
pub fn sharded_rollup(facts: &Table, shards: usize) -> CubeResult {
    build_cube(
        facts,
        &CUBE_DIMS,
        &cube_measures(),
        &CubeOptions::with_shards(shards),
    )
    .expect("sharded rollup")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_and_equivalent() {
        let facts = cube_dataset(500, 0x01AB);
        assert_eq!(facts.fingerprint(), cube_dataset(500, 0x01AB).fingerprint());
        let reference = reference_rollup(&facts);
        for shards in [1, 3] {
            let live = sharded_rollup(&facts, shards);
            assert_eq!(
                live.table.fingerprint(),
                reference.fingerprint(),
                "sharded ({shards}) must match reference bitwise"
            );
            assert_eq!(live.quality.len(), live.table.n_rows());
        }
    }

    #[test]
    fn roster_covers_every_aggregate_of_every_fact() {
        let m = cube_measures();
        assert_eq!(m.len(), CUBE_FACTS.len() * 5);
    }
}
