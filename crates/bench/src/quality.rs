//! Shared workload for the quality-measurement benchmarks: one
//! deterministic dirty table and one criterion roster, used by the
//! `quality_bench` binary so live-vs-reference numbers are directly
//! comparable.
//!
//! The table is the **discretized-sensor regime** the paper's BI
//! scenarios live in (same LCG recipe as the mining-kernel workload):
//! numeric attributes quantized to 24 levels, ~5% missing cells, three
//! classes, plus the two columns every real open-data table drags along —
//! a monotone `id` the profiler must exclude and a string `station`
//! column with deliberately inconsistent casing. A slice of rows is
//! duplicated verbatim so the duplicate kernel has real work.

use openbi::quality::{measure, reference, MeasureOptions};
use openbi::table::{Column, Table};

/// Numeric attributes in the quality workload.
pub const QUALITY_ATTRS: usize = 8;

/// Build the deterministic dirty table: `n` rows × [`QUALITY_ATTRS`]
/// quantized numeric attributes, ~5% missing, 3 classes, a monotone
/// `id`, an inconsistently-cased `station` string column, and ~3% of
/// rows exact-duplicated.
pub fn quality_dataset(n: usize, seed: u64) -> Table {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / ((1u64 << 31) as f64)
    };
    let mut attrs: Vec<Vec<Option<f64>>> = vec![Vec::with_capacity(n); QUALITY_ATTRS];
    let mut labels: Vec<&'static str> = Vec::with_capacity(n);
    let mut stations: Vec<String> = Vec::with_capacity(n);
    const CLASSES: [&str; 3] = ["low", "mid", "high"];
    const STATIONS: [&str; 4] = ["Alicante", "ALICANTE", "alicante", "Elche"];
    for _ in 0..n {
        let cls = (next() * 3.0) as usize % 3;
        labels.push(CLASSES[cls]);
        stations.push(STATIONS[(next() * 4.0) as usize % 4].to_string());
        for (a, col) in attrs.iter_mut().enumerate() {
            col.push(if next() < 0.05 {
                None
            } else {
                // 24 discrete levels, shifted per class so the profile's
                // noise estimators see structure, not i.i.d. fuzz.
                Some((next() * 24.0).floor() / 6.0 + (cls as f64) * (a as f64 % 3.0))
            });
        }
    }
    // Duplicate ~3% of rows verbatim (copy row i over row i+1, `id`
    // included — otherwise the monotone id would make every row unique
    // and hide the duplicates from the exact-duplicate kernel).
    let mut ids: Vec<i64> = (0..n as i64).collect();
    let mut i = 0;
    while i + 1 < n {
        for col in attrs.iter_mut() {
            col[i + 1] = col[i];
        }
        ids[i + 1] = ids[i];
        labels[i + 1] = labels[i];
        stations[i + 1] = stations[i].clone();
        i += 33;
    }
    let mut columns = vec![Column::from_i64("id", ids)];
    for (a, col) in attrs.into_iter().enumerate() {
        columns.push(Column::from_opt_f64(format!("f{a}"), col));
    }
    columns.push(Column::from_str_values("station", stations));
    columns.push(Column::from_str_values("class", labels));
    Table::new(columns).expect("workload table")
}

/// The measurement options both implementations profile under.
pub fn quality_options() -> MeasureOptions {
    MeasureOptions {
        target: Some("class".into()),
        exclude: vec!["id".into()],
        ..Default::default()
    }
}

/// One benchmarked criterion: a stable name plus the live and reference
/// closures over the same table. Each closure returns an `f64` sink so
/// the optimizer cannot discard the measurement.
pub struct Criterion {
    /// Stable snake_case identifier used in JSON output.
    pub name: &'static str,
    /// The columnar single-pass kernel.
    pub live: fn(&Table, &MeasureOptions) -> f64,
    /// The frozen pre-rewrite implementation.
    pub reference: fn(&Table, &MeasureOptions) -> f64,
}

fn ex<'a>(o: &'a MeasureOptions) -> Vec<&'a str> {
    let mut v: Vec<&str> = o.exclude.iter().map(String::as_str).collect();
    if let Some(t) = &o.target {
        v.push(t.as_str());
    }
    v
}

fn target(o: &MeasureOptions) -> &str {
    o.target.as_deref().expect("workload has a target")
}

/// The criterion roster: every profile field whose kernel the columnar
/// rewrite touched, plus the full profile end to end.
pub fn criterion_suite() -> Vec<Criterion> {
    vec![
        Criterion {
            name: "correlation",
            live: |t, o| {
                measure::correlation::correlation_report(t, &ex(o), o.redundancy_threshold).max_abs
            },
            reference: |t, o| {
                reference::correlation::correlation_report(t, &ex(o), o.redundancy_threshold)
                    .max_abs
            },
        },
        Criterion {
            name: "outliers",
            live: |t, o| measure::outliers::outlier_ratio(t, &ex(o)),
            reference: |t, o| reference::outliers::outlier_ratio(t, &ex(o)),
        },
        Criterion {
            name: "duplicates",
            live: |t, _| measure::duplicates::exact_duplicate_ratio(t),
            reference: |t, _| reference::duplicates::exact_duplicate_ratio(t),
        },
        Criterion {
            name: "label_noise",
            live: |t, o| {
                measure::noise::label_noise_estimate(
                    t,
                    target(o),
                    &ex(o),
                    o.noise_k,
                    o.noise_max_rows,
                    o.noise_seed,
                )
            },
            reference: |t, o| {
                reference::noise::label_noise_estimate(t, target(o), o.noise_k, o.noise_max_rows)
            },
        },
        Criterion {
            name: "attr_noise",
            live: |t, o| {
                measure::noise::attribute_noise_estimate(
                    t,
                    &ex(o),
                    o.noise_k,
                    o.noise_max_rows,
                    o.noise_seed,
                )
            },
            reference: |t, o| {
                reference::noise::attribute_noise_estimate(t, &ex(o), o.noise_k, o.noise_max_rows)
            },
        },
        Criterion {
            name: "balance",
            live: |t, o| {
                measure::balance::balance_report(t, target(o))
                    .expect("target exists")
                    .normalized_entropy
            },
            reference: |t, o| {
                reference::balance::balance_report(t, target(o))
                    .expect("target exists")
                    .normalized_entropy
            },
        },
        Criterion {
            name: "consistency",
            live: |t, o| measure::consistency::table_consistency(t, &ex(o)),
            reference: |t, o| reference::consistency::table_consistency(t, &ex(o)),
        },
        Criterion {
            name: "full_profile",
            live: |t, o| openbi::quality::measure_profile(t, o).completeness,
            reference: |t, o| reference::measure_profile(t, o).completeness,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_has_the_advertised_shape() {
        let t = quality_dataset(400, 7);
        assert_eq!(t.n_rows(), 400);
        assert_eq!(t.n_cols(), QUALITY_ATTRS + 3); // id + attrs + station + class
        assert!(t.has_column("id") && t.has_column("class") && t.has_column("station"));
        // Deterministic: same seed, same bytes.
        assert_eq!(t.fingerprint(), quality_dataset(400, 7).fingerprint());
        assert_ne!(t.fingerprint(), quality_dataset(400, 8).fingerprint());
        // The duplicated slice is visible to the duplicate kernel.
        assert!(measure::duplicates::exact_duplicate_ratio(&t) > 0.01);
    }

    #[test]
    fn live_and_reference_agree_on_the_workload() {
        let t = quality_dataset(300, 42);
        let o = quality_options();
        for c in criterion_suite() {
            let live = (c.live)(&t, &o);
            let frozen = (c.reference)(&t, &o);
            // Within the row cap every criterion except label noise (tie
            // rule + exclusion fixes) must agree bitwise; label noise
            // must still be in the same neighborhood.
            if c.name == "label_noise" {
                assert!(
                    (live - frozen).abs() < 0.5,
                    "{}: live {live} vs reference {frozen}",
                    c.name
                );
            } else {
                assert_eq!(
                    live.to_bits(),
                    frozen.to_bits(),
                    "{}: live {live} vs reference {frozen}",
                    c.name
                );
            }
        }
    }
}
