//! The shared `BENCH_*.json` schema and its timing helpers.
//!
//! Every benchmark binary (`grid_bench`, `advisor_bench`) emits the
//! same top-level document shape, assembled by [`bench_doc`]:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "benchmark": "<name>",
//!   "config": { ... },
//!   "results": { ... },
//!   "metrics": { "counters": {...}, "gauges": {...}, "histograms": {...} }
//! }
//! ```
//!
//! `config` and `results` are benchmark-specific; `metrics` is an
//! embedded [`MetricsSnapshot`] captured from an instrumented run (see
//! EXPERIMENTS.md for how to read it). Keeping one schema means perf
//! tooling can diff any `BENCH_*.json` across PRs without per-benchmark
//! parsers.

use openbi_obs::MetricsSnapshot;
use std::time::Instant;

/// Version stamped into every benchmark document; bump when the
/// top-level shape changes.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Best-of-`reps` wall-clock seconds for `f` — one scheduling hiccup
/// must not skew a trend line, so benchmarks report the minimum.
pub fn best_of_seconds(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Throughput from a query count and elapsed seconds; `0.0` when the
/// elapsed time is too small to measure.
pub fn queries_per_second(queries: usize, seconds: f64) -> f64 {
    if seconds > 0.0 {
        queries as f64 / seconds
    } else {
        0.0
    }
}

/// Assemble the shared benchmark document. The snapshot's hand-written
/// JSON is re-parsed through `serde_json` so it embeds as a structured
/// object, not an escaped string.
pub fn bench_doc(
    benchmark: &str,
    config: serde_json::Value,
    results: serde_json::Value,
    metrics: &MetricsSnapshot,
) -> serde_json::Value {
    let metrics: serde_json::Value =
        serde_json::from_str(&metrics.to_json()).expect("MetricsSnapshot::to_json is valid JSON");
    serde_json::json!({
        "schema_version": BENCH_SCHEMA_VERSION,
        "benchmark": benchmark,
        "config": config,
        "results": results,
        "metrics": metrics,
    })
}

/// Pretty-print `doc` to `path`, panicking on I/O errors (benchmarks
/// have no caller to report to).
pub fn write_bench_json(path: &str, doc: &serde_json::Value) {
    std::fs::write(path, serde_json::to_string_pretty(doc).expect("serialize"))
        .expect("write benchmark json");
    println!("wrote {path}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use openbi_obs::MetricsRegistry;

    #[test]
    fn best_of_reports_the_minimum() {
        let mut calls = 0u32;
        let secs = best_of_seconds(3, || {
            calls += 1;
            if calls == 2 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        });
        assert_eq!(calls, 3);
        // The two no-op reps bound the minimum well below the sleep rep.
        assert!(secs < 0.005, "best-of must skip the slow rep, got {secs}");
    }

    #[test]
    fn qps_handles_zero_elapsed() {
        assert_eq!(queries_per_second(100, 0.0), 0.0);
        assert_eq!(queries_per_second(100, 2.0), 50.0);
    }

    #[test]
    fn bench_doc_embeds_structured_metrics() {
        let registry = MetricsRegistry::new();
        registry.counter("grid.cells_total").add(7);
        registry.histogram("grid.cell.seconds").record(0.003);
        let doc = bench_doc(
            "unit-test",
            serde_json::json!({"workers": 4}),
            serde_json::json!([{"seconds": 1.5}]),
            &registry.snapshot(),
        );
        assert_eq!(doc["schema_version"], BENCH_SCHEMA_VERSION);
        assert_eq!(doc["benchmark"], "unit-test");
        assert_eq!(doc["config"]["workers"], 4);
        assert_eq!(doc["metrics"]["counters"]["grid.cells_total"], 7);
        assert_eq!(
            doc["metrics"]["histograms"]["grid.cell.seconds"]["count"],
            1
        );
        // The overflow bucket's bound survives the round-trip as "+Inf".
        let buckets = doc["metrics"]["histograms"]["grid.cell.seconds"]["buckets"]
            .as_array()
            .unwrap();
        assert_eq!(buckets.last().unwrap()["le"], "+Inf");
    }
}
