//! Result collection for experiment harnesses: a typed row buffer that
//! prints aligned tables (the "same rows/series the paper reports") and
//! exports CSV for offline plotting.

use std::fmt::Write as _;
use std::path::Path;

/// A cell of a result row.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Text cell.
    Str(String),
    /// Integer cell.
    Int(i64),
    /// Float cell (printed with 3 decimals).
    Float(f64),
}

impl Cell {
    fn render(&self) -> String {
        match self {
            Cell::Str(s) => s.clone(),
            Cell::Int(i) => i.to_string(),
            Cell::Float(f) => format!("{f:.3}"),
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Cell {
        Cell::Str(s.to_string())
    }
}
impl From<String> for Cell {
    fn from(s: String) -> Cell {
        Cell::Str(s)
    }
}
impl From<i64> for Cell {
    fn from(i: i64) -> Cell {
        Cell::Int(i)
    }
}
impl From<usize> for Cell {
    fn from(i: usize) -> Cell {
        Cell::Int(i as i64)
    }
}
impl From<f64> for Cell {
    fn from(f: f64) -> Cell {
        Cell::Float(f)
    }
}

/// An experiment's result table.
#[derive(Debug, Clone)]
pub struct ResultTable {
    /// Experiment id, e.g. `"E1"`.
    pub id: String,
    /// Experiment title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<Cell>>,
}

impl ResultTable {
    /// Start a result table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        ResultTable {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: vec![],
        }
    }

    /// Append a row (must match the header count).
    pub fn push(&mut self, row: Vec<Cell>) {
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Cell::render).collect())
            .collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}", self.id, self.title);
        let header: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:<w$}"))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "{}", rule.join("  "));
        for row in &rendered {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// Serialize as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .map(|c| {
                    let s = c.render();
                    if s.contains(',') || s.contains('"') {
                        format!("\"{}\"", s.replace('"', "\"\""))
                    } else {
                        s
                    }
                })
                .collect();
            let _ = writeln!(out, "{}", cells.join(","));
        }
        out
    }

    /// Write the CSV under `dir/{id}.csv` (creating the directory).
    pub fn save_csv(&self, dir: impl AsRef<Path>) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(&dir)?;
        let path = dir.as_ref().join(format!("{}.csv", self.id.to_lowercase()));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ResultTable {
        let mut t = ResultTable::new("E0", "demo", &["algo", "ratio", "acc"]);
        t.push(vec!["NB".into(), 0.25f64.into(), 0.9f64.into()]);
        t.push(vec!["kNN".into(), 0.25f64.into(), 0.85f64.into()]);
        t
    }

    #[test]
    fn render_aligns_and_titles() {
        let r = sample().render();
        assert!(r.contains("### E0 — demo"));
        assert!(r.contains("algo"));
        assert!(r.contains("0.900"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = sample().to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("algo,ratio,acc"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = ResultTable::new("X", "x", &["a", "b"]);
        t.push(vec!["only".into()]);
    }

    #[test]
    fn save_csv_writes_file() {
        let dir = std::env::temp_dir().join("openbi-bench-test");
        let path = sample().save_csv(&dir).unwrap();
        assert!(path.exists());
        std::fs::remove_file(path).ok();
    }
}
