//! Shared workload helpers for the closed-loop serving benchmark
//! (`serving_bench`): deterministic synthetic knowledge-base records,
//! random query profiles, and exact percentile summaries over per-query
//! latency samples.
//!
//! The record/profile generators mirror `advisor_bench`'s xorshift
//! workload so serving numbers stay comparable with the single-threaded
//! advisor numbers across PRs.

use openbi::kb::{ExperimentRecord, PerfMetrics};
use openbi::quality::QualityProfile;

/// Distinct algorithm labels in the synthetic workload.
pub const ALGORITHMS: usize = 12;
/// Distinct dataset labels in the synthetic workload.
pub const DATASETS: usize = 40;

/// Advance the xorshift64 generator and return the next value.
pub fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Uniform sample in `[0, 1)` from the xorshift stream.
pub fn unit(state: &mut u64) -> f64 {
    (xorshift(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// A random-but-plausible quality profile for advisor queries.
pub fn random_profile(state: &mut u64) -> QualityProfile {
    QualityProfile {
        completeness: unit(state),
        duplicate_ratio: unit(state) * 0.3,
        class_balance: unit(state),
        outlier_ratio: unit(state) * 0.2,
        label_noise_estimate: unit(state) * 0.4,
        attr_noise_estimate: unit(state) * 0.4,
        ..Default::default()
    }
}

/// Deterministic synthetic experiment records spanning [`ALGORITHMS`]
/// algorithm labels and [`DATASETS`] dataset labels, for seeding a
/// serving store or feeding a publisher thread.
pub fn synthetic_records(records: usize, state: &mut u64) -> Vec<ExperimentRecord> {
    (0..records)
        .map(|i| {
            let acc = 0.4 + unit(state) * 0.6;
            ExperimentRecord {
                dataset: format!("dataset-{}", i % DATASETS),
                degradations: vec![],
                profile: random_profile(state),
                algorithm: format!("algorithm-{:02}", i % ALGORITHMS),
                metrics: PerfMetrics {
                    accuracy: acc,
                    macro_f1: acc - 0.05,
                    minority_f1: acc - 0.1,
                    kappa: 2.0 * acc - 1.0,
                    train_ms: 1.0,
                    model_size: 1.0,
                },
                seed: i as u64,
            }
        })
        .collect()
}

/// Exact percentile (nearest-rank) over an **ascending-sorted** slice.
/// `p` is in `[0, 100]`; an empty slice yields `0.0`.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// p50/p90/p99 summary of a latency sample, in the sample's unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Median latency.
    pub p50: f64,
    /// 90th-percentile latency.
    pub p90: f64,
    /// 99th-percentile latency.
    pub p99: f64,
}

/// Sort the samples in place and take their nearest-rank p50/p90/p99.
pub fn latency_summary(samples: &mut [f64]) -> LatencySummary {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    LatencySummary {
        p50: percentile(samples, 50.0),
        p90: percentile(samples, 90.0),
        p99: percentile(samples, 99.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_uses_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 50.0), 50.0);
        assert_eq!(percentile(&sorted, 90.0), 90.0);
        assert_eq!(percentile(&sorted, 99.0), 99.0);
        assert_eq!(percentile(&sorted, 100.0), 100.0);
        assert_eq!(percentile(&sorted, 0.0), 1.0, "floor clamps to the minimum");
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.5], 99.0), 7.5);
    }

    #[test]
    fn latency_summary_sorts_before_ranking() {
        let mut samples = vec![9.0, 1.0, 5.0, 3.0, 7.0];
        let summary = latency_summary(&mut samples);
        assert_eq!(summary.p50, 5.0);
        assert_eq!(summary.p99, 9.0);
        assert!(samples.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn synthetic_records_are_deterministic_and_diverse() {
        let mut a = 42u64;
        let mut b = 42u64;
        let first = synthetic_records(200, &mut a);
        let second = synthetic_records(200, &mut b);
        assert_eq!(first.len(), 200);
        assert_eq!(
            serde_json::to_string(&first).unwrap(),
            serde_json::to_string(&second).unwrap(),
            "same seed must reproduce the same workload"
        );
        let algorithms: std::collections::BTreeSet<_> =
            first.iter().map(|r| r.algorithm.clone()).collect();
        assert_eq!(algorithms.len(), ALGORITHMS);
        for r in &first {
            assert!((0.4..=1.0).contains(&r.metrics.accuracy));
        }
    }
}
