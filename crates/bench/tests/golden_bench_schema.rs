//! Golden test pinning the `BENCH_*.json` document schema.
//!
//! Perf tooling diffs these documents across PRs without per-benchmark
//! parsers, so the top-level shape is a contract: any change must be
//! deliberate. If this test fails because the shape changed on purpose,
//! bump [`BENCH_SCHEMA_VERSION`], update `tests/golden/bench_doc.json`
//! to the new rendering, and mention the bump in the PR description.

use openbi_bench::report::{bench_doc, BENCH_SCHEMA_VERSION};
use openbi_obs::MetricsRegistry;

const GOLDEN: &str = include_str!("golden/bench_doc.json");

/// A deterministic document (counters only — histograms carry
/// measured floats and are schema-checked separately below) must
/// render byte-identically to the checked-in golden file.
#[test]
fn bench_doc_matches_the_golden_rendering() {
    let registry = MetricsRegistry::new();
    registry.counter("grid.cell.retries_total").add(3);
    registry.counter("grid.cells_total").add(12);
    let doc = bench_doc(
        "golden",
        serde_json::json!({"folds": 3, "workers": 4}),
        serde_json::json!([{"cells": 120, "seconds": 1.5}]),
        &registry.snapshot(),
    );
    let rendered = serde_json::to_string_pretty(&doc).expect("serialize");
    assert_eq!(
        rendered.trim_end(),
        GOLDEN.trim_end(),
        "BENCH_*.json shape drifted from tests/golden/bench_doc.json — \
         if intentional, bump BENCH_SCHEMA_VERSION and regenerate the golden"
    );
    assert_eq!(
        doc["schema_version"], BENCH_SCHEMA_VERSION,
        "the golden file pins schema_version {BENCH_SCHEMA_VERSION}"
    );
}

/// The embedded histogram objects keep their key set (floats themselves
/// are measured, so they are asserted structurally, not byte-for-byte).
#[test]
fn histogram_schema_keeps_its_keys() {
    let registry = MetricsRegistry::new();
    registry
        .histogram_with("grid.cell.seconds", vec![0.1, 1.0])
        .record(0.05);
    let doc = bench_doc(
        "hist",
        serde_json::json!({}),
        serde_json::json!({}),
        &registry.snapshot(),
    );
    let hist = doc["metrics"]["histograms"]["grid.cell.seconds"]
        .as_object()
        .expect("histogram is an object");
    let keys: Vec<&str> = hist.keys().map(String::as_str).collect();
    assert_eq!(
        keys,
        ["buckets", "count", "max", "mean", "min", "p50", "p90", "p99", "sum"]
    );
    let buckets = hist["buckets"].as_array().expect("buckets is an array");
    assert_eq!(buckets.len(), 3, "two bounds + overflow");
    for bucket in buckets {
        let keys: Vec<&str> = bucket
            .as_object()
            .expect("bucket is an object")
            .keys()
            .map(String::as_str)
            .collect();
        assert_eq!(keys, ["count", "le"]);
    }
    assert_eq!(buckets.last().unwrap()["le"], "+Inf");
}
