//! `openbi-cli` — the command-line face of OpenBI for non-expert users.
//!
//! ```text
//! openbi-cli profile  <data.csv> [--target COL] [--exclude A,B]
//! openbi-cli mine     <data.csv> --target COL [--exclude A,B]
//!                     [--kb kb.jsonl] [--no-preprocess] [--select]
//!                     [--publish out.ttl]
//! openbi-cli experiments --out kb.jsonl [--rows N] [--folds K] [--seed S]
//!                     [--workers W] [--metrics-out metrics.json]
//!                     [--fault-plan plan.txt] [--max-retries R]
//!                     [--cell-deadline-ms MS]
//!                     [--serving rwlock|snapshot] [--publish-capacity N]
//!                     [--wal-dir DIR] [--fsync always|batch|never]
//!                     [--checkpoint-every N]
//! openbi-cli kb recover --wal-dir DIR [--out kb.jsonl]
//! openbi-cli advise   <data.csv> --target COL --kb kb.jsonl
//!                     [--neighbors N] [--bandwidth H]
//!                     [--metrics-out metrics.json]
//! openbi-cli cube     <data.csv> --dims A,B [--measures sum:X,mean:Y,...]
//!                     [--shards N] [--min-support N] [--max-null-ratio F]
//!                     [--metrics-out metrics.json]
//!                     [--fault-plan plan.txt] [--max-retries R]
//! ```
//!
//! `experiments` runs the §3.1 phase-1 suite on the reference generators
//! and writes a knowledge base that `mine`/`advise` can consume.
//!
//! `--metrics-out` installs an `openbi-obs` registry for the duration of
//! the command and writes the final [`MetricsSnapshot`] as JSON — the
//! same shape embedded in the `BENCH_*.json` documents (README "Reading
//! the metrics").
//!
//! `--fault-plan` loads an `openbi-faults` plan (DESIGN.md §10) and
//! installs it for the duration of the command, so grid cells, pipeline
//! stages, and KB store I/O misbehave on the plan's schedule. Pair it
//! with `--max-retries` / `--cell-deadline-ms` to watch the executor
//! retry and bound injected failures.
//!
//! `--wal-dir` makes `experiments` crash-durable (DESIGN.md §15): any
//! log left by a previous (possibly crashed) run is recovered first,
//! every acknowledged batch is appended to a checksummed write-ahead
//! log before it is served, and a final checkpoint compacts the log on
//! clean exit. `kb recover` replays such a log on its own — useful
//! after a crash, or to turn a log into a plain `kb.jsonl`.
//!
//! [`MetricsSnapshot`]: openbi::obs::MetricsSnapshot

use openbi::experiment::{run_phase1_report, Criterion, ExperimentConfig, ExperimentDataset};
use openbi::kb::{
    Advisor, CheckpointReport, DurableOptions, FsyncPolicy, KnowledgeBase, RecoveryReport,
    SharedKnowledgeBase, SnapshotKnowledgeBase, WalOptions, WalSink, WalWriter,
};
use openbi::pipeline::{run_pipeline, DataSource, PipelineConfig};
use openbi::quality::{measure_profile, render_profile, MeasureOptions};
use openbi::render_outcome;
use std::process::ExitCode;

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let a = &raw[i];
            if let Some(name) = a.strip_prefix("--") {
                let value = raw.get(i + 1).filter(|v| !v.starts_with("--")).cloned();
                if value.is_some() {
                    i += 1;
                }
                flags.push((name.to_string(), value));
            } else {
                positional.push(a.clone());
            }
            i += 1;
        }
        Args { positional, flags }
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn exclude_list(&self) -> Vec<String> {
        self.flag("exclude")
            .map(|s| s.split(',').map(|x| x.trim().to_string()).collect())
            .unwrap_or_default()
    }
}

const USAGE: &str = "\
openbi-cli — data-quality-aware mining for open data

USAGE:
  openbi-cli profile <data.csv> [--target COL] [--exclude A,B]
  openbi-cli mine    <data.csv> --target COL [--exclude A,B]
                     [--kb kb.jsonl] [--no-preprocess] [--select]
                     [--publish out.ttl]
  openbi-cli advise  <data.csv> --target COL --kb kb.jsonl [--exclude A,B]
                     [--neighbors N] [--bandwidth H]   (advisor tuning)
                     [--metrics-out metrics.json]
  openbi-cli experiments --out kb.jsonl [--rows N] [--folds K] [--seed S] [--full]
                     [--workers W]   (W experiment workers; 0 = one per core)
                     [--metrics-out metrics.json]
                     [--fault-plan plan.txt]   (inject faults on a schedule)
                     [--max-retries R]         (retry failing cells R times)
                     [--cell-deadline-ms MS]   (abandon cells slower than MS)
                     [--serving rwlock|snapshot]  (publish path; default rwlock)
                     [--publish-capacity N]    (snapshot publish-queue bound)
                     [--wal-dir DIR]           (crash-durable write-ahead log)
                     [--fsync always|batch|never]  (log flush policy; default batch)
                     [--checkpoint-every N]    (auto-compact the log every N
                                                published records; snapshot path.
                                                Both paths checkpoint on exit.)

  openbi-cli kb recover --wal-dir DIR [--out kb.jsonl]
                     [--metrics-out metrics.json]

  kb recover replays a write-ahead log (checkpoint + checksum-verified
  frames, torn tail repaired) and reports what it found; --out saves
  the recovered knowledge base as JSONL. Corruption *inside* the log is
  a hard error naming the segment and byte offset.

  openbi-cli cube    <data.csv> --dims A,B [--measures sum:X,mean:Y,...]
                     [--shards N]              (0 = one per core)
                     [--min-support N] [--max-null-ratio F]  (quality flags)
                     [--metrics-out metrics.json]
                     [--fault-plan plan.txt] [--max-retries R]

  cube builds a sharded, quality-annotated OLAP rollup (DESIGN.md §14):
  every aggregate cell carries its row support and null ratio, and cells
  below --min-support (default 5) or above --max-null-ratio (default
  0.2) are flagged in the rendered report. Measures are AGG:COLUMN pairs
  with AGG one of sum|mean|count|min|max; default is count over the
  first dimension.

  --metrics-out writes serving/executor metrics (latency histograms with
  p50/p90/p99, counters) captured during the command, e.g.:
    openbi-cli experiments --out kb.jsonl --metrics-out grid_metrics.json

  --fault-plan installs a deterministic chaos schedule (`seed N` +
  `fault <point> <error|panic|delay=MS> [times=N] [ratio=F]` lines) for
  the whole command; see DESIGN.md §10 for the injection-point catalog.
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

/// When `--metrics-out PATH` is given, install a fresh process-global
/// `openbi-obs` registry and return it with the output path. The caller
/// hands the pair to [`write_metrics`] once the command finishes.
fn metrics_registry(args: &Args) -> Option<(std::sync::Arc<openbi::obs::MetricsRegistry>, String)> {
    let path = args.flag("metrics-out")?.to_string();
    let registry = std::sync::Arc::new(openbi::obs::MetricsRegistry::new());
    openbi::obs::install(std::sync::Arc::clone(&registry));
    Some((registry, path))
}

/// Uninstall the global registry and write its snapshot as JSON. `true`
/// on success (including the no-`--metrics-out` no-op).
fn write_metrics(metrics: Option<(std::sync::Arc<openbi::obs::MetricsRegistry>, String)>) -> bool {
    let Some((registry, path)) = metrics else {
        return true;
    };
    openbi::obs::uninstall();
    if let Err(e) = std::fs::write(&path, registry.snapshot().to_json()) {
        eprintln!("cannot write {path}: {e}");
        return false;
    }
    println!("metrics written to {path}");
    true
}

fn load_csv(path: &str) -> Result<openbi::table::Table, String> {
    openbi::table::read_csv_path(path, &openbi::table::CsvOptions::default())
        .map_err(|e| format!("cannot read {path}: {e}"))
}

fn cmd_profile(args: &Args) -> ExitCode {
    let Some(path) = args.positional.first() else {
        return fail("profile needs a CSV path");
    };
    let table = match load_csv(path) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    let opts = MeasureOptions {
        target: args.flag("target").map(str::to_string),
        exclude: args.exclude_list(),
        ..Default::default()
    };
    let profile = measure_profile(&table, &opts);
    print!("{}", render_profile(path, &profile));
    let plan = openbi::PreprocessingPlan::recommend(&profile);
    print!("{}", plan.report());
    ExitCode::SUCCESS
}

fn cmd_mine(args: &Args, require_kb: bool) -> ExitCode {
    let Some(path) = args.positional.first() else {
        return fail("mine/advise needs a CSV path");
    };
    let Some(target) = args.flag("target") else {
        return fail("--target is required");
    };
    let content = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };
    let kb = match args.flag("kb") {
        Some(kb_path) => match KnowledgeBase::load(kb_path) {
            Ok(kb) => Some(kb),
            Err(e) => return fail(&format!("cannot load knowledge base: {e}")),
        },
        None if require_kb => return fail("--kb is required for advise"),
        None => None,
    };
    let config = PipelineConfig {
        target: Some(target.to_string()),
        exclude: args.exclude_list(),
        auto_preprocess: !args.has("no-preprocess"),
        auto_select_attributes: args.has("select"),
        ..Default::default()
    };
    let outcome = match run_pipeline(
        DataSource::CsvText {
            name: path.clone(),
            content,
        },
        &config,
        kb.as_ref(),
    ) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("pipeline failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", render_outcome(&outcome));
    if let Some(out) = args.flag("publish") {
        let ttl = openbi::lod::write_turtle(&outcome.published, &openbi::lod::PrefixMap::default());
        if let Err(e) = std::fs::write(out, ttl) {
            eprintln!("cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        println!("published LOD written to {out}");
    }
    ExitCode::SUCCESS
}

/// Durability flags shared by the `experiments` serving paths.
struct WalArgs {
    dir: String,
    fsync: FsyncPolicy,
    checkpoint_every: Option<u64>,
}

/// Parse `--wal-dir` / `--fsync` / `--checkpoint-every`. `Ok(None)`
/// when durability was not requested; an error when the dependent
/// flags appear without `--wal-dir`, or don't parse.
fn parse_wal_args(args: &Args) -> Result<Option<WalArgs>, String> {
    let Some(dir) = args.flag("wal-dir") else {
        if args.has("fsync") || args.has("checkpoint-every") {
            return Err("--fsync and --checkpoint-every require --wal-dir".to_string());
        }
        return Ok(None);
    };
    let fsync = match args.flag("fsync") {
        Some(spec) => FsyncPolicy::parse(spec)
            .ok_or_else(|| format!("--fsync must be always|batch|never, got {spec:?}"))?,
        None => FsyncPolicy::default(),
    };
    let checkpoint_every = match args.flag("checkpoint-every") {
        Some(n) => Some(
            n.parse::<u64>()
                .map_err(|_| format!("--checkpoint-every must be an integer, got {n}"))?,
        ),
        None => None,
    };
    Ok(Some(WalArgs {
        dir: dir.to_string(),
        fsync,
        checkpoint_every,
    }))
}

/// Narrate a [`RecoveryReport`] — both `experiments --wal-dir` and
/// `kb recover` start with one.
fn print_recovery(dir: &str, report: &RecoveryReport) {
    let checkpoint = match report.checkpoint_watermark {
        Some(watermark) => format!(
            "checkpoint {watermark} ({} record(s)) + ",
            report.checkpoint_records
        ),
        None => String::new(),
    };
    eprintln!(
        "recovered {dir}: {checkpoint}{} frame(s) replayed from {} segment(s), \
         {} torn byte(s) truncated ({:.3}s)",
        report.frames_replayed, report.segments_scanned, report.truncated_bytes, report.seconds,
    );
}

fn print_checkpoint(report: &CheckpointReport) {
    eprintln!(
        "checkpoint {}: {} record(s) saved, {} segment(s) and {} old checkpoint(s) compacted ({:.3}s)",
        report.watermark,
        report.records,
        report.compacted_segments,
        report.removed_checkpoints,
        report.seconds,
    );
}

/// Printed when batches were served without reaching the log: the run
/// finished, but a crash could have lost those records.
const DEGRADED_BANNER: &str =
    "!! DEGRADED DURABILITY !! some results were served without reaching the write-ahead log";

fn cmd_experiments(args: &Args) -> ExitCode {
    let Some(out) = args.flag("out") else {
        return fail("experiments needs --out <kb.jsonl>");
    };
    let wal = match parse_wal_args(args) {
        Ok(wal) => wal,
        Err(e) => return fail(&e),
    };
    let rows: usize = args
        .flag("rows")
        .and_then(|r| r.parse().ok())
        .unwrap_or(300);
    let folds: usize = args.flag("folds").and_then(|f| f.parse().ok()).unwrap_or(3);
    let seed: u64 = args.flag("seed").and_then(|s| s.parse().ok()).unwrap_or(42);
    let workers: usize = args
        .flag("workers")
        .and_then(|w| w.parse().ok())
        .unwrap_or(0);
    let max_retries: u32 = args
        .flag("max-retries")
        .and_then(|r| r.parse().ok())
        .unwrap_or(0);
    let cell_deadline = args
        .flag("cell-deadline-ms")
        .and_then(|m| m.parse::<u64>().ok())
        .map(std::time::Duration::from_millis);
    let fault_plan = match args.flag("fault-plan") {
        Some(path) => match openbi::faults::FaultPlan::from_file(path) {
            Ok(plan) => {
                eprintln!(
                    "fault plan {path}: seed {}, {} rule(s)",
                    plan.seed(),
                    plan.rules().len()
                );
                let plan = std::sync::Arc::new(plan);
                // Install globally so KB store I/O (no config of its own)
                // sees the plan too, not just the grid executor.
                openbi::faults::install(std::sync::Arc::clone(&plan));
                Some(plan)
            }
            Err(e) => return fail(&e.to_string()),
        },
        None => None,
    };
    let datasets: Vec<ExperimentDataset> = openbi::datagen::reference_datasets(seed)
        .into_iter()
        .map(|(name, table, target)| ExperimentDataset::new(name, table.head(rows), target))
        .collect();
    // Default to the compact suite and coarse severities so a first KB
    // builds in well under a minute; --full restores the complete grid.
    let config = if args.has("full") {
        ExperimentConfig {
            folds,
            seed,
            workers,
            max_retries,
            cell_deadline,
            fault_plan: fault_plan.clone(),
            ..Default::default()
        }
    } else {
        ExperimentConfig {
            algorithms: vec![
                openbi::mining::AlgorithmSpec::ZeroR,
                openbi::mining::AlgorithmSpec::NaiveBayes,
                openbi::mining::AlgorithmSpec::DecisionTree {
                    max_depth: 12,
                    min_leaf: 2,
                },
                openbi::mining::AlgorithmSpec::Knn { k: 5 },
            ],
            severities: vec![0.0, 0.5, 1.0],
            folds,
            seed,
            workers,
            max_retries,
            cell_deadline,
            fault_plan: fault_plan.clone(),
            ..Default::default()
        }
    };
    let serving = args.flag("serving").unwrap_or("rwlock");
    let metrics = metrics_registry(args);
    eprintln!(
        "running phase 1 on {} datasets × {} criteria × {} severities ({} workers, {serving} publish path)…",
        datasets.len(),
        Criterion::all().len(),
        config.severities.len(),
        config.effective_workers()
    );
    // The grid is generic over its record sink: the default RwLock
    // store, or the snapshot-swap serving store (DESIGN.md §13) which
    // coalesces worker flushes into published generations.
    let run = match serving {
        "rwlock" => match &wal {
            None => {
                let kb = SharedKnowledgeBase::default();
                run_phase1_report(&datasets, &Criterion::all(), &config, &kb)
                    .map(|report| (report, kb.snapshot()))
            }
            Some(wal_args) => {
                // Resume from whatever a previous (possibly crashed)
                // run logged, then log every batch ahead of the
                // in-memory store via the WalSink decorator.
                let seeded = match openbi::kb::recover(&wal_args.dir) {
                    Ok((kb, recovery)) => {
                        print_recovery(&wal_args.dir, &recovery);
                        kb
                    }
                    Err(e) => return fail(&format!("cannot recover {}: {e}", wal_args.dir)),
                };
                let writer =
                    match WalWriter::open(WalOptions::new(&wal_args.dir).fsync(wal_args.fsync)) {
                        Ok(writer) => writer,
                        Err(e) => {
                            return fail(&format!(
                                "cannot open write-ahead log {}: {e}",
                                wal_args.dir
                            ))
                        }
                    };
                if wal_args.checkpoint_every.is_some() {
                    eprintln!(
                        "note: the rwlock path checkpoints once on exit; \
                         --checkpoint-every paces the snapshot path only"
                    );
                }
                let sink = WalSink::new(SharedKnowledgeBase::new(seeded), writer);
                run_phase1_report(&datasets, &Criterion::all(), &config, &sink).map(|report| {
                    let kb = sink.inner().snapshot();
                    match sink.checkpoint(&kb) {
                        Ok(checkpoint) => print_checkpoint(&checkpoint),
                        Err(e) => eprintln!("warning: final checkpoint failed: {e}"),
                    }
                    if sink.degraded() {
                        eprintln!("{DEGRADED_BANNER} ({} batch(es))", sink.failures());
                    }
                    (report, kb)
                })
            }
        },
        "snapshot" => {
            let capacity: usize = args
                .flag("publish-capacity")
                .and_then(|c| c.parse().ok())
                .unwrap_or(openbi::kb::serving::DEFAULT_PUBLISH_CAPACITY);
            let store = match &wal {
                None => SnapshotKnowledgeBase::with_capacity(KnowledgeBase::new(), capacity),
                Some(wal_args) => {
                    let mut options = DurableOptions::new(&wal_args.dir)
                        .fsync(wal_args.fsync)
                        .publish_capacity(capacity);
                    if let Some(every) = wal_args.checkpoint_every {
                        options = options.checkpoint_every(every);
                    }
                    match SnapshotKnowledgeBase::open_durable(options) {
                        Ok((store, recovery)) => {
                            print_recovery(&wal_args.dir, &recovery);
                            store
                        }
                        Err(e) => {
                            return fail(&format!(
                                "cannot open write-ahead log {}: {e}",
                                wal_args.dir
                            ))
                        }
                    }
                }
            };
            run_phase1_report(&datasets, &Criterion::all(), &config, &store).and_then(|report| {
                store.flush().map_err(openbi::OpenBiError::Kb)?;
                if store.is_durable() {
                    match store.checkpoint() {
                        Ok(Some(checkpoint)) => print_checkpoint(&checkpoint),
                        Ok(None) => {}
                        Err(e) => eprintln!("warning: final checkpoint failed: {e}"),
                    }
                    if store.durability_degraded() {
                        eprintln!(
                            "{DEGRADED_BANNER} ({} log failure(s), {} checkpoint failure(s))",
                            store.wal_failures(),
                            store.checkpoint_failures()
                        );
                    }
                }
                eprintln!(
                    "serving store published {} generation(s)",
                    store.generation()
                );
                Ok((report, store.pin().kb().clone()))
            })
        }
        other => {
            return fail(&format!(
                "unknown --serving mode {other:?} (rwlock|snapshot)"
            ))
        }
    };
    match run {
        Ok((report, final_kb)) => {
            for f in &report.failures {
                eprintln!(
                    "warning: skipped cell (dataset {}, seed {}) after {} attempt(s): {}",
                    f.dataset, f.seed, f.attempts, f.error
                );
            }
            if let Err(e) = final_kb.save(out) {
                eprintln!("cannot save {out}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "{} experiment records written to {out} ({} cells, {} skipped, {} retries)",
                report.records,
                report.cells,
                report.failures.len(),
                report.total_retries()
            );
            if !write_metrics(metrics) {
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("experiments failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `kb recover --wal-dir DIR [--out kb.jsonl]`: replay a write-ahead
/// log outside any run — after a crash, or to convert a log into a
/// plain JSONL knowledge base.
fn cmd_kb(args: &Args) -> ExitCode {
    match args.positional.first().map(String::as_str) {
        Some("recover") => {}
        Some(other) => return fail(&format!("unknown kb subcommand: {other} (recover)")),
        None => return fail("kb needs a subcommand: recover"),
    }
    let Some(dir) = args.flag("wal-dir") else {
        return fail("kb recover needs --wal-dir DIR");
    };
    let metrics = metrics_registry(args);
    match openbi::kb::recover(dir) {
        Ok((kb, report)) => {
            print_recovery(dir, &report);
            println!("{} record(s) recovered from {dir}", kb.len());
            if let Some(out) = args.flag("out") {
                if let Err(e) = kb.save(out) {
                    eprintln!("cannot save {out}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("recovered knowledge base written to {out}");
            }
            if !write_metrics(metrics) {
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            // A corrupt frame mid-log is a hard error naming the
            // segment and byte offset — don't soften it into a
            // half-recovered KB.
            eprintln!("recovery failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_advise(args: &Args) -> ExitCode {
    // Advise = profile + KB ranking, without running the miner.
    let Some(path) = args.positional.first() else {
        return fail("advise needs a CSV path");
    };
    let Some(kb_path) = args.flag("kb") else {
        return fail("--kb is required for advise");
    };
    let table = match load_csv(path) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    let kb = match KnowledgeBase::load(kb_path) {
        Ok(kb) => kb,
        Err(e) => return fail(&format!("cannot load knowledge base: {e}")),
    };
    let opts = MeasureOptions {
        target: args.flag("target").map(str::to_string),
        exclude: args.exclude_list(),
        ..Default::default()
    };
    let profile = measure_profile(&table, &opts);
    print!("{}", render_profile(path, &profile));
    let defaults = Advisor::default();
    let advisor = Advisor {
        neighbors: match args.flag("neighbors") {
            Some(n) => match n.parse() {
                Ok(n) => n,
                Err(_) => return fail(&format!("--neighbors must be an integer, got {n}")),
            },
            None => defaults.neighbors,
        },
        bandwidth: match args.flag("bandwidth") {
            Some(h) => match h.parse::<f64>() {
                Ok(h) if h > 0.0 => h,
                _ => return fail(&format!("--bandwidth must be a positive number, got {h}")),
            },
            None => defaults.bandwidth,
        },
    };
    let metrics = metrics_registry(args);
    match advisor.advise(&kb, &profile) {
        Ok(advice) => {
            println!("\n{}", advice.headline());
            println!("{}", advice.explanation);
            for (i, r) in advice.ranking.iter().enumerate() {
                println!(
                    "  {}. {:<30} expected score {:.3} ({} experiments)",
                    i + 1,
                    r.algorithm,
                    r.expected_score,
                    r.support
                );
            }
            if !write_metrics(metrics) {
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("advisor failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parse a `--measures sum:X,mean:Y` list into [`Measure`]s. `None`
/// input yields `count` over `default_col` (the first dimension), so a
/// bare `cube --dims A` still renders something meaningful.
fn parse_measures(
    spec: Option<&str>,
    default_col: &str,
) -> Result<Vec<openbi::olap::Measure>, String> {
    use openbi::olap::Measure;
    let Some(spec) = spec else {
        return Ok(vec![Measure::Count(default_col.to_string())]);
    };
    spec.split(',')
        .map(|part| {
            let part = part.trim();
            let (agg, col) = part
                .split_once(':')
                .ok_or_else(|| format!("measure {part:?} is not AGG:COLUMN"))?;
            let col = col.trim().to_string();
            match agg.trim() {
                "sum" => Ok(Measure::Sum(col)),
                "mean" => Ok(Measure::Mean(col)),
                "count" => Ok(Measure::Count(col)),
                "min" => Ok(Measure::Min(col)),
                "max" => Ok(Measure::Max(col)),
                other => Err(format!(
                    "unknown aggregate {other:?} (sum|mean|count|min|max)"
                )),
            }
        })
        .collect()
}

fn cmd_cube(args: &Args) -> ExitCode {
    use openbi::olap::{quality_table_report, Cube, CubeOptions, QualityThresholds};
    let Some(path) = args.positional.first() else {
        return fail("cube needs a CSV path");
    };
    let Some(dims_spec) = args.flag("dims") else {
        return fail("--dims is required for cube");
    };
    let dims: Vec<String> = dims_spec
        .split(',')
        .map(|d| d.trim().to_string())
        .filter(|d| !d.is_empty())
        .collect();
    if dims.is_empty() {
        return fail("--dims must name at least one column");
    }
    let table = match load_csv(path) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    let measures = match parse_measures(args.flag("measures"), &dims[0]) {
        Ok(m) => m,
        Err(e) => return fail(&e),
    };
    let mut options = CubeOptions::with_shards(
        args.flag("shards")
            .and_then(|s| s.parse().ok())
            .unwrap_or(0),
    );
    options.max_retries = args
        .flag("max-retries")
        .and_then(|r| r.parse().ok())
        .unwrap_or(0);
    if let Some(plan_path) = args.flag("fault-plan") {
        match openbi::faults::FaultPlan::from_file(plan_path) {
            Ok(plan) => options.fault_plan = Some(std::sync::Arc::new(plan)),
            Err(e) => return fail(&e.to_string()),
        }
    }
    let thresholds = QualityThresholds {
        min_support: args
            .flag("min-support")
            .and_then(|s| s.parse().ok())
            .unwrap_or(QualityThresholds::default().min_support),
        max_null_ratio: args
            .flag("max-null-ratio")
            .and_then(|s| s.parse().ok())
            .unwrap_or(QualityThresholds::default().max_null_ratio),
    };
    let dim_refs: Vec<&str> = dims.iter().map(String::as_str).collect();
    let cube = match Cube::new(table, &dim_refs, measures) {
        Ok(c) => c,
        Err(e) => return fail(&e.to_string()),
    };
    let metrics = metrics_registry(args);
    let result = match cube.rollup_quality(&dim_refs, &options) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cube failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let title = format!("{path} by {}", dims.join(", "));
    match quality_table_report(&title, &result, &thresholds, usize::MAX) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("cube failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    if !write_metrics(metrics) {
        return ExitCode::FAILURE;
    }
    if result.is_degraded() {
        // Partial totals are rendered (with a banner), but signal the
        // degradation to scripts via the exit code.
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = raw.first().cloned() else {
        return fail("missing command");
    };
    let args = Args::parse(&raw[1..]);
    match command.as_str() {
        "profile" => cmd_profile(&args),
        "mine" => cmd_mine(&args, false),
        "advise" => cmd_advise(&args),
        "experiments" => cmd_experiments(&args),
        "kb" => cmd_kb(&args),
        "cube" => cmd_cube(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => fail(&format!("unknown command: {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::Args;

    fn parse(raw: &[&str]) -> Args {
        Args::parse(&raw.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn positional_and_flags_separate() {
        let a = parse(&["data.csv", "--target", "label", "--select"]);
        assert_eq!(a.positional, vec!["data.csv"]);
        assert_eq!(a.flag("target"), Some("label"));
        assert!(a.has("select"));
        assert!(!a.has("missing"));
        assert_eq!(a.flag("select"), None, "boolean flag has no value");
    }

    #[test]
    fn flag_followed_by_flag_is_boolean() {
        let a = parse(&["--no-preprocess", "--kb", "kb.jsonl"]);
        assert!(a.has("no-preprocess"));
        assert_eq!(a.flag("no-preprocess"), None);
        assert_eq!(a.flag("kb"), Some("kb.jsonl"));
    }

    #[test]
    fn exclude_list_splits_and_trims() {
        let a = parse(&["--exclude", "id, city ,station"]);
        assert_eq!(a.exclude_list(), vec!["id", "city", "station"]);
        let none = parse(&[]);
        assert!(none.exclude_list().is_empty());
    }

    #[test]
    fn repeated_positionals_kept_in_order() {
        let a = parse(&["first.csv", "second.csv"]);
        assert_eq!(a.positional, vec!["first.csv", "second.csv"]);
    }

    #[test]
    fn wal_args_parse_and_gate() {
        use openbi::kb::FsyncPolicy;
        let none = parse(&[]);
        assert!(super::parse_wal_args(&none).unwrap().is_none());
        let orphan = parse(&["--fsync", "never"]);
        assert!(
            super::parse_wal_args(&orphan).is_err(),
            "--fsync needs --wal-dir"
        );
        let full = parse(&[
            "--wal-dir",
            "run/wal",
            "--fsync",
            "always",
            "--checkpoint-every",
            "64",
        ]);
        let wal = super::parse_wal_args(&full).unwrap().unwrap();
        assert_eq!(wal.dir, "run/wal");
        assert_eq!(wal.fsync, FsyncPolicy::Always);
        assert_eq!(wal.checkpoint_every, Some(64));
        let defaults = parse(&["--wal-dir", "run/wal"]);
        let wal = super::parse_wal_args(&defaults).unwrap().unwrap();
        assert_eq!(wal.fsync, FsyncPolicy::Batch);
        assert_eq!(wal.checkpoint_every, None);
        let bad = parse(&["--wal-dir", "w", "--fsync", "sometimes"]);
        assert!(super::parse_wal_args(&bad).is_err());
    }

    #[test]
    fn measure_specs_parse_and_reject() {
        use openbi::olap::Measure;
        let m = super::parse_measures(Some("sum:spend, mean:pm10,count:id"), "d").unwrap();
        assert_eq!(
            m,
            vec![
                Measure::Sum("spend".into()),
                Measure::Mean("pm10".into()),
                Measure::Count("id".into()),
            ]
        );
        let default = super::parse_measures(None, "district").unwrap();
        assert_eq!(default, vec![Measure::Count("district".into())]);
        assert!(super::parse_measures(Some("median:x"), "d").is_err());
        assert!(super::parse_measures(Some("spend"), "d").is_err());
    }
}
