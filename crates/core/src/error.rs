//! Unified error type for the OpenBI facade.

use std::fmt;

/// Any error from the OpenBI pipeline or experiment runner.
#[derive(Debug, Clone, PartialEq)]
pub enum OpenBiError {
    /// Table substrate error.
    Table(openbi_table::TableError),
    /// LOD substrate error.
    Lod(openbi_lod::LodError),
    /// Metamodel error.
    Metamodel(openbi_metamodel::MetamodelError),
    /// Mining error.
    Mining(openbi_mining::MiningError),
    /// Knowledge-base error.
    Kb(openbi_kb::KbError),
    /// Pipeline configuration error.
    Config(String),
    /// Injected fault (chaos testing via `openbi-faults`).
    Fault(String),
}

impl fmt::Display for OpenBiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpenBiError::Table(e) => write!(f, "table: {e}"),
            OpenBiError::Lod(e) => write!(f, "lod: {e}"),
            OpenBiError::Metamodel(e) => write!(f, "metamodel: {e}"),
            OpenBiError::Mining(e) => write!(f, "mining: {e}"),
            OpenBiError::Kb(e) => write!(f, "knowledge base: {e}"),
            OpenBiError::Config(m) => write!(f, "configuration: {m}"),
            OpenBiError::Fault(m) => write!(f, "fault: {m}"),
        }
    }
}

impl std::error::Error for OpenBiError {}

impl From<openbi_table::TableError> for OpenBiError {
    fn from(e: openbi_table::TableError) -> Self {
        OpenBiError::Table(e)
    }
}
impl From<openbi_lod::LodError> for OpenBiError {
    fn from(e: openbi_lod::LodError) -> Self {
        OpenBiError::Lod(e)
    }
}
impl From<openbi_metamodel::MetamodelError> for OpenBiError {
    fn from(e: openbi_metamodel::MetamodelError) -> Self {
        OpenBiError::Metamodel(e)
    }
}
impl From<openbi_mining::MiningError> for OpenBiError {
    fn from(e: openbi_mining::MiningError) -> Self {
        OpenBiError::Mining(e)
    }
}
impl From<openbi_kb::KbError> for OpenBiError {
    fn from(e: openbi_kb::KbError) -> Self {
        OpenBiError::Kb(e)
    }
}
impl From<openbi_faults::FaultError> for OpenBiError {
    fn from(e: openbi_faults::FaultError) -> Self {
        OpenBiError::Fault(e.to_string())
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, OpenBiError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: OpenBiError = openbi_table::TableError::EmptyTable.into();
        assert!(e.to_string().starts_with("table:"));
        let e: OpenBiError = openbi_kb::KbError::EmptyKnowledgeBase.into();
        assert!(e.to_string().contains("knowledge base"));
        let e = OpenBiError::Config("no target".into());
        assert!(e.to_string().contains("no target"));
        let plan = openbi_faults::FaultPlan::new(1).with(openbi_faults::FaultRule::error("p"));
        let e: OpenBiError = plan.fire("p", 0, 0).unwrap_err().into();
        assert!(e.to_string().starts_with("fault:"), "{e}");
    }
}
