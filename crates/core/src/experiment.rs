//! The §3.1 experiment runner: degrade clean datasets in a controlled
//! way, evaluate every algorithm on every degraded variant, and record
//! everything in the DQ4DM knowledge base.
//!
//! * **Phase 1 ("simple")** applies each data-quality criterion
//!   individually, over a severity sweep.
//! * **Phase 2 ("mixed")** applies pairs of criteria jointly.
//!
//! Both phases flatten into independent [`ExperimentCell`]s — one per
//! (dataset, degradation, seed) grid point — executed by a
//! work-stealing worker pool (crossbeam injector/stealer deques)
//! against any [`RecordSink`]: the lock-based [`SharedKnowledgeBase`]
//! (the default) or the snapshot-swap
//! [`SnapshotKnowledgeBase`](openbi_kb::SnapshotKnowledgeBase) serving
//! store (DESIGN.md §13). Each cell's seed is derived from its grid
//! position, never from the worker that happens to run it, so any
//! worker count produces the same records.
//!
//! ## Execution model (DESIGN.md §7)
//!
//! [`run_cells`] pushes every cell into a global crossbeam
//! [`Injector`](crossbeam::deque::Injector); each worker owns a FIFO
//! local deque and follows the classic discipline — pop local work
//! first, then steal a batch from the injector, then steal from a
//! sibling. Workers buffer produced [`ExperimentRecord`]s locally and
//! flush them to the shared store in chunks of `FLUSH_THRESHOLD` (64),
//! so the store's write lock is amortized over many records. A cell that
//! errors or panics becomes a [`CellFailure`] in the [`GridReport`]
//! instead of tearing down the run.
//!
//! ## Observability (DESIGN.md §9)
//!
//! The executor is instrumented with `openbi-obs`: per-cell wall time,
//! cell/record/failure counters, steal counts, queue-wait time, and
//! remaining-queue-depth samples are recorded into the process-global
//! metrics registry when one is [`installed`](openbi_obs::install)
//! (near-zero cost otherwise), and per-worker totals are always
//! surfaced in [`GridReport::worker_stats`]. None of this affects the
//! records produced: instrumentation only reads the wall clock, so the
//! identical-KB-across-worker-counts guarantee holds with a registry
//! installed (see `tests/observability.rs`).
//!
//! ## Resilience (DESIGN.md §10)
//!
//! Failed cells are retried up to [`ExperimentConfig::max_retries`]
//! times with deterministic exponential backoff, and
//! [`ExperimentConfig::cell_deadline`] bounds each attempt's wall time
//! so a hung cell cannot stall a worker forever. The `grid.cell.run`
//! injection point (`openbi-faults`) sits in front of every attempt,
//! keyed by the cell's position-derived seed — so an injected fault
//! fires on the same cells at the same attempts regardless of worker
//! count, and the chaos suite can assert that a run with faults plus
//! retries produces a byte-identical knowledge base.

use crate::error::{OpenBiError, Result};
use openbi_kb::{ExperimentRecord, PerfMetrics, RecordSink, SharedKnowledgeBase};
use openbi_mining::eval::crossval::cross_validate;
use openbi_mining::{AlgorithmSpec, EvalResult, Instances};
use openbi_quality::inject::{
    AttributeNoiseInjector, CorrelatedInjector, Degradation, DuplicateInjector, ImbalanceInjector,
    InconsistencyInjector, IrrelevantInjector, LabelNoiseInjector, MissingInjector,
    OutlierInjector,
};
use openbi_quality::{measure_profile_cached, MeasureOptions};
use openbi_table::Table;

use crossbeam::deque::{Injector as TaskInjector, Steal, Stealer, Worker as WorkerQueue};
use openbi_faults::FaultPlan;
use openbi_obs as obs;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// A clean input dataset for the experiments.
#[derive(Debug, Clone)]
pub struct ExperimentDataset {
    /// Dataset identifier.
    pub name: String,
    /// The clean table.
    pub table: Table,
    /// Target (class) column.
    pub target: String,
    /// Identifier columns excluded from mining.
    pub exclude: Vec<String>,
}

impl ExperimentDataset {
    /// Create a dataset with no excluded columns.
    pub fn new(name: impl Into<String>, table: Table, target: impl Into<String>) -> Self {
        ExperimentDataset {
            name: name.into(),
            table,
            target: target.into(),
            exclude: vec![],
        }
    }

    /// The first numeric feature column — used as MAR driver and
    /// redundancy source.
    pub fn numeric_driver(&self) -> Option<String> {
        self.table
            .columns()
            .iter()
            .find(|c| {
                c.dtype().is_numeric()
                    && c.name() != self.target
                    && !self.exclude.iter().any(|e| e == c.name())
            })
            .map(|c| c.name().to_string())
    }
}

/// The data-quality criteria of the experiment suite (the paper's "data
/// quality criteria" axis of Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Criterion {
    /// MCAR missing values (experiment E1).
    Completeness,
    /// MAR missing values driven by a numeric attribute (E1).
    CompletenessMar,
    /// Class-label flips (E2).
    LabelNoise,
    /// Gaussian attribute noise (E3).
    AttributeNoise,
    /// Class imbalance by minority subsampling (E4).
    Imbalance,
    /// Strongly correlated redundant attributes (E5).
    Redundancy,
    /// Irrelevant attributes / high dimensionality (E6).
    Dimensionality,
    /// Exact + near duplicate rows (E7).
    Duplicates,
    /// Numeric outliers (companion of E3).
    Outliers,
    /// Inconsistent string formats.
    Inconsistency,
}

impl Criterion {
    /// The full criterion list, in experiment order.
    pub fn all() -> Vec<Criterion> {
        vec![
            Criterion::Completeness,
            Criterion::CompletenessMar,
            Criterion::LabelNoise,
            Criterion::AttributeNoise,
            Criterion::Imbalance,
            Criterion::Redundancy,
            Criterion::Dimensionality,
            Criterion::Duplicates,
            Criterion::Outliers,
            Criterion::Inconsistency,
        ]
    }

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            Criterion::Completeness => "completeness",
            Criterion::CompletenessMar => "completeness-mar",
            Criterion::LabelNoise => "label-noise",
            Criterion::AttributeNoise => "attribute-noise",
            Criterion::Imbalance => "imbalance",
            Criterion::Redundancy => "redundancy",
            Criterion::Dimensionality => "dimensionality",
            Criterion::Duplicates => "duplicates",
            Criterion::Outliers => "outliers",
            Criterion::Inconsistency => "inconsistency",
        }
    }

    /// Build the degradation realizing this criterion at `severity` in
    /// `[0,1]` on the given dataset. Severity 0 is the clean baseline.
    pub fn degradation(&self, severity: f64, dataset: &ExperimentDataset) -> Result<Degradation> {
        if !(0.0..=1.0).contains(&severity) {
            return Err(OpenBiError::Config(format!(
                "severity {severity} outside [0,1]"
            )));
        }
        if severity == 0.0 {
            return Ok(Degradation::new());
        }
        let target = dataset.target.clone();
        let protect: Vec<String> = dataset
            .exclude
            .iter()
            .cloned()
            .chain([target.clone()])
            .collect();
        let d =
            match self {
                Criterion::Completeness => {
                    Degradation::new().then(MissingInjector::mcar(0.4 * severity).exclude(protect))
                }
                Criterion::CompletenessMar => {
                    let driver = dataset.numeric_driver().ok_or_else(|| {
                        OpenBiError::Config(format!(
                            "dataset {} has no numeric driver for MAR",
                            dataset.name
                        ))
                    })?;
                    Degradation::new()
                        .then(MissingInjector::mar(0.4 * severity, driver).exclude(protect))
                }
                Criterion::LabelNoise => {
                    Degradation::new().then(LabelNoiseInjector::new(target, 0.35 * severity))
                }
                Criterion::AttributeNoise => Degradation::new()
                    .then(AttributeNoiseInjector::new(severity.min(1.0), 2.0).exclude(protect)),
                Criterion::Imbalance => {
                    Degradation::new().then(ImbalanceInjector::new(target, 0.5 + 0.45 * severity))
                }
                Criterion::Redundancy => {
                    let source = dataset.numeric_driver().ok_or_else(|| {
                        OpenBiError::Config(format!(
                            "dataset {} has no numeric source for redundancy",
                            dataset.name
                        ))
                    })?;
                    let copies = (4.0 * severity).round().max(1.0) as usize;
                    Degradation::new().then(CorrelatedInjector::new(source, copies, 0.05))
                }
                Criterion::Dimensionality => {
                    let count = (48.0 * severity).round().max(1.0) as usize;
                    Degradation::new().then(IrrelevantInjector::gaussian(count))
                }
                Criterion::Duplicates => Degradation::new()
                    .then(DuplicateInjector::near(0.45 * severity, 0.02).exclude(protect)),
                Criterion::Outliers => Degradation::new()
                    .then(OutlierInjector::new(0.12 * severity, 6.0).exclude(protect)),
                Criterion::Inconsistency => Degradation::new()
                    .then(InconsistencyInjector::new(0.8 * severity).exclude(protect)),
            };
        Ok(d)
    }
}

/// Experiment-suite configuration (the paper's "user profile" input:
/// which criteria to assess and which techniques the user considers).
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Algorithms to evaluate.
    pub algorithms: Vec<AlgorithmSpec>,
    /// Severity sweep (0 = clean baseline; include it to anchor curves).
    pub severities: Vec<f64>,
    /// Cross-validation folds.
    pub folds: usize,
    /// Master seed.
    pub seed: u64,
    /// Run experiment cells on a parallel worker pool.
    pub parallel: bool,
    /// Worker threads for the cell executor; 0 = one per available
    /// core. Ignored when `parallel` is off.
    pub workers: usize,
    /// Extra attempts for a failed cell: a cell runs at most
    /// `max_retries + 1` times before it becomes a [`CellFailure`].
    /// `0` (the default) keeps the original fail-once behaviour.
    pub max_retries: u32,
    /// Base delay before retry `n` (the executor waits
    /// `retry_backoff × 2^(n−1)`, capped at one second). Deterministic —
    /// no jitter — so chaos runs replay identically.
    pub retry_backoff: Duration,
    /// Wall-clock budget per cell attempt. When set, each attempt runs
    /// on a detachable thread and is abandoned (counted as a failure,
    /// records discarded) once the deadline passes, so a hung cell
    /// cannot stall a worker. `None` (the default) runs attempts inline
    /// with no deadline and no extra thread.
    pub cell_deadline: Option<Duration>,
    /// Fault plan for chaos testing. `None` falls back to the
    /// process-global plan ([`openbi_faults::active`]), so both
    /// config-scoped tests and CLI-installed plans reach the executor.
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            algorithms: AlgorithmSpec::standard_suite(),
            severities: vec![0.0, 0.25, 0.5, 0.75, 1.0],
            folds: 5,
            seed: 42,
            parallel: true,
            workers: 0,
            max_retries: 0,
            retry_backoff: Duration::from_millis(10),
            cell_deadline: None,
            fault_plan: None,
        }
    }
}

impl ExperimentConfig {
    /// The worker count the executor will actually use: 1 when
    /// `parallel` is off, `workers` when nonzero, otherwise one worker
    /// per available core.
    pub fn effective_workers(&self) -> usize {
        if !self.parallel {
            1
        } else if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// One independent unit of the experiment grid: a dataset, the
/// degradation to apply to it, and the seed that reproduces it. Cells
/// carry everything a worker needs, so the executor can hand them to
/// any thread in any order.
#[derive(Debug)]
pub struct ExperimentCell {
    /// Index into the dataset slice handed to the executor.
    pub dataset: usize,
    /// The degradation this cell applies before evaluating.
    pub degradation: Degradation,
    /// Cell seed, derived from the grid position — never from the
    /// worker — so parallel and sequential runs yield identical records.
    pub seed: u64,
}

/// A cell that failed or panicked, with enough context to re-run it.
#[derive(Debug, Clone)]
pub struct CellFailure {
    /// Dataset name.
    pub dataset: String,
    /// Human-readable degradation steps of the failed cell.
    pub degradations: Vec<String>,
    /// The cell seed.
    pub seed: u64,
    /// The error or panic message of the final attempt.
    pub error: String,
    /// How many attempts were made (1 when retries are off; at most
    /// `max_retries + 1`).
    pub attempts: u32,
}

/// Per-worker execution totals for one grid run. Collected on the
/// worker's own stack (no shared-state contention on the hot path) and
/// merged into [`GridReport::worker_stats`] when the worker drains.
#[derive(Debug, Clone, Default)]
pub struct WorkerStats {
    /// Worker index in `0..effective_workers`.
    pub worker: usize,
    /// Cells this worker executed (including failed ones).
    pub cells: usize,
    /// Successful steals: cells obtained from the global injector or a
    /// sibling's deque rather than the worker's own local queue.
    pub steals: usize,
    /// Total seconds spent looking for work outside the local queue
    /// (includes the final empty-queue check before shutdown).
    pub queue_wait_seconds: f64,
    /// Total seconds spent actually executing cells.
    pub busy_seconds: f64,
    /// Retry attempts this worker made (beyond each cell's first
    /// attempt).
    pub retries: usize,
}

/// What a grid run produced: record count plus the cells that were
/// skipped because they failed. One bad cell no longer poisons the
/// whole suite — it lands here instead.
#[derive(Debug, Clone, Default)]
pub struct GridReport {
    /// Knowledge-base records written.
    pub records: usize,
    /// Total cells executed (including failed ones).
    pub cells: usize,
    /// Cells that produced records (possibly after retries).
    pub cells_succeeded: usize,
    /// Cells that errored or panicked on every attempt and were
    /// skipped.
    pub failures: Vec<CellFailure>,
    /// Wall-clock seconds for the whole [`run_cells`] call.
    pub wall_seconds: f64,
    /// Per-worker totals, sorted by worker index; one entry per worker
    /// even when a worker never won a cell.
    pub worker_stats: Vec<WorkerStats>,
}

impl GridReport {
    /// Cells the executor attempted — an alias for `cells`, named for
    /// the invariant `cells_attempted() == cells_succeeded +
    /// failures.len()` the chaos suite checks.
    pub fn cells_attempted(&self) -> usize {
        self.cells
    }

    /// Total retry attempts across all workers.
    pub fn total_retries(&self) -> usize {
        self.worker_stats.iter().map(|s| s.retries).sum()
    }
}

/// Evaluate one degraded variant without touching any store. The
/// degraded table, its quality profile, and the `Table` → [`Instances`]
/// conversion are built once and shared by every algorithm evaluation.
fn evaluate_cell(
    dataset: &ExperimentDataset,
    degradation: &Degradation,
    config: &ExperimentConfig,
    seed: u64,
) -> Result<(Vec<ExperimentRecord>, Vec<(AlgorithmSpec, EvalResult)>)> {
    let degraded = degradation.apply(&dataset.table, seed)?;
    let exclude: Vec<&str> = dataset.exclude.iter().map(String::as_str).collect();
    let profile = measure_profile_cached(
        &degraded,
        &MeasureOptions {
            target: Some(dataset.target.clone()),
            exclude: dataset.exclude.clone(),
            ..Default::default()
        },
    );
    let instances = Instances::from_table(&degraded, Some(&dataset.target), &exclude)?;
    let mut records = Vec::with_capacity(config.algorithms.len());
    let mut evals = Vec::with_capacity(config.algorithms.len());
    for spec in &config.algorithms {
        let eval = cross_validate(&instances, spec, config.folds, seed)?;
        records.push(ExperimentRecord {
            dataset: dataset.name.clone(),
            degradations: degradation.describe(),
            profile: profile.clone(),
            algorithm: eval.algorithm.clone(),
            metrics: PerfMetrics {
                accuracy: eval.accuracy(),
                macro_f1: eval.macro_f1(),
                minority_f1: eval.minority_f1(),
                kappa: eval.kappa(),
                train_ms: eval.train_ms,
                model_size: eval.model_size,
            },
            seed,
        });
        evals.push((spec.clone(), eval));
    }
    Ok((records, evals))
}

/// Evaluate one degraded variant: returns the per-algorithm results and
/// pushes records into the knowledge base (any [`RecordSink`]).
pub fn evaluate_variant<S: RecordSink>(
    dataset: &ExperimentDataset,
    degradation: &Degradation,
    config: &ExperimentConfig,
    seed: u64,
    kb: &S,
) -> Result<Vec<(AlgorithmSpec, EvalResult)>> {
    let (records, evals) = evaluate_cell(dataset, degradation, config, seed)?;
    kb.add_batch(records);
    Ok(evals)
}

/// Flatten phase 1 ("simple" criteria) into cells: every dataset ×
/// criterion × severity grid point. Fails fast on configuration errors
/// (e.g. a dataset with no numeric MAR driver).
pub fn phase1_cells(
    datasets: &[ExperimentDataset],
    criteria: &[Criterion],
    config: &ExperimentConfig,
) -> Result<Vec<ExperimentCell>> {
    let mut cells = Vec::with_capacity(datasets.len() * criteria.len() * config.severities.len());
    for (di, dataset) in datasets.iter().enumerate() {
        for (ci, criterion) in criteria.iter().enumerate() {
            for (si, &severity) in config.severities.iter().enumerate() {
                cells.push(ExperimentCell {
                    dataset: di,
                    degradation: criterion.degradation(severity, dataset)?,
                    seed: config
                        .seed
                        .wrapping_add((ci as u64) << 16)
                        .wrapping_add(si as u64),
                });
            }
        }
    }
    Ok(cells)
}

/// Flatten phase 2 ("mixed" criteria) into cells: every dataset × pair
/// × severity × severity grid point, minus the clean-clean baseline
/// (which belongs to phase 1).
pub fn phase2_cells(
    datasets: &[ExperimentDataset],
    pairs: &[(Criterion, Criterion)],
    config: &ExperimentConfig,
) -> Result<Vec<ExperimentCell>> {
    let mut cells = Vec::new();
    for (di, dataset) in datasets.iter().enumerate() {
        for (pi, (a, b)) in pairs.iter().enumerate() {
            for (si, &sa) in config.severities.iter().enumerate() {
                for (sj, &sb) in config.severities.iter().enumerate() {
                    if sa == 0.0 && sb == 0.0 {
                        continue;
                    }
                    // Compose by re-deriving each side's single-criterion
                    // degradation; `Degradation` is append-only so the
                    // defect order cannot silently change.
                    let mut degradation = a.degradation(sa, dataset)?;
                    degradation.extend(b.degradation(sb, dataset)?);
                    cells.push(ExperimentCell {
                        dataset: di,
                        degradation,
                        seed: config
                            .seed
                            .wrapping_add(0xF00D)
                            .wrapping_add((pi as u64) << 20)
                            .wrapping_add((si as u64) << 8)
                            .wrapping_add(sj as u64),
                    });
                }
            }
        }
    }
    Ok(cells)
}

/// Records flushed to the shared store per worker batch. Large enough
/// to amortize the write lock, small enough that progress is visible
/// to concurrent readers.
const FLUSH_THRESHOLD: usize = 64;

/// The executor's injection point: fires once per cell attempt, keyed
/// by the cell's position-derived seed (worker-independent, so a plan
/// selects the same cells at any worker count).
const CELL_FAULT_POINT: &str = "grid.cell.run";

/// One failed attempt, before the retry loop decides whether it is
/// final.
struct AttemptFailure {
    error: String,
    deadline_exceeded: bool,
}

/// The body of one cell attempt: fire the fault point, then evaluate.
fn attempt_body(
    dataset: &ExperimentDataset,
    degradation: &Degradation,
    config: &ExperimentConfig,
    seed: u64,
    plan: Option<&FaultPlan>,
    attempt: u32,
) -> Result<Vec<ExperimentRecord>> {
    if let Some(plan) = plan {
        plan.fire(CELL_FAULT_POINT, seed, attempt)?;
    }
    evaluate_cell(dataset, degradation, config, seed).map(|(records, _)| records)
}

/// Run one attempt inline with error and panic containment.
fn run_attempt_inline(
    dataset: &ExperimentDataset,
    degradation: &Degradation,
    config: &ExperimentConfig,
    seed: u64,
    plan: Option<&FaultPlan>,
    attempt: u32,
) -> std::result::Result<Vec<ExperimentRecord>, AttemptFailure> {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        attempt_body(dataset, degradation, config, seed, plan, attempt)
    }));
    match outcome {
        Ok(Ok(records)) => Ok(records),
        Ok(Err(e)) => Err(AttemptFailure {
            error: e.to_string(),
            deadline_exceeded: false,
        }),
        Err(panic) => Err(AttemptFailure {
            error: panic_message(panic.as_ref()),
            deadline_exceeded: false,
        }),
    }
}

/// Run one attempt on a detachable thread, bounded by `deadline`. On
/// timeout the thread is abandoned: its eventual result goes to a
/// channel nobody reads, so an overdue attempt can never write records.
fn run_attempt_with_deadline(
    dataset: &ExperimentDataset,
    degradation: &Degradation,
    config: &ExperimentConfig,
    seed: u64,
    plan: Option<&Arc<FaultPlan>>,
    attempt: u32,
    deadline: Duration,
) -> std::result::Result<Vec<ExperimentRecord>, AttemptFailure> {
    let dataset = dataset.clone();
    let degradation = degradation.clone();
    let config = config.clone();
    let plan = plan.cloned();
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let outcome = run_attempt_inline(
            &dataset,
            &degradation,
            &config,
            seed,
            plan.as_deref(),
            attempt,
        );
        let _ = tx.send(outcome);
    });
    match rx.recv_timeout(deadline) {
        Ok(outcome) => outcome,
        Err(_) => Err(AttemptFailure {
            error: format!("cell deadline of {deadline:?} exceeded"),
            deadline_exceeded: true,
        }),
    }
}

/// Delay before retry `attempt` (≥ 1): `base × 2^(attempt−1)`, capped
/// at one second. No jitter — replayability beats thundering-herd
/// avoidance in a bounded in-process pool.
fn retry_backoff(base: Duration, attempt: u32) -> Duration {
    const MAX_BACKOFF: Duration = Duration::from_secs(1);
    base.saturating_mul(1u32 << attempt.saturating_sub(1).min(10))
        .min(MAX_BACKOFF)
}

/// Run one cell with error and panic containment plus bounded retry:
/// up to `max_retries + 1` attempts, deterministic exponential backoff
/// between them, each bounded by `cell_deadline` when set. Only when
/// every attempt fails does the cell become a [`CellFailure`] — it
/// never tears down the executor.
fn run_one_cell(
    datasets: &[ExperimentDataset],
    cell: &ExperimentCell,
    config: &ExperimentConfig,
    plan: Option<&Arc<FaultPlan>>,
    stats: &mut WorkerStats,
) -> std::result::Result<Vec<ExperimentRecord>, CellFailure> {
    let dataset = &datasets[cell.dataset];
    let attempts = config.max_retries.saturating_add(1);
    let mut error = String::new();
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(retry_backoff(config.retry_backoff, attempt));
            stats.retries += 1;
            obs::counter_add("grid.cell.retries_total", 1);
        }
        let outcome = match config.cell_deadline {
            Some(deadline) => run_attempt_with_deadline(
                dataset,
                &cell.degradation,
                config,
                cell.seed,
                plan,
                attempt,
                deadline,
            ),
            None => run_attempt_inline(
                dataset,
                &cell.degradation,
                config,
                cell.seed,
                plan.map(Arc::as_ref),
                attempt,
            ),
        };
        match outcome {
            Ok(records) => return Ok(records),
            Err(failure) => {
                if failure.deadline_exceeded {
                    obs::counter_add("grid.cell.deadline_exceeded_total", 1);
                }
                error = failure.error;
            }
        }
    }
    Err(CellFailure {
        dataset: dataset.name.clone(),
        degradations: cell.degradation.describe(),
        seed: cell.seed,
        error,
        attempts,
    })
}

/// [`run_one_cell`] plus instrumentation: times the cell, bumps the
/// worker's local totals, and emits `grid.*` metrics when a registry is
/// installed. Shared by the sequential and parallel executor paths so
/// both report identically.
fn execute_cell(
    datasets: &[ExperimentDataset],
    cell: &ExperimentCell,
    config: &ExperimentConfig,
    plan: Option<&Arc<FaultPlan>>,
    stats: &mut WorkerStats,
) -> std::result::Result<Vec<ExperimentRecord>, CellFailure> {
    let start = Instant::now();
    let outcome = run_one_cell(datasets, cell, config, plan, stats);
    let elapsed = start.elapsed();
    stats.cells += 1;
    stats.busy_seconds += elapsed.as_secs_f64();
    obs::observe_duration("grid.cell.seconds", elapsed);
    obs::counter_add("grid.cells_total", 1);
    match &outcome {
        Ok(records) => obs::counter_add("grid.records_total", records.len() as u64),
        Err(_) => obs::counter_add("grid.cell_failures_total", 1),
    }
    outcome
}

/// Pre-register the grid histograms that sample counts rather than
/// latencies, so they get count-shaped buckets instead of the default
/// second-shaped ones. No-op when no registry is installed.
fn register_grid_histograms() {
    if let Some(registry) = obs::global() {
        registry.histogram_with("grid.injector_depth", obs::default_count_buckets());
        registry.histogram_with("grid.flush.batch_records", obs::default_count_buckets());
    }
}

pub(crate) fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// Pop local work, then steal: first a batch from the global injector,
/// then from a sibling worker. Returns `None` only when every queue is
/// empty, which is final because all cells are enqueued up front.
///
/// Time spent outside the local fast path is accumulated into
/// `stats.queue_wait_seconds` (and the `grid.queue_wait.seconds`
/// histogram); a successful steal bumps `stats.steals` and
/// `grid.steals_total`.
fn next_cell(
    local: &WorkerQueue<ExperimentCell>,
    global: &TaskInjector<ExperimentCell>,
    stealers: &[Stealer<ExperimentCell>],
    me: usize,
    stats: &mut WorkerStats,
) -> Option<ExperimentCell> {
    if let Some(cell) = local.pop() {
        return Some(cell);
    }
    let wait_start = Instant::now();
    let stolen = std::iter::repeat_with(|| {
        global.steal_batch_and_pop(local).or_else(|| {
            stealers
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != me)
                .map(|(_, s)| s.steal())
                .collect()
        })
    })
    .find(|s| !s.is_retry())
    .and_then(Steal::success);
    let waited = wait_start.elapsed();
    stats.queue_wait_seconds += waited.as_secs_f64();
    obs::observe_duration("grid.queue_wait.seconds", waited);
    if stolen.is_some() {
        stats.steals += 1;
        obs::counter_add("grid.steals_total", 1);
    }
    stolen
}

/// Execute a flat cell list on the work-stealing worker pool. Workers
/// batch records locally and flush them to `kb` (any [`RecordSink`]) in
/// chunks, so a lock-based sink's write lock is amortized over
/// `FLUSH_THRESHOLD` records — and a snapshot-swap sink coalesces the
/// flushes into few generations. Failed cells are collected, not fatal.
pub fn run_cells<S: RecordSink>(
    datasets: &[ExperimentDataset],
    cells: Vec<ExperimentCell>,
    config: &ExperimentConfig,
    kb: &S,
) -> Result<GridReport> {
    let run_start = Instant::now();
    register_grid_histograms();
    let plan = config.fault_plan.clone().or_else(openbi_faults::active);
    let n_cells = cells.len();
    let workers = config.effective_workers().min(n_cells.max(1));
    if workers <= 1 {
        let mut report = GridReport {
            cells: n_cells,
            ..GridReport::default()
        };
        let mut stats = WorkerStats::default();
        let mut batch: Vec<ExperimentRecord> = Vec::new();
        for (i, cell) in cells.iter().enumerate() {
            obs::observe("grid.injector_depth", (n_cells - i - 1) as f64);
            match execute_cell(datasets, cell, config, plan.as_ref(), &mut stats) {
                Ok(mut records) => {
                    report.records += records.len();
                    report.cells_succeeded += 1;
                    batch.append(&mut records);
                }
                Err(failure) => report.failures.push(failure),
            }
            if batch.len() >= FLUSH_THRESHOLD {
                obs::observe("grid.flush.batch_records", batch.len() as f64);
                kb.add_batch(std::mem::take(&mut batch));
            }
        }
        if !batch.is_empty() {
            obs::observe("grid.flush.batch_records", batch.len() as f64);
        }
        kb.add_batch(batch);
        report.wall_seconds = run_start.elapsed().as_secs_f64();
        report.worker_stats = vec![stats];
        return Ok(report);
    }
    let global = TaskInjector::new();
    for cell in cells {
        global.push(cell);
    }
    let locals: Vec<WorkerQueue<ExperimentCell>> =
        (0..workers).map(|_| WorkerQueue::new_fifo()).collect();
    let stealers: Vec<Stealer<ExperimentCell>> = locals.iter().map(WorkerQueue::stealer).collect();
    let records = AtomicUsize::new(0);
    let successes = AtomicUsize::new(0);
    // Cells not yet claimed by any worker; decremented on claim and
    // sampled into `grid.injector_depth`. Tracked ourselves rather than
    // polling the injector so the sample is one relaxed atomic op.
    let remaining = AtomicUsize::new(n_cells);
    let failures: Mutex<Vec<CellFailure>> = Mutex::new(Vec::new());
    let worker_stats: Mutex<Vec<WorkerStats>> = Mutex::new(Vec::with_capacity(workers));
    crossbeam::thread::scope(|scope| {
        for (wi, local) in locals.into_iter().enumerate() {
            let global = &global;
            let stealers = &stealers;
            let records = &records;
            let successes = &successes;
            let remaining = &remaining;
            let failures = &failures;
            let worker_stats = &worker_stats;
            let plan = plan.as_ref();
            scope.spawn(move |_| {
                let mut stats = WorkerStats {
                    worker: wi,
                    ..WorkerStats::default()
                };
                let mut batch: Vec<ExperimentRecord> = Vec::new();
                while let Some(cell) = next_cell(&local, global, stealers, wi, &mut stats) {
                    let depth = remaining.fetch_sub(1, Ordering::Relaxed).saturating_sub(1);
                    obs::observe("grid.injector_depth", depth as f64);
                    match execute_cell(datasets, &cell, config, plan, &mut stats) {
                        Ok(mut recs) => {
                            records.fetch_add(recs.len(), Ordering::Relaxed);
                            successes.fetch_add(1, Ordering::Relaxed);
                            batch.append(&mut recs);
                        }
                        Err(failure) => failures.lock().push(failure),
                    }
                    if batch.len() >= FLUSH_THRESHOLD {
                        obs::observe("grid.flush.batch_records", batch.len() as f64);
                        kb.add_batch(std::mem::take(&mut batch));
                    }
                }
                if !batch.is_empty() {
                    obs::observe("grid.flush.batch_records", batch.len() as f64);
                }
                kb.add_batch(batch);
                worker_stats.lock().push(stats);
            });
        }
    })
    .map_err(|_| OpenBiError::Config("experiment executor scope panicked".into()))?;
    let mut worker_stats = worker_stats.into_inner();
    worker_stats.sort_by_key(|s| s.worker);
    Ok(GridReport {
        records: records.load(Ordering::Relaxed),
        cells: n_cells,
        cells_succeeded: successes.load(Ordering::Relaxed),
        failures: failures.into_inner(),
        wall_seconds: run_start.elapsed().as_secs_f64(),
        worker_stats,
    })
}

/// Run phase 1 ("simple" criteria) on all datasets, reporting both the
/// records produced and any skipped cells.
pub fn run_phase1_report<S: RecordSink>(
    datasets: &[ExperimentDataset],
    criteria: &[Criterion],
    config: &ExperimentConfig,
    kb: &S,
) -> Result<GridReport> {
    let _phase = obs::span("grid.phase1.seconds");
    let cells = phase1_cells(datasets, criteria, config)?;
    run_cells(datasets, cells, config, kb)
}

/// Run phase 2 ("mixed" criteria) on all datasets, reporting both the
/// records produced and any skipped cells.
pub fn run_phase2_report<S: RecordSink>(
    datasets: &[ExperimentDataset],
    pairs: &[(Criterion, Criterion)],
    config: &ExperimentConfig,
    kb: &S,
) -> Result<GridReport> {
    let _phase = obs::span("grid.phase2.seconds");
    let cells = phase2_cells(datasets, pairs, config)?;
    run_cells(datasets, cells, config, kb)
}

/// Run phase 1 ("simple" criteria) on all datasets. Returns the number
/// of knowledge-base records produced.
pub fn run_phase1<S: RecordSink>(
    datasets: &[ExperimentDataset],
    criteria: &[Criterion],
    config: &ExperimentConfig,
    kb: &S,
) -> Result<usize> {
    run_phase1_report(datasets, criteria, config, kb).map(|r| r.records)
}

/// Run phase 2 ("mixed" criteria) on all datasets. Returns the number of
/// knowledge-base records produced.
pub fn run_phase2<S: RecordSink>(
    datasets: &[ExperimentDataset],
    pairs: &[(Criterion, Criterion)],
    config: &ExperimentConfig,
    kb: &S,
) -> Result<usize> {
    run_phase2_report(datasets, pairs, config, kb).map(|r| r.records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use openbi_datagen::make_blobs;
    use openbi_datagen::BlobsConfig;

    fn small_dataset() -> ExperimentDataset {
        ExperimentDataset::new(
            "blobs-test",
            make_blobs(&BlobsConfig {
                n_rows: 120,
                n_features: 3,
                n_classes: 2,
                class_separation: 4.0,
                seed: 5,
            }),
            "class",
        )
    }

    fn fast_config() -> ExperimentConfig {
        ExperimentConfig {
            algorithms: vec![AlgorithmSpec::ZeroR, AlgorithmSpec::NaiveBayes],
            severities: vec![0.0, 0.6],
            folds: 3,
            seed: 9,
            parallel: false,
            workers: 0,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn criterion_catalog_is_complete() {
        assert_eq!(Criterion::all().len(), 10);
        let names: Vec<&str> = Criterion::all().iter().map(|c| c.name()).collect();
        assert!(names.contains(&"completeness"));
        assert!(names.contains(&"dimensionality"));
    }

    #[test]
    fn severity_zero_is_identity() {
        let d = small_dataset();
        for c in Criterion::all() {
            let deg = c.degradation(0.0, &d).unwrap();
            assert!(deg.is_empty(), "{:?}", c);
        }
    }

    #[test]
    fn degradations_change_the_profile() {
        let d = small_dataset();
        let deg = Criterion::Completeness.degradation(0.8, &d).unwrap();
        let out = deg.apply(&d.table, 1).unwrap();
        assert!(out.total_null_count() > 0);
        let deg = Criterion::Dimensionality.degradation(0.5, &d).unwrap();
        let out = deg.apply(&d.table, 1).unwrap();
        assert_eq!(out.n_cols(), d.table.n_cols() + 24);
    }

    #[test]
    fn invalid_severity_rejected() {
        let d = small_dataset();
        assert!(Criterion::Completeness.degradation(1.5, &d).is_err());
    }

    #[test]
    fn phase1_populates_kb() {
        let kb = SharedKnowledgeBase::default();
        let n = run_phase1(
            &[small_dataset()],
            &[Criterion::Completeness, Criterion::LabelNoise],
            &fast_config(),
            &kb,
        )
        .unwrap();
        // 2 criteria × 2 severities × 2 algorithms = 8 records.
        assert_eq!(n, 8);
        assert_eq!(kb.len(), 8);
        let snapshot = kb.snapshot();
        // Clean baselines recorded with empty degradations.
        assert!(snapshot.records().iter().any(|r| r.degradations.is_empty()));
        // NaiveBayes beats ZeroR on the clean separable baseline.
        let nb = snapshot
            .records()
            .iter()
            .find(|r| r.algorithm == "NaiveBayes" && r.degradations.is_empty())
            .unwrap();
        let zr = snapshot
            .records()
            .iter()
            .find(|r| r.algorithm == "ZeroR" && r.degradations.is_empty())
            .unwrap();
        assert!(nb.metrics.accuracy > zr.metrics.accuracy + 0.2);
    }

    #[test]
    fn phase2_composes_defects() {
        let kb = SharedKnowledgeBase::default();
        let config = ExperimentConfig {
            severities: vec![0.0, 0.5],
            ..fast_config()
        };
        let n = run_phase2(
            &[small_dataset()],
            &[(Criterion::Completeness, Criterion::LabelNoise)],
            &config,
            &kb,
        )
        .unwrap();
        // 1 pair × (2×2 − 1 skipped clean-clean) severity combos × 2 algos.
        assert_eq!(n, 6);
        let snapshot = kb.snapshot();
        assert!(
            snapshot.records().iter().any(|r| r.degradations.len() == 2),
            "mixed variants carry two defects"
        );
    }

    #[test]
    fn phase1_cells_cover_the_grid_with_position_seeds() {
        let d = small_dataset();
        let config = fast_config();
        let cells = phase1_cells(
            &[d],
            &[Criterion::Completeness, Criterion::LabelNoise],
            &config,
        )
        .unwrap();
        // 1 dataset × 2 criteria × 2 severities.
        assert_eq!(cells.len(), 4);
        // Seeds depend on the grid position, not on the cell order.
        assert_eq!(cells[0].seed, config.seed);
        assert_eq!(cells[1].seed, config.seed + 1);
        assert_eq!(cells[2].seed, config.seed + (1 << 16));
        // Severity 0 cells carry the empty (clean-baseline) degradation.
        assert!(cells[0].degradation.is_empty());
        assert!(!cells[1].degradation.is_empty());
    }

    #[test]
    fn bad_cell_is_skipped_not_fatal() {
        // A dataset whose target column does not exist fails inside the
        // cell (Instances conversion), not at cell-building time.
        let good = small_dataset();
        let mut bad = small_dataset();
        bad.name = "broken".into();
        bad.target = "no-such-column".into();
        for workers in [1usize, 4] {
            let kb = SharedKnowledgeBase::default();
            let config = ExperimentConfig {
                parallel: workers > 1,
                workers,
                ..fast_config()
            };
            let report = run_phase1_report(
                &[good.clone(), bad.clone()],
                &[Criterion::LabelNoise],
                &config,
                &kb,
            )
            .unwrap();
            // The good dataset's 2 severities × 2 algorithms survive.
            assert_eq!(report.records, 4, "workers={workers}");
            assert_eq!(kb.len(), 4);
            assert_eq!(report.cells, 4);
            assert_eq!(report.cells_succeeded, 2);
            assert_eq!(report.failures.len(), 2);
            assert!(report.failures.iter().all(|f| f.dataset == "broken"));
            assert!(!report.failures[0].error.is_empty());
            // Retries are off by default: one attempt, no retry totals.
            assert!(report.failures.iter().all(|f| f.attempts == 1));
            assert_eq!(report.total_retries(), 0);
        }
    }

    #[test]
    fn worker_stats_cover_all_cells() {
        // 1 dataset × 2 criteria × 2 severities = 4 cells.
        for workers in [1usize, 4] {
            let kb = SharedKnowledgeBase::default();
            let config = ExperimentConfig {
                parallel: workers > 1,
                workers,
                ..fast_config()
            };
            let report = run_phase1_report(
                &[small_dataset()],
                &[Criterion::Completeness, Criterion::LabelNoise],
                &config,
                &kb,
            )
            .unwrap();
            assert_eq!(report.worker_stats.len(), workers, "workers={workers}");
            let cells: usize = report.worker_stats.iter().map(|s| s.cells).sum();
            assert_eq!(cells, report.cells, "workers={workers}");
            let indices: Vec<usize> = report.worker_stats.iter().map(|s| s.worker).collect();
            assert_eq!(indices, (0..workers).collect::<Vec<_>>());
            assert!(report.wall_seconds > 0.0);
            // Busy time is bounded by each worker's share of the wall.
            let busy: f64 = report.worker_stats.iter().map(|s| s.busy_seconds).sum();
            assert!(busy <= report.wall_seconds * workers as f64 + 1e-6);
        }
    }

    #[test]
    fn panic_message_handles_all_payload_shapes() {
        let p: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(panic_message(p.as_ref()), "panic: static str");
        let p: Box<dyn std::any::Any + Send> = Box::new(String::from("owned message"));
        assert_eq!(panic_message(p.as_ref()), "panic: owned message");
        let p: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(p.as_ref()), "panic: <non-string payload>");
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let base = Duration::from_millis(10);
        assert_eq!(retry_backoff(base, 1), Duration::from_millis(10));
        assert_eq!(retry_backoff(base, 2), Duration::from_millis(20));
        assert_eq!(retry_backoff(base, 3), Duration::from_millis(40));
        assert_eq!(retry_backoff(base, 30), Duration::from_secs(1));
        assert_eq!(retry_backoff(Duration::ZERO, 5), Duration::ZERO);
    }

    #[test]
    fn injected_fault_is_retried_to_success() {
        use openbi_faults::{FaultPlan, FaultRule};
        // Every cell fails its first attempt, then retries succeed.
        let plan = Arc::new(FaultPlan::new(11).with(FaultRule::error(CELL_FAULT_POINT)));
        for workers in [1usize, 4] {
            let kb = SharedKnowledgeBase::default();
            let config = ExperimentConfig {
                parallel: workers > 1,
                workers,
                max_retries: 1,
                retry_backoff: Duration::ZERO,
                fault_plan: Some(Arc::clone(&plan)),
                ..fast_config()
            };
            let report =
                run_phase1_report(&[small_dataset()], &[Criterion::LabelNoise], &config, &kb)
                    .unwrap();
            assert!(
                report.failures.is_empty(),
                "workers={workers}: {:?}",
                report.failures
            );
            assert_eq!(report.records, 4, "workers={workers}");
            assert_eq!(report.cells_succeeded, report.cells);
            assert_eq!(
                report.total_retries(),
                report.cells,
                "workers={workers}: every cell fails exactly once"
            );
        }
    }

    #[test]
    fn exhausted_retries_record_attempt_count() {
        use openbi_faults::{FaultPlan, FaultRule};
        let plan = Arc::new(FaultPlan::new(3).with(
            FaultRule::error(CELL_FAULT_POINT).times(u32::MAX), // persistent
        ));
        let kb = SharedKnowledgeBase::default();
        let config = ExperimentConfig {
            max_retries: 2,
            retry_backoff: Duration::ZERO,
            fault_plan: Some(plan),
            ..fast_config()
        };
        let report =
            run_phase1_report(&[small_dataset()], &[Criterion::LabelNoise], &config, &kb).unwrap();
        assert_eq!(report.records, 0);
        assert_eq!(report.cells_succeeded, 0);
        assert_eq!(report.failures.len(), report.cells);
        assert!(
            report.failures.iter().all(|f| f.attempts == 3),
            "max_retries + 1"
        );
        assert!(report.failures[0].error.contains("injected fault"));
        assert_eq!(report.total_retries(), 2 * report.cells);
    }

    #[test]
    fn deadline_bounds_a_hung_cell() {
        use openbi_faults::{FaultPlan, FaultRule};
        // The injected delay exceeds the deadline on every attempt, so
        // the single cell is abandoned rather than waited on.
        let plan = Arc::new(
            FaultPlan::new(5).with(FaultRule::delay(CELL_FAULT_POINT, 400).times(u32::MAX)),
        );
        let kb = SharedKnowledgeBase::default();
        let config = ExperimentConfig {
            severities: vec![0.5],
            cell_deadline: Some(Duration::from_millis(50)),
            retry_backoff: Duration::ZERO,
            fault_plan: Some(plan),
            ..fast_config()
        };
        let report =
            run_phase1_report(&[small_dataset()], &[Criterion::LabelNoise], &config, &kb).unwrap();
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].attempts, 1);
        assert!(
            report.failures[0].error.contains("deadline"),
            "{}",
            report.failures[0].error
        );
        assert_eq!(kb.len(), 0, "abandoned attempts must not write records");
    }

    #[test]
    fn deadline_passes_fast_cells_through() {
        // A generous deadline on healthy cells: same records, no
        // failures — the deadline path must not change results.
        let kb = SharedKnowledgeBase::default();
        let config = ExperimentConfig {
            cell_deadline: Some(Duration::from_secs(60)),
            ..fast_config()
        };
        let n = run_phase1(&[small_dataset()], &[Criterion::LabelNoise], &config, &kb).unwrap();
        assert_eq!(n, 4);
        assert_eq!(kb.len(), 4);
    }

    #[test]
    fn worker_count_does_not_change_records() {
        let datasets = vec![small_dataset(), {
            let mut d = small_dataset();
            d.name = "blobs-test-2".into();
            d
        }];
        let criteria = [Criterion::LabelNoise, Criterion::Completeness];
        let run = |parallel: bool, workers: usize| {
            let kb = SharedKnowledgeBase::default();
            let config = ExperimentConfig {
                parallel,
                workers,
                ..fast_config()
            };
            run_phase1(&datasets, &criteria, &config, &kb).unwrap();
            let mut keys: Vec<String> = kb
                .snapshot()
                .records()
                .iter()
                .map(|r| {
                    format!(
                        "{}|{:?}|{}|{}|{:.12}|{:.12}|{:.12}",
                        r.dataset,
                        r.degradations,
                        r.algorithm,
                        r.seed,
                        r.metrics.accuracy,
                        r.metrics.kappa,
                        r.metrics.model_size
                    )
                })
                .collect();
            keys.sort();
            keys
        };
        let sequential = run(false, 1);
        assert_eq!(sequential, run(true, 1));
        assert_eq!(sequential, run(true, 4));
    }

    #[test]
    fn parallel_and_serial_produce_same_count() {
        let datasets = vec![small_dataset(), {
            let mut d = small_dataset();
            d.name = "blobs-test-2".into();
            d
        }];
        let serial_kb = SharedKnowledgeBase::default();
        let serial = run_phase1(
            &datasets,
            &[Criterion::LabelNoise],
            &fast_config(),
            &serial_kb,
        )
        .unwrap();
        let parallel_kb = SharedKnowledgeBase::default();
        let config = ExperimentConfig {
            parallel: true,
            ..fast_config()
        };
        let parallel =
            run_phase1(&datasets, &[Criterion::LabelNoise], &config, &parallel_kb).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial_kb.len(), parallel_kb.len());
    }

    /// The executor is generic over its sink: running the same grid
    /// into the snapshot-swap serving store must produce the same
    /// record set as the lock-based store (order-independent — parallel
    /// arrival order is worker-timing dependent on both paths).
    #[test]
    fn snapshot_sink_matches_shared_sink() {
        use openbi_kb::SnapshotKnowledgeBase;

        let datasets = vec![small_dataset()];
        let criteria = [Criterion::Completeness, Criterion::LabelNoise];

        let shared = SharedKnowledgeBase::default();
        run_phase1(&datasets, &criteria, &fast_config(), &shared).unwrap();

        let snapshot_store = SnapshotKnowledgeBase::default();
        let config = ExperimentConfig {
            parallel: true,
            workers: 4,
            ..fast_config()
        };
        run_phase1(&datasets, &criteria, &config, &snapshot_store).unwrap();
        let generation = snapshot_store.flush().unwrap();
        assert!(generation >= 1, "the grid must have published");
        assert_eq!(snapshot_store.pending_len(), 0);

        let fingerprint = |records: &[ExperimentRecord]| -> Vec<String> {
            let mut keys: Vec<String> = records
                .iter()
                .map(|r| {
                    let mut r = r.clone();
                    r.metrics.train_ms = 0.0;
                    serde_json::to_string(&r).unwrap()
                })
                .collect();
            keys.sort();
            keys
        };
        assert_eq!(
            fingerprint(snapshot_store.pin().records()),
            fingerprint(shared.snapshot().records())
        );
    }
}
