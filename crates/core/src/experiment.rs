//! The §3.1 experiment runner: degrade clean datasets in a controlled
//! way, evaluate every algorithm on every degraded variant, and record
//! everything in the DQ4DM knowledge base.
//!
//! * **Phase 1 ("simple")** applies each data-quality criterion
//!   individually, over a severity sweep.
//! * **Phase 2 ("mixed")** applies pairs of criteria jointly.
//!
//! Both phases flatten into independent [`ExperimentCell`]s — one per
//! (dataset, degradation, seed) grid point — executed by a
//! work-stealing worker pool (crossbeam injector/stealer deques)
//! against a [`SharedKnowledgeBase`]. Each cell's seed is derived from
//! its grid position, never from the worker that happens to run it, so
//! any worker count produces the same records.

use crate::error::{OpenBiError, Result};
use openbi_kb::{ExperimentRecord, PerfMetrics, SharedKnowledgeBase};
use openbi_mining::eval::crossval::cross_validate;
use openbi_mining::{AlgorithmSpec, EvalResult, Instances};
use openbi_quality::inject::{
    AttributeNoiseInjector, CorrelatedInjector, Degradation, DuplicateInjector, ImbalanceInjector,
    InconsistencyInjector, IrrelevantInjector, LabelNoiseInjector, MissingInjector,
    OutlierInjector,
};
use openbi_quality::{measure_profile, MeasureOptions};
use openbi_table::Table;

use crossbeam::deque::{Injector as TaskInjector, Steal, Stealer, Worker as WorkerQueue};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A clean input dataset for the experiments.
#[derive(Debug, Clone)]
pub struct ExperimentDataset {
    /// Dataset identifier.
    pub name: String,
    /// The clean table.
    pub table: Table,
    /// Target (class) column.
    pub target: String,
    /// Identifier columns excluded from mining.
    pub exclude: Vec<String>,
}

impl ExperimentDataset {
    /// Create a dataset with no excluded columns.
    pub fn new(name: impl Into<String>, table: Table, target: impl Into<String>) -> Self {
        ExperimentDataset {
            name: name.into(),
            table,
            target: target.into(),
            exclude: vec![],
        }
    }

    /// The first numeric feature column — used as MAR driver and
    /// redundancy source.
    pub fn numeric_driver(&self) -> Option<String> {
        self.table
            .columns()
            .iter()
            .find(|c| {
                c.dtype().is_numeric()
                    && c.name() != self.target
                    && !self.exclude.iter().any(|e| e == c.name())
            })
            .map(|c| c.name().to_string())
    }
}

/// The data-quality criteria of the experiment suite (the paper's "data
/// quality criteria" axis of Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Criterion {
    /// MCAR missing values (experiment E1).
    Completeness,
    /// MAR missing values driven by a numeric attribute (E1).
    CompletenessMar,
    /// Class-label flips (E2).
    LabelNoise,
    /// Gaussian attribute noise (E3).
    AttributeNoise,
    /// Class imbalance by minority subsampling (E4).
    Imbalance,
    /// Strongly correlated redundant attributes (E5).
    Redundancy,
    /// Irrelevant attributes / high dimensionality (E6).
    Dimensionality,
    /// Exact + near duplicate rows (E7).
    Duplicates,
    /// Numeric outliers (companion of E3).
    Outliers,
    /// Inconsistent string formats.
    Inconsistency,
}

impl Criterion {
    /// The full criterion list, in experiment order.
    pub fn all() -> Vec<Criterion> {
        vec![
            Criterion::Completeness,
            Criterion::CompletenessMar,
            Criterion::LabelNoise,
            Criterion::AttributeNoise,
            Criterion::Imbalance,
            Criterion::Redundancy,
            Criterion::Dimensionality,
            Criterion::Duplicates,
            Criterion::Outliers,
            Criterion::Inconsistency,
        ]
    }

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            Criterion::Completeness => "completeness",
            Criterion::CompletenessMar => "completeness-mar",
            Criterion::LabelNoise => "label-noise",
            Criterion::AttributeNoise => "attribute-noise",
            Criterion::Imbalance => "imbalance",
            Criterion::Redundancy => "redundancy",
            Criterion::Dimensionality => "dimensionality",
            Criterion::Duplicates => "duplicates",
            Criterion::Outliers => "outliers",
            Criterion::Inconsistency => "inconsistency",
        }
    }

    /// Build the degradation realizing this criterion at `severity` in
    /// `[0,1]` on the given dataset. Severity 0 is the clean baseline.
    pub fn degradation(&self, severity: f64, dataset: &ExperimentDataset) -> Result<Degradation> {
        if !(0.0..=1.0).contains(&severity) {
            return Err(OpenBiError::Config(format!(
                "severity {severity} outside [0,1]"
            )));
        }
        if severity == 0.0 {
            return Ok(Degradation::new());
        }
        let target = dataset.target.clone();
        let protect: Vec<String> = dataset
            .exclude
            .iter()
            .cloned()
            .chain([target.clone()])
            .collect();
        let d =
            match self {
                Criterion::Completeness => {
                    Degradation::new().then(MissingInjector::mcar(0.4 * severity).exclude(protect))
                }
                Criterion::CompletenessMar => {
                    let driver = dataset.numeric_driver().ok_or_else(|| {
                        OpenBiError::Config(format!(
                            "dataset {} has no numeric driver for MAR",
                            dataset.name
                        ))
                    })?;
                    Degradation::new()
                        .then(MissingInjector::mar(0.4 * severity, driver).exclude(protect))
                }
                Criterion::LabelNoise => {
                    Degradation::new().then(LabelNoiseInjector::new(target, 0.35 * severity))
                }
                Criterion::AttributeNoise => Degradation::new()
                    .then(AttributeNoiseInjector::new(severity.min(1.0), 2.0).exclude(protect)),
                Criterion::Imbalance => {
                    Degradation::new().then(ImbalanceInjector::new(target, 0.5 + 0.45 * severity))
                }
                Criterion::Redundancy => {
                    let source = dataset.numeric_driver().ok_or_else(|| {
                        OpenBiError::Config(format!(
                            "dataset {} has no numeric source for redundancy",
                            dataset.name
                        ))
                    })?;
                    let copies = (4.0 * severity).round().max(1.0) as usize;
                    Degradation::new().then(CorrelatedInjector::new(source, copies, 0.05))
                }
                Criterion::Dimensionality => {
                    let count = (48.0 * severity).round().max(1.0) as usize;
                    Degradation::new().then(IrrelevantInjector::gaussian(count))
                }
                Criterion::Duplicates => Degradation::new()
                    .then(DuplicateInjector::near(0.45 * severity, 0.02).exclude(protect)),
                Criterion::Outliers => Degradation::new()
                    .then(OutlierInjector::new(0.12 * severity, 6.0).exclude(protect)),
                Criterion::Inconsistency => Degradation::new()
                    .then(InconsistencyInjector::new(0.8 * severity).exclude(protect)),
            };
        Ok(d)
    }
}

/// Experiment-suite configuration (the paper's "user profile" input:
/// which criteria to assess and which techniques the user considers).
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Algorithms to evaluate.
    pub algorithms: Vec<AlgorithmSpec>,
    /// Severity sweep (0 = clean baseline; include it to anchor curves).
    pub severities: Vec<f64>,
    /// Cross-validation folds.
    pub folds: usize,
    /// Master seed.
    pub seed: u64,
    /// Run experiment cells on a parallel worker pool.
    pub parallel: bool,
    /// Worker threads for the cell executor; 0 = one per available
    /// core. Ignored when `parallel` is off.
    pub workers: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            algorithms: AlgorithmSpec::standard_suite(),
            severities: vec![0.0, 0.25, 0.5, 0.75, 1.0],
            folds: 5,
            seed: 42,
            parallel: true,
            workers: 0,
        }
    }
}

impl ExperimentConfig {
    /// The worker count the executor will actually use: 1 when
    /// `parallel` is off, `workers` when nonzero, otherwise one worker
    /// per available core.
    pub fn effective_workers(&self) -> usize {
        if !self.parallel {
            1
        } else if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// One independent unit of the experiment grid: a dataset, the
/// degradation to apply to it, and the seed that reproduces it. Cells
/// carry everything a worker needs, so the executor can hand them to
/// any thread in any order.
#[derive(Debug)]
pub struct ExperimentCell {
    /// Index into the dataset slice handed to the executor.
    pub dataset: usize,
    /// The degradation this cell applies before evaluating.
    pub degradation: Degradation,
    /// Cell seed, derived from the grid position — never from the
    /// worker — so parallel and sequential runs yield identical records.
    pub seed: u64,
}

/// A cell that failed or panicked, with enough context to re-run it.
#[derive(Debug, Clone)]
pub struct CellFailure {
    /// Dataset name.
    pub dataset: String,
    /// Human-readable degradation steps of the failed cell.
    pub degradations: Vec<String>,
    /// The cell seed.
    pub seed: u64,
    /// The error or panic message.
    pub error: String,
}

/// What a grid run produced: record count plus the cells that were
/// skipped because they failed. One bad cell no longer poisons the
/// whole suite — it lands here instead.
#[derive(Debug, Clone, Default)]
pub struct GridReport {
    /// Knowledge-base records written.
    pub records: usize,
    /// Total cells executed (including failed ones).
    pub cells: usize,
    /// Cells that errored or panicked and were skipped.
    pub failures: Vec<CellFailure>,
}

/// Evaluate one degraded variant without touching any store. The
/// degraded table, its quality profile, and the `Table` → [`Instances`]
/// conversion are built once and shared by every algorithm evaluation.
fn evaluate_cell(
    dataset: &ExperimentDataset,
    degradation: &Degradation,
    config: &ExperimentConfig,
    seed: u64,
) -> Result<(Vec<ExperimentRecord>, Vec<(AlgorithmSpec, EvalResult)>)> {
    let degraded = degradation.apply(&dataset.table, seed)?;
    let exclude: Vec<&str> = dataset.exclude.iter().map(String::as_str).collect();
    let profile = measure_profile(
        &degraded,
        &MeasureOptions {
            target: Some(dataset.target.clone()),
            exclude: dataset.exclude.clone(),
            ..Default::default()
        },
    );
    let instances = Instances::from_table(&degraded, Some(&dataset.target), &exclude)?;
    let mut records = Vec::with_capacity(config.algorithms.len());
    let mut evals = Vec::with_capacity(config.algorithms.len());
    for spec in &config.algorithms {
        let eval = cross_validate(&instances, spec, config.folds, seed)?;
        records.push(ExperimentRecord {
            dataset: dataset.name.clone(),
            degradations: degradation.describe(),
            profile: profile.clone(),
            algorithm: eval.algorithm.clone(),
            metrics: PerfMetrics {
                accuracy: eval.accuracy(),
                macro_f1: eval.macro_f1(),
                minority_f1: eval.minority_f1(),
                kappa: eval.kappa(),
                train_ms: eval.train_ms,
                model_size: eval.model_size,
            },
            seed,
        });
        evals.push((spec.clone(), eval));
    }
    Ok((records, evals))
}

/// Evaluate one degraded variant: returns the per-algorithm results and
/// pushes records into the knowledge base.
pub fn evaluate_variant(
    dataset: &ExperimentDataset,
    degradation: &Degradation,
    config: &ExperimentConfig,
    seed: u64,
    kb: &SharedKnowledgeBase,
) -> Result<Vec<(AlgorithmSpec, EvalResult)>> {
    let (records, evals) = evaluate_cell(dataset, degradation, config, seed)?;
    kb.add_batch(records);
    Ok(evals)
}

/// Flatten phase 1 ("simple" criteria) into cells: every dataset ×
/// criterion × severity grid point. Fails fast on configuration errors
/// (e.g. a dataset with no numeric MAR driver).
pub fn phase1_cells(
    datasets: &[ExperimentDataset],
    criteria: &[Criterion],
    config: &ExperimentConfig,
) -> Result<Vec<ExperimentCell>> {
    let mut cells = Vec::with_capacity(datasets.len() * criteria.len() * config.severities.len());
    for (di, dataset) in datasets.iter().enumerate() {
        for (ci, criterion) in criteria.iter().enumerate() {
            for (si, &severity) in config.severities.iter().enumerate() {
                cells.push(ExperimentCell {
                    dataset: di,
                    degradation: criterion.degradation(severity, dataset)?,
                    seed: config
                        .seed
                        .wrapping_add((ci as u64) << 16)
                        .wrapping_add(si as u64),
                });
            }
        }
    }
    Ok(cells)
}

/// Flatten phase 2 ("mixed" criteria) into cells: every dataset × pair
/// × severity × severity grid point, minus the clean-clean baseline
/// (which belongs to phase 1).
pub fn phase2_cells(
    datasets: &[ExperimentDataset],
    pairs: &[(Criterion, Criterion)],
    config: &ExperimentConfig,
) -> Result<Vec<ExperimentCell>> {
    let mut cells = Vec::new();
    for (di, dataset) in datasets.iter().enumerate() {
        for (pi, (a, b)) in pairs.iter().enumerate() {
            for (si, &sa) in config.severities.iter().enumerate() {
                for (sj, &sb) in config.severities.iter().enumerate() {
                    if sa == 0.0 && sb == 0.0 {
                        continue;
                    }
                    // Compose by re-deriving each side's single-criterion
                    // degradation; `Degradation` is append-only so the
                    // defect order cannot silently change.
                    let mut degradation = a.degradation(sa, dataset)?;
                    degradation.extend(b.degradation(sb, dataset)?);
                    cells.push(ExperimentCell {
                        dataset: di,
                        degradation,
                        seed: config
                            .seed
                            .wrapping_add(0xF00D)
                            .wrapping_add((pi as u64) << 20)
                            .wrapping_add((si as u64) << 8)
                            .wrapping_add(sj as u64),
                    });
                }
            }
        }
    }
    Ok(cells)
}

/// Records flushed to the shared store per worker batch. Large enough
/// to amortize the write lock, small enough that progress is visible
/// to concurrent readers.
const FLUSH_THRESHOLD: usize = 64;

/// Run one cell with error and panic containment: any failure becomes a
/// [`CellFailure`] instead of tearing down the executor.
fn run_one_cell(
    datasets: &[ExperimentDataset],
    cell: &ExperimentCell,
    config: &ExperimentConfig,
) -> std::result::Result<Vec<ExperimentRecord>, CellFailure> {
    let dataset = &datasets[cell.dataset];
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        evaluate_cell(dataset, &cell.degradation, config, cell.seed)
    }));
    let error = match outcome {
        Ok(Ok((records, _))) => return Ok(records),
        Ok(Err(e)) => e.to_string(),
        Err(panic) => panic_message(panic.as_ref()),
    };
    Err(CellFailure {
        dataset: dataset.name.clone(),
        degradations: cell.degradation.describe(),
        seed: cell.seed,
        error,
    })
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// Pop local work, then steal: first a batch from the global injector,
/// then from a sibling worker. Returns `None` only when every queue is
/// empty, which is final because all cells are enqueued up front.
fn next_cell(
    local: &WorkerQueue<ExperimentCell>,
    global: &TaskInjector<ExperimentCell>,
    stealers: &[Stealer<ExperimentCell>],
    me: usize,
) -> Option<ExperimentCell> {
    local.pop().or_else(|| {
        std::iter::repeat_with(|| {
            global.steal_batch_and_pop(local).or_else(|| {
                stealers
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != me)
                    .map(|(_, s)| s.steal())
                    .collect()
            })
        })
        .find(|s| !s.is_retry())
        .and_then(Steal::success)
    })
}

/// Execute a flat cell list on the work-stealing worker pool. Workers
/// batch records locally and flush them to `kb` in chunks, so the
/// shared write lock is taken once per [`FLUSH_THRESHOLD`] records
/// instead of once per record. Failed cells are collected, not fatal.
pub fn run_cells(
    datasets: &[ExperimentDataset],
    cells: Vec<ExperimentCell>,
    config: &ExperimentConfig,
    kb: &SharedKnowledgeBase,
) -> Result<GridReport> {
    let n_cells = cells.len();
    let workers = config.effective_workers().min(n_cells.max(1));
    if workers <= 1 {
        let mut report = GridReport {
            cells: n_cells,
            ..GridReport::default()
        };
        let mut batch: Vec<ExperimentRecord> = Vec::new();
        for cell in &cells {
            match run_one_cell(datasets, cell, config) {
                Ok(mut records) => {
                    report.records += records.len();
                    batch.append(&mut records);
                }
                Err(failure) => report.failures.push(failure),
            }
            if batch.len() >= FLUSH_THRESHOLD {
                kb.add_batch(std::mem::take(&mut batch));
            }
        }
        kb.add_batch(batch);
        return Ok(report);
    }
    let global = TaskInjector::new();
    for cell in cells {
        global.push(cell);
    }
    let locals: Vec<WorkerQueue<ExperimentCell>> =
        (0..workers).map(|_| WorkerQueue::new_fifo()).collect();
    let stealers: Vec<Stealer<ExperimentCell>> = locals.iter().map(WorkerQueue::stealer).collect();
    let records = AtomicUsize::new(0);
    let failures: Mutex<Vec<CellFailure>> = Mutex::new(Vec::new());
    crossbeam::thread::scope(|scope| {
        for (wi, local) in locals.into_iter().enumerate() {
            let global = &global;
            let stealers = &stealers;
            let records = &records;
            let failures = &failures;
            let kb = kb.clone();
            scope.spawn(move |_| {
                let mut batch: Vec<ExperimentRecord> = Vec::new();
                while let Some(cell) = next_cell(&local, global, stealers, wi) {
                    match run_one_cell(datasets, &cell, config) {
                        Ok(mut recs) => {
                            records.fetch_add(recs.len(), Ordering::Relaxed);
                            batch.append(&mut recs);
                        }
                        Err(failure) => failures.lock().push(failure),
                    }
                    if batch.len() >= FLUSH_THRESHOLD {
                        kb.add_batch(std::mem::take(&mut batch));
                    }
                }
                kb.add_batch(batch);
            });
        }
    })
    .map_err(|_| OpenBiError::Config("experiment executor scope panicked".into()))?;
    Ok(GridReport {
        records: records.load(Ordering::Relaxed),
        cells: n_cells,
        failures: failures.into_inner(),
    })
}

/// Run phase 1 ("simple" criteria) on all datasets, reporting both the
/// records produced and any skipped cells.
pub fn run_phase1_report(
    datasets: &[ExperimentDataset],
    criteria: &[Criterion],
    config: &ExperimentConfig,
    kb: &SharedKnowledgeBase,
) -> Result<GridReport> {
    let cells = phase1_cells(datasets, criteria, config)?;
    run_cells(datasets, cells, config, kb)
}

/// Run phase 2 ("mixed" criteria) on all datasets, reporting both the
/// records produced and any skipped cells.
pub fn run_phase2_report(
    datasets: &[ExperimentDataset],
    pairs: &[(Criterion, Criterion)],
    config: &ExperimentConfig,
    kb: &SharedKnowledgeBase,
) -> Result<GridReport> {
    let cells = phase2_cells(datasets, pairs, config)?;
    run_cells(datasets, cells, config, kb)
}

/// Run phase 1 ("simple" criteria) on all datasets. Returns the number
/// of knowledge-base records produced.
pub fn run_phase1(
    datasets: &[ExperimentDataset],
    criteria: &[Criterion],
    config: &ExperimentConfig,
    kb: &SharedKnowledgeBase,
) -> Result<usize> {
    run_phase1_report(datasets, criteria, config, kb).map(|r| r.records)
}

/// Run phase 2 ("mixed" criteria) on all datasets. Returns the number of
/// knowledge-base records produced.
pub fn run_phase2(
    datasets: &[ExperimentDataset],
    pairs: &[(Criterion, Criterion)],
    config: &ExperimentConfig,
    kb: &SharedKnowledgeBase,
) -> Result<usize> {
    run_phase2_report(datasets, pairs, config, kb).map(|r| r.records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use openbi_datagen::make_blobs;
    use openbi_datagen::BlobsConfig;

    fn small_dataset() -> ExperimentDataset {
        ExperimentDataset::new(
            "blobs-test",
            make_blobs(&BlobsConfig {
                n_rows: 120,
                n_features: 3,
                n_classes: 2,
                class_separation: 4.0,
                seed: 5,
            }),
            "class",
        )
    }

    fn fast_config() -> ExperimentConfig {
        ExperimentConfig {
            algorithms: vec![AlgorithmSpec::ZeroR, AlgorithmSpec::NaiveBayes],
            severities: vec![0.0, 0.6],
            folds: 3,
            seed: 9,
            parallel: false,
            workers: 0,
        }
    }

    #[test]
    fn criterion_catalog_is_complete() {
        assert_eq!(Criterion::all().len(), 10);
        let names: Vec<&str> = Criterion::all().iter().map(|c| c.name()).collect();
        assert!(names.contains(&"completeness"));
        assert!(names.contains(&"dimensionality"));
    }

    #[test]
    fn severity_zero_is_identity() {
        let d = small_dataset();
        for c in Criterion::all() {
            let deg = c.degradation(0.0, &d).unwrap();
            assert!(deg.is_empty(), "{:?}", c);
        }
    }

    #[test]
    fn degradations_change_the_profile() {
        let d = small_dataset();
        let deg = Criterion::Completeness.degradation(0.8, &d).unwrap();
        let out = deg.apply(&d.table, 1).unwrap();
        assert!(out.total_null_count() > 0);
        let deg = Criterion::Dimensionality.degradation(0.5, &d).unwrap();
        let out = deg.apply(&d.table, 1).unwrap();
        assert_eq!(out.n_cols(), d.table.n_cols() + 24);
    }

    #[test]
    fn invalid_severity_rejected() {
        let d = small_dataset();
        assert!(Criterion::Completeness.degradation(1.5, &d).is_err());
    }

    #[test]
    fn phase1_populates_kb() {
        let kb = SharedKnowledgeBase::default();
        let n = run_phase1(
            &[small_dataset()],
            &[Criterion::Completeness, Criterion::LabelNoise],
            &fast_config(),
            &kb,
        )
        .unwrap();
        // 2 criteria × 2 severities × 2 algorithms = 8 records.
        assert_eq!(n, 8);
        assert_eq!(kb.len(), 8);
        let snapshot = kb.snapshot();
        // Clean baselines recorded with empty degradations.
        assert!(snapshot.records().iter().any(|r| r.degradations.is_empty()));
        // NaiveBayes beats ZeroR on the clean separable baseline.
        let nb = snapshot
            .records()
            .iter()
            .find(|r| r.algorithm == "NaiveBayes" && r.degradations.is_empty())
            .unwrap();
        let zr = snapshot
            .records()
            .iter()
            .find(|r| r.algorithm == "ZeroR" && r.degradations.is_empty())
            .unwrap();
        assert!(nb.metrics.accuracy > zr.metrics.accuracy + 0.2);
    }

    #[test]
    fn phase2_composes_defects() {
        let kb = SharedKnowledgeBase::default();
        let config = ExperimentConfig {
            severities: vec![0.0, 0.5],
            ..fast_config()
        };
        let n = run_phase2(
            &[small_dataset()],
            &[(Criterion::Completeness, Criterion::LabelNoise)],
            &config,
            &kb,
        )
        .unwrap();
        // 1 pair × (2×2 − 1 skipped clean-clean) severity combos × 2 algos.
        assert_eq!(n, 6);
        let snapshot = kb.snapshot();
        assert!(
            snapshot.records().iter().any(|r| r.degradations.len() == 2),
            "mixed variants carry two defects"
        );
    }

    #[test]
    fn phase1_cells_cover_the_grid_with_position_seeds() {
        let d = small_dataset();
        let config = fast_config();
        let cells = phase1_cells(
            &[d],
            &[Criterion::Completeness, Criterion::LabelNoise],
            &config,
        )
        .unwrap();
        // 1 dataset × 2 criteria × 2 severities.
        assert_eq!(cells.len(), 4);
        // Seeds depend on the grid position, not on the cell order.
        assert_eq!(cells[0].seed, config.seed);
        assert_eq!(cells[1].seed, config.seed + 1);
        assert_eq!(cells[2].seed, config.seed + (1 << 16));
        // Severity 0 cells carry the empty (clean-baseline) degradation.
        assert!(cells[0].degradation.is_empty());
        assert!(!cells[1].degradation.is_empty());
    }

    #[test]
    fn bad_cell_is_skipped_not_fatal() {
        // A dataset whose target column does not exist fails inside the
        // cell (Instances conversion), not at cell-building time.
        let good = small_dataset();
        let mut bad = small_dataset();
        bad.name = "broken".into();
        bad.target = "no-such-column".into();
        for workers in [1usize, 4] {
            let kb = SharedKnowledgeBase::default();
            let config = ExperimentConfig {
                parallel: workers > 1,
                workers,
                ..fast_config()
            };
            let report = run_phase1_report(
                &[good.clone(), bad.clone()],
                &[Criterion::LabelNoise],
                &config,
                &kb,
            )
            .unwrap();
            // The good dataset's 2 severities × 2 algorithms survive.
            assert_eq!(report.records, 4, "workers={workers}");
            assert_eq!(kb.len(), 4);
            assert_eq!(report.cells, 4);
            assert_eq!(report.failures.len(), 2);
            assert!(report.failures.iter().all(|f| f.dataset == "broken"));
            assert!(!report.failures[0].error.is_empty());
        }
    }

    #[test]
    fn worker_count_does_not_change_records() {
        let datasets = vec![small_dataset(), {
            let mut d = small_dataset();
            d.name = "blobs-test-2".into();
            d
        }];
        let criteria = [Criterion::LabelNoise, Criterion::Completeness];
        let run = |parallel: bool, workers: usize| {
            let kb = SharedKnowledgeBase::default();
            let config = ExperimentConfig {
                parallel,
                workers,
                ..fast_config()
            };
            run_phase1(&datasets, &criteria, &config, &kb).unwrap();
            let mut keys: Vec<String> = kb
                .snapshot()
                .records()
                .iter()
                .map(|r| {
                    format!(
                        "{}|{:?}|{}|{}|{:.12}|{:.12}|{:.12}",
                        r.dataset,
                        r.degradations,
                        r.algorithm,
                        r.seed,
                        r.metrics.accuracy,
                        r.metrics.kappa,
                        r.metrics.model_size
                    )
                })
                .collect();
            keys.sort();
            keys
        };
        let sequential = run(false, 1);
        assert_eq!(sequential, run(true, 1));
        assert_eq!(sequential, run(true, 4));
    }

    #[test]
    fn parallel_and_serial_produce_same_count() {
        let datasets = vec![small_dataset(), {
            let mut d = small_dataset();
            d.name = "blobs-test-2".into();
            d
        }];
        let serial_kb = SharedKnowledgeBase::default();
        let serial = run_phase1(
            &datasets,
            &[Criterion::LabelNoise],
            &fast_config(),
            &serial_kb,
        )
        .unwrap();
        let parallel_kb = SharedKnowledgeBase::default();
        let config = ExperimentConfig {
            parallel: true,
            ..fast_config()
        };
        let parallel =
            run_phase1(&datasets, &[Criterion::LabelNoise], &config, &parallel_kb).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial_kb.len(), parallel_kb.len());
    }
}
