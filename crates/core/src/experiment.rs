//! The §3.1 experiment runner: degrade clean datasets in a controlled
//! way, evaluate every algorithm on every degraded variant, and record
//! everything in the DQ4DM knowledge base.
//!
//! * **Phase 1 ("simple")** applies each data-quality criterion
//!   individually, over a severity sweep.
//! * **Phase 2 ("mixed")** applies pairs of criteria jointly.
//!
//! Datasets run in parallel (crossbeam scoped threads) against a
//! [`SharedKnowledgeBase`].

use crate::error::{OpenBiError, Result};
use openbi_kb::{ExperimentRecord, PerfMetrics, SharedKnowledgeBase};
use openbi_mining::eval::crossval::cross_validate;
use openbi_mining::{AlgorithmSpec, EvalResult, Instances};
use openbi_quality::inject::{
    AttributeNoiseInjector, CorrelatedInjector, Degradation, DuplicateInjector, ImbalanceInjector,
    InconsistencyInjector, IrrelevantInjector, LabelNoiseInjector, MissingInjector,
    OutlierInjector,
};
use openbi_quality::{measure_profile, MeasureOptions};
use openbi_table::Table;

/// A clean input dataset for the experiments.
#[derive(Debug, Clone)]
pub struct ExperimentDataset {
    /// Dataset identifier.
    pub name: String,
    /// The clean table.
    pub table: Table,
    /// Target (class) column.
    pub target: String,
    /// Identifier columns excluded from mining.
    pub exclude: Vec<String>,
}

impl ExperimentDataset {
    /// Create a dataset with no excluded columns.
    pub fn new(name: impl Into<String>, table: Table, target: impl Into<String>) -> Self {
        ExperimentDataset {
            name: name.into(),
            table,
            target: target.into(),
            exclude: vec![],
        }
    }

    /// The first numeric feature column — used as MAR driver and
    /// redundancy source.
    pub fn numeric_driver(&self) -> Option<String> {
        self.table
            .columns()
            .iter()
            .find(|c| {
                c.dtype().is_numeric()
                    && c.name() != self.target
                    && !self.exclude.iter().any(|e| e == c.name())
            })
            .map(|c| c.name().to_string())
    }
}

/// The data-quality criteria of the experiment suite (the paper's "data
/// quality criteria" axis of Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Criterion {
    /// MCAR missing values (experiment E1).
    Completeness,
    /// MAR missing values driven by a numeric attribute (E1).
    CompletenessMar,
    /// Class-label flips (E2).
    LabelNoise,
    /// Gaussian attribute noise (E3).
    AttributeNoise,
    /// Class imbalance by minority subsampling (E4).
    Imbalance,
    /// Strongly correlated redundant attributes (E5).
    Redundancy,
    /// Irrelevant attributes / high dimensionality (E6).
    Dimensionality,
    /// Exact + near duplicate rows (E7).
    Duplicates,
    /// Numeric outliers (companion of E3).
    Outliers,
    /// Inconsistent string formats.
    Inconsistency,
}

impl Criterion {
    /// The full criterion list, in experiment order.
    pub fn all() -> Vec<Criterion> {
        vec![
            Criterion::Completeness,
            Criterion::CompletenessMar,
            Criterion::LabelNoise,
            Criterion::AttributeNoise,
            Criterion::Imbalance,
            Criterion::Redundancy,
            Criterion::Dimensionality,
            Criterion::Duplicates,
            Criterion::Outliers,
            Criterion::Inconsistency,
        ]
    }

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            Criterion::Completeness => "completeness",
            Criterion::CompletenessMar => "completeness-mar",
            Criterion::LabelNoise => "label-noise",
            Criterion::AttributeNoise => "attribute-noise",
            Criterion::Imbalance => "imbalance",
            Criterion::Redundancy => "redundancy",
            Criterion::Dimensionality => "dimensionality",
            Criterion::Duplicates => "duplicates",
            Criterion::Outliers => "outliers",
            Criterion::Inconsistency => "inconsistency",
        }
    }

    /// Build the degradation realizing this criterion at `severity` in
    /// `[0,1]` on the given dataset. Severity 0 is the clean baseline.
    pub fn degradation(&self, severity: f64, dataset: &ExperimentDataset) -> Result<Degradation> {
        if !(0.0..=1.0).contains(&severity) {
            return Err(OpenBiError::Config(format!(
                "severity {severity} outside [0,1]"
            )));
        }
        if severity == 0.0 {
            return Ok(Degradation::new());
        }
        let target = dataset.target.clone();
        let protect: Vec<String> = dataset
            .exclude
            .iter()
            .cloned()
            .chain([target.clone()])
            .collect();
        let d = match self {
            Criterion::Completeness => Degradation::new().then(
                MissingInjector::mcar(0.4 * severity).exclude(protect),
            ),
            Criterion::CompletenessMar => {
                let driver = dataset.numeric_driver().ok_or_else(|| {
                    OpenBiError::Config(format!(
                        "dataset {} has no numeric driver for MAR",
                        dataset.name
                    ))
                })?;
                Degradation::new()
                    .then(MissingInjector::mar(0.4 * severity, driver).exclude(protect))
            }
            Criterion::LabelNoise => {
                Degradation::new().then(LabelNoiseInjector::new(target, 0.35 * severity))
            }
            Criterion::AttributeNoise => Degradation::new().then(
                AttributeNoiseInjector::new(severity.min(1.0), 2.0).exclude(protect),
            ),
            Criterion::Imbalance => Degradation::new()
                .then(ImbalanceInjector::new(target, 0.5 + 0.45 * severity)),
            Criterion::Redundancy => {
                let source = dataset.numeric_driver().ok_or_else(|| {
                    OpenBiError::Config(format!(
                        "dataset {} has no numeric source for redundancy",
                        dataset.name
                    ))
                })?;
                let copies = (4.0 * severity).round().max(1.0) as usize;
                Degradation::new().then(CorrelatedInjector::new(source, copies, 0.05))
            }
            Criterion::Dimensionality => {
                let count = (48.0 * severity).round().max(1.0) as usize;
                Degradation::new().then(IrrelevantInjector::gaussian(count))
            }
            Criterion::Duplicates => Degradation::new().then(
                DuplicateInjector::near(0.45 * severity, 0.02).exclude(protect),
            ),
            Criterion::Outliers => Degradation::new().then(
                OutlierInjector::new(0.12 * severity, 6.0).exclude(protect),
            ),
            Criterion::Inconsistency => Degradation::new().then(
                InconsistencyInjector::new(0.8 * severity).exclude(protect),
            ),
        };
        Ok(d)
    }
}

/// Experiment-suite configuration (the paper's "user profile" input:
/// which criteria to assess and which techniques the user considers).
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Algorithms to evaluate.
    pub algorithms: Vec<AlgorithmSpec>,
    /// Severity sweep (0 = clean baseline; include it to anchor curves).
    pub severities: Vec<f64>,
    /// Cross-validation folds.
    pub folds: usize,
    /// Master seed.
    pub seed: u64,
    /// Run datasets on parallel threads.
    pub parallel: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            algorithms: AlgorithmSpec::standard_suite(),
            severities: vec![0.0, 0.25, 0.5, 0.75, 1.0],
            folds: 5,
            seed: 42,
            parallel: true,
        }
    }
}

/// Evaluate one degraded variant: returns the per-algorithm results and
/// pushes records into the knowledge base.
pub fn evaluate_variant(
    dataset: &ExperimentDataset,
    degradation: &Degradation,
    config: &ExperimentConfig,
    seed: u64,
    kb: &SharedKnowledgeBase,
) -> Result<Vec<(AlgorithmSpec, EvalResult)>> {
    let degraded = degradation.apply(&dataset.table, seed)?;
    let exclude: Vec<&str> = dataset.exclude.iter().map(String::as_str).collect();
    let profile = measure_profile(
        &degraded,
        &MeasureOptions {
            target: Some(dataset.target.clone()),
            exclude: dataset.exclude.clone(),
            ..Default::default()
        },
    );
    let instances = Instances::from_table(&degraded, Some(&dataset.target), &exclude)?;
    let mut out = Vec::with_capacity(config.algorithms.len());
    for spec in &config.algorithms {
        let eval = cross_validate(&instances, spec, config.folds, seed)?;
        kb.add(ExperimentRecord {
            dataset: dataset.name.clone(),
            degradations: degradation.describe(),
            profile: profile.clone(),
            algorithm: eval.algorithm.clone(),
            metrics: PerfMetrics {
                accuracy: eval.accuracy(),
                macro_f1: eval.macro_f1(),
                minority_f1: eval.minority_f1(),
                kappa: eval.kappa(),
                train_ms: eval.train_ms,
                model_size: eval.model_size,
            },
            seed,
        });
        out.push((spec.clone(), eval));
    }
    Ok(out)
}

fn run_dataset_phase1(
    dataset: &ExperimentDataset,
    criteria: &[Criterion],
    config: &ExperimentConfig,
    kb: &SharedKnowledgeBase,
) -> Result<usize> {
    let mut records = 0;
    for (ci, criterion) in criteria.iter().enumerate() {
        for (si, &severity) in config.severities.iter().enumerate() {
            let degradation = criterion.degradation(severity, dataset)?;
            let seed = config
                .seed
                .wrapping_add((ci as u64) << 16)
                .wrapping_add(si as u64);
            records += evaluate_variant(dataset, &degradation, config, seed, kb)?.len();
        }
    }
    Ok(records)
}

fn run_dataset_phase2(
    dataset: &ExperimentDataset,
    pairs: &[(Criterion, Criterion)],
    config: &ExperimentConfig,
    kb: &SharedKnowledgeBase,
) -> Result<usize> {
    let mut records = 0;
    for (pi, (a, b)) in pairs.iter().enumerate() {
        for (si, &sa) in config.severities.iter().enumerate() {
            for (sj, &sb) in config.severities.iter().enumerate() {
                if sa == 0.0 && sb == 0.0 {
                    continue; // the clean baseline belongs to phase 1
                }
                let mut degradation = Degradation::new();
                // Compose by re-deriving each side's single-criterion
                // degradation.
                for step in [a.degradation(sa, dataset)?, b.degradation(sb, dataset)?] {
                    degradation = merge(degradation, step);
                }
                let seed = config
                    .seed
                    .wrapping_add(0xF00D)
                    .wrapping_add((pi as u64) << 20)
                    .wrapping_add((si as u64) << 8)
                    .wrapping_add(sj as u64);
                records += evaluate_variant(dataset, &degradation, config, seed, kb)?.len();
            }
        }
    }
    Ok(records)
}

/// Concatenate two degradations (helper; `Degradation` is append-only by
/// design so experiments cannot silently reorder defects).
fn merge(mut base: Degradation, more: Degradation) -> Degradation {
    base.extend(more);
    base
}

/// Run phase 1 ("simple" criteria) on all datasets. Returns the number
/// of knowledge-base records produced.
pub fn run_phase1(
    datasets: &[ExperimentDataset],
    criteria: &[Criterion],
    config: &ExperimentConfig,
    kb: &SharedKnowledgeBase,
) -> Result<usize> {
    run_parallel(datasets, config, kb, |d, kb| {
        run_dataset_phase1(d, criteria, config, kb)
    })
}

/// Run phase 2 ("mixed" criteria) on all datasets. Returns the number of
/// knowledge-base records produced.
pub fn run_phase2(
    datasets: &[ExperimentDataset],
    pairs: &[(Criterion, Criterion)],
    config: &ExperimentConfig,
    kb: &SharedKnowledgeBase,
) -> Result<usize> {
    run_parallel(datasets, config, kb, |d, kb| {
        run_dataset_phase2(d, pairs, config, kb)
    })
}

fn run_parallel(
    datasets: &[ExperimentDataset],
    config: &ExperimentConfig,
    kb: &SharedKnowledgeBase,
    job: impl Fn(&ExperimentDataset, &SharedKnowledgeBase) -> Result<usize> + Sync,
) -> Result<usize> {
    if !config.parallel || datasets.len() <= 1 {
        let mut total = 0;
        for d in datasets {
            total += job(d, kb)?;
        }
        return Ok(total);
    }
    let results: Vec<Result<usize>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = datasets
            .iter()
            .map(|d| {
                let kb = kb.clone();
                let job = &job;
                scope.spawn(move |_| job(d, &kb))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("experiment thread panicked"))
            .collect()
    })
    .expect("crossbeam scope");
    let mut total = 0;
    for r in results {
        total += r?;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use openbi_datagen::make_blobs;
    use openbi_datagen::BlobsConfig;

    fn small_dataset() -> ExperimentDataset {
        ExperimentDataset::new(
            "blobs-test",
            make_blobs(&BlobsConfig {
                n_rows: 120,
                n_features: 3,
                n_classes: 2,
                class_separation: 4.0,
                seed: 5,
            }),
            "class",
        )
    }

    fn fast_config() -> ExperimentConfig {
        ExperimentConfig {
            algorithms: vec![AlgorithmSpec::ZeroR, AlgorithmSpec::NaiveBayes],
            severities: vec![0.0, 0.6],
            folds: 3,
            seed: 9,
            parallel: false,
        }
    }

    #[test]
    fn criterion_catalog_is_complete() {
        assert_eq!(Criterion::all().len(), 10);
        let names: Vec<&str> = Criterion::all().iter().map(|c| c.name()).collect();
        assert!(names.contains(&"completeness"));
        assert!(names.contains(&"dimensionality"));
    }

    #[test]
    fn severity_zero_is_identity() {
        let d = small_dataset();
        for c in Criterion::all() {
            let deg = c.degradation(0.0, &d).unwrap();
            assert!(deg.is_empty(), "{:?}", c);
        }
    }

    #[test]
    fn degradations_change_the_profile() {
        let d = small_dataset();
        let deg = Criterion::Completeness.degradation(0.8, &d).unwrap();
        let out = deg.apply(&d.table, 1).unwrap();
        assert!(out.total_null_count() > 0);
        let deg = Criterion::Dimensionality.degradation(0.5, &d).unwrap();
        let out = deg.apply(&d.table, 1).unwrap();
        assert_eq!(out.n_cols(), d.table.n_cols() + 24);
    }

    #[test]
    fn invalid_severity_rejected() {
        let d = small_dataset();
        assert!(Criterion::Completeness.degradation(1.5, &d).is_err());
    }

    #[test]
    fn phase1_populates_kb() {
        let kb = SharedKnowledgeBase::default();
        let n = run_phase1(
            &[small_dataset()],
            &[Criterion::Completeness, Criterion::LabelNoise],
            &fast_config(),
            &kb,
        )
        .unwrap();
        // 2 criteria × 2 severities × 2 algorithms = 8 records.
        assert_eq!(n, 8);
        assert_eq!(kb.len(), 8);
        let snapshot = kb.snapshot();
        // Clean baselines recorded with empty degradations.
        assert!(snapshot
            .records()
            .iter()
            .any(|r| r.degradations.is_empty()));
        // NaiveBayes beats ZeroR on the clean separable baseline.
        let nb = snapshot
            .records()
            .iter()
            .find(|r| r.algorithm == "NaiveBayes" && r.degradations.is_empty())
            .unwrap();
        let zr = snapshot
            .records()
            .iter()
            .find(|r| r.algorithm == "ZeroR" && r.degradations.is_empty())
            .unwrap();
        assert!(nb.metrics.accuracy > zr.metrics.accuracy + 0.2);
    }

    #[test]
    fn phase2_composes_defects() {
        let kb = SharedKnowledgeBase::default();
        let config = ExperimentConfig {
            severities: vec![0.0, 0.5],
            ..fast_config()
        };
        let n = run_phase2(
            &[small_dataset()],
            &[(Criterion::Completeness, Criterion::LabelNoise)],
            &config,
            &kb,
        )
        .unwrap();
        // 1 pair × (2×2 − 1 skipped clean-clean) severity combos × 2 algos.
        assert_eq!(n, 6);
        let snapshot = kb.snapshot();
        assert!(snapshot
            .records()
            .iter()
            .any(|r| r.degradations.len() == 2), "mixed variants carry two defects");
    }

    #[test]
    fn parallel_and_serial_produce_same_count() {
        let datasets = vec![small_dataset(), {
            let mut d = small_dataset();
            d.name = "blobs-test-2".into();
            d
        }];
        let serial_kb = SharedKnowledgeBase::default();
        let serial = run_phase1(
            &datasets,
            &[Criterion::LabelNoise],
            &fast_config(),
            &serial_kb,
        )
        .unwrap();
        let parallel_kb = SharedKnowledgeBase::default();
        let config = ExperimentConfig {
            parallel: true,
            ..fast_config()
        };
        let parallel = run_phase1(&datasets, &[Criterion::LabelNoise], &config, &parallel_kb)
            .unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial_kb.len(), parallel_kb.len());
    }
}
