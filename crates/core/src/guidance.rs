//! Guided preprocessing: turn a measured quality profile into an
//! executable, explained preprocessing plan.
//!
//! This is the user-friendliness requirement of Kriegel et al. \[11\] the
//! paper builds on: "data preprocessing should be automated, and all
//! steps undertaken should be reported to the user".

use crate::error::Result;
use openbi_mining::preprocess::{impute_knn, impute_mean_mode};
use openbi_quality::measure::duplicates::exact_duplicate_groups;
use openbi_quality::QualityProfile;
use openbi_table::{stats, Column, Table, Value};

/// One automated preprocessing step.
#[derive(Debug, Clone, PartialEq)]
pub enum PreprocessingStep {
    /// Remove exact-duplicate rows (keep the first occurrence).
    Deduplicate,
    /// Fill missing values with k-NN imputation.
    ImputeKnn {
        /// Neighborhood size.
        k: usize,
    },
    /// Fill missing values with mean/mode (fallback for tiny tables).
    ImputeMeanMode,
    /// Drop one column of each pair with |r| above the threshold.
    DropCorrelated {
        /// Absolute-correlation threshold.
        threshold: f64,
    },
    /// Canonicalize string formats (trim, lowercase, ISO dates).
    NormalizeFormats,
    /// Winsorize numeric outliers to the 1.5×IQR fences.
    ClampOutliers,
}

impl PreprocessingStep {
    /// Why the step was recommended, for the user-facing report.
    pub fn rationale(&self) -> String {
        match self {
            PreprocessingStep::Deduplicate => {
                "duplicate records inflate support counts and bias training".to_string()
            }
            PreprocessingStep::ImputeKnn { k } => format!(
                "missing values present; k-NN imputation (k={k}) preserves local structure \
                 better than mean filling (Troyanskaya et al.)"
            ),
            PreprocessingStep::ImputeMeanMode => {
                "missing values present; table too small for k-NN imputation".to_string()
            }
            PreprocessingStep::DropCorrelated { threshold } => format!(
                "attributes correlated above |r|={threshold:.2} yield correct but useless \
                 patterns (paper §3.1); dropping redundant copies"
            ),
            PreprocessingStep::NormalizeFormats => {
                "inconsistent value formats detected; canonicalizing case/whitespace/dates"
                    .to_string()
            }
            PreprocessingStep::ClampOutliers => {
                "outliers beyond the 1.5×IQR fences detected; winsorizing".to_string()
            }
        }
    }
}

/// An ordered, explained preprocessing plan.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PreprocessingPlan {
    /// Steps in execution order.
    pub steps: Vec<PreprocessingStep>,
}

impl PreprocessingPlan {
    /// Recommend a plan from a measured profile. Thresholds are
    /// deliberately conservative: steps only appear when the profile
    /// shows a real defect.
    pub fn recommend(profile: &QualityProfile) -> Self {
        let mut steps = Vec::new();
        if profile.consistency < 0.9 {
            steps.push(PreprocessingStep::NormalizeFormats);
        }
        if profile.duplicate_ratio > 0.02 {
            steps.push(PreprocessingStep::Deduplicate);
        }
        if profile.completeness < 0.98 {
            if profile.n_rows >= 50 {
                steps.push(PreprocessingStep::ImputeKnn { k: 5 });
            } else {
                steps.push(PreprocessingStep::ImputeMeanMode);
            }
        }
        if profile.max_abs_correlation > 0.95 {
            steps.push(PreprocessingStep::DropCorrelated { threshold: 0.95 });
        }
        if profile.outlier_ratio > 0.03 {
            steps.push(PreprocessingStep::ClampOutliers);
        }
        PreprocessingPlan { steps }
    }

    /// Execute the plan on a table. `protected` columns (target,
    /// identifiers) are never modified or dropped.
    pub fn apply(&self, table: &Table, protected: &[&str]) -> Result<Table> {
        let mut out = table.clone();
        for step in &self.steps {
            out = apply_step(step, &out, protected)?;
        }
        Ok(out)
    }

    /// The user-facing step report (one line per step).
    pub fn report(&self) -> String {
        if self.steps.is_empty() {
            return "No preprocessing needed: the data profile is clean.\n".to_string();
        }
        let mut out = String::from("Automated preprocessing plan:\n");
        for (i, s) in self.steps.iter().enumerate() {
            out.push_str(&format!("  {}. {:?} — {}\n", i + 1, s, s.rationale()));
        }
        out
    }
}

fn canonicalize_string(s: &str) -> String {
    let t = s.trim();
    // DD/MM/YYYY → ISO.
    let b = t.as_bytes();
    if b.len() == 10 && b[2] == b'/' && b[5] == b'/' {
        let (d, m, y) = (&t[0..2], &t[3..5], &t[6..10]);
        if d.chars().all(|c| c.is_ascii_digit())
            && m.chars().all(|c| c.is_ascii_digit())
            && y.chars().all(|c| c.is_ascii_digit())
        {
            return format!("{y}-{m}-{d}");
        }
    }
    t.to_lowercase()
}

fn apply_step(step: &PreprocessingStep, table: &Table, protected: &[&str]) -> Result<Table> {
    Ok(match step {
        PreprocessingStep::Deduplicate => {
            let mut drop: Vec<bool> = vec![false; table.n_rows()];
            for group in exact_duplicate_groups(table) {
                for &row in &group[1..] {
                    drop[row] = true;
                }
            }
            table.filter_by_index(|i| !drop[i])
        }
        PreprocessingStep::ImputeKnn { k } => impute_knn(table, *k, protected)?,
        PreprocessingStep::ImputeMeanMode => impute_mean_mode(table, protected)?,
        PreprocessingStep::DropCorrelated { threshold } => {
            let mut out = table.clone();
            loop {
                let exclude: Vec<&str> = protected.to_vec();
                let report = openbi_quality::measure::correlation::correlation_report(
                    &out, &exclude, *threshold,
                );
                let Some((_, b, _)) = report.redundant_pairs.first() else {
                    break;
                };
                let name = b.clone();
                out.drop_column(&name)?;
            }
            out
        }
        PreprocessingStep::NormalizeFormats => {
            let mut out = table.clone();
            let names: Vec<String> = table
                .columns()
                .iter()
                .filter(|c| c.as_str_slice().is_some() && !protected.contains(&c.name()))
                .map(|c| c.name().to_string())
                .collect();
            for name in names {
                let col = out.column(&name)?;
                let canon: Vec<Option<String>> = col
                    .as_str_slice()
                    .expect("filtered to string columns")
                    .iter()
                    .map(|v| v.as_ref().map(|s| canonicalize_string(s)))
                    .collect();
                out.replace_column(Column::from_opt_str(name, canon))?;
            }
            out
        }
        PreprocessingStep::ClampOutliers => {
            let mut out = table.clone();
            let names: Vec<String> = table
                .columns()
                .iter()
                .filter(|c| c.dtype().is_numeric() && !protected.contains(&c.name()))
                .map(|c| c.name().to_string())
                .collect();
            for name in names {
                let col = out.column(&name)?.clone();
                let mut vals: Vec<f64> = col.to_f64_vec().into_iter().flatten().collect();
                if vals.len() < 4 {
                    continue;
                }
                vals.sort_by(f64::total_cmp);
                let q1 = stats::quantile_sorted(&vals, 0.25);
                let q3 = stats::quantile_sorted(&vals, 0.75);
                let iqr = q3 - q1;
                let (lo, hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
                let is_int = col.dtype() == openbi_table::DataType::Int;
                for row in 0..col.len() {
                    if let Some(x) = col.get(row)?.as_f64() {
                        if x < lo || x > hi {
                            let clamped = x.clamp(lo, hi);
                            let v = if is_int {
                                Value::Int(clamped.round() as i64)
                            } else {
                                Value::Float(clamped)
                            };
                            out.set(&name, row, v)?;
                        }
                    }
                }
            }
            out
        }
    })
}

/// Guided attribute selection (the "attributes selection" half of the
/// KDD selection phase): run CFS over the table's features and return
/// `(selected feature names, projected table)`. The target and protected
/// columns are always kept.
pub fn select_attributes(
    table: &Table,
    target: &str,
    protected: &[&str],
    max_features: usize,
) -> Result<(Vec<String>, Table)> {
    let exclude: Vec<&str> = protected.iter().copied().filter(|p| *p != target).collect();
    let instances = openbi_mining::Instances::from_table(table, Some(target), &exclude)?;
    let picked = openbi_mining::cfs_select(&instances, max_features)?;
    let selected: Vec<String> = picked
        .iter()
        .map(|&a| instances.attributes[a].name.clone())
        .collect();
    let mut keep: Vec<&str> = Vec::new();
    for name in table.column_names() {
        if selected.iter().any(|s| s == name) || name == target || protected.contains(&name) {
            keep.push(name);
        }
    }
    let projected = table.select(&keep)?;
    Ok((selected, projected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use openbi_quality::{measure_profile, MeasureOptions};

    #[test]
    fn select_attributes_keeps_signal_and_target() {
        let n = 60;
        let t = Table::new(vec![
            Column::from_i64("id", (0..n).collect::<Vec<i64>>()),
            Column::from_f64(
                "signal",
                (0..n)
                    .map(|i| if i % 2 == 0 { 0.0 } else { 9.0 })
                    .collect::<Vec<f64>>(),
            ),
            Column::from_f64(
                "noise",
                (0..n).map(|i| ((i * 31) % 13) as f64).collect::<Vec<f64>>(),
            ),
            Column::from_str_values(
                "label",
                (0..n)
                    .map(|i| if i % 2 == 0 { "a" } else { "b" })
                    .collect::<Vec<&str>>(),
            ),
        ])
        .unwrap();
        let (selected, projected) = select_attributes(&t, "label", &["id", "label"], 4).unwrap();
        assert_eq!(selected, vec!["signal"]);
        assert!(projected.has_column("label"));
        assert!(projected.has_column("id"), "protected columns survive");
        assert!(!projected.has_column("noise"));
    }

    #[test]
    fn clean_profile_needs_no_steps() {
        let plan = PreprocessingPlan::recommend(&QualityProfile::default());
        assert!(plan.steps.is_empty());
        assert!(plan.report().contains("No preprocessing needed"));
    }

    #[test]
    fn dirty_profile_triggers_matching_steps() {
        let profile = QualityProfile {
            n_rows: 100,
            completeness: 0.7,
            duplicate_ratio: 0.1,
            max_abs_correlation: 0.99,
            consistency: 0.5,
            outlier_ratio: 0.08,
            ..Default::default()
        };
        let plan = PreprocessingPlan::recommend(&profile);
        assert!(plan.steps.contains(&PreprocessingStep::NormalizeFormats));
        assert!(plan.steps.contains(&PreprocessingStep::Deduplicate));
        assert!(plan.steps.contains(&PreprocessingStep::ImputeKnn { k: 5 }));
        assert!(plan
            .steps
            .contains(&PreprocessingStep::DropCorrelated { threshold: 0.95 }));
        assert!(plan.steps.contains(&PreprocessingStep::ClampOutliers));
        assert!(plan.report().lines().count() >= 6);
    }

    #[test]
    fn tiny_tables_get_mean_mode() {
        let profile = QualityProfile {
            n_rows: 10,
            completeness: 0.5,
            ..Default::default()
        };
        let plan = PreprocessingPlan::recommend(&profile);
        assert!(plan.steps.contains(&PreprocessingStep::ImputeMeanMode));
    }

    #[test]
    fn deduplicate_keeps_first() {
        let t = Table::new(vec![Column::from_i64("a", [1, 2, 1, 3, 1])]).unwrap();
        let plan = PreprocessingPlan {
            steps: vec![PreprocessingStep::Deduplicate],
        };
        let out = plan.apply(&t, &[]).unwrap();
        assert_eq!(out.n_rows(), 3);
        assert_eq!(out.get("a", 0).unwrap(), Value::Int(1));
    }

    #[test]
    fn drop_correlated_removes_copies_not_protected() {
        let x: Vec<f64> = (0..50).map(f64::from).collect();
        let t = Table::new(vec![
            Column::from_f64("x", x.clone()),
            Column::from_f64("x2", x.iter().map(|v| v * 2.0).collect::<Vec<f64>>()),
            Column::from_f64(
                "z",
                x.iter().map(|v| (v * 37.0) % 11.0).collect::<Vec<f64>>(),
            ),
        ])
        .unwrap();
        let plan = PreprocessingPlan {
            steps: vec![PreprocessingStep::DropCorrelated { threshold: 0.95 }],
        };
        let out = plan.apply(&t, &[]).unwrap();
        assert!(out.has_column("x"));
        assert!(!out.has_column("x2"));
        assert!(out.has_column("z"));
    }

    #[test]
    fn normalize_formats_canonicalizes() {
        let t = Table::new(vec![
            Column::from_str_values("city", [" Madrid ", "MADRID", "madrid"]),
            Column::from_str_values("date", ["15/03/2024", "2024-03-16", "17/03/2024"]),
        ])
        .unwrap();
        let plan = PreprocessingPlan {
            steps: vec![PreprocessingStep::NormalizeFormats],
        };
        let out = plan.apply(&t, &[]).unwrap();
        for i in 0..3 {
            assert_eq!(out.get("city", i).unwrap(), Value::Str("madrid".into()));
        }
        assert_eq!(out.get("date", 0).unwrap(), Value::Str("2024-03-15".into()));
        assert_eq!(out.get("date", 1).unwrap(), Value::Str("2024-03-16".into()));
    }

    #[test]
    fn clamp_outliers_winsorizes() {
        let mut vals: Vec<f64> = (0..40).map(|i| (i % 10) as f64).collect();
        vals.push(1000.0);
        let t = Table::new(vec![Column::from_f64("x", vals)]).unwrap();
        let plan = PreprocessingPlan {
            steps: vec![PreprocessingStep::ClampOutliers],
        };
        let out = plan.apply(&t, &[]).unwrap();
        let max = out
            .column("x")
            .unwrap()
            .to_f64_vec()
            .into_iter()
            .flatten()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(max < 30.0, "outlier clamped, max {max}");
    }

    #[test]
    fn end_to_end_plan_improves_profile() {
        // A deliberately dirty table.
        let t = Table::new(vec![
            Column::from_opt_f64(
                "x",
                (0..60)
                    .map(|i| if i % 5 == 0 { None } else { Some(i as f64) })
                    .collect::<Vec<Option<f64>>>(),
            ),
            Column::from_f64(
                "x_copy",
                (0..60).map(|i| i as f64 * 3.0).collect::<Vec<f64>>(),
            ),
            Column::from_str_values(
                "label",
                (0..60)
                    .map(|i| if i % 2 == 0 { "a" } else { "b" })
                    .collect::<Vec<&str>>(),
            ),
        ])
        .unwrap();
        let opts = MeasureOptions::with_target("label");
        let before = measure_profile(&t, &opts);
        let plan = PreprocessingPlan::recommend(&before);
        assert!(!plan.steps.is_empty());
        let out = plan.apply(&t, &["label"]).unwrap();
        let after = measure_profile(&out, &opts);
        assert!(after.completeness > before.completeness);
        assert!(after.max_abs_correlation < before.max_abs_correlation);
    }

    #[test]
    fn protected_columns_survive_everything() {
        let t = Table::new(vec![
            Column::from_opt_str(
                "target",
                [Some("A".to_string()), None, Some("A".to_string())],
            ),
            Column::from_opt_f64("x", [Some(1.0), Some(2.0), None]),
        ])
        .unwrap();
        let plan = PreprocessingPlan {
            steps: vec![
                PreprocessingStep::NormalizeFormats,
                PreprocessingStep::ImputeMeanMode,
            ],
        };
        let out = plan.apply(&t, &["target"]).unwrap();
        // Target: untouched (still uppercase, still has its null).
        assert_eq!(out.get("target", 0).unwrap(), Value::Str("A".into()));
        assert!(out.get("target", 1).unwrap().is_null());
        // Feature x imputed.
        assert_eq!(out.column("x").unwrap().null_count(), 0);
    }
}
