//! # openbi
//!
//! **Open Business Intelligence**: data-quality-aware, user-friendly
//! data mining over open data and Linked Open Data — a from-scratch Rust
//! reproduction of Mazón, Zubcoff, Garrigós, Espinosa & Rodríguez,
//! *"Open Business Intelligence: on the importance of data quality
//! awareness in user-friendly data mining"* (LWDM @ EDBT 2012).
//!
//! The crate ties the substrates together:
//!
//! * [`experiment`] — the §3.1 protocol: degrade clean datasets in a
//!   controlled way (phase 1 simple criteria, phase 2 mixed criteria),
//!   evaluate a suite of mining algorithms, populate the **DQ4DM
//!   knowledge base**.
//! * [`pipeline`] — the Figure-2 flow: ingest CSV/LOD → CWM-style
//!   common representation → quality annotation → *"the best option is
//!   ALGORITHM X"* advice → guided preprocessing → mining → publish the
//!   results back as Linked Open Data.
//! * [`guidance`] — the automated, explained preprocessing plans.
//! * [`report`] — the non-expert-facing rendering.
//!
//! Cross-cutting observability lives in the re-exported [`obs`] crate
//! (`openbi-obs`): install a [`obs::MetricsRegistry`] to collect
//! latency histograms and counters from the experiment grid, the
//! pipeline stages, and the advisor serving path (DESIGN.md §9).
//! Deterministic fault injection lives in the re-exported [`faults`]
//! crate (`openbi-faults`): install a [`faults::FaultPlan`] — or set
//! one on [`ExperimentConfig`] / [`PipelineConfig`] — to chaos-test
//! the executor's retries and deadlines and the pipeline's graceful
//! degradation (DESIGN.md §10).
//!
//! ```
//! use openbi::pipeline::{run_pipeline, DataSource, PipelineConfig};
//!
//! let source = DataSource::CsvText {
//!     name: "demo".into(),
//!     content: "x,label\n1,a\n2,b\n3,a\n4,b\n5,a\n6,b\n".into(),
//! };
//! let config = PipelineConfig {
//!     target: Some("label".into()),
//!     folds: 2,
//!     ..Default::default()
//! };
//! let outcome = run_pipeline(source, &config, None).unwrap();
//! assert!(outcome.evaluation.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod experiment;
pub mod guidance;
pub mod pipeline;
pub mod publish_kb;
pub mod report;

pub use error::{OpenBiError, Result};
pub use experiment::{
    run_cells, run_phase1, run_phase1_report, run_phase2, run_phase2_report, CellFailure,
    Criterion, ExperimentCell, ExperimentConfig, ExperimentDataset, GridReport,
};
pub use guidance::{PreprocessingPlan, PreprocessingStep};
pub use pipeline::{run_pipeline, DataSource, PipelineConfig, PipelineOutcome};
pub use publish_kb::{import_knowledge_base, publish_knowledge_base};
pub use report::render_outcome;

// Re-export the substrate crates so downstream users need one dependency.
pub use openbi_datagen as datagen;
pub use openbi_faults as faults;
pub use openbi_kb as kb;
pub use openbi_lod as lod;
pub use openbi_metamodel as metamodel;
pub use openbi_mining as mining;
pub use openbi_obs as obs;
pub use openbi_olap as olap;
pub use openbi_quality as quality;
pub use openbi_table as table;
