//! The OpenBI pipeline (the paper's Figure 2, right-hand side):
//! ingest open data (CSV or LOD) → common representation → data-quality
//! annotation → advice from the knowledge base → guided preprocessing →
//! mining → publication of results as LOD.
//!
//! Every phase is timed, which also regenerates Figure 1's claim that
//! preprocessing dominates the KDD effort. The per-run timings land in
//! [`PipelineOutcome::phase_timings`]; when an `openbi-obs` registry is
//! installed the same laps are also recorded into per-stage
//! `pipeline.stage.*.seconds` histograms, so stage latency distributions
//! accumulate across runs (DESIGN.md §9).
//!
//! ## Graceful degradation (DESIGN.md §10)
//!
//! Every stage has an `openbi-faults` injection point
//! (`pipeline.stage.<key>`, keyed by the dataset name). Stages whose
//! output is advisory — quality annotation, advice, LOD publication —
//! degrade instead of aborting: a failure (or injected fault) there
//! substitutes an explicit fallback and records a [`DegradedStage`]
//! marker in [`PipelineOutcome::degraded`], so a non-expert still gets
//! a mining result, clearly labelled as running without quality
//! guidance. Stages the result depends on — ingestion, preprocessing,
//! mining — stay fatal and propagate their errors.

use crate::error::{OpenBiError, Result};
use crate::experiment::panic_message;
use crate::guidance::PreprocessingPlan;
use openbi_faults::FaultPlan;
use openbi_kb::{Advice, Advisor, KnowledgeBase};
use openbi_lod::{
    publish_advice, publish_quality_measurements, publish_table, Graph, Iri, TabularizeOptions,
};
use openbi_metamodel::{
    catalog_from_lod, catalog_from_table, Catalog, ColumnRole, QualityAnnotation,
};
use openbi_mining::eval::crossval::{cross_validate_with, CrossValOptions};
use openbi_mining::{AlgorithmSpec, EvalResult, Instances};
use openbi_obs as obs;
use openbi_quality::{measure_profile_cached, MeasureOptions, QualityProfile};
use openbi_table::{read_csv_str, CsvOptions, Table};
use std::sync::Arc;
use std::time::Instant;

/// Where the pipeline's input comes from.
#[derive(Debug, Clone)]
pub enum DataSource {
    /// CSV text (the dominant raw-open-data format, paper §1).
    CsvText {
        /// Dataset name.
        name: String,
        /// Raw CSV content.
        content: String,
    },
    /// An already-parsed table.
    Table {
        /// Dataset name.
        name: String,
        /// The table.
        table: Table,
    },
    /// A Linked Open Data graph plus the entity class to analyze.
    Lod {
        /// Dataset name.
        name: String,
        /// The RDF graph.
        graph: Graph,
        /// Class whose instances become rows.
        class: Iri,
    },
}

impl DataSource {
    /// The dataset name.
    pub fn name(&self) -> &str {
        match self {
            DataSource::CsvText { name, .. }
            | DataSource::Table { name, .. }
            | DataSource::Lod { name, .. } => name,
        }
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Target (class) column for mining; `None` = profile/analyze only.
    pub target: Option<String>,
    /// Identifier columns excluded from mining.
    pub exclude: Vec<String>,
    /// Cross-validation folds for the final evaluation.
    pub folds: usize,
    /// Seed.
    pub seed: u64,
    /// Base IRI for publication.
    pub base_iri: String,
    /// Apply the recommended preprocessing plan before mining.
    pub auto_preprocess: bool,
    /// After preprocessing, project onto a CFS-selected attribute subset
    /// (the "attributes selection" phase). Only applies when a target is
    /// configured.
    pub auto_select_attributes: bool,
    /// Advisor settings.
    pub advisor: Advisor,
    /// Algorithm to run when no knowledge base is supplied (or to
    /// override the advisor).
    pub fallback_algorithm: AlgorithmSpec,
    /// Evaluate cross-validation folds on parallel threads. The result
    /// is identical to the sequential run; on for the interactive
    /// single-dataset path, which otherwise uses one core.
    pub parallel_folds: bool,
    /// Fault plan for chaos testing. `None` falls back to the
    /// process-global plan ([`openbi_faults::active`]).
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            target: None,
            exclude: vec![],
            folds: 5,
            seed: 42,
            base_iri: "http://openbi.org".to_string(),
            auto_preprocess: true,
            auto_select_attributes: false,
            advisor: Advisor::default(),
            fallback_algorithm: AlgorithmSpec::NaiveBayes,
            parallel_folds: true,
            fault_plan: None,
        }
    }
}

/// A pipeline stage that fell back instead of aborting the run — the
/// explicit "Degraded" marker a non-expert can read off the outcome.
#[derive(Debug, Clone)]
pub struct DegradedStage {
    /// Stage key, e.g. `"quality"` (matches the `pipeline.stage.<key>`
    /// injection point and metric names).
    pub stage: String,
    /// The error or panic that triggered the fallback.
    pub error: String,
    /// What the pipeline substituted for the stage's output.
    pub fallback: String,
}

/// Everything the pipeline produced.
#[derive(Debug, Clone)]
pub struct PipelineOutcome {
    /// Dataset name.
    pub dataset: String,
    /// The ingested raw table.
    pub raw: Table,
    /// The annotated common representation.
    pub catalog: Catalog,
    /// The measured quality profile (before preprocessing).
    pub profile: QualityProfile,
    /// Advice from the knowledge base (when one was supplied).
    pub advice: Option<Advice>,
    /// The recommended (and possibly applied) preprocessing plan.
    pub plan: PreprocessingPlan,
    /// The table after preprocessing (== raw when auto_preprocess off).
    pub preprocessed: Table,
    /// Feature names kept by attribute selection (empty when disabled).
    pub selected_attributes: Vec<String>,
    /// Quality profile after preprocessing.
    pub profile_after: QualityProfile,
    /// Cross-validated result of the chosen algorithm (when a target
    /// was configured).
    pub evaluation: Option<EvalResult>,
    /// The algorithm that was actually run.
    pub chosen_algorithm: Option<AlgorithmSpec>,
    /// Everything published back as LOD (dataset + quality + advice).
    pub published: Graph,
    /// Wall time per phase, milliseconds: `(phase name, ms)`.
    pub phase_timings: Vec<(String, f64)>,
    /// Stages that fell back instead of completing normally; empty on a
    /// healthy run.
    pub degraded: Vec<DegradedStage>,
}

impl PipelineOutcome {
    /// True iff any stage fell back instead of completing normally.
    pub fn is_degraded(&self) -> bool {
        !self.degraded.is_empty()
    }
}

/// Map an advisor algorithm name back to a runnable spec from the
/// standard suite.
pub fn spec_by_name(name: &str) -> Option<AlgorithmSpec> {
    AlgorithmSpec::standard_suite()
        .into_iter()
        .find(|s| s.to_string() == name || s.name() == name)
}

/// Fire a fatal stage's injection point: an injected error propagates
/// as [`OpenBiError::Fault`]; no plan is a no-op.
fn fire_fatal(plan: Option<&FaultPlan>, stage: &str, key: u64) -> Result<()> {
    if let Some(plan) = plan {
        plan.fire(&format!("pipeline.stage.{stage}"), key, 0)?;
    }
    Ok(())
}

/// Run a degradable stage: fire its injection point, then run `body`
/// with panic containment. Any failure substitutes `fallback` and
/// records a [`DegradedStage`] instead of aborting the pipeline.
///
/// `attempt` is the occurrence number passed to the fault plan — stages
/// that run more than once per pipeline (quality measurement runs before
/// and after preprocessing) pass 0, 1, … so a `times(n)` rule can target
/// each occurrence independently.
fn run_degradable<T>(
    stage: &str,
    plan: Option<&FaultPlan>,
    key: u64,
    attempt: u32,
    fallback: (T, &str),
    degraded: &mut Vec<DegradedStage>,
    body: impl FnOnce() -> Result<T>,
) -> T {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if let Some(plan) = plan {
            plan.fire(&format!("pipeline.stage.{stage}"), key, attempt)?;
        }
        body()
    }));
    let (fallback_value, fallback_desc) = fallback;
    let error = match outcome {
        Ok(Ok(value)) => return value,
        Ok(Err(e)) => e.to_string(),
        Err(panic) => panic_message(panic.as_ref()),
    };
    degraded.push(DegradedStage {
        stage: stage.to_string(),
        error,
        fallback: fallback_desc.to_string(),
    });
    fallback_value
}

/// The `openbi-obs` histogram a phase-timing lap records into. Stage
/// keys are stable short names so the metric catalog (DESIGN.md §9)
/// does not track display-label changes.
fn stage_metric(phase: &str) -> Option<&'static str> {
    match phase {
        "ingest+represent" => Some("pipeline.stage.ingest.seconds"),
        "quality-annotation" => Some("pipeline.stage.quality.seconds"),
        "advice" => Some("pipeline.stage.advice.seconds"),
        "preprocessing" => Some("pipeline.stage.preprocess.seconds"),
        "mining" => Some("pipeline.stage.mine.seconds"),
        "publish-lod" => Some("pipeline.stage.publish.seconds"),
        _ => None,
    }
}

/// Run the full pipeline.
pub fn run_pipeline(
    source: DataSource,
    config: &PipelineConfig,
    kb: Option<&KnowledgeBase>,
) -> Result<PipelineOutcome> {
    obs::counter_add("pipeline.runs_total", 1);
    let mut timings: Vec<(String, f64)> = Vec::new();
    let mut clock = Instant::now();
    let lap = |timings: &mut Vec<(String, f64)>, phase: &str, clock: &mut Instant| {
        let elapsed = clock.elapsed();
        timings.push((phase.to_string(), elapsed.as_secs_f64() * 1e3));
        if let Some(metric) = stage_metric(phase) {
            obs::observe_duration(metric, elapsed);
        }
        *clock = Instant::now();
    };

    // Phase 1: ingestion + common representation.
    let dataset = source.name().to_string();
    let plan = config.fault_plan.clone().or_else(openbi_faults::active);
    let plan = plan.as_deref();
    let fault_key = openbi_faults::key(&dataset);
    let mut degraded: Vec<DegradedStage> = Vec::new();
    fire_fatal(plan, "ingest", fault_key)?;
    let (raw, mut catalog) = match source {
        DataSource::CsvText { name, content } => {
            let table = read_csv_str(&content, &CsvOptions::default())?;
            let catalog = catalog_from_table(&table, "openbi", "raw", &name);
            (table, catalog)
        }
        DataSource::Table { name, table } => {
            let catalog = catalog_from_table(&table, "openbi", "raw", &name);
            (table, catalog)
        }
        DataSource::Lod { graph, class, .. } => {
            let (catalog, mut tables) = catalog_from_lod(
                &graph,
                "openbi",
                std::slice::from_ref(&class),
                &TabularizeOptions::default(),
            )?;
            (tables.remove(0), catalog)
        }
    };
    if raw.n_rows() == 0 {
        return Err(OpenBiError::Config(format!("dataset {dataset} is empty")));
    }
    if let Some(t) = &config.target {
        if !raw.has_column(t) {
            return Err(OpenBiError::Config(format!(
                "target column {t} not found in {dataset}"
            )));
        }
    }
    lap(&mut timings, "ingest+represent", &mut clock);

    // Phase 2: quality measurement + annotation.
    let mut exclude = config.exclude.clone();
    if raw.has_column("iri") && !exclude.iter().any(|e| e == "iri") {
        exclude.push("iri".to_string());
    }
    let measure_opts = MeasureOptions {
        target: config.target.clone(),
        exclude: exclude.clone(),
        ..Default::default()
    };
    let profile = run_degradable(
        "quality",
        plan,
        fault_key,
        0,
        (
            QualityProfile::default(),
            "unmeasured default profile; catalog left unannotated",
        ),
        &mut degraded,
        || {
            let profile = measure_profile_cached(&raw, &measure_opts);
            annotate_catalog(&mut catalog, &profile, config.target.as_deref());
            Ok(profile)
        },
    );
    lap(&mut timings, "quality-annotation", &mut clock);

    // Phase 3: advice (served from the KB's per-algorithm record
    // index; see DESIGN.md §8).
    let advice = run_degradable(
        "advice",
        plan,
        fault_key,
        0,
        (
            None,
            "no advice; mining falls back to the configured algorithm",
        ),
        &mut degraded,
        || match kb {
            Some(kb) if !kb.is_empty() => Ok(Some(config.advisor.advise(kb, &profile)?)),
            _ => Ok(None),
        },
    );
    lap(&mut timings, "advice", &mut clock);

    // Phase 4: guided preprocessing.
    fire_fatal(plan, "preprocess", fault_key)?;
    let preprocessing_plan = PreprocessingPlan::recommend(&profile);
    let mut protected: Vec<&str> = exclude.iter().map(String::as_str).collect();
    if let Some(t) = &config.target {
        protected.push(t.as_str());
    }
    let mut preprocessed = if config.auto_preprocess {
        preprocessing_plan.apply(&raw, &protected)?
    } else {
        raw.clone()
    };
    let mut selected_attributes: Vec<String> = Vec::new();
    if config.auto_select_attributes {
        if let Some(target) = &config.target {
            let (selected, projected) =
                crate::guidance::select_attributes(&preprocessed, target, &protected, 16)?;
            selected_attributes = selected;
            preprocessed = projected;
        }
    }
    let preprocessing_ran = config.auto_preprocess;
    let selection_ran = config.auto_select_attributes && config.target.is_some();
    let profile_after = if !preprocessing_ran && !selection_ran {
        // The table is untouched; re-measuring would recompute `profile`.
        profile.clone()
    } else {
        run_degradable(
            "quality",
            plan,
            fault_key,
            1,
            (
                profile.clone(),
                "post-preprocessing profile unavailable; pre-preprocessing profile reused",
            ),
            &mut degraded,
            || Ok(measure_profile_cached(&preprocessed, &measure_opts)),
        )
    };
    lap(&mut timings, "preprocessing", &mut clock);

    // Phase 5: mining (when a target is configured).
    fire_fatal(plan, "mine", fault_key)?;
    let (evaluation, chosen_algorithm) = if let Some(target) = &config.target {
        let spec = advice
            .as_ref()
            .and_then(|a| spec_by_name(a.best()))
            .unwrap_or_else(|| config.fallback_algorithm.clone());
        let exclude_refs: Vec<&str> = exclude.iter().map(String::as_str).collect();
        let instances = Instances::from_table(&preprocessed, Some(target), &exclude_refs)?;
        let eval = cross_validate_with(
            &instances,
            &spec,
            config.folds,
            config.seed,
            &CrossValOptions {
                parallel_folds: config.parallel_folds,
            },
        )?;
        (Some(eval), Some(spec))
    } else {
        (None, None)
    };
    lap(&mut timings, "mining", &mut clock);

    // Phase 6: publish results as LOD.
    let published = run_degradable(
        "publish",
        plan,
        fault_key,
        0,
        (Graph::default(), "empty published graph"),
        &mut degraded,
        || {
            let mut published = publish_table(&preprocessed, &config.base_iri, &dataset)?;
            published.merge(&publish_quality_measurements(
                &config.base_iri,
                &dataset,
                &profile.criteria(),
            )?);
            if let Some(a) = &advice {
                let ranking: Vec<(String, f64)> = a
                    .ranking
                    .iter()
                    .map(|r| (r.algorithm.clone(), r.expected_score))
                    .collect();
                published.merge(&publish_advice(&config.base_iri, &dataset, &ranking)?);
            }
            Ok(published)
        },
    );
    lap(&mut timings, "publish-lod", &mut clock);

    if !degraded.is_empty() {
        obs::counter_add("pipeline.degraded_runs_total", 1);
    }
    Ok(PipelineOutcome {
        dataset,
        raw,
        catalog,
        profile,
        advice,
        plan: preprocessing_plan,
        preprocessed,
        selected_attributes,
        profile_after,
        evaluation,
        chosen_algorithm,
        published,
        phase_timings: timings,
        degraded,
    })
}

/// Attach the measured profile to the catalog's column sets and set the
/// target role (the §3.2.2 "data quality criteria annotation").
fn annotate_catalog(catalog: &mut Catalog, profile: &QualityProfile, target: Option<&str>) {
    for schema in &mut catalog.schemas {
        for cs in &mut schema.column_sets {
            for (criterion, value) in profile.criteria() {
                cs.annotate(QualityAnnotation::new(criterion, value));
            }
            if let Some((issue, severity)) = profile.dominant_issue() {
                cs.annotate(
                    QualityAnnotation::new("dominant_issue_severity", severity).with_detail(issue),
                );
            }
            if let Some(t) = target {
                cs.set_target(t);
            }
            // Identifier roles were set by the transform; nothing else to do.
            let _ = ColumnRole::Identifier;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openbi_datagen::{air_quality, scenario_to_lod};

    fn csv_source() -> DataSource {
        DataSource::CsvText {
            name: "toy".into(),
            content: "x,y,label\n1,2.0,a\n2,3.0,b\n3,4.0,a\n4,5.0,b\n5,6.0,a\n6,7.0,b\n7,8.0,a\n8,9.0,b\n9,10.0,a\n10,11.0,b\n".into(),
        }
    }

    #[test]
    fn csv_pipeline_profiles_and_mines() {
        let config = PipelineConfig {
            target: Some("label".into()),
            folds: 2,
            ..Default::default()
        };
        let outcome = run_pipeline(csv_source(), &config, None).unwrap();
        assert_eq!(outcome.dataset, "toy");
        assert_eq!(outcome.raw.n_rows(), 10);
        assert!(outcome.evaluation.is_some());
        assert_eq!(outcome.chosen_algorithm, Some(AlgorithmSpec::NaiveBayes));
        assert_eq!(outcome.phase_timings.len(), 6);
        // Catalog carries annotations.
        let cs = outcome.catalog.find_column_set("toy").unwrap();
        assert!(cs.annotation("completeness").is_some());
        assert_eq!(cs.target().unwrap().name, "label");
        // Published graph includes quality measurements.
        assert!(!outcome.published.is_empty());
    }

    #[test]
    fn lod_pipeline_end_to_end() {
        let scenario = air_quality(80, 3);
        let graph = scenario_to_lod(&scenario, "http://openbi.org", 0.2, 1).unwrap();
        let class = Iri::new("http://openbi.org/dataset/air-quality/Row").unwrap();
        let config = PipelineConfig {
            target: Some("aqi_band".into()),
            folds: 3,
            ..Default::default()
        };
        let outcome = run_pipeline(
            DataSource::Lod {
                name: "air-quality".into(),
                graph,
                class,
            },
            &config,
            None,
        )
        .unwrap();
        assert_eq!(outcome.raw.n_rows(), 80);
        let eval = outcome.evaluation.unwrap();
        assert!(eval.accuracy() > 0.5, "accuracy {}", eval.accuracy());
    }

    #[test]
    fn advice_changes_the_chosen_algorithm() {
        use openbi_kb::{ExperimentRecord, KnowledgeBase, PerfMetrics};
        let mut kb = KnowledgeBase::new();
        // A KB that says kNN(k=5) is always best.
        for i in 0..5 {
            for (algo, acc) in [("kNN(k=5)", 0.95), ("NaiveBayes", 0.6)] {
                kb.add(ExperimentRecord {
                    dataset: format!("d{i}"),
                    degradations: vec![],
                    profile: QualityProfile::default(),
                    algorithm: algo.into(),
                    metrics: PerfMetrics {
                        accuracy: acc,
                        macro_f1: acc,
                        minority_f1: acc,
                        kappa: acc,
                        train_ms: 1.0,
                        model_size: 1.0,
                    },
                    seed: 0,
                });
            }
        }
        let config = PipelineConfig {
            target: Some("label".into()),
            folds: 2,
            ..Default::default()
        };
        let outcome = run_pipeline(csv_source(), &config, Some(&kb)).unwrap();
        let advice = outcome.advice.unwrap();
        assert_eq!(advice.best(), "kNN(k=5)");
        assert_eq!(outcome.chosen_algorithm, Some(AlgorithmSpec::Knn { k: 5 }));
    }

    #[test]
    fn missing_target_is_config_error() {
        let config = PipelineConfig {
            target: Some("nope".into()),
            ..Default::default()
        };
        assert!(matches!(
            run_pipeline(csv_source(), &config, None),
            Err(OpenBiError::Config(_))
        ));
    }

    #[test]
    fn profile_only_mode_skips_mining() {
        let outcome = run_pipeline(csv_source(), &PipelineConfig::default(), None).unwrap();
        assert!(outcome.evaluation.is_none());
        assert!(outcome.chosen_algorithm.is_none());
        assert!(outcome.profile.completeness > 0.99);
    }

    #[test]
    fn attribute_selection_prunes_noise_columns() {
        use openbi_table::Column;
        let n = 80;
        let table = Table::new(vec![
            Column::from_f64(
                "signal",
                (0..n)
                    .map(|i| if i % 2 == 0 { 0.0 } else { 8.0 })
                    .collect::<Vec<f64>>(),
            ),
            Column::from_f64(
                "junk",
                (0..n).map(|i| ((i * 29) % 11) as f64).collect::<Vec<f64>>(),
            ),
            Column::from_str_values(
                "label",
                (0..n)
                    .map(|i| if i % 2 == 0 { "a" } else { "b" })
                    .collect::<Vec<&str>>(),
            ),
        ])
        .unwrap();
        let config = PipelineConfig {
            target: Some("label".into()),
            auto_select_attributes: true,
            folds: 3,
            ..Default::default()
        };
        let outcome = run_pipeline(
            DataSource::Table {
                name: "sel".into(),
                table,
            },
            &config,
            None,
        )
        .unwrap();
        assert_eq!(outcome.selected_attributes, vec!["signal"]);
        assert!(!outcome.preprocessed.has_column("junk"));
        assert!(outcome.preprocessed.has_column("label"));
        assert!(outcome.evaluation.unwrap().accuracy() > 0.9);
    }

    #[test]
    fn every_phase_label_has_a_stage_metric() {
        // Guards the DESIGN.md §9 catalog: a renamed or added pipeline
        // phase must be mapped to a `pipeline.stage.*.seconds` metric.
        let outcome = run_pipeline(csv_source(), &PipelineConfig::default(), None).unwrap();
        assert_eq!(outcome.phase_timings.len(), 6);
        for (phase, _) in &outcome.phase_timings {
            assert!(stage_metric(phase).is_some(), "unmapped phase {phase}");
        }
    }

    #[test]
    fn spec_by_name_resolves_suite_members() {
        assert_eq!(spec_by_name("NaiveBayes"), Some(AlgorithmSpec::NaiveBayes));
        assert!(spec_by_name("kNN(k=5)").is_some());
        assert!(spec_by_name("NoSuchAlgorithm").is_none());
    }

    #[test]
    fn healthy_run_is_not_degraded() {
        let outcome = run_pipeline(csv_source(), &PipelineConfig::default(), None).unwrap();
        assert!(!outcome.is_degraded());
        assert!(outcome.degraded.is_empty());
    }

    #[test]
    fn failing_quality_stage_degrades_not_aborts() {
        use openbi_faults::{FaultPlan, FaultRule};
        let plan = Arc::new(FaultPlan::new(2).with(FaultRule::error("pipeline.stage.quality")));
        let config = PipelineConfig {
            target: Some("label".into()),
            folds: 2,
            fault_plan: Some(plan),
            ..Default::default()
        };
        let outcome = run_pipeline(csv_source(), &config, None).unwrap();
        assert!(outcome.is_degraded());
        assert_eq!(outcome.degraded.len(), 1);
        assert_eq!(outcome.degraded[0].stage, "quality");
        assert!(outcome.degraded[0].error.contains("injected fault"));
        // The fallback profile is the unmeasured default and the
        // catalog stays unannotated — but mining still completed.
        let cs = outcome.catalog.find_column_set("toy").unwrap();
        assert!(cs.annotation("completeness").is_none());
        assert!(outcome.evaluation.is_some());
        assert_eq!(outcome.phase_timings.len(), 6);
    }

    #[test]
    fn panicking_publish_stage_degrades_to_empty_graph() {
        use openbi_faults::{FaultPlan, FaultRule};
        let plan = Arc::new(FaultPlan::new(2).with(FaultRule::panic("pipeline.stage.publish")));
        let config = PipelineConfig {
            target: Some("label".into()),
            folds: 2,
            fault_plan: Some(plan),
            ..Default::default()
        };
        let outcome = run_pipeline(csv_source(), &config, None).unwrap();
        assert!(outcome.published.is_empty());
        let d = outcome
            .degraded
            .iter()
            .find(|d| d.stage == "publish")
            .unwrap();
        assert!(d.error.contains("injected fault"), "{}", d.error);
        assert_eq!(d.fallback, "empty published graph");
        assert!(
            outcome.evaluation.is_some(),
            "mining happened before publish"
        );
    }

    #[test]
    fn fatal_stage_fault_propagates() {
        use openbi_faults::{FaultPlan, FaultRule};
        for stage in ["ingest", "preprocess", "mine"] {
            let plan = Arc::new(
                FaultPlan::new(2).with(FaultRule::error(format!("pipeline.stage.{stage}"))),
            );
            let config = PipelineConfig {
                target: Some("label".into()),
                folds: 2,
                fault_plan: Some(plan),
                ..Default::default()
            };
            let err = run_pipeline(csv_source(), &config, None).unwrap_err();
            assert!(matches!(err, OpenBiError::Fault(_)), "stage {stage}: {err}");
        }
    }

    #[test]
    fn degraded_advice_falls_back_to_configured_algorithm() {
        use openbi_faults::{FaultPlan, FaultRule};
        use openbi_kb::{ExperimentRecord, KnowledgeBase, PerfMetrics};
        // A KB that would recommend kNN — but the advice stage fails.
        let mut kb = KnowledgeBase::new();
        for i in 0..5 {
            for (algo, acc) in [("kNN(k=5)", 0.95), ("NaiveBayes", 0.6)] {
                kb.add(ExperimentRecord {
                    dataset: format!("d{i}"),
                    degradations: vec![],
                    profile: QualityProfile::default(),
                    algorithm: algo.into(),
                    metrics: PerfMetrics {
                        accuracy: acc,
                        macro_f1: acc,
                        minority_f1: acc,
                        kappa: acc,
                        train_ms: 1.0,
                        model_size: 1.0,
                    },
                    seed: 0,
                });
            }
        }
        let plan = Arc::new(FaultPlan::new(2).with(FaultRule::error("pipeline.stage.advice")));
        let config = PipelineConfig {
            target: Some("label".into()),
            folds: 2,
            fault_plan: Some(plan),
            ..Default::default()
        };
        let outcome = run_pipeline(csv_source(), &config, Some(&kb)).unwrap();
        assert!(outcome.advice.is_none());
        assert!(outcome.degraded.iter().any(|d| d.stage == "advice"));
        assert_eq!(outcome.chosen_algorithm, Some(AlgorithmSpec::NaiveBayes));
    }
}
