//! Publishing the DQ4DM knowledge base itself as Linked Open Data.
//!
//! The paper's closing loop: acquired knowledge should be "shared as LOD
//! to be reused by anyone" (§1) — and the most valuable knowledge OpenBI
//! produces is the experiment base itself. Each record becomes an
//! `obi:Experiment` resource linking its quality profile, algorithm and
//! metrics, so another OpenBI instance (or any SPARQL-ish consumer) can
//! import it.

use crate::error::Result;
use openbi_kb::KnowledgeBase;
use openbi_lod::vocab::{rdf, rdfs};
use openbi_lod::{Graph, Iri, Literal, Term};

fn obi(term: &str) -> Result<Term> {
    Ok(Term::Iri(Iri::new(format!(
        "{}{}",
        openbi_lod::vocab::obi::NS,
        term
    ))?))
}

/// Publish every experiment record of a knowledge base under
/// `{base_iri}/kb/…`. Returns the graph; round-trips through the
/// N-Triples/Turtle writers like any other graph.
pub fn publish_knowledge_base(kb: &KnowledgeBase, base_iri: &str) -> Result<Graph> {
    let mut g = Graph::new();
    let base = base_iri.trim_end_matches('/');
    let experiment_class = obi("Experiment")?;
    for (i, record) in kb.records().iter().enumerate() {
        let node = Term::Iri(Iri::new(format!("{base}/kb/experiment/{i}"))?);
        g.add(
            node.clone(),
            Term::Iri(rdf::type_()),
            experiment_class.clone(),
        );
        g.add(
            node.clone(),
            Term::Iri(rdfs::label()),
            Term::Literal(Literal::plain(format!(
                "{} on {}",
                record.algorithm, record.dataset
            ))),
        );
        g.add(
            node.clone(),
            obi("onDataset")?,
            Term::Literal(Literal::plain(record.dataset.clone())),
        );
        g.add(
            node.clone(),
            obi("recommendedAlgorithm")?,
            Term::Literal(Literal::plain(record.algorithm.clone())),
        );
        g.add(
            node.clone(),
            obi("seed")?,
            Term::Literal(Literal::integer(record.seed as i64)),
        );
        for (di, degradation) in record.degradations.iter().enumerate() {
            g.add(
                node.clone(),
                obi(&format!("degradation{}", di + 1))?,
                Term::Literal(Literal::plain(degradation.clone())),
            );
        }
        // The quality profile, one measurement node per criterion.
        for (ci, (criterion, value)) in record.profile.criteria().iter().enumerate() {
            let m = Term::Iri(Iri::new(format!("{base}/kb/experiment/{i}/q{ci}"))?);
            g.add(
                m.clone(),
                Term::Iri(rdf::type_()),
                Term::Iri(openbi_lod::vocab::obi::quality_measurement()),
            );
            g.add(
                m.clone(),
                Term::Iri(openbi_lod::vocab::obi::criterion()),
                Term::Literal(Literal::plain(criterion.clone())),
            );
            g.add(
                m.clone(),
                Term::Iri(openbi_lod::vocab::obi::measured_value()),
                Term::Literal(Literal::double(*value)),
            );
            g.add(
                node.clone(),
                Term::Iri(openbi_lod::vocab::obi::has_quality()),
                m,
            );
        }
        // Observed performance.
        for (name, value) in [
            ("accuracy", record.metrics.accuracy),
            ("macroF1", record.metrics.macro_f1),
            ("minorityF1", record.metrics.minority_f1),
            ("kappa", record.metrics.kappa),
        ] {
            g.add(
                node.clone(),
                obi(name)?,
                Term::Literal(Literal::double(value)),
            );
        }
    }
    Ok(g)
}

/// Import experiment records back from a published knowledge-base graph
/// — the consuming side of knowledge sharing. Records missing required
/// properties are skipped (LOD is open-world).
pub fn import_knowledge_base(graph: &Graph, base_iri: &str) -> Result<KnowledgeBase> {
    use openbi_kb::{ExperimentRecord, PerfMetrics};
    use openbi_quality::{QualityProfile, PROFILE_DIMENSIONS};
    let base = base_iri.trim_end_matches('/');
    let mut kb = KnowledgeBase::new();
    let experiment_class = Iri::new(format!("{}Experiment", openbi_lod::vocab::obi::NS))?;
    let mut subjects = graph.subjects_of_type(&experiment_class);
    // Deterministic order by IRI.
    subjects.sort();
    let _ = base;
    for node in subjects {
        let literal = |prop: &str| -> Option<String> {
            let p = obi(prop).ok()?;
            graph
                .objects(&node, &p)
                .first()
                .and_then(|t| t.as_literal().map(|l| l.lexical.clone()))
        };
        let number = |prop: &str| -> Option<f64> { literal(prop).and_then(|s| s.parse().ok()) };
        let (Some(dataset), Some(algorithm)) =
            (literal("onDataset"), literal("recommendedAlgorithm"))
        else {
            continue;
        };
        // Rebuild the profile vector from the linked measurements.
        let mut profile = QualityProfile::default();
        for m in graph.objects(&node, &Term::Iri(openbi_lod::vocab::obi::has_quality())) {
            let criterion = graph
                .objects(&m, &Term::Iri(openbi_lod::vocab::obi::criterion()))
                .first()
                .and_then(|t| t.as_literal().map(|l| l.lexical.clone()));
            let value = graph
                .objects(&m, &Term::Iri(openbi_lod::vocab::obi::measured_value()))
                .first()
                .and_then(|t| t.as_literal().and_then(|l| l.as_f64()));
            let (Some(criterion), Some(value)) = (criterion, value) else {
                continue;
            };
            if PROFILE_DIMENSIONS.contains(&criterion.as_str()) {
                set_profile_dimension(&mut profile, &criterion, value);
            }
        }
        let mut degradations = Vec::new();
        let mut di = 1;
        while let Some(d) = literal(&format!("degradation{di}")) {
            degradations.push(d);
            di += 1;
        }
        kb.add(ExperimentRecord {
            dataset,
            degradations,
            profile,
            algorithm,
            metrics: PerfMetrics {
                accuracy: number("accuracy").unwrap_or(0.0),
                macro_f1: number("macroF1").unwrap_or(0.0),
                minority_f1: number("minorityF1").unwrap_or(0.0),
                kappa: number("kappa").unwrap_or(0.0),
                train_ms: 0.0,
                model_size: 0.0,
            },
            seed: number("seed").map(|s| s as u64).unwrap_or(0),
        });
    }
    Ok(kb)
}

fn set_profile_dimension(profile: &mut openbi_quality::QualityProfile, name: &str, value: f64) {
    match name {
        "completeness" => profile.completeness = value,
        "duplicate_ratio" => profile.duplicate_ratio = value,
        "max_abs_correlation" => profile.max_abs_correlation = value,
        "mean_abs_correlation" => profile.mean_abs_correlation = value,
        "class_balance" => profile.class_balance = value,
        "minority_ratio" => profile.minority_ratio = value,
        "dimensionality" => profile.dimensionality = value,
        "outlier_ratio" => profile.outlier_ratio = value,
        "label_noise_estimate" => profile.label_noise_estimate = value,
        "attr_noise_estimate" => profile.attr_noise_estimate = value,
        "consistency" => profile.consistency = value,
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openbi_kb::{ExperimentRecord, PerfMetrics};
    use openbi_quality::QualityProfile;

    fn sample_kb() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        for (i, algo) in ["NaiveBayes", "kNN(k=5)"].iter().enumerate() {
            kb.add(ExperimentRecord {
                dataset: "blobs".into(),
                degradations: vec!["MCAR 0.2".into(), "label noise 10%".into()],
                profile: QualityProfile {
                    completeness: 0.8,
                    label_noise_estimate: 0.1,
                    ..Default::default()
                },
                algorithm: algo.to_string(),
                metrics: PerfMetrics {
                    accuracy: 0.9 - i as f64 * 0.1,
                    macro_f1: 0.88,
                    minority_f1: 0.85,
                    kappa: 0.8,
                    train_ms: 12.0,
                    model_size: 30.0,
                },
                seed: 7,
            });
        }
        kb
    }

    #[test]
    fn publish_creates_experiment_resources() {
        let g = publish_knowledge_base(&sample_kb(), "http://openbi.org").unwrap();
        let cls = Iri::new(format!("{}Experiment", openbi_lod::vocab::obi::NS)).unwrap();
        assert_eq!(g.subjects_of_type(&cls).len(), 2);
        // Each experiment links 11 quality measurements.
        let qm = g.subjects_of_type(&openbi_lod::vocab::obi::quality_measurement());
        assert_eq!(qm.len(), 22);
    }

    #[test]
    fn round_trip_preserves_advisable_content() {
        let kb = sample_kb();
        let g = publish_knowledge_base(&kb, "http://openbi.org").unwrap();
        // Through the serializer, like a real exchange.
        let text = openbi_lod::write_ntriples(&g);
        let g2 = openbi_lod::parse_ntriples(&text).unwrap();
        let imported = import_knowledge_base(&g2, "http://openbi.org").unwrap();
        assert_eq!(imported.len(), kb.len());
        let orig = &kb.records()[0];
        let back = imported
            .records()
            .iter()
            .find(|r| r.algorithm == orig.algorithm)
            .unwrap();
        assert_eq!(back.dataset, orig.dataset);
        assert_eq!(back.degradations, orig.degradations);
        assert!((back.profile.completeness - 0.8).abs() < 1e-9);
        assert!((back.metrics.accuracy - orig.metrics.accuracy).abs() < 1e-9);
        assert_eq!(back.seed, 7);
        // The imported KB is advisable.
        let advisor = openbi_kb::Advisor::default();
        let advice = advisor
            .advise(&imported, &QualityProfile::default())
            .unwrap();
        assert_eq!(advice.best(), "NaiveBayes");
    }

    #[test]
    fn import_skips_malformed_records() {
        let mut g = publish_knowledge_base(&sample_kb(), "http://openbi.org").unwrap();
        // A bogus experiment node with no properties.
        g.add(
            Term::iri("http://openbi.org/kb/experiment/999"),
            Term::Iri(rdf::type_()),
            obi("Experiment").unwrap(),
        );
        let imported = import_knowledge_base(&g, "http://openbi.org").unwrap();
        assert_eq!(imported.len(), 2, "malformed node skipped");
    }

    #[test]
    fn empty_kb_publishes_empty_graph() {
        let g = publish_knowledge_base(&KnowledgeBase::new(), "http://openbi.org").unwrap();
        assert!(g.is_empty());
        assert_eq!(
            import_knowledge_base(&g, "http://openbi.org")
                .unwrap()
                .len(),
            0
        );
    }
}
