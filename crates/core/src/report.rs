//! User-facing rendering of a pipeline outcome — the non-expert's view
//! of everything the system did and why.

use crate::pipeline::PipelineOutcome;
use openbi_quality::render_profile;
use std::fmt::Write as _;

/// Render the full outcome as a readable text report.
pub fn render_outcome(outcome: &PipelineOutcome) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "OpenBI report for dataset '{}'", outcome.dataset);
    let _ = writeln!(
        out,
        "  {} rows × {} columns ingested\n",
        outcome.raw.n_rows(),
        outcome.raw.n_cols()
    );
    if outcome.is_degraded() {
        let _ = writeln!(
            out,
            "DEGRADED RUN — {} stage(s) fell back instead of completing:",
            outcome.degraded.len()
        );
        for d in &outcome.degraded {
            let _ = writeln!(
                out,
                "  {} failed ({}); used {}",
                d.stage, d.error, d.fallback
            );
        }
        out.push('\n');
    }
    out.push_str(&render_profile(&outcome.dataset, &outcome.profile));
    out.push('\n');
    if let Some(advice) = &outcome.advice {
        let _ = writeln!(out, "Advice: {}", advice.headline());
        let _ = writeln!(out, "  {}", advice.explanation);
        for (i, r) in advice.ranking.iter().enumerate() {
            let _ = writeln!(
                out,
                "  {}. {:<28} expected score {:.3} (accuracy {:.3}, {} experiments)",
                i + 1,
                r.algorithm,
                r.expected_score,
                r.expected_accuracy,
                r.support
            );
        }
        out.push('\n');
    }
    out.push_str(&outcome.plan.report());
    if !outcome.selected_attributes.is_empty() {
        let _ = writeln!(
            out,
            "  attribute selection kept: {}",
            outcome.selected_attributes.join(", ")
        );
    }
    if !outcome.plan.steps.is_empty() {
        let _ = writeln!(
            out,
            "  completeness {:.3} -> {:.3}, max |r| {:.3} -> {:.3}, duplicates {:.3} -> {:.3}",
            outcome.profile.completeness,
            outcome.profile_after.completeness,
            outcome.profile.max_abs_correlation,
            outcome.profile_after.max_abs_correlation,
            outcome.profile.duplicate_ratio,
            outcome.profile_after.duplicate_ratio,
        );
    }
    out.push('\n');
    if let (Some(eval), Some(spec)) = (&outcome.evaluation, &outcome.chosen_algorithm) {
        let _ = writeln!(out, "Mining result ({spec}):");
        let _ = writeln!(
            out,
            "  accuracy {:.3} ± {:.3}   macro-F1 {:.3}   minority-F1 {:.3}   kappa {:.3}",
            eval.accuracy(),
            eval.accuracy_std(),
            eval.macro_f1(),
            eval.minority_f1(),
            eval.kappa()
        );
        out.push_str(&eval.confusion.render());
        out.push('\n');
    }
    let _ = writeln!(out, "KDD phase timings (Figure 1 regeneration):");
    let total: f64 = outcome.phase_timings.iter().map(|(_, ms)| ms).sum();
    for (phase, ms) in &outcome.phase_timings {
        let share = if total > 0.0 { ms / total * 100.0 } else { 0.0 };
        let _ = writeln!(out, "  {phase:<20} {ms:>9.2} ms  ({share:>5.1}%)");
    }
    let _ = writeln!(
        out,
        "\nPublished {} triples back as Linked Open Data.",
        outcome.published.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use crate::pipeline::{run_pipeline, DataSource, PipelineConfig};

    #[test]
    fn report_mentions_every_section() {
        let source = DataSource::CsvText {
            name: "demo".into(),
            content: "a,b,label\n1,x,p\n2,y,q\n3,x,p\n4,y,q\n5,x,p\n6,y,q\n".into(),
        };
        let config = PipelineConfig {
            target: Some("label".into()),
            folds: 2,
            ..Default::default()
        };
        let outcome = run_pipeline(source, &config, None).unwrap();
        let r = super::render_outcome(&outcome);
        assert!(r.contains("OpenBI report for dataset 'demo'"));
        assert!(r.contains("Data quality report"));
        assert!(r.contains("Mining result"));
        assert!(r.contains("KDD phase timings"));
        assert!(r.contains("Published"));
        assert!(!r.contains("DEGRADED RUN"), "healthy run has no marker");
    }

    #[test]
    fn report_flags_degraded_runs() {
        use openbi_faults::{FaultPlan, FaultRule};
        use std::sync::Arc;
        let source = DataSource::CsvText {
            name: "demo".into(),
            content: "a,b,label\n1,x,p\n2,y,q\n3,x,p\n4,y,q\n5,x,p\n6,y,q\n".into(),
        };
        let plan = Arc::new(FaultPlan::new(4).with(FaultRule::error("pipeline.stage.quality")));
        let config = PipelineConfig {
            target: Some("label".into()),
            folds: 2,
            fault_plan: Some(plan),
            ..Default::default()
        };
        let outcome = run_pipeline(source, &config, None).unwrap();
        let r = super::render_outcome(&outcome);
        assert!(r.contains("DEGRADED RUN"), "{r}");
        assert!(r.contains("quality failed"), "{r}");
    }
}
