//! # openbi-datagen
//!
//! Seeded synthetic data for the OpenBI experiments: Gaussian-blob and
//! rule-based classification generators (the "clean initial sample" of
//! the paper's §3.1 protocol), three open-government scenarios
//! (municipal budget, air quality, census) matching the paper's
//! citizen-analytics motivation, and Linked-Open-Data generators
//! including a high-dimensionality graph for the LOD experiments.
//!
//! This crate is the substitution for the real LOD portals the paper
//! assumes: the experimental protocol only requires a clean dataset to
//! degrade in a controlled way, which synthetic data provides
//! reproducibly (see DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lodgen;
pub mod rand_util;
pub mod scenario;
pub mod synthetic;

pub use lodgen::{high_dim_class, high_dim_lod, scenario_to_lod, HighDimLodConfig};
pub use scenario::{air_quality, all_scenarios, census, municipal_budget, Scenario};
pub use synthetic::{make_blobs, make_rule_based, reference_datasets, BlobsConfig, RuleConfig};
