//! Synthetic Linked Open Data generation.
//!
//! Two generators:
//! * [`scenario_to_lod`] lifts a tabular scenario into an RDF graph with
//!   entity links (`owl:sameAs` across "portals", `obi`-style relations)
//!   — the integration setting of the paper's §1.
//! * [`HighDimLodConfig`] generates a graph whose entities carry many
//!   sparse extra properties, reproducing the *high dimensionality* that
//!   makes LOD hard to mine (§1) for the dimensionality experiments.

use crate::rand_util::gauss;
use crate::scenario::Scenario;
use openbi_lod::{publish_table, Graph, Iri, Literal, Term};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Lift a scenario into LOD. Every row becomes an entity of class
/// `{base}/dataset/{name}/Row`; `link_density` in `[0,1]` controls how many
/// entities get a `seeAlso` link to another row and an `owl:sameAs`
/// alias on a "mirror portal".
pub fn scenario_to_lod(
    scenario: &Scenario,
    base_iri: &str,
    link_density: f64,
    seed: u64,
) -> openbi_lod::Result<Graph> {
    let mut g = publish_table(&scenario.table, base_iri, &scenario.name)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let base = base_iri.trim_end_matches('/');
    let slug: String = scenario
        .name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect();
    let n = scenario.table.n_rows();
    let see_also = Term::Iri(openbi_lod::vocab::rdfs::see_also());
    let same_as = Term::Iri(openbi_lod::vocab::owl::same_as());
    for i in 0..n {
        if rng.random::<f64>() >= link_density {
            continue;
        }
        let entity = Term::Iri(Iri::new(format!("{base}/dataset/{slug}/row/{i}"))?);
        let other = rng.random_range(0..n);
        if other != i {
            let target = Term::Iri(Iri::new(format!("{base}/dataset/{slug}/row/{other}"))?);
            g.add(entity.clone(), see_also.clone(), target);
        }
        let mirror = Term::Iri(Iri::new(format!(
            "https://mirror.example.org/{slug}/item/{i}"
        ))?);
        g.add(entity, same_as.clone(), mirror);
    }
    Ok(g)
}

/// Configuration for the high-dimensional LOD generator.
#[derive(Debug, Clone)]
pub struct HighDimLodConfig {
    /// Number of entities.
    pub n_entities: usize,
    /// Number of *informative* numeric properties.
    pub n_informative: usize,
    /// Number of extra sparse/noisy properties (the dimensionality knob).
    pub n_extra: usize,
    /// Probability that an entity carries any given extra property
    /// (sparsity: LOD entities rarely share all predicates).
    pub extra_density: f64,
    /// Number of classes encoded in a `category` property.
    pub n_classes: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for HighDimLodConfig {
    fn default() -> Self {
        HighDimLodConfig {
            n_entities: 300,
            n_informative: 4,
            n_extra: 40,
            extra_density: 0.5,
            n_classes: 2,
            seed: 42,
        }
    }
}

/// The `rdf:type` class IRI used by the high-dimensional generator.
pub fn high_dim_class() -> Iri {
    Iri::new("http://openbi.org/gen#Entity").expect("static IRI")
}

/// Generate a high-dimensional LOD graph: entities with a `category`
/// label driven by the informative properties, plus many sparse noise
/// properties.
pub fn high_dim_lod(config: &HighDimLodConfig) -> Graph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut g = Graph::new();
    let class = Term::Iri(high_dim_class());
    let type_pred = Term::Iri(openbi_lod::vocab::rdf::type_());
    let ns = "http://openbi.org/gen#";
    let k = config.n_classes.max(2);
    for i in 0..config.n_entities {
        let entity = Term::iri(&format!("{ns}e{i}"));
        g.add(entity.clone(), type_pred.clone(), class.clone());
        let cls = i % k;
        // Informative properties: shifted per class.
        for j in 0..config.n_informative {
            let v = cls as f64 * 3.0 + gauss(&mut rng);
            g.add(
                entity.clone(),
                Term::iri(&format!("{ns}info{j}")),
                Term::Literal(Literal::double(v)),
            );
        }
        // Sparse noise properties.
        for j in 0..config.n_extra {
            if rng.random::<f64>() < config.extra_density {
                g.add(
                    entity.clone(),
                    Term::iri(&format!("{ns}extra{j}")),
                    Term::Literal(Literal::double(gauss(&mut rng))),
                );
            }
        }
        g.add(
            entity,
            Term::iri(&format!("{ns}category")),
            Term::Literal(Literal::plain(format!("k{cls}"))),
        );
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::air_quality;
    use openbi_lod::{tabularize, TabularizeOptions};

    #[test]
    fn scenario_lod_contains_rows_and_links() {
        let s = air_quality(50, 1);
        let g = scenario_to_lod(&s, "http://openbi.org", 0.5, 2).unwrap();
        let row_class = Iri::new("http://openbi.org/dataset/air-quality/Row").unwrap();
        assert_eq!(g.subjects_of_type(&row_class).len(), 50);
        let same_as = Term::Iri(openbi_lod::vocab::owl::same_as());
        let links = g.match_pattern(None, Some(&same_as), None);
        assert!(!links.is_empty(), "sameAs links generated");
        assert!(links.len() < 50, "density below 1 leaves some unlinked");
    }

    #[test]
    fn zero_density_means_no_links() {
        let s = air_quality(30, 1);
        let g = scenario_to_lod(&s, "http://openbi.org", 0.0, 2).unwrap();
        let same_as = Term::Iri(openbi_lod::vocab::owl::same_as());
        assert!(g.match_pattern(None, Some(&same_as), None).is_empty());
    }

    #[test]
    fn high_dim_graph_tabularizes_with_nulls() {
        let config = HighDimLodConfig {
            n_entities: 100,
            n_extra: 20,
            extra_density: 0.4,
            ..Default::default()
        };
        let g = high_dim_lod(&config);
        let t = tabularize(&g, &high_dim_class(), &TabularizeOptions::default()).unwrap();
        assert_eq!(t.n_rows(), 100);
        // iri + informative + category + (up to) extra columns.
        assert!(t.n_cols() > config.n_informative + 2);
        // Sparsity shows up as nulls after the pivot.
        assert!(t.total_null_count() > 0, "sparse properties become nulls");
    }

    #[test]
    fn informative_properties_separate_classes() {
        let g = high_dim_lod(&HighDimLodConfig {
            n_entities: 200,
            n_extra: 0,
            ..Default::default()
        });
        let t = tabularize(&g, &high_dim_class(), &TabularizeOptions::default()).unwrap();
        let info = t.column("info0").unwrap().to_f64_vec();
        let cat = t.column("category").unwrap();
        let mut m = [0.0f64; 2];
        let mut c = [0usize; 2];
        for (i, v) in info.iter().enumerate() {
            let idx = usize::from(cat.get(i).unwrap().to_string() == "k1");
            m[idx] += v.unwrap();
            c[idx] += 1;
        }
        let (m0, m1) = (m[0] / c[0] as f64, m[1] / c[1] as f64);
        assert!((m1 - m0) > 2.0, "class means {m0} vs {m1}");
    }

    #[test]
    fn high_dim_deterministic() {
        let a = high_dim_lod(&HighDimLodConfig::default());
        let b = high_dim_lod(&HighDimLodConfig::default());
        assert_eq!(a.len(), b.len());
    }
}
