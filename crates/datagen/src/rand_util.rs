//! Shared random-sampling helpers (Box–Muller normal, weighted choice).

use rand::rngs::StdRng;
use rand::Rng;

/// Standard normal deviate via Box–Muller.
pub fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal deviate with the given mean and standard deviation.
pub fn normal(rng: &mut StdRng, mean: f64, std: f64) -> f64 {
    mean + gauss(rng) * std
}

/// Pick an index according to (unnormalized) weights.
pub fn weighted_choice(rng: &mut StdRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return 0;
    }
    let mut target = rng.random::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn normal_has_requested_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[weighted_choice(&mut rng, &[1.0, 0.0, 3.0])] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 2);
    }

    #[test]
    fn degenerate_weights_pick_first() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(weighted_choice(&mut rng, &[0.0, 0.0]), 0);
    }
}
