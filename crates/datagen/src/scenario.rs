//! Open-government scenario generators — the motivating workloads of the
//! paper's introduction (citizens analyzing public data): a municipal
//! budget, an air-quality sensor network, and a census extract.
//!
//! Each generator returns a clean, realistic table with a designated
//! classification target, so the full OpenBI pipeline (profile → advise
//! → mine → publish as LOD) can run on it end to end.

use crate::rand_util::{normal, weighted_choice};
use openbi_table::{Column, Table};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// A generated scenario: the data plus mining metadata.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable name.
    pub name: String,
    /// The clean dataset.
    pub table: Table,
    /// The classification target column.
    pub target: String,
    /// Identifier columns to exclude from mining.
    pub id_columns: Vec<String>,
}

const DISTRICTS: [&str; 6] = ["north", "south", "east", "west", "center", "harbor"];
const CATEGORIES: [&str; 5] = ["education", "transport", "health", "culture", "parks"];

/// Municipal budget execution: one row per (district, category, year)
/// line item. Target: whether the line item overspends its budget.
pub fn municipal_budget(n_rows: usize, seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut id = Vec::with_capacity(n_rows);
    let mut district = Vec::with_capacity(n_rows);
    let mut category = Vec::with_capacity(n_rows);
    let mut year = Vec::with_capacity(n_rows);
    let mut budgeted = Vec::with_capacity(n_rows);
    let mut headcount = Vec::with_capacity(n_rows);
    let mut projects = Vec::with_capacity(n_rows);
    let mut spent = Vec::with_capacity(n_rows);
    let mut overspend = Vec::with_capacity(n_rows);
    for i in 0..n_rows {
        let d = rng.random_range(0..DISTRICTS.len());
        let c = rng.random_range(0..CATEGORIES.len());
        let y = 2018 + (i % 6) as i64;
        let base = 50_000.0 * (1.0 + c as f64) * (1.0 + 0.2 * d as f64);
        let b = (normal(&mut rng, base, base * 0.2)).max(1_000.0);
        let hc = (b / 25_000.0 + normal(&mut rng, 0.0, 1.0)).max(1.0).round();
        let pj = rng.random_range(1..12) as i64;
        // Overspending is driven by category (transport/health run hot),
        // headcount pressure and a noise term — learnable but not trivial.
        let pressure = match CATEGORIES[c] {
            "transport" => 0.10,
            "health" => 0.06,
            _ => -0.06,
        } + (hc - 10.0) / 60.0
            + normal(&mut rng, 0.0, 0.08);
        let s = b * (1.0 + pressure);
        id.push(i as i64);
        district.push(DISTRICTS[d]);
        category.push(CATEGORIES[c]);
        year.push(y);
        budgeted.push((b * 100.0).round() / 100.0);
        headcount.push(hc as i64);
        projects.push(pj);
        spent.push((s * 100.0).round() / 100.0);
        overspend.push(if s > b { "yes" } else { "no" });
    }
    Scenario {
        name: "municipal-budget".into(),
        table: Table::new(vec![
            Column::from_i64("id", id),
            Column::from_str_values("district", district),
            Column::from_str_values("category", category),
            Column::from_i64("year", year),
            Column::from_f64("budgeted_eur", budgeted),
            Column::from_i64("headcount", headcount),
            Column::from_i64("projects", projects),
            Column::from_f64("spent_eur", spent),
            Column::from_str_values("overspend", overspend),
        ])
        .expect("consistent columns"),
        target: "overspend".into(),
        id_columns: vec!["id".into()],
    }
}

/// Air-quality sensor network: one row per station-day. Target: EU air
/// quality index band.
pub fn air_quality(n_rows: usize, seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut station = Vec::with_capacity(n_rows);
    let mut district = Vec::with_capacity(n_rows);
    let mut traffic = Vec::with_capacity(n_rows);
    let mut temp = Vec::with_capacity(n_rows);
    let mut wind = Vec::with_capacity(n_rows);
    let mut pm10 = Vec::with_capacity(n_rows);
    let mut no2 = Vec::with_capacity(n_rows);
    let mut band = Vec::with_capacity(n_rows);
    for i in 0..n_rows {
        let d = rng.random_range(0..DISTRICTS.len());
        let traffic_level = weighted_choice(&mut rng, &[3.0, 2.0, 1.0]); // low/med/high
        let t = normal(&mut rng, 18.0, 7.0);
        let w = normal(&mut rng, 12.0, 5.0).max(0.0);
        // Pollution rises with traffic, falls with wind.
        let p =
            (10.0 + 15.0 * traffic_level as f64 - 0.8 * w + normal(&mut rng, 0.0, 4.0)).max(1.0);
        let n2 =
            (8.0 + 12.0 * traffic_level as f64 - 0.5 * w + normal(&mut rng, 0.0, 3.0)).max(1.0);
        let b = if p < 20.0 && n2 < 25.0 {
            "good"
        } else if p < 40.0 {
            "fair"
        } else {
            "poor"
        };
        station.push(format!("ST{:03}", i % 40));
        district.push(DISTRICTS[d]);
        traffic.push(["low", "medium", "high"][traffic_level]);
        temp.push((t * 10.0).round() / 10.0);
        wind.push((w * 10.0).round() / 10.0);
        pm10.push((p * 10.0).round() / 10.0);
        no2.push((n2 * 10.0).round() / 10.0);
        band.push(b);
    }
    Scenario {
        name: "air-quality".into(),
        table: Table::new(vec![
            Column::from_str_values("station", station),
            Column::from_str_values("district", district),
            Column::from_str_values("traffic", traffic),
            Column::from_f64("temperature_c", temp),
            Column::from_f64("wind_kmh", wind),
            Column::from_f64("pm10", pm10),
            Column::from_f64("no2", no2),
            Column::from_str_values("aqi_band", band),
        ])
        .expect("consistent columns"),
        target: "aqi_band".into(),
        id_columns: vec!["station".into()],
    }
}

/// Census extract: one row per respondent. Target: commute mode.
pub fn census(n_rows: usize, seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    const EDUCATION: [&str; 4] = ["primary", "secondary", "vocational", "university"];
    let mut id = Vec::with_capacity(n_rows);
    let mut age = Vec::with_capacity(n_rows);
    let mut education = Vec::with_capacity(n_rows);
    let mut household = Vec::with_capacity(n_rows);
    let mut income = Vec::with_capacity(n_rows);
    let mut dist_km = Vec::with_capacity(n_rows);
    let mut district = Vec::with_capacity(n_rows);
    let mut mode = Vec::with_capacity(n_rows);
    for i in 0..n_rows {
        let a = rng.random_range(18..80) as i64;
        let e = weighted_choice(&mut rng, &[1.0, 3.0, 2.0, 2.5]);
        let h = rng.random_range(1..6) as i64;
        let inc = (normal(&mut rng, 18_000.0 + 7_000.0 * e as f64, 6_000.0)).max(6_000.0);
        let dk = (normal(&mut rng, 6.0, 5.0)).abs().max(0.1);
        let d = rng.random_range(0..DISTRICTS.len());
        // Commute mode: short distances walk/bike; long ones car unless
        // income is low, then transit.
        let m = if dk < 2.0 {
            "walk"
        } else if dk < 5.0 && a < 50 {
            "bike"
        } else if inc < 20_000.0 {
            "transit"
        } else {
            "car"
        };
        id.push(i as i64);
        age.push(a);
        education.push(EDUCATION[e]);
        household.push(h);
        income.push((inc / 100.0).round() * 100.0);
        dist_km.push((dk * 10.0).round() / 10.0);
        district.push(DISTRICTS[d]);
        mode.push(m);
    }
    Scenario {
        name: "census".into(),
        table: Table::new(vec![
            Column::from_i64("id", id),
            Column::from_i64("age", age),
            Column::from_str_values("education", education),
            Column::from_i64("household_size", household),
            Column::from_f64("income_eur", income),
            Column::from_f64("commute_km", dist_km),
            Column::from_str_values("district", district),
            Column::from_str_values("commute_mode", mode),
        ])
        .expect("consistent columns"),
        target: "commute_mode".into(),
        id_columns: vec!["id".into()],
    }
}

/// All three scenarios at the given size.
pub fn all_scenarios(n_rows: usize, seed: u64) -> Vec<Scenario> {
    vec![
        municipal_budget(n_rows, seed),
        air_quality(n_rows, seed.wrapping_add(1)),
        census(n_rows, seed.wrapping_add(2)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use openbi_table::stats;

    #[test]
    fn budget_is_learnable_and_clean() {
        let s = municipal_budget(500, 1);
        assert_eq!(s.table.n_rows(), 500);
        assert_eq!(s.table.total_null_count(), 0);
        let counts = stats::value_counts(s.table.column("overspend").unwrap());
        assert!(counts.len() == 2, "both classes present");
        assert!(*counts.values().min().unwrap() > 50, "not degenerate");
    }

    #[test]
    fn air_quality_pollution_tracks_traffic() {
        let s = air_quality(800, 2);
        // Mean pm10 for high-traffic rows must exceed low-traffic rows.
        let t = &s.table;
        let mut high = vec![];
        let mut low = vec![];
        for i in 0..t.n_rows() {
            let p = t.get("pm10", i).unwrap().as_f64().unwrap();
            match t.get("traffic", i).unwrap().to_string().as_str() {
                "high" => high.push(p),
                "low" => low.push(p),
                _ => {}
            }
        }
        let mh = high.iter().sum::<f64>() / high.len() as f64;
        let ml = low.iter().sum::<f64>() / low.len() as f64;
        assert!(mh > ml + 10.0, "high {mh} vs low {ml}");
    }

    #[test]
    fn census_modes_follow_distance() {
        let s = census(800, 3);
        let t = &s.table;
        for i in 0..t.n_rows() {
            let dk = t.get("commute_km", i).unwrap().as_f64().unwrap();
            let m = t.get("commute_mode", i).unwrap().to_string();
            if dk < 2.0 {
                assert_eq!(m, "walk");
            }
        }
    }

    #[test]
    fn scenarios_deterministic() {
        assert_eq!(
            municipal_budget(100, 9).table,
            municipal_budget(100, 9).table
        );
        assert_ne!(
            municipal_budget(100, 9).table,
            municipal_budget(100, 10).table
        );
    }

    #[test]
    fn all_scenarios_have_targets() {
        for s in all_scenarios(200, 5) {
            assert!(s.table.has_column(&s.target), "{}", s.name);
            for idc in &s.id_columns {
                assert!(s.table.has_column(idc));
            }
        }
    }
}
