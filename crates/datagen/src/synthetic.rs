//! Synthetic classification datasets with known ground truth — the
//! "initial and representative sample … manually cleaned" that the
//! paper's experimental protocol starts from (§3.1). Generators are
//! fully seeded, so every experiment run is reproducible.

use crate::rand_util::{gauss, normal};
use openbi_table::{Column, Table};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Configuration for the Gaussian-blob classification generator.
#[derive(Debug, Clone)]
pub struct BlobsConfig {
    /// Rows to generate.
    pub n_rows: usize,
    /// Informative numeric features.
    pub n_features: usize,
    /// Number of classes (one blob per class).
    pub n_classes: usize,
    /// Distance between class centroids, in units of the within-class
    /// standard deviation — the knob that sets baseline separability.
    pub class_separation: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for BlobsConfig {
    fn default() -> Self {
        BlobsConfig {
            n_rows: 600,
            n_features: 6,
            n_classes: 3,
            class_separation: 3.0,
            seed: 42,
        }
    }
}

/// Generate a Gaussian-blobs classification table: numeric feature
/// columns `f1..fk` plus a string `class` column.
pub fn make_blobs(config: &BlobsConfig) -> Table {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let k = config.n_classes.max(2);
    let d = config.n_features.max(1);
    // Centroids on (sign-flipped) coordinate axes at the requested
    // separation, plus a small random jitter. Axis placement guarantees
    // pairwise centroid distance ≥ separation regardless of seed —
    // purely random centroids can land arbitrarily close and silently
    // destroy the separability the experiments calibrate against.
    let centroids: Vec<Vec<f64>> = (0..k)
        .map(|c| {
            let axis = c % d;
            let sign = if (c / d).is_multiple_of(2) { 1.0 } else { -1.0 };
            // Radius grows when classes wrap around the axes, so even
            // k > 2d classes stay distinct.
            let radius = config.class_separation * (1.0 + (c / (2 * d)) as f64);
            (0..d)
                .map(|j| {
                    let base = if j == axis { sign * radius } else { 0.0 };
                    base + gauss(&mut rng) * 0.15 * config.class_separation
                })
                .collect()
        })
        .collect();
    let mut features: Vec<Vec<f64>> = vec![Vec::with_capacity(config.n_rows); d];
    let mut labels: Vec<String> = Vec::with_capacity(config.n_rows);
    for i in 0..config.n_rows {
        let class = i % k; // balanced by construction
        for (j, f) in features.iter_mut().enumerate() {
            f.push(normal(&mut rng, centroids[class][j], 1.0));
        }
        labels.push(format!("c{class}"));
    }
    let mut columns: Vec<Column> = features
        .into_iter()
        .enumerate()
        .map(|(j, f)| Column::from_f64(format!("f{}", j + 1), f))
        .collect();
    columns.push(Column::from_str_values("class", labels));
    Table::new(columns).expect("generated columns are consistent")
}

/// Configuration for the rule-based generator: the class is a boolean
/// combination of feature thresholds, so trees/rules can be exact while
/// linear models cannot.
#[derive(Debug, Clone)]
pub struct RuleConfig {
    /// Rows to generate.
    pub n_rows: usize,
    /// Extra uninformative numeric features beyond the three rule inputs.
    pub n_noise_features: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for RuleConfig {
    fn default() -> Self {
        RuleConfig {
            n_rows: 600,
            n_noise_features: 3,
            seed: 42,
        }
    }
}

/// Generate a rule-based dataset: class = `"yes"` iff
/// `(a > 0.6 && b < 0.4) || c > 0.8` over uniform features in `[0,1)`,
/// plus noise features `n1..nk` and a categorical `region` column.
pub fn make_rule_based(config: &RuleConfig) -> Table {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.n_rows;
    let mut a = Vec::with_capacity(n);
    let mut b = Vec::with_capacity(n);
    let mut c = Vec::with_capacity(n);
    let mut region = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    let mut noise: Vec<Vec<f64>> = vec![Vec::with_capacity(n); config.n_noise_features];
    const REGIONS: [&str; 4] = ["north", "south", "east", "west"];
    for _ in 0..n {
        let av = rng.random::<f64>();
        let bv = rng.random::<f64>();
        let cv = rng.random::<f64>();
        let yes = (av > 0.6 && bv < 0.4) || cv > 0.8;
        a.push(av);
        b.push(bv);
        c.push(cv);
        region.push(REGIONS[rng.random_range(0..REGIONS.len())]);
        labels.push(if yes { "yes" } else { "no" });
        for f in &mut noise {
            f.push(rng.random::<f64>());
        }
    }
    let mut columns = vec![
        Column::from_f64("a", a),
        Column::from_f64("b", b),
        Column::from_f64("c", c),
        Column::from_str_values("region", region),
    ];
    for (j, f) in noise.into_iter().enumerate() {
        columns.push(Column::from_f64(format!("n{}", j + 1), f));
    }
    columns.push(Column::from_str_values("class", labels));
    Table::new(columns).expect("generated columns are consistent")
}

/// The three clean reference datasets every phase-1 experiment runs on:
/// `(name, table, target_column)` triples. Sizes are laptop-scale but
/// non-trivial.
pub fn reference_datasets(seed: u64) -> Vec<(String, Table, String)> {
    vec![
        (
            "blobs-easy".to_string(),
            make_blobs(&BlobsConfig {
                class_separation: 4.0,
                seed,
                ..Default::default()
            }),
            "class".to_string(),
        ),
        (
            "blobs-hard".to_string(),
            make_blobs(&BlobsConfig {
                n_features: 10,
                n_classes: 4,
                class_separation: 1.5,
                seed: seed.wrapping_add(1),
                ..Default::default()
            }),
            "class".to_string(),
        ),
        (
            "rules".to_string(),
            make_rule_based(&RuleConfig {
                seed: seed.wrapping_add(2),
                ..Default::default()
            }),
            "class".to_string(),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use openbi_table::Value;

    #[test]
    fn blobs_shape_and_balance() {
        let t = make_blobs(&BlobsConfig::default());
        assert_eq!(t.n_rows(), 600);
        assert_eq!(t.n_cols(), 7);
        let counts = openbi_table::stats::value_counts(t.column("class").unwrap());
        assert_eq!(counts.len(), 3);
        for c in counts.values() {
            assert_eq!(*c, 200);
        }
    }

    #[test]
    fn blobs_deterministic_by_seed() {
        let a = make_blobs(&BlobsConfig::default());
        let b = make_blobs(&BlobsConfig::default());
        assert_eq!(a, b);
        let c = make_blobs(&BlobsConfig {
            seed: 1,
            ..Default::default()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn blobs_separation_controls_difficulty() {
        // With large separation, a nearest-centroid check on f1..fk
        // should recover class structure (within-class spread 1.0).
        let t = make_blobs(&BlobsConfig {
            class_separation: 8.0,
            n_classes: 2,
            n_rows: 200,
            ..Default::default()
        });
        // Compute per-class mean of f1; they must differ by much more
        // than the within-class std.
        let f1 = t.column("f1").unwrap().to_f64_vec();
        let cls = t.column("class").unwrap();
        let mut by_class: std::collections::HashMap<String, Vec<f64>> = Default::default();
        for (i, v) in f1.iter().enumerate() {
            by_class
                .entry(cls.get(i).unwrap().to_string())
                .or_default()
                .push(v.unwrap());
        }
        let means: Vec<f64> = by_class
            .values()
            .map(|v| v.iter().sum::<f64>() / v.len() as f64)
            .collect();
        assert!((means[0] - means[1]).abs() > 3.0);
    }

    #[test]
    fn rule_based_labels_follow_rule() {
        let t = make_rule_based(&RuleConfig::default());
        for i in 0..t.n_rows() {
            let a = t.get("a", i).unwrap().as_f64().unwrap();
            let b = t.get("b", i).unwrap().as_f64().unwrap();
            let c = t.get("c", i).unwrap().as_f64().unwrap();
            let expected = (a > 0.6 && b < 0.4) || c > 0.8;
            let label = t.get("class", i).unwrap();
            assert_eq!(
                label,
                Value::Str(if expected { "yes" } else { "no" }.into())
            );
        }
    }

    #[test]
    fn reference_datasets_are_clean() {
        for (name, table, target) in reference_datasets(7) {
            assert!(table.n_rows() >= 500, "{name} too small");
            assert_eq!(table.total_null_count(), 0, "{name} must start clean");
            assert!(table.has_column(&target));
        }
    }
}
