//! The process-global fault-plan slot.
//!
//! Deep call paths that cannot reasonably thread a plan through their
//! signatures (the knowledge-base store's file I/O, code behind trait
//! objects) check this slot instead, mirroring the `openbi-obs` global
//! registry: the miss path is a single relaxed atomic load, so
//! production runs pay nothing.
//!
//! Call paths that *do* have a configuration struct (the experiment
//! executor, the pipeline) should prefer an explicit
//! `Option<Arc<FaultPlan>>` field and fall back to this slot, so tests
//! can inject faults without touching process-global state.

use crate::plan::{FaultError, FaultPlan};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

static ENABLED: AtomicBool = AtomicBool::new(false);
static ACTIVE: RwLock<Option<Arc<FaultPlan>>> = RwLock::new(None);

/// Install `plan` as the process-global fault plan, replacing any
/// previously installed one.
pub fn install(plan: Arc<FaultPlan>) {
    *ACTIVE.write().unwrap_or_else(PoisonError::into_inner) = Some(plan);
    ENABLED.store(true, Ordering::Release);
}

/// Remove and return the process-global plan, disabling global
/// injection.
pub fn uninstall() -> Option<Arc<FaultPlan>> {
    ENABLED.store(false, Ordering::Release);
    ACTIVE
        .write()
        .unwrap_or_else(PoisonError::into_inner)
        .take()
}

/// The currently installed plan, if any.
pub fn active() -> Option<Arc<FaultPlan>> {
    if !ENABLED.load(Ordering::Acquire) {
        return None;
    }
    ACTIVE
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

/// [`FaultPlan::fire`] against the installed plan; `Ok(())` when none
/// is installed.
pub fn fire_installed(point: &str, key: u64, attempt: u32) -> Result<(), FaultError> {
    match active() {
        Some(plan) => plan.fire(point, key, attempt),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultRule;

    /// The single test that touches the global slot (the rest of the
    /// crate's tests use owned plans, so this cannot race within the
    /// test binary).
    #[test]
    fn install_fire_uninstall_round_trip() {
        assert!(active().is_none());
        assert!(fire_installed("p", 0, 0).is_ok(), "no plan: no faults");

        let plan = Arc::new(FaultPlan::new(1).with(FaultRule::error("p")));
        install(Arc::clone(&plan));
        assert!(active().is_some());
        assert!(fire_installed("p", 0, 0).is_err());
        assert!(fire_installed("p", 0, 1).is_ok(), "times=1: retries pass");
        assert!(fire_installed("other", 0, 0).is_ok());

        let removed = uninstall().expect("a plan was installed");
        assert!(Arc::ptr_eq(&removed, &plan));
        assert!(uninstall().is_none());
        assert!(fire_installed("p", 0, 0).is_ok(), "uninstalled: no faults");
    }
}
