//! # openbi-faults
//!
//! Deterministic, seed-replayable fault injection for OpenBI chaos
//! testing. Nikiforova's open-data-quality catalog and the paper's own
//! pitch — a non-expert must be able to trust "the best option is
//! ALGORITHM X" — mean partial failure is an *input* the system has to
//! absorb, so this crate makes faults a first-class, testable input:
//!
//! * [`FaultPlan`] maps named injection points (`grid.cell.run`,
//!   `pipeline.stage.quality`, `kb.store.save`, `kb.publish`,
//!   `kb.wal.append`, …) to schedules of
//!   [`FaultKind::Error`] / [`FaultKind::Panic`] /
//!   [`FaultKind::Delay`] faults, plus the storage-corruption pair
//!   [`FaultKind::ShortWrite`] / [`FaultKind::BitFlip`] whose
//!   seed-keyed byte positions let checksummed-log recovery be proven
//!   end to end ([`FaultPlan::corrupt_buffer`]).
//! * Every decision is a pure hash of `(plan seed, rule, scope key)` —
//!   no interior state — so a plan fires the same faults regardless of
//!   thread count or execution order, and any chaos run is replayable
//!   from its seed.
//! * Plans have a one-line-per-rule text form
//!   ([`FaultPlan::parse`] / [`FaultPlan::to_text`]) so chaos runs are
//!   scriptable: `openbi-cli experiments --fault-plan plan.txt`.
//! * A process-global slot ([`install`] / [`uninstall`] / [`active`])
//!   reaches call paths that have no configuration struct of their own
//!   (the knowledge-base store's file I/O); everything else takes the
//!   plan explicitly.
//!
//! ```
//! use openbi_faults::{FaultPlan, FaultRule};
//!
//! let plan = FaultPlan::parse("seed 7\nfault grid.cell.run error\n").unwrap();
//! assert!(plan.fire("grid.cell.run", 0xC0FFEE, 0).is_err()); // attempt 0 fails
//! assert!(plan.fire("grid.cell.run", 0xC0FFEE, 1).is_ok());  // retry succeeds
//! assert_eq!(FaultPlan::parse(&plan.to_text()).unwrap(), plan);
//! ```
//!
//! The injection-point catalog and the retry/deadline/degradation
//! semantics built on top of this crate are documented in DESIGN.md
//! §10.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod global;
mod parse;
mod plan;

pub use global::{active, fire_installed, install, uninstall};
pub use parse::PlanParseError;
pub use plan::{key, Corruption, FaultError, FaultKind, FaultPlan, FaultRule};
