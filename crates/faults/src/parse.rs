//! The fault-plan text format: one directive per line, `#` comments.
//!
//! ```text
//! # chaos: fail every grid cell once, slow every KB save by 50 ms
//! seed 42
//! fault grid.cell.run error
//! fault kb.store.save delay=50 times=2 ratio=0.5
//! fault pipeline.stage.quality panic times=1
//! ```
//!
//! Grammar per non-comment line:
//!
//! * `seed <u64>` — the plan seed (defaults to 0 when absent).
//! * `fault <point> <error|panic|delay=MS|short_write|bit_flip> [times=N] [ratio=F]`
//!
//! [`FaultPlan::to_text`] renders the canonical form; parsing it back
//! yields an equal plan, so plans can be generated, saved, and replayed.

use crate::plan::{FaultKind, FaultPlan, FaultRule};
use std::fmt;

/// A fault-plan text that could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError {
    /// 1-based line number of the offending line (0 for file-level
    /// errors such as an unreadable path).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "fault plan: {}", self.message)
        } else {
            write!(f, "fault plan line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for PlanParseError {}

fn err(line: usize, message: impl Into<String>) -> PlanParseError {
    PlanParseError {
        line,
        message: message.into(),
    }
}

impl FaultPlan {
    /// Parse a plan from its text form.
    pub fn parse(text: &str) -> Result<FaultPlan, PlanParseError> {
        let mut plan = FaultPlan::new(0);
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut words = line.split_whitespace();
            match words.next() {
                Some("seed") => {
                    let value = words
                        .next()
                        .ok_or_else(|| err(line_no, "seed needs a value"))?;
                    let seed = value
                        .parse::<u64>()
                        .map_err(|_| err(line_no, format!("invalid seed {value:?}")))?;
                    plan = FaultPlan::new(seed).with_rules(plan);
                }
                Some("fault") => {
                    let rule = parse_rule(line_no, &mut words)?;
                    plan = plan.with(rule);
                }
                Some(other) => {
                    return Err(err(
                        line_no,
                        format!("unknown directive {other:?} (expected `seed` or `fault`)"),
                    ))
                }
                None => unreachable!("blank lines are skipped"),
            }
            if let Some(extra) = words.next() {
                return Err(err(line_no, format!("trailing token {extra:?}")));
            }
        }
        Ok(plan)
    }

    /// Load a plan from a file in the text format.
    pub fn from_file(path: impl AsRef<std::path::Path>) -> Result<FaultPlan, PlanParseError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| err(0, format!("cannot read {}: {e}", path.display())))?;
        FaultPlan::parse(&text)
    }

    /// Render the canonical text form (round-trips through
    /// [`parse`](FaultPlan::parse)).
    pub fn to_text(&self) -> String {
        let mut out = format!("seed {}\n", self.seed());
        for rule in self.rules() {
            out.push_str(&format!(
                "fault {} {} times={} ratio={}\n",
                rule.point, rule.kind, rule.times, rule.ratio
            ));
        }
        out
    }

    /// Keep `self`'s seed but take every rule of `other` (parser
    /// helper: `seed` lines may appear after `fault` lines).
    fn with_rules(mut self, other: FaultPlan) -> FaultPlan {
        for rule in other.rules() {
            self = self.with(rule.clone());
        }
        self
    }
}

fn parse_rule<'a>(
    line: usize,
    words: &mut impl Iterator<Item = &'a str>,
) -> Result<FaultRule, PlanParseError> {
    let point = words
        .next()
        .ok_or_else(|| err(line, "fault needs an injection-point name"))?;
    let kind_word = words.next().ok_or_else(|| {
        err(
            line,
            "fault needs a kind: error, panic, delay=MS, short_write, or bit_flip",
        )
    })?;
    let kind = match kind_word {
        "error" => FaultKind::Error,
        "panic" => FaultKind::Panic,
        "short_write" => FaultKind::ShortWrite,
        "bit_flip" => FaultKind::BitFlip,
        other => match other.strip_prefix("delay=") {
            Some(ms) => FaultKind::Delay(
                ms.parse::<u64>()
                    .map_err(|_| err(line, format!("invalid delay milliseconds {ms:?}")))?,
            ),
            None => return Err(err(line, format!("unknown fault kind {other:?}"))),
        },
    };
    let mut rule = FaultRule::new(point, kind);
    for option in words {
        if let Some(times) = option.strip_prefix("times=") {
            rule = rule.times(
                times
                    .parse::<u32>()
                    .map_err(|_| err(line, format!("invalid times {times:?}")))?,
            );
        } else if let Some(ratio) = option.strip_prefix("ratio=") {
            let ratio = ratio
                .parse::<f64>()
                .map_err(|_| err(line, format!("invalid ratio {ratio:?}")))?;
            if !(0.0..=1.0).contains(&ratio) {
                return Err(err(line, format!("ratio {ratio} outside [0, 1]")));
            }
            rule = rule.ratio(ratio);
        } else {
            return Err(err(line, format!("unknown option {option:?}")));
        }
    }
    Ok(rule)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_example() {
        let plan = FaultPlan::parse(
            "# chaos\n\
             seed 42\n\
             fault grid.cell.run error\n\
             fault kb.store.save delay=50 times=2 ratio=0.5\n\
             fault pipeline.stage.quality panic times=1\n",
        )
        .unwrap();
        assert_eq!(plan.seed(), 42);
        assert_eq!(plan.rules().len(), 3);
        assert_eq!(plan.rules()[0].kind, FaultKind::Error);
        assert_eq!(plan.rules()[1].kind, FaultKind::Delay(50));
        assert_eq!(plan.rules()[1].times, 2);
        assert_eq!(plan.rules()[1].ratio, 0.5);
        assert_eq!(plan.rules()[2].kind, FaultKind::Panic);
    }

    #[test]
    fn text_round_trip_is_identity() {
        let plan = FaultPlan::new(7)
            .with(FaultRule::error("grid.cell.run").times(3))
            .with(FaultRule::delay("kb.store.*", 10).ratio(0.25))
            .with(FaultRule::panic("pipeline.stage.quality"))
            .with(FaultRule::short_write("kb.wal.append").ratio(0.5))
            .with(FaultRule::bit_flip("kb.wal.*").times(2));
        let reparsed = FaultPlan::parse(&plan.to_text()).unwrap();
        assert_eq!(reparsed, plan);
    }

    #[test]
    fn parses_the_corruption_kinds() {
        let plan = FaultPlan::parse(
            "seed 21\n\
             fault kb.wal.append short_write times=2\n\
             fault kb.wal.append bit_flip ratio=0.25\n",
        )
        .unwrap();
        assert_eq!(plan.rules()[0].kind, FaultKind::ShortWrite);
        assert_eq!(plan.rules()[0].times, 2);
        assert_eq!(plan.rules()[1].kind, FaultKind::BitFlip);
        assert_eq!(plan.rules()[1].ratio, 0.25);
    }

    #[test]
    fn comments_blank_lines_and_late_seed_are_fine() {
        let plan =
            FaultPlan::parse("\n# header\nfault p error  # trailing comment\n\nseed 9\n").unwrap();
        assert_eq!(plan.seed(), 9);
        assert_eq!(plan.rules().len(), 1);
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        for (text, needle) in [
            ("seed\n", "seed needs a value"),
            ("seed nope\n", "invalid seed"),
            ("fault p\n", "needs a kind"),
            ("fault p maybe\n", "unknown fault kind"),
            ("fault p delay=soon\n", "invalid delay"),
            ("fault p error times=x\n", "invalid times"),
            ("fault p error ratio=1.5\n", "outside [0, 1]"),
            ("fault p error wat=1\n", "unknown option"),
            ("boom p error\n", "unknown directive"),
            ("seed 1 2\n", "trailing token"),
        ] {
            let e = FaultPlan::parse(text).unwrap_err();
            assert!(e.to_string().contains(needle), "{text:?} → {e}");
            assert_eq!(e.line, 1, "{text:?}");
        }
    }

    #[test]
    fn missing_file_is_a_file_level_error() {
        let e = FaultPlan::from_file("/no/such/plan.txt").unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.to_string().contains("cannot read"));
    }

    #[test]
    fn file_round_trip() {
        let plan = FaultPlan::new(3).with(FaultRule::error("grid.cell.run"));
        let dir = std::env::temp_dir().join("openbi-faults-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plan.txt");
        std::fs::write(&path, plan.to_text()).unwrap();
        assert_eq!(FaultPlan::from_file(&path).unwrap(), plan);
        std::fs::remove_file(path).ok();
    }
}
