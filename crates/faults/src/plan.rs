//! Fault plans: which injection points misbehave, how, and when.
//!
//! A [`FaultPlan`] is a pure decision table. Every decision is a hash of
//! `(plan seed, rule index, scope key)` — no interior state, no RNG
//! stream to keep in sync — so the same plan produces the same faults
//! no matter how many threads execute the workload or in which order
//! the injection points are reached. That property is what lets the
//! chaos tests assert byte-identical results across worker counts.

use std::fmt;
use std::time::Duration;

/// What an injection point does when a rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail with an injected error; the site maps it into its own
    /// error type and takes its normal failure path (retry, skip, …).
    Error,
    /// Panic with a deterministic message; the site's panic containment
    /// (if any) is what is being tested.
    Panic,
    /// Sleep for the given number of milliseconds, then continue
    /// normally — exercises deadlines and slow-path handling without
    /// changing any result.
    Delay(u64),
    /// A write syscall that persists only a prefix of the buffer before
    /// failing. Corruption-aware sites ([`FaultPlan::corrupt_buffer`])
    /// truncate the buffer at a seed-keyed byte position and take their
    /// short-write repair path; [`fire`](FaultPlan::fire) treats it as
    /// [`Error`](FaultKind::Error) at sites that cannot apply it.
    ShortWrite,
    /// Silent single-bit corruption at a seed-keyed position: the write
    /// "succeeds" but one bit of the buffer is flipped, so only an
    /// end-to-end checksum can catch it later. Like
    /// [`ShortWrite`](FaultKind::ShortWrite), only corruption-aware
    /// sites apply it; `fire` is a no-op for it (the write succeeded).
    BitFlip,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Error => f.write_str("error"),
            FaultKind::Panic => f.write_str("panic"),
            FaultKind::Delay(ms) => write!(f, "delay={ms}"),
            FaultKind::ShortWrite => f.write_str("short_write"),
            FaultKind::BitFlip => f.write_str("bit_flip"),
        }
    }
}

/// What [`FaultPlan::corrupt_buffer`] did to a buffer, for logging and
/// test assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// The buffer was truncated to `kept` bytes (always fewer than the
    /// original length).
    ShortWrite {
        /// Bytes surviving the truncation.
        kept: usize,
    },
    /// One bit was flipped in place.
    BitFlip {
        /// Byte offset of the flipped bit.
        byte: usize,
        /// Bit index within that byte (0–7).
        bit: u8,
    },
}

/// One schedule entry: at which point, what to inject, for which scope
/// keys, and on how many attempts.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// Injection-point name this rule applies to. A trailing `*` is a
    /// prefix wildcard: `grid.*` matches every grid point.
    pub point: String,
    /// What to inject.
    pub kind: FaultKind,
    /// Fire on attempts `0..times` of each selected key; `1` (the
    /// default) means "fail once, then let retries succeed", a large
    /// value means the key fails persistently.
    pub times: u32,
    /// Deterministic fraction of scope keys this rule selects, in
    /// `[0, 1]`. `1.0` (the default) selects every key.
    pub ratio: f64,
}

impl FaultRule {
    /// A rule with the default schedule (`times = 1`, `ratio = 1.0`).
    pub fn new(point: impl Into<String>, kind: FaultKind) -> Self {
        FaultRule {
            point: point.into(),
            kind,
            times: 1,
            ratio: 1.0,
        }
    }

    /// Shorthand for an [`FaultKind::Error`] rule.
    pub fn error(point: impl Into<String>) -> Self {
        FaultRule::new(point, FaultKind::Error)
    }

    /// Shorthand for a [`FaultKind::Panic`] rule.
    pub fn panic(point: impl Into<String>) -> Self {
        FaultRule::new(point, FaultKind::Panic)
    }

    /// Shorthand for a [`FaultKind::Delay`] rule.
    pub fn delay(point: impl Into<String>, ms: u64) -> Self {
        FaultRule::new(point, FaultKind::Delay(ms))
    }

    /// Shorthand for a [`FaultKind::ShortWrite`] rule.
    pub fn short_write(point: impl Into<String>) -> Self {
        FaultRule::new(point, FaultKind::ShortWrite)
    }

    /// Shorthand for a [`FaultKind::BitFlip`] rule.
    pub fn bit_flip(point: impl Into<String>) -> Self {
        FaultRule::new(point, FaultKind::BitFlip)
    }

    /// Set how many attempts per key this rule fires on.
    pub fn times(mut self, times: u32) -> Self {
        self.times = times;
        self
    }

    /// Set the deterministic fraction of keys selected (clamped to
    /// `[0, 1]`).
    pub fn ratio(mut self, ratio: f64) -> Self {
        self.ratio = ratio.clamp(0.0, 1.0);
        self
    }

    /// True iff this rule's point pattern matches `point`.
    pub fn matches(&self, point: &str) -> bool {
        match self.point.strip_suffix('*') {
            Some(prefix) => point.starts_with(prefix),
            None => self.point == point,
        }
    }
}

/// The error an injection point raises when an [`FaultKind::Error`]
/// rule fires. Carries enough context to find the rule and replay the
/// exact decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultError {
    /// The injection point that fired.
    pub point: String,
    /// Index of the firing rule in the plan.
    pub rule: usize,
    /// The scope key the decision was made for.
    pub key: u64,
    /// The attempt number the fault fired on.
    pub attempt: u32,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected fault at {} (rule {}, key {:#x}, attempt {})",
            self.point, self.rule, self.key, self.attempt
        )
    }
}

impl std::error::Error for FaultError {}

/// A named, seed-deterministic schedule of faults.
///
/// ```
/// use openbi_faults::{FaultKind, FaultPlan, FaultRule};
///
/// let plan = FaultPlan::new(42)
///     .with(FaultRule::error("grid.cell.run"))          // fail once per key
///     .with(FaultRule::delay("kb.store.save", 5).times(2));
///
/// // Attempt 0 fails, attempt 1 succeeds — for every key, every time.
/// assert!(plan.fire("grid.cell.run", 7, 0).is_err());
/// assert!(plan.fire("grid.cell.run", 7, 1).is_ok());
/// assert!(plan.fire("unwired.point", 7, 0).is_ok());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// The plan seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The schedule, in evaluation order.
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// Append a rule (builder style). Rules are evaluated in insertion
    /// order; the first match per `(point, key, attempt)` wins.
    pub fn with(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Pure decision: which rule (if any) fires at `point` for scope
    /// `key` on `attempt`. Never sleeps, errors, or panics — the
    /// side-effecting counterpart is [`fire`](FaultPlan::fire).
    pub fn decide(&self, point: &str, key: u64, attempt: u32) -> Option<(usize, FaultKind)> {
        self.rules
            .iter()
            .enumerate()
            .find(|(i, r)| r.matches(point) && attempt < r.times && self.selects(*i, key))
            .map(|(i, r)| (i, r.kind))
    }

    /// Execute the decision for `(point, key, attempt)`:
    /// [`Delay`](FaultKind::Delay) sleeps then returns `Ok`,
    /// [`Error`](FaultKind::Error) returns a [`FaultError`], and
    /// [`Panic`](FaultKind::Panic) panics with a deterministic message.
    /// No matching rule is `Ok(())`.
    ///
    /// The corruption kinds need a buffer to corrupt, which only
    /// [`corrupt_buffer`](FaultPlan::corrupt_buffer) receives. At a
    /// plain `fire` site a [`ShortWrite`](FaultKind::ShortWrite) is the
    /// visible half of its semantics — a failed write — and degrades to
    /// an error, while a [`BitFlip`](FaultKind::BitFlip) is the
    /// *invisible* half — a write that claimed success — and degrades to
    /// a no-op.
    pub fn fire(&self, point: &str, key: u64, attempt: u32) -> Result<(), FaultError> {
        match self.decide(point, key, attempt) {
            None | Some((_, FaultKind::BitFlip)) => Ok(()),
            Some((_, FaultKind::Delay(ms))) => {
                std::thread::sleep(Duration::from_millis(ms));
                Ok(())
            }
            Some((rule, FaultKind::Error | FaultKind::ShortWrite)) => Err(FaultError {
                point: point.to_string(),
                rule,
                key,
                attempt,
            }),
            Some((rule, FaultKind::Panic)) => {
                panic!("injected fault: panic at {point} (rule {rule}, key {key:#x}, attempt {attempt})")
            }
        }
    }

    /// The corruption-aware counterpart of [`fire`](FaultPlan::fire)
    /// for sites that hold the bytes about to be written.
    ///
    /// Non-corruption kinds behave exactly like `fire` and leave `buf`
    /// untouched. A [`ShortWrite`](FaultKind::ShortWrite) truncates
    /// `buf` to a seed-keyed length (always dropping at least one
    /// byte); the site should persist the surviving prefix and then take
    /// its failed-write path. A [`BitFlip`](FaultKind::BitFlip) flips
    /// one seed-keyed bit in place; the site should persist the buffer
    /// and report success — only an end-to-end checksum can catch it
    /// later. Byte positions are a pure hash of `(plan seed, rule
    /// index, key)`, so reruns corrupt the same position.
    pub fn corrupt_buffer(
        &self,
        point: &str,
        key: u64,
        attempt: u32,
        buf: &mut Vec<u8>,
    ) -> Result<Option<Corruption>, FaultError> {
        match self.decide(point, key, attempt) {
            Some((rule, FaultKind::ShortWrite)) if !buf.is_empty() => {
                let kept = (self.corruption_hash(rule, key) % buf.len() as u64) as usize;
                buf.truncate(kept);
                Ok(Some(Corruption::ShortWrite { kept }))
            }
            Some((rule, FaultKind::BitFlip)) if !buf.is_empty() => {
                let position = self.corruption_hash(rule, key) % (buf.len() as u64 * 8);
                let byte = (position / 8) as usize;
                let bit = (position % 8) as u8;
                buf[byte] ^= 1 << bit;
                Ok(Some(Corruption::BitFlip { byte, bit }))
            }
            // An empty buffer leaves nothing to corrupt; the decision
            // still consumes its attempt via `fire`'s semantics.
            _ => self.fire(point, key, attempt).map(|()| None),
        }
    }

    /// The seed-keyed byte/bit position stream for the corruption
    /// kinds — deliberately distinct from the [`selects`] stream so
    /// "which keys are hit" and "where the hit lands" are independent.
    ///
    /// [`selects`]: FaultPlan::decide
    fn corruption_hash(&self, rule_index: usize, key: u64) -> u64 {
        splitmix64(
            self.seed ^ splitmix64(key ^ ((rule_index as u64 + 1) << 32)) ^ 0xD1B5_4A32_D192_ED03,
        )
    }

    /// Whether rule `rule_index` selects scope `key` — a pure hash of
    /// `(seed, rule index, key)`, so the same key is selected (or not)
    /// on every run and on every thread.
    fn selects(&self, rule_index: usize, key: u64) -> bool {
        let ratio = self.rules[rule_index].ratio;
        if ratio >= 1.0 {
            return true;
        }
        if ratio <= 0.0 {
            return false;
        }
        let h = splitmix64(self.seed ^ splitmix64(key ^ ((rule_index as u64 + 1) << 32)));
        unit_interval(h) < ratio
    }
}

/// Stable string → key hash (FNV-1a) for string-scoped injection points
/// (file paths, dataset names).
pub fn key(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// SplitMix64 finalizer: one well-mixed u64 from another.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Map a hash to `[0, 1)` using its top 53 bits.
fn unit_interval(hash: u64) -> f64 {
    (hash >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_key_scoped() {
        let plan = FaultPlan::new(9).with(FaultRule::error("p").ratio(0.5));
        for key in 0..64u64 {
            let first = plan.decide("p", key, 0);
            for _ in 0..8 {
                assert_eq!(plan.decide("p", key, 0), first, "key {key}");
            }
        }
        // A 0.5 ratio selects some keys and spares others.
        let selected = (0..256u64)
            .filter(|&k| plan.decide("p", k, 0).is_some())
            .count();
        assert!((64..192).contains(&selected), "selected {selected}/256");
    }

    #[test]
    fn times_bounds_the_failing_attempts() {
        let plan = FaultPlan::new(1).with(FaultRule::error("p").times(2));
        assert!(plan.fire("p", 3, 0).is_err());
        assert!(plan.fire("p", 3, 1).is_err());
        assert!(plan.fire("p", 3, 2).is_ok());
    }

    #[test]
    fn first_matching_rule_wins() {
        let plan = FaultPlan::new(1)
            .with(FaultRule::delay("grid.*", 0))
            .with(FaultRule::error("grid.cell.run"));
        // The wildcard delay shadows the error rule.
        assert_eq!(
            plan.decide("grid.cell.run", 0, 0),
            Some((0, FaultKind::Delay(0)))
        );
        assert!(plan.fire("grid.cell.run", 0, 0).is_ok());
        // A point only the second rule could match: still rule 0's
        // wildcard.
        assert!(plan.decide("grid.flush", 0, 0).is_some());
        assert!(plan.decide("pipeline.stage.mine", 0, 0).is_none());
    }

    #[test]
    fn ratio_extremes_short_circuit() {
        let all = FaultPlan::new(5).with(FaultRule::error("p").ratio(1.0));
        let none = FaultPlan::new(5).with(FaultRule::error("p").ratio(0.0));
        for key in 0..32u64 {
            assert!(all.decide("p", key, 0).is_some());
            assert!(none.decide("p", key, 0).is_none());
        }
    }

    #[test]
    fn seeds_change_the_selected_keys() {
        let a = FaultPlan::new(1).with(FaultRule::error("p").ratio(0.5));
        let b = FaultPlan::new(2).with(FaultRule::error("p").ratio(0.5));
        let pick = |plan: &FaultPlan| -> Vec<u64> {
            (0..128u64)
                .filter(|&k| plan.decide("p", k, 0).is_some())
                .collect()
        };
        assert_ne!(pick(&a), pick(&b), "different seeds, different keys");
    }

    #[test]
    fn injected_panic_is_catchable_and_deterministic() {
        let plan = FaultPlan::new(1).with(FaultRule::panic("p"));
        let caught = std::panic::catch_unwind(|| plan.fire("p", 0xAB, 0)).unwrap_err();
        let message = caught.downcast_ref::<String>().expect("string payload");
        assert!(message.contains("injected fault: panic at p"), "{message}");
        assert!(message.contains("0xab"), "{message}");
    }

    #[test]
    fn fault_error_displays_context() {
        let plan = FaultPlan::new(1).with(FaultRule::error("kb.store.save"));
        let e = plan.fire("kb.store.save", key("kb.jsonl"), 0).unwrap_err();
        let text = e.to_string();
        assert!(text.contains("kb.store.save"), "{text}");
        assert!(text.contains("rule 0"), "{text}");
    }

    #[test]
    fn string_keys_are_stable() {
        assert_eq!(key("kb.jsonl"), key("kb.jsonl"));
        assert_ne!(key("kb.jsonl"), key("kb2.jsonl"));
        assert_ne!(key(""), key(" "));
    }

    #[test]
    fn short_write_truncates_deterministically() {
        let plan = FaultPlan::new(21).with(FaultRule::short_write("kb.wal.append"));
        let original: Vec<u8> = (0..64u8).collect();
        let mut first = original.clone();
        let outcome = plan
            .corrupt_buffer("kb.wal.append", 3, 0, &mut first)
            .unwrap()
            .expect("rule must fire");
        let Corruption::ShortWrite { kept } = outcome else {
            panic!("expected a short write, got {outcome:?}");
        };
        assert!(kept < original.len(), "at least one byte must be dropped");
        assert_eq!(first, original[..kept]);
        // Same (seed, rule, key) → same truncation point, every run.
        let mut again = original.clone();
        assert_eq!(
            plan.corrupt_buffer("kb.wal.append", 3, 0, &mut again)
                .unwrap(),
            Some(outcome)
        );
        assert_eq!(again, first);
        // A different key lands elsewhere (with 64 positions, key 5
        // happens to differ from key 3 under seed 21).
        let mut other = original.clone();
        plan.corrupt_buffer("kb.wal.append", 5, 0, &mut other)
            .unwrap();
        assert_ne!(other.len(), first.len());
        // Budget exhausted → untouched buffer, no corruption.
        let mut spared = original.clone();
        assert_eq!(
            plan.corrupt_buffer("kb.wal.append", 3, 1, &mut spared)
                .unwrap(),
            None
        );
        assert_eq!(spared, original);
    }

    #[test]
    fn bit_flip_flips_exactly_one_bit() {
        let plan = FaultPlan::new(1042).with(FaultRule::bit_flip("kb.wal.append"));
        let original = vec![0u8; 32];
        let mut buf = original.clone();
        let outcome = plan
            .corrupt_buffer("kb.wal.append", 9, 0, &mut buf)
            .unwrap()
            .expect("rule must fire");
        let Corruption::BitFlip { byte, bit } = outcome else {
            panic!("expected a bit flip, got {outcome:?}");
        };
        assert_eq!(buf.len(), original.len(), "bit flips never change length");
        assert_eq!(buf[byte], 1 << bit);
        let differing = buf.iter().zip(&original).filter(|(a, b)| a != b).count();
        assert_eq!(differing, 1, "exactly one byte differs");
        // Deterministic position.
        let mut again = original.clone();
        assert_eq!(
            plan.corrupt_buffer("kb.wal.append", 9, 0, &mut again)
                .unwrap(),
            Some(outcome)
        );
    }

    #[test]
    fn corruption_kinds_degrade_sensibly_at_plain_fire_sites() {
        let plan = FaultPlan::new(7)
            .with(FaultRule::short_write("wal.append"))
            .with(FaultRule::bit_flip("wal.silent"));
        // A short write is a failed write: plain sites see an error.
        assert!(plan.fire("wal.append", 0, 0).is_err());
        // A bit flip claims success: plain sites see nothing.
        assert!(plan.fire("wal.silent", 0, 0).is_ok());
        // Empty buffers follow the same degradation.
        let mut empty: Vec<u8> = Vec::new();
        assert!(plan.corrupt_buffer("wal.append", 0, 0, &mut empty).is_err());
        assert_eq!(
            plan.corrupt_buffer("wal.silent", 0, 0, &mut empty).unwrap(),
            None
        );
    }

    #[test]
    fn corrupt_buffer_passes_non_corruption_kinds_through() {
        let plan = FaultPlan::new(7).with(FaultRule::error("p"));
        let mut buf = vec![1, 2, 3];
        let err = plan.corrupt_buffer("p", 0, 0, &mut buf).unwrap_err();
        assert_eq!(err.point, "p");
        assert_eq!(buf, vec![1, 2, 3], "error faults leave the buffer alone");
        assert_eq!(
            plan.corrupt_buffer("unwired", 0, 0, &mut buf).unwrap(),
            None
        );
    }
}
