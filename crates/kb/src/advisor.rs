//! The advisor: "the best option is ALGORITHM X" (paper, Figure 2).
//!
//! Given the measured quality profile of a new dataset, the advisor
//! finds the most similar experiment profiles in the knowledge base and
//! aggregates each algorithm's observed score with similarity weights.
//! The result is a ranked list with an explanation a non-expert can
//! read.

use crate::error::{KbError, Result};
use crate::record::ExperimentRecord;
use crate::store::KnowledgeBase;
use openbi_quality::QualityProfile;

/// One ranked recommendation.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// Algorithm display name.
    pub algorithm: String,
    /// Similarity-weighted expected score (see
    /// [`PerfMetrics::score`](crate::record::PerfMetrics::score)).
    pub expected_score: f64,
    /// Similarity-weighted expected accuracy.
    pub expected_accuracy: f64,
    /// Number of knowledge-base records that contributed.
    pub support: usize,
}

/// The advisor's full answer.
#[derive(Debug, Clone, PartialEq)]
pub struct Advice {
    /// Ranked recommendations, best first.
    pub ranking: Vec<Recommendation>,
    /// Human-readable explanation.
    pub explanation: String,
}

impl Advice {
    /// The winning algorithm name.
    pub fn best(&self) -> &str {
        &self.ranking[0].algorithm
    }

    /// Render the headline sentence of Figure 2.
    pub fn headline(&self) -> String {
        format!(
            "the best option is {} (expected score {:.3})",
            self.ranking[0].algorithm, self.ranking[0].expected_score
        )
    }
}

/// Advisor configuration.
#[derive(Debug, Clone)]
pub struct Advisor {
    /// How many nearest profiles to aggregate per algorithm.
    pub neighbors: usize,
    /// Similarity kernel bandwidth (larger = flatter weighting).
    pub bandwidth: f64,
}

impl Default for Advisor {
    fn default() -> Self {
        Advisor {
            neighbors: 25,
            bandwidth: 0.25,
        }
    }
}

impl Advisor {
    fn weight(&self, distance: f64) -> f64 {
        (-(distance * distance) / (2.0 * self.bandwidth * self.bandwidth)).exp()
    }

    /// Rank all algorithms in the knowledge base for a new profile.
    pub fn advise(&self, kb: &KnowledgeBase, profile: &QualityProfile) -> Result<Advice> {
        if kb.is_empty() {
            return Err(KbError::EmptyKnowledgeBase);
        }
        let mut ranking: Vec<Recommendation> = Vec::new();
        for algorithm in kb.algorithms() {
            let mut contributions: Vec<(f64, &ExperimentRecord)> = kb
                .filter(|r| r.algorithm == algorithm)
                .into_iter()
                .map(|r| (profile.distance(&r.profile), r))
                .collect();
            contributions.sort_by(|a, b| a.0.total_cmp(&b.0));
            contributions.truncate(self.neighbors);
            let mut weight_sum = 0.0;
            let mut score_sum = 0.0;
            let mut acc_sum = 0.0;
            for (d, r) in &contributions {
                let w = self.weight(*d).max(1e-9);
                weight_sum += w;
                score_sum += w * r.metrics.score();
                acc_sum += w * r.metrics.accuracy;
            }
            if weight_sum == 0.0 {
                continue;
            }
            ranking.push(Recommendation {
                algorithm,
                expected_score: score_sum / weight_sum,
                expected_accuracy: acc_sum / weight_sum,
                support: contributions.len(),
            });
        }
        if ranking.is_empty() {
            return Err(KbError::EmptyKnowledgeBase);
        }
        ranking.sort_by(|a, b| {
            b.expected_score
                .total_cmp(&a.expected_score)
                .then(a.algorithm.cmp(&b.algorithm))
        });
        let explanation = Self::explain(profile, &ranking);
        Ok(Advice {
            ranking,
            explanation,
        })
    }

    fn explain(profile: &QualityProfile, ranking: &[Recommendation]) -> String {
        let mut out = String::new();
        match profile.dominant_issue() {
            Some((issue, severity)) => {
                out.push_str(&format!(
                    "Your data's dominant quality issue is {issue} (severity {severity:.2}). "
                ));
            }
            None => out.push_str("No dominant data-quality issue was detected. "),
        }
        out.push_str(&format!(
            "Based on {} similar past experiments, {} is expected to perform best",
            ranking.iter().map(|r| r.support).sum::<usize>(),
            ranking[0].algorithm,
        ));
        if ranking.len() > 1 {
            out.push_str(&format!(
                " (runner-up: {}, expected score {:.3} vs {:.3})",
                ranking[1].algorithm, ranking[1].expected_score, ranking[0].expected_score
            ));
        }
        out.push('.');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::PerfMetrics;

    fn record(algorithm: &str, completeness: f64, acc: f64) -> ExperimentRecord {
        ExperimentRecord {
            dataset: "d".into(),
            degradations: vec![],
            profile: QualityProfile {
                completeness,
                ..Default::default()
            },
            algorithm: algorithm.into(),
            metrics: PerfMetrics {
                accuracy: acc,
                macro_f1: acc,
                minority_f1: acc,
                kappa: 2.0 * acc - 1.0,
                train_ms: 1.0,
                model_size: 5.0,
            },
            seed: 1,
        }
    }

    /// KB where NaiveBayes wins on incomplete data and kNN wins on
    /// complete data.
    fn kb() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        for i in 0..10 {
            let jitter = i as f64 * 0.005;
            kb.add(record("NaiveBayes", 0.6 + jitter, 0.85));
            kb.add(record("kNN", 0.6 + jitter, 0.60));
            kb.add(record("NaiveBayes", 0.98 - jitter, 0.88));
            kb.add(record("kNN", 0.98 - jitter, 0.95));
        }
        kb
    }

    #[test]
    fn advice_depends_on_profile() {
        let advisor = Advisor {
            neighbors: 5,
            bandwidth: 0.05,
        };
        let incomplete = QualityProfile {
            completeness: 0.62,
            ..Default::default()
        };
        let advice = advisor.advise(&kb(), &incomplete).unwrap();
        assert_eq!(advice.best(), "NaiveBayes");
        let complete = QualityProfile {
            completeness: 0.97,
            ..Default::default()
        };
        let advice = advisor.advise(&kb(), &complete).unwrap();
        assert_eq!(advice.best(), "kNN");
    }

    #[test]
    fn ranking_is_sorted_and_complete() {
        let advisor = Advisor::default();
        let advice = advisor
            .advise(&kb(), &QualityProfile::default())
            .unwrap();
        assert_eq!(advice.ranking.len(), 2);
        assert!(advice.ranking[0].expected_score >= advice.ranking[1].expected_score);
        assert!(advice.ranking.iter().all(|r| r.support > 0));
    }

    #[test]
    fn empty_kb_is_error() {
        let advisor = Advisor::default();
        assert!(matches!(
            advisor.advise(&KnowledgeBase::new(), &QualityProfile::default()),
            Err(KbError::EmptyKnowledgeBase)
        ));
    }

    #[test]
    fn headline_and_explanation_mention_winner() {
        let advisor = Advisor::default();
        let profile = QualityProfile {
            completeness: 0.62,
            ..Default::default()
        };
        let advice = advisor.advise(&kb(), &profile).unwrap();
        assert!(advice.headline().contains("the best option is"));
        assert!(advice.explanation.contains("incomplete data"));
        assert!(advice.explanation.contains(advice.best()));
    }

    #[test]
    fn neighbor_cap_limits_support() {
        let advisor = Advisor {
            neighbors: 3,
            bandwidth: 1.0,
        };
        let advice = advisor
            .advise(&kb(), &QualityProfile::default())
            .unwrap();
        assert!(advice.ranking.iter().all(|r| r.support <= 3));
    }
}
