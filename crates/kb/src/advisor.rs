//! The advisor: "the best option is ALGORITHM X" (paper, Figure 2).
//!
//! Given the measured quality profile of a new dataset, the advisor
//! finds the most similar experiment profiles in the knowledge base and
//! aggregates each algorithm's observed score with similarity weights.
//! The result is a ranked list with an explanation a non-expert can
//! read.
//!
//! Two implementations share the same semantics:
//!
//! * [`Advisor::advise`] — the serving path: walks the store's
//!   per-algorithm record index, selects the top-k neighbors with
//!   `select_nth_unstable_by` partial selection (O(n) instead of a full
//!   O(n log n) sort), and reuses one scratch buffer across algorithms
//!   (and across queries via [`Advisor::advise_many`]). It also accepts
//!   a borrowed [`KbView`], so leave-one-dataset-out evaluation masks a
//!   dataset without cloning the store.
//! * [`Advisor::advise_reference`] — the original linear-scan
//!   implementation (filter per algorithm, full sort, truncate), kept
//!   as the executable specification. The equivalence tests below and
//!   in `tests/` assert the two return bitwise-identical advice; the
//!   `advisor_bench` binary measures the gap.
//!
//! ## Observability (DESIGN.md §9)
//!
//! When an `openbi-obs` registry is installed, the serving path records
//! per-query latency (`advisor.advise.seconds`), query and index-lookup
//! counters, per-algorithm candidate counts, and batch amortization
//! stats for [`Advisor::advise_many`]. Instrument handles are fetched
//! once per query (once per *batch* for `advise_many`) into an internal
//! `ServingMetrics` bundle, so the per-record hot loop never touches
//! the registry. With no registry installed the cost is
//! one atomic load per query. [`Advisor::advise_reference`] is left
//! uninstrumented on purpose: it is the baseline the benchmarks compare
//! against, so it must not pay (or hide) instrumentation costs.

use crate::error::{KbError, Result};
use crate::record::ExperimentRecord;
use crate::store::{KbView, KnowledgeBase};
use openbi_obs as obs;
use openbi_quality::QualityProfile;
use std::sync::Arc;
use std::time::Instant;

/// One ranked recommendation.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// Algorithm display name.
    pub algorithm: String,
    /// Similarity-weighted expected score (see
    /// [`PerfMetrics::score`](crate::record::PerfMetrics::score)).
    pub expected_score: f64,
    /// Similarity-weighted expected accuracy.
    pub expected_accuracy: f64,
    /// Number of knowledge-base records that contributed.
    pub support: usize,
}

/// The advisor's full answer.
#[derive(Debug, Clone, PartialEq)]
pub struct Advice {
    /// Ranked recommendations, best first.
    pub ranking: Vec<Recommendation>,
    /// Human-readable explanation.
    pub explanation: String,
}

impl Advice {
    /// The winning recommendation, if any. The advisor never returns an
    /// empty ranking, but `Advice` is a public struct users can build
    /// by hand, so the accessors below must not assume `ranking[0]`
    /// exists.
    pub fn top(&self) -> Option<&Recommendation> {
        self.ranking.first()
    }

    /// The winning algorithm name, or `""` when the ranking is empty.
    pub fn best(&self) -> &str {
        self.top().map(|r| r.algorithm.as_str()).unwrap_or("")
    }

    /// Render the headline sentence of Figure 2, or a graceful fallback
    /// when the ranking is empty.
    pub fn headline(&self) -> String {
        match self.top() {
            Some(top) => format!(
                "the best option is {} (expected score {:.3})",
                top.algorithm, top.expected_score
            ),
            None => "no recommendation: the ranking is empty".to_string(),
        }
    }
}

/// Advisor configuration.
#[derive(Debug, Clone)]
pub struct Advisor {
    /// How many nearest profiles to aggregate per algorithm.
    pub neighbors: usize,
    /// Similarity kernel bandwidth (larger = flatter weighting).
    pub bandwidth: f64,
}

impl Default for Advisor {
    fn default() -> Self {
        Advisor {
            neighbors: 25,
            bandwidth: 0.25,
        }
    }
}

/// Scratch storage for one advise call: `(distance, record position)`
/// candidate pairs, reused across algorithms and across the queries of
/// [`Advisor::advise_many`] so the serving path stops allocating per
/// algorithm per query.
type Candidates = Vec<(f64, usize)>;

/// Instrument handles for the serving path, fetched from the global
/// `openbi-obs` registry once per query (once per batch in
/// [`Advisor::advise_many`]) so the inner loops record through plain
/// atomics instead of re-resolving names.
struct ServingMetrics {
    /// `advisor.queries_total`: advise calls served.
    queries: Arc<obs::Counter>,
    /// `advisor.advise.seconds`: per-query serving latency.
    latency: Arc<obs::Histogram>,
    /// `advisor.index.hits_total`: per-algorithm index lookups that
    /// yielded at least one visible record.
    index_hits: Arc<obs::Counter>,
    /// `advisor.index.empty_total`: lookups that yielded none (masked
    /// or unknown algorithm).
    index_empty: Arc<obs::Counter>,
    /// `advisor.candidates`: visible candidate records per algorithm
    /// ranking.
    candidates: Arc<obs::Histogram>,
    /// `advisor.batch.calls_total`: `advise_many` invocations.
    batch_calls: Arc<obs::Counter>,
    /// `advisor.batch.size`: profiles per `advise_many` batch.
    batch_size: Arc<obs::Histogram>,
    /// `advisor.batch.seconds`: whole-batch wall time.
    batch_seconds: Arc<obs::Histogram>,
}

impl ServingMetrics {
    /// Fetch all serving instruments, or `None` when no registry is
    /// installed (the common uninstrumented case: one atomic load).
    fn fetch() -> Option<ServingMetrics> {
        let registry = obs::global()?;
        Some(ServingMetrics {
            queries: registry.counter("advisor.queries_total"),
            latency: registry.histogram("advisor.advise.seconds"),
            index_hits: registry.counter("advisor.index.hits_total"),
            index_empty: registry.counter("advisor.index.empty_total"),
            candidates: registry.histogram_with("advisor.candidates", obs::default_count_buckets()),
            batch_calls: registry.counter("advisor.batch.calls_total"),
            batch_size: registry.histogram_with("advisor.batch.size", obs::default_count_buckets()),
            batch_seconds: registry.histogram("advisor.batch.seconds"),
        })
    }
}

impl Advisor {
    /// Gaussian kernel over the *gap* between a neighbor's distance and
    /// the nearest selected neighbor's distance.
    ///
    /// Weighting raw distances underflowed: with `bandwidth = 0.05`,
    /// `exp(-d²/2h²)` is below the `1e-9` floor for any `d ≳ 0.4`, so
    /// whenever a query profile sat that far from the knowledge base
    /// *every* neighbor collapsed to the uniform floor weight and the
    /// `bandwidth` knob changed nothing (the historically flat A1
    /// ablation rows). Shifting by the nearest distance anchors the
    /// closest neighbor at weight 1, keeps the weight *ratios* of a
    /// pure Gaussian kernel, and leaves relative weighting meaningful
    /// at every bandwidth.
    fn weight(&self, distance: f64, nearest: f64) -> f64 {
        let gap = distance - nearest;
        (-(gap * gap) / (2.0 * self.bandwidth * self.bandwidth))
            .exp()
            .max(1e-9)
    }

    /// Rank one algorithm's visible records for a profile, or `None`
    /// when the algorithm has no visible records (or `neighbors == 0`).
    fn rank_algorithm(
        &self,
        view: &KbView<'_>,
        algorithm: &str,
        profile: &QualityProfile,
        candidates: &mut Candidates,
        metrics: Option<&ServingMetrics>,
    ) -> Option<Recommendation> {
        candidates.clear();
        for &position in view.algorithm_record_indices(algorithm) {
            let record = view.record(position);
            if view.includes(record) {
                candidates.push((profile.distance(&record.profile), position));
            }
        }
        if let Some(m) = metrics {
            if candidates.is_empty() {
                m.index_empty.inc();
            } else {
                m.index_hits.inc();
                m.candidates.record(candidates.len() as f64);
            }
        }
        if candidates.is_empty() || self.neighbors == 0 {
            return None;
        }
        let k = self.neighbors.min(candidates.len());
        // Partial selection: O(n) to isolate the k smallest distances,
        // then sort only those k. The (distance, position) tie-break
        // reproduces exactly the stable full sort of the reference
        // implementation, so both paths pick the same records and sum
        // their weights in the same order (bitwise-equal results).
        let by_distance_then_position =
            |a: &(f64, usize), b: &(f64, usize)| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1));
        if candidates.len() > k {
            candidates.select_nth_unstable_by(k - 1, by_distance_then_position);
            candidates.truncate(k);
        }
        candidates.sort_unstable_by(by_distance_then_position);
        let nearest = candidates[0].0;
        let mut weight_sum = 0.0;
        let mut score_sum = 0.0;
        let mut acc_sum = 0.0;
        for &(distance, position) in candidates.iter() {
            let w = self.weight(distance, nearest);
            let record = view.record(position);
            weight_sum += w;
            score_sum += w * record.metrics.score();
            acc_sum += w * record.metrics.accuracy;
        }
        if weight_sum == 0.0 {
            return None;
        }
        Some(Recommendation {
            algorithm: algorithm.to_string(),
            expected_score: score_sum / weight_sum,
            expected_accuracy: acc_sum / weight_sum,
            support: candidates.len(),
        })
    }

    /// One instrumented query: [`Self::advise_view_inner`] wrapped in
    /// the per-query latency/counter bookkeeping.
    fn advise_view_with(
        &self,
        view: &KbView<'_>,
        profile: &QualityProfile,
        candidates: &mut Candidates,
        metrics: Option<&ServingMetrics>,
    ) -> Result<Advice> {
        let start = Instant::now();
        let result = self.advise_view_inner(view, profile, candidates, metrics);
        if let Some(m) = metrics {
            m.queries.inc();
            m.latency.record(start.elapsed().as_secs_f64());
        }
        result
    }

    fn advise_view_inner(
        &self,
        view: &KbView<'_>,
        profile: &QualityProfile,
        candidates: &mut Candidates,
        metrics: Option<&ServingMetrics>,
    ) -> Result<Advice> {
        if view.is_empty() {
            return Err(KbError::EmptyKnowledgeBase);
        }
        let mut ranking: Vec<Recommendation> = Vec::new();
        for algorithm in view.algorithm_names() {
            if let Some(rec) = self.rank_algorithm(view, algorithm, profile, candidates, metrics) {
                ranking.push(rec);
            }
        }
        if ranking.is_empty() {
            return Err(KbError::EmptyKnowledgeBase);
        }
        ranking.sort_by(|a, b| {
            b.expected_score
                .total_cmp(&a.expected_score)
                .then(a.algorithm.cmp(&b.algorithm))
        });
        let explanation = Self::explain(profile, &ranking);
        Ok(Advice {
            ranking,
            explanation,
        })
    }

    /// Rank all algorithms in the knowledge base for a new profile
    /// (index-backed serving path).
    ///
    /// # Examples
    ///
    /// ```
    /// use openbi_kb::{Advisor, ExperimentRecord, KnowledgeBase, PerfMetrics};
    /// use openbi_quality::QualityProfile;
    ///
    /// let mut kb = KnowledgeBase::new();
    /// kb.add(ExperimentRecord {
    ///     algorithm: "NaiveBayes".into(),
    ///     metrics: PerfMetrics {
    ///         accuracy: 0.9,
    ///         ..PerfMetrics::default()
    ///     },
    ///     ..ExperimentRecord::default()
    /// });
    /// let advice = Advisor::default()
    ///     .advise(&kb, &QualityProfile::default())
    ///     .unwrap();
    /// assert_eq!(advice.best(), "NaiveBayes");
    /// assert!(advice.headline().contains("the best option is"));
    /// ```
    pub fn advise(&self, kb: &KnowledgeBase, profile: &QualityProfile) -> Result<Advice> {
        self.advise_view(&kb.view(), profile)
    }

    /// Rank all algorithms visible through a borrowed (possibly
    /// dataset-masked) view — the allocation-free leave-one-dataset-out
    /// path.
    pub fn advise_view(&self, view: &KbView<'_>, profile: &QualityProfile) -> Result<Advice> {
        let metrics = ServingMetrics::fetch();
        let mut candidates = Candidates::new();
        self.advise_view_with(view, profile, &mut candidates, metrics.as_ref())
    }

    /// Advise a batch of profiles against one knowledge base, reusing
    /// the candidate scratch buffer across queries. Returns one
    /// [`Advice`] per profile, in order, identical to calling
    /// [`Advisor::advise`] per profile. Instrument handles are fetched
    /// once for the whole batch, so per-query metric overhead is
    /// amortized the same way the scratch buffer is.
    pub fn advise_many(
        &self,
        kb: &KnowledgeBase,
        profiles: &[QualityProfile],
    ) -> Result<Vec<Advice>> {
        let metrics = ServingMetrics::fetch();
        let batch_start = Instant::now();
        let view = kb.view();
        let mut candidates = Candidates::new();
        let result: Result<Vec<Advice>> = profiles
            .iter()
            .map(|p| self.advise_view_with(&view, p, &mut candidates, metrics.as_ref()))
            .collect();
        if let Some(m) = &metrics {
            m.batch_calls.inc();
            m.batch_size.record(profiles.len() as f64);
            m.batch_seconds.record(batch_start.elapsed().as_secs_f64());
        }
        result
    }

    /// The original linear-scan advisor: filter the whole store per
    /// algorithm, full sort, truncate. Kept as the executable
    /// specification of [`Advisor::advise`]; the equivalence tests
    /// assert both return identical advice.
    pub fn advise_reference(&self, kb: &KnowledgeBase, profile: &QualityProfile) -> Result<Advice> {
        if kb.is_empty() {
            return Err(KbError::EmptyKnowledgeBase);
        }
        let mut ranking: Vec<Recommendation> = Vec::new();
        for algorithm in kb.algorithms() {
            let mut contributions: Vec<(f64, &ExperimentRecord)> = kb
                .filter(|r| r.algorithm == algorithm)
                .into_iter()
                .map(|r| (profile.distance(&r.profile), r))
                .collect();
            contributions.sort_by(|a, b| a.0.total_cmp(&b.0));
            contributions.truncate(self.neighbors);
            let Some(&(nearest, _)) = contributions.first() else {
                continue;
            };
            let mut weight_sum = 0.0;
            let mut score_sum = 0.0;
            let mut acc_sum = 0.0;
            for (d, r) in &contributions {
                let w = self.weight(*d, nearest);
                weight_sum += w;
                score_sum += w * r.metrics.score();
                acc_sum += w * r.metrics.accuracy;
            }
            if weight_sum == 0.0 {
                continue;
            }
            ranking.push(Recommendation {
                algorithm,
                expected_score: score_sum / weight_sum,
                expected_accuracy: acc_sum / weight_sum,
                support: contributions.len(),
            });
        }
        if ranking.is_empty() {
            return Err(KbError::EmptyKnowledgeBase);
        }
        ranking.sort_by(|a, b| {
            b.expected_score
                .total_cmp(&a.expected_score)
                .then(a.algorithm.cmp(&b.algorithm))
        });
        let explanation = Self::explain(profile, &ranking);
        Ok(Advice {
            ranking,
            explanation,
        })
    }

    fn explain(profile: &QualityProfile, ranking: &[Recommendation]) -> String {
        let mut out = String::new();
        match profile.dominant_issue() {
            Some((issue, severity)) => {
                out.push_str(&format!(
                    "Your data's dominant quality issue is {issue} (severity {severity:.2}). "
                ));
            }
            None => out.push_str("No dominant data-quality issue was detected. "),
        }
        out.push_str(&format!(
            "Based on {} similar past experiments, {} is expected to perform best",
            ranking.iter().map(|r| r.support).sum::<usize>(),
            ranking[0].algorithm,
        ));
        if ranking.len() > 1 {
            out.push_str(&format!(
                " (runner-up: {}, expected score {:.3} vs {:.3})",
                ranking[1].algorithm, ranking[1].expected_score, ranking[0].expected_score
            ));
        }
        out.push('.');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::PerfMetrics;

    fn record(algorithm: &str, completeness: f64, acc: f64) -> ExperimentRecord {
        ExperimentRecord {
            dataset: "d".into(),
            degradations: vec![],
            profile: QualityProfile {
                completeness,
                ..Default::default()
            },
            algorithm: algorithm.into(),
            metrics: PerfMetrics {
                accuracy: acc,
                macro_f1: acc,
                minority_f1: acc,
                kappa: 2.0 * acc - 1.0,
                train_ms: 1.0,
                model_size: 5.0,
            },
            seed: 1,
        }
    }

    /// KB where NaiveBayes wins on incomplete data and kNN wins on
    /// complete data.
    fn kb() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        for i in 0..10 {
            let jitter = i as f64 * 0.005;
            kb.add(record("NaiveBayes", 0.6 + jitter, 0.85));
            kb.add(record("kNN", 0.6 + jitter, 0.60));
            kb.add(record("NaiveBayes", 0.98 - jitter, 0.88));
            kb.add(record("kNN", 0.98 - jitter, 0.95));
        }
        kb
    }

    #[test]
    fn empty_ranking_accessors_are_graceful() {
        // `Advice` is public: users can build one with no ranking, and
        // the degraded pipeline path surfaces exactly that shape.
        let advice = Advice {
            ranking: vec![],
            explanation: "hand-built".into(),
        };
        assert!(advice.top().is_none());
        assert_eq!(advice.best(), "");
        assert_eq!(advice.headline(), "no recommendation: the ranking is empty");
    }

    #[test]
    fn populated_ranking_accessors_agree() {
        let advice = Advice {
            ranking: vec![Recommendation {
                algorithm: "NaiveBayes".into(),
                expected_score: 0.875,
                expected_accuracy: 0.9,
                support: 12,
            }],
            explanation: String::new(),
        };
        assert_eq!(advice.top().unwrap().algorithm, "NaiveBayes");
        assert_eq!(advice.best(), "NaiveBayes");
        assert_eq!(
            advice.headline(),
            "the best option is NaiveBayes (expected score 0.875)"
        );
    }

    #[test]
    fn advice_depends_on_profile() {
        let advisor = Advisor {
            neighbors: 5,
            bandwidth: 0.05,
        };
        let incomplete = QualityProfile {
            completeness: 0.62,
            ..Default::default()
        };
        let advice = advisor.advise(&kb(), &incomplete).unwrap();
        assert_eq!(advice.best(), "NaiveBayes");
        let complete = QualityProfile {
            completeness: 0.97,
            ..Default::default()
        };
        let advice = advisor.advise(&kb(), &complete).unwrap();
        assert_eq!(advice.best(), "kNN");
    }

    #[test]
    fn ranking_is_sorted_and_complete() {
        let advisor = Advisor::default();
        let advice = advisor.advise(&kb(), &QualityProfile::default()).unwrap();
        assert_eq!(advice.ranking.len(), 2);
        assert!(advice.ranking[0].expected_score >= advice.ranking[1].expected_score);
        assert!(advice.ranking.iter().all(|r| r.support > 0));
    }

    #[test]
    fn empty_kb_is_error() {
        let advisor = Advisor::default();
        assert!(matches!(
            advisor.advise(&KnowledgeBase::new(), &QualityProfile::default()),
            Err(KbError::EmptyKnowledgeBase)
        ));
        assert!(matches!(
            advisor.advise_reference(&KnowledgeBase::new(), &QualityProfile::default()),
            Err(KbError::EmptyKnowledgeBase)
        ));
    }

    #[test]
    fn empty_ranking_accessors_do_not_panic() {
        let empty = Advice {
            ranking: vec![],
            explanation: String::new(),
        };
        assert!(empty.top().is_none());
        assert_eq!(empty.best(), "");
        assert!(empty.headline().contains("no recommendation"));
    }

    #[test]
    fn headline_and_explanation_mention_winner() {
        let advisor = Advisor::default();
        let profile = QualityProfile {
            completeness: 0.62,
            ..Default::default()
        };
        let advice = advisor.advise(&kb(), &profile).unwrap();
        assert!(advice.headline().contains("the best option is"));
        assert!(advice.explanation.contains("incomplete data"));
        assert!(advice.explanation.contains(advice.best()));
    }

    #[test]
    fn neighbor_cap_limits_support() {
        let advisor = Advisor {
            neighbors: 3,
            bandwidth: 1.0,
        };
        let advice = advisor.advise(&kb(), &QualityProfile::default()).unwrap();
        assert!(advice.ranking.iter().all(|r| r.support <= 3));
    }

    /// Regression test for the Gaussian-kernel underflow: before the
    /// shift-by-nearest fix, a query sitting ≳ 0.4 away from every
    /// record made `exp()` underflow below the 1e-9 floor for *all*
    /// neighbors, so weights were uniform and `bandwidth` was a no-op
    /// (the flat A1 ablation rows).
    #[test]
    fn bandwidth_reweights_far_neighborhoods() {
        let mut kb = KnowledgeBase::new();
        // Two records, both far from the query at completeness 0.9:
        // distance 0.4 (acc 0.9, score 0.875) and 0.5 (acc 0.1, score
        // 0.075). Their uniform mean score is 0.475.
        kb.add(record("A", 0.5, 0.9));
        kb.add(record("A", 0.4, 0.1));
        let query = QualityProfile {
            completeness: 0.9,
            ..Default::default()
        };
        let narrow = Advisor {
            neighbors: 2,
            bandwidth: 0.05,
        };
        let wide = Advisor {
            neighbors: 2,
            bandwidth: 10.0,
        };
        let narrow_score = narrow.advise(&kb, &query).unwrap().ranking[0].expected_score;
        let wide_score = wide.advise(&kb, &query).unwrap().ranking[0].expected_score;
        // Narrow bandwidth: the nearer record (score 0.875) dominates.
        // The old kernel floored both weights and returned the uniform
        // mean 0.475 at every bandwidth.
        assert!(
            narrow_score > 0.7,
            "narrow bandwidth must follow the nearest record, got {narrow_score}"
        );
        // Wide bandwidth: close to the uniform mean of the two scores.
        assert!(
            (wide_score - 0.475).abs() < 0.01,
            "wide bandwidth must flatten the weighting, got {wide_score}"
        );
        assert!(
            narrow_score != wide_score,
            "bandwidth must change the expected score"
        );
    }

    /// Bandwidth must also be able to flip the final *ranking*, not
    /// just nudge scores.
    #[test]
    fn bandwidth_reweights_the_ranking() {
        let mut kb = KnowledgeBase::new();
        // Steady: 0.70 nearby, 0.10 far. Volatile: 0.60 nearby, 0.95 far.
        kb.add(record("Steady", 0.9, 0.70));
        kb.add(record("Steady", 0.4, 0.10));
        kb.add(record("Volatile", 0.9, 0.60));
        kb.add(record("Volatile", 0.4, 0.95));
        let query = QualityProfile {
            completeness: 0.9,
            ..Default::default()
        };
        let narrow = Advisor {
            neighbors: 2,
            bandwidth: 0.05,
        };
        let wide = Advisor {
            neighbors: 2,
            bandwidth: 10.0,
        };
        // Narrow: nearby records dominate -> Steady (0.70 vs 0.60).
        assert_eq!(narrow.advise(&kb, &query).unwrap().best(), "Steady");
        // Wide: near-uniform averaging -> Volatile (0.775 vs 0.40).
        assert_eq!(wide.advise(&kb, &query).unwrap().best(), "Volatile");
    }

    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    fn unit(state: &mut u64) -> f64 {
        (xorshift(state) >> 11) as f64 / (1u64 << 53) as f64
    }

    fn random_kb(state: &mut u64) -> KnowledgeBase {
        let algorithms = ["NB", "kNN", "Tree", "Forest", "OneR", "Logistic"];
        let n = 1 + (xorshift(state) % 200) as usize;
        let mut kb = KnowledgeBase::new();
        for _ in 0..n {
            let algo = algorithms[(xorshift(state) % algorithms.len() as u64) as usize];
            let dataset = format!("d{}", xorshift(state) % 5);
            // Quantized values force plenty of exact distance ties, the
            // hard case for top-k selection equivalence.
            let quantized = |state: &mut u64| (unit(state) * 8.0).round() / 8.0;
            let acc = unit(state);
            kb.add(ExperimentRecord {
                dataset,
                degradations: vec![],
                profile: QualityProfile {
                    completeness: quantized(state),
                    label_noise_estimate: quantized(state),
                    outlier_ratio: quantized(state),
                    ..Default::default()
                },
                algorithm: algo.into(),
                metrics: PerfMetrics {
                    accuracy: acc,
                    macro_f1: acc,
                    minority_f1: unit(state),
                    kappa: 2.0 * acc - 1.0,
                    train_ms: 1.0,
                    model_size: 1.0,
                },
                seed: xorshift(state) % 3,
            });
        }
        kb
    }

    fn random_profile(state: &mut u64) -> QualityProfile {
        QualityProfile {
            completeness: (unit(state) * 8.0).round() / 8.0,
            label_noise_estimate: (unit(state) * 8.0).round() / 8.0,
            outlier_ratio: (unit(state) * 8.0).round() / 8.0,
            ..Default::default()
        }
    }

    /// The indexed serving path must be *bitwise* identical to the
    /// linear-scan reference across random knowledge bases and the full
    /// (neighbors × bandwidth) grid, including distance ties at the
    /// top-k boundary.
    #[test]
    fn indexed_advise_matches_reference_on_random_kbs() {
        let mut state = 0x9E3779B97F4A7C15u64;
        for _ in 0..25 {
            let kb = random_kb(&mut state);
            let profile = random_profile(&mut state);
            for neighbors in [0usize, 1, 3, 10, 500] {
                for bandwidth in [0.01, 0.25, 5.0] {
                    let advisor = Advisor {
                        neighbors,
                        bandwidth,
                    };
                    assert_eq!(
                        advisor.advise(&kb, &profile),
                        advisor.advise_reference(&kb, &profile),
                        "neighbors {neighbors} bandwidth {bandwidth}"
                    );
                }
            }
        }
    }

    /// The dataset-masked view must equal advising on a deep-cloned
    /// store with the dataset removed.
    #[test]
    fn masked_view_matches_cloned_holdout() {
        let mut state = 0xD1B54A32D192ED03u64;
        for _ in 0..10 {
            let kb = random_kb(&mut state);
            let profile = random_profile(&mut state);
            let advisor = Advisor {
                neighbors: 7,
                bandwidth: 0.25,
            };
            for dataset in kb.datasets() {
                let via_view = advisor.advise_view(&kb.view_without_dataset(&dataset), &profile);
                let via_clone = advisor.advise(&kb.without_dataset(&dataset), &profile);
                assert_eq!(via_view, via_clone, "holding out {dataset}");
            }
        }
    }

    /// `advise_many` (shared scratch buffer) must return exactly what
    /// one-at-a-time `advise` returns, in order.
    #[test]
    fn advise_many_matches_one_at_a_time() {
        let mut state = 0xA076_1D64_78BD_642Fu64;
        let kb = random_kb(&mut state);
        let profiles: Vec<QualityProfile> = (0..20).map(|_| random_profile(&mut state)).collect();
        let advisor = Advisor::default();
        let batched = advisor.advise_many(&kb, &profiles).unwrap();
        assert_eq!(batched.len(), profiles.len());
        for (profile, batch_advice) in profiles.iter().zip(&batched) {
            assert_eq!(&advisor.advise(&kb, profile).unwrap(), batch_advice);
        }
    }
}
