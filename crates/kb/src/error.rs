//! Error type for the knowledge-base crate.

use std::fmt;

/// Errors produced by the knowledge base and advisor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KbError {
    /// The knowledge base holds no usable records.
    EmptyKnowledgeBase,
    /// JSON (de)serialization failed.
    Serde(String),
    /// File I/O failed.
    Io(String),
    /// Publishing a knowledge-base snapshot failed (see
    /// [`SnapshotKnowledgeBase::flush`]); the records stay pending.
    ///
    /// [`SnapshotKnowledgeBase::flush`]: crate::SnapshotKnowledgeBase::flush
    Publish(String),
}

impl fmt::Display for KbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KbError::EmptyKnowledgeBase => {
                f.write_str("the knowledge base holds no usable records")
            }
            KbError::Serde(m) => write!(f, "serialization error: {m}"),
            KbError::Io(m) => write!(f, "I/O error: {m}"),
            KbError::Publish(m) => write!(f, "snapshot publish error: {m}"),
        }
    }
}

impl std::error::Error for KbError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, KbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(KbError::EmptyKnowledgeBase
            .to_string()
            .contains("no usable"));
    }
}
