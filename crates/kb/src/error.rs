//! Error type for the knowledge-base crate.

use std::fmt;

/// Errors produced by the knowledge base and advisor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KbError {
    /// The knowledge base holds no usable records.
    EmptyKnowledgeBase,
    /// JSON (de)serialization failed.
    Serde(String),
    /// File I/O failed.
    Io(String),
    /// Publishing a knowledge-base snapshot failed (see
    /// [`SnapshotKnowledgeBase::flush`]); the records stay pending.
    ///
    /// [`SnapshotKnowledgeBase::flush`]: crate::SnapshotKnowledgeBase::flush
    Publish(String),
    /// A write-ahead-log operation (append, sync, rotation, recovery
    /// orchestration) failed; acknowledged records are unaffected, the
    /// failing batch stays with its caller.
    Wal(String),
    /// Recovery found a frame that is damaged rather than merely torn:
    /// a checksum mismatch, an impossible length, or an unparseable
    /// checksummed payload anywhere before the end of the log. This is
    /// never repaired automatically — the error names the exact segment
    /// file and byte offset so the operator can inspect it.
    WalCorrupt {
        /// File name of the damaged segment (`wal-<gen>.seg`).
        segment: String,
        /// Byte offset of the damaged frame within the segment.
        offset: u64,
        /// What exactly failed to verify.
        detail: String,
    },
}

impl fmt::Display for KbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KbError::EmptyKnowledgeBase => {
                f.write_str("the knowledge base holds no usable records")
            }
            KbError::Serde(m) => write!(f, "serialization error: {m}"),
            KbError::Io(m) => write!(f, "I/O error: {m}"),
            KbError::Publish(m) => write!(f, "snapshot publish error: {m}"),
            KbError::Wal(m) => write!(f, "write-ahead log error: {m}"),
            KbError::WalCorrupt {
                segment,
                offset,
                detail,
            } => {
                write!(
                    f,
                    "corrupt WAL frame in {segment} at byte {offset}: {detail}"
                )
            }
        }
    }
}

impl std::error::Error for KbError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, KbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(KbError::EmptyKnowledgeBase
            .to_string()
            .contains("no usable"));
    }
}
