//! # openbi-kb
//!
//! The **DQ4DM knowledge base** of the paper's Figure 2: experiment
//! records pairing measured data-quality profiles with observed
//! algorithm performance, JSON-lines persistence, a similarity-weighted
//! **advisor** ("the best option is ALGORITHM X"), explainable guidance
//! rules, leave-one-dataset-out advisor evaluation, a lock-free
//! snapshot-swap [`serving`] tier for read-mostly advice traffic, and a
//! crash-durable [`wal`] tier — checksummed write-ahead log, recovery
//! replay, checkpoint compaction — so a killed run loses nothing it
//! acknowledged.
//!
//! `unsafe` is denied crate-wide; the one exception is the pointer-swap
//! core of the serving store (`serving::swap`), which carries a scoped
//! `allow` and a written safety argument — see DESIGN.md §13.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod advisor;
pub mod error;
pub mod record;
pub mod regret;
pub mod rules;
pub mod serving;
pub mod store;
pub mod wal;

pub use advisor::{Advice, Advisor, Recommendation};
pub use error::{KbError, Result};
pub use record::{ExperimentRecord, PerfMetrics};
pub use regret::{leave_one_dataset_out, AdvisorEvaluation};
pub use rules::{extract_rules, GuidanceRule};
pub use serving::{
    AdvisorService, DurableOptions, KbSnapshot, ServedAdvice, ServedBatch, SnapshotKnowledgeBase,
};
pub use store::{KbView, KnowledgeBase, RecordSink, SharedKnowledgeBase};
pub use wal::{
    recover, CheckpointReport, FsyncPolicy, RecoveryReport, WalOptions, WalSink, WalWriter,
};
