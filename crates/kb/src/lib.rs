//! # openbi-kb
//!
//! The **DQ4DM knowledge base** of the paper's Figure 2: experiment
//! records pairing measured data-quality profiles with observed
//! algorithm performance, JSON-lines persistence, a similarity-weighted
//! **advisor** ("the best option is ALGORITHM X"), explainable guidance
//! rules, and leave-one-dataset-out advisor evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advisor;
pub mod error;
pub mod record;
pub mod regret;
pub mod rules;
pub mod store;

pub use advisor::{Advice, Advisor, Recommendation};
pub use error::{KbError, Result};
pub use record::{ExperimentRecord, PerfMetrics};
pub use regret::{leave_one_dataset_out, AdvisorEvaluation};
pub use rules::{extract_rules, GuidanceRule};
pub use store::{KbView, KnowledgeBase, SharedKnowledgeBase};
