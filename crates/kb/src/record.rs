//! Experiment records: the unit of content of the DQ4DM knowledge base
//! ("results of experiments are included in a knowledge base", §3.1
//! step 4).

use openbi_quality::QualityProfile;
use serde::{Deserialize, Serialize};

/// Performance observed for one algorithm on one (degraded) dataset.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PerfMetrics {
    /// Pooled cross-validation accuracy.
    pub accuracy: f64,
    /// Macro-averaged F1.
    pub macro_f1: f64,
    /// Minority-class F1.
    pub minority_f1: f64,
    /// Cohen's kappa.
    pub kappa: f64,
    /// Training time in milliseconds.
    pub train_ms: f64,
    /// Mean model-size proxy.
    pub model_size: f64,
}

impl PerfMetrics {
    /// The scalar score the advisor optimizes: kappa-weighted accuracy
    /// with a minority-F1 term so imbalance-blind models do not win.
    pub fn score(&self) -> f64 {
        0.5 * self.accuracy + 0.25 * self.kappa.max(0.0) + 0.25 * self.minority_f1
    }
}

/// One knowledge-base entry: *this algorithm, on data with this quality
/// profile, achieved this performance*.
///
/// `Default` builds a blank record (empty names, zeroed metrics) —
/// handy as a starting point in examples and tests.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Source dataset identifier (generator name or file).
    pub dataset: String,
    /// Injected defect descriptions (empty for the clean baseline).
    pub degradations: Vec<String>,
    /// Measured quality profile of the (degraded) training data.
    pub profile: QualityProfile,
    /// Algorithm display name (with parameters).
    pub algorithm: String,
    /// Observed performance.
    pub metrics: PerfMetrics,
    /// Seed the experiment ran with.
    pub seed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(acc: f64) -> PerfMetrics {
        PerfMetrics {
            accuracy: acc,
            macro_f1: acc,
            minority_f1: acc,
            kappa: 2.0 * acc - 1.0,
            train_ms: 1.0,
            model_size: 10.0,
        }
    }

    #[test]
    fn score_orders_sensibly() {
        assert!(metrics(0.9).score() > metrics(0.6).score());
        // Perfect classifier scores 1.
        assert!((metrics(1.0).score() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn negative_kappa_clamped() {
        let m = PerfMetrics {
            accuracy: 0.4,
            macro_f1: 0.4,
            minority_f1: 0.4,
            kappa: -0.3,
            train_ms: 0.0,
            model_size: 0.0,
        };
        assert!((m.score() - (0.5 * 0.4 + 0.25 * 0.4)).abs() < 1e-12);
    }

    #[test]
    fn record_serde_round_trip() {
        let r = ExperimentRecord {
            dataset: "blobs".into(),
            degradations: vec!["MCAR 0.2".into()],
            profile: QualityProfile::default(),
            algorithm: "NaiveBayes".into(),
            metrics: metrics(0.8),
            seed: 7,
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: ExperimentRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
