//! Advisor evaluation (experiment E12): leave-one-dataset-out regret and
//! top-1 hit rate against the empirically best algorithm.

use crate::advisor::Advisor;
use crate::error::Result;
use crate::record::ExperimentRecord;
use crate::store::KnowledgeBase;
use std::collections::HashMap;

/// Aggregate advisor-evaluation result.
#[derive(Debug, Clone, PartialEq)]
pub struct AdvisorEvaluation {
    /// Number of held-out (dataset, profile) decision points scored.
    pub decisions: usize,
    /// Fraction where the advisor's pick matched the empirical best.
    pub top1_hit_rate: f64,
    /// Mean score regret (best observed score − score of the advised
    /// algorithm on the same held-out profile).
    pub mean_regret: f64,
    /// Regret of the always-pick-the-globally-best-algorithm baseline.
    pub baseline_regret: f64,
    /// The static baseline algorithm used for comparison.
    pub baseline_algorithm: String,
}

/// Per-algorithm mean score within one decision group, averaged across
/// seeds. The seed version of this map kept only the *last-inserted*
/// score per algorithm, so multi-seed groups were judged by whichever
/// seed happened to come last in insertion order.
fn mean_scores<'a>(records: &[&'a ExperimentRecord]) -> HashMap<&'a str, f64> {
    let mut sums: HashMap<&str, (f64, usize)> = HashMap::new();
    for r in records {
        let e = sums.entry(r.algorithm.as_str()).or_insert((0.0, 0));
        e.0 += r.metrics.score();
        e.1 += 1;
    }
    sums.into_iter()
        .map(|(a, (s, n))| (a, s / n as f64))
        .collect()
}

/// Evaluate an advisor by leave-one-dataset-out: for every dataset in
/// the KB and every distinct degradation context recorded on it, advise
/// from a KB *without* that dataset (a borrowed dataset-mask view — no
/// per-dataset deep clone) and compare against what actually performed
/// best there, averaged across seeds.
pub fn leave_one_dataset_out(kb: &KnowledgeBase, advisor: &Advisor) -> Result<AdvisorEvaluation> {
    let mut decisions = 0usize;
    let mut hits = 0usize;
    let mut regret_sum = 0.0;
    let mut baseline_regret_sum = 0.0;
    // Static baseline: best mean score over the whole KB.
    let mut totals: HashMap<&str, (f64, usize)> = HashMap::new();
    for r in kb.records() {
        let e = totals.entry(r.algorithm.as_str()).or_insert((0.0, 0));
        e.0 += r.metrics.score();
        e.1 += 1;
    }
    let baseline_algorithm = totals
        .iter()
        .map(|(a, (s, n))| (*a, s / *n as f64))
        .max_by(|x, y| x.1.total_cmp(&y.1).then(y.0.cmp(x.0)))
        .map(|(a, _)| a.to_string())
        .unwrap_or_default();
    for dataset in kb.dataset_names() {
        let train_view = kb.view_without_dataset(dataset);
        if train_view.is_empty() {
            continue;
        }
        // Group the held-out records by degradation context: each group
        // is one decision point with per-algorithm observed scores.
        let mut groups: HashMap<&[String], Vec<&ExperimentRecord>> = HashMap::new();
        for r in kb.dataset_records(dataset) {
            groups.entry(r.degradations.as_slice()).or_default().push(r);
        }
        for records in groups.values() {
            // Mean per-algorithm score across the group's seeds.
            let observed = mean_scores(records);
            if observed.len() < 2 {
                continue; // no choice to make
            }
            let profile = &records[0].profile;
            let advice = advisor.advise_view(&train_view, profile)?;
            let best_score = observed.values().cloned().fold(f64::NEG_INFINITY, f64::max);
            let best_algo = observed
                .iter()
                .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(a.0)))
                .map(|(a, _)| *a)
                .expect("non-empty group");
            // The advised algorithm may not have been run in this group
            // (e.g. a spec mismatch); fall back to the worst observed
            // score so missing coverage is penalized, not hidden.
            let advised_score = observed
                .get(advice.best())
                .copied()
                .unwrap_or_else(|| observed.values().cloned().fold(f64::INFINITY, f64::min));
            let baseline_score = observed
                .get(baseline_algorithm.as_str())
                .copied()
                .unwrap_or_else(|| observed.values().cloned().fold(f64::INFINITY, f64::min));
            decisions += 1;
            if advice.best() == best_algo {
                hits += 1;
            }
            regret_sum += best_score - advised_score;
            baseline_regret_sum += best_score - baseline_score;
        }
    }
    Ok(AdvisorEvaluation {
        decisions,
        top1_hit_rate: if decisions == 0 {
            0.0
        } else {
            hits as f64 / decisions as f64
        },
        mean_regret: if decisions == 0 {
            0.0
        } else {
            regret_sum / decisions as f64
        },
        baseline_regret: if decisions == 0 {
            0.0
        } else {
            baseline_regret_sum / decisions as f64
        },
        baseline_algorithm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::PerfMetrics;
    use openbi_quality::QualityProfile;

    fn record(
        dataset: &str,
        degradation: &str,
        algorithm: &str,
        completeness: f64,
        acc: f64,
        seed: u64,
    ) -> ExperimentRecord {
        ExperimentRecord {
            dataset: dataset.into(),
            degradations: vec![degradation.into()],
            profile: QualityProfile {
                completeness,
                ..Default::default()
            },
            algorithm: algorithm.into(),
            metrics: PerfMetrics {
                accuracy: acc,
                macro_f1: acc,
                minority_f1: acc,
                kappa: acc,
                train_ms: 1.0,
                model_size: 1.0,
            },
            seed,
        }
    }

    /// Consistent pattern across 3 datasets: NB wins when incomplete,
    /// kNN wins when complete — learnable across datasets.
    fn kb() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        for (di, dataset) in ["d1", "d2", "d3"].iter().enumerate() {
            let jitter = di as f64 * 0.004;
            kb.add(record(
                dataset,
                "clean",
                "NaiveBayes",
                0.99 - jitter,
                0.80,
                0,
            ));
            kb.add(record(dataset, "clean", "kNN", 0.99 - jitter, 0.95, 0));
            kb.add(record(
                dataset,
                "missing",
                "NaiveBayes",
                0.6 + jitter,
                0.85,
                0,
            ));
            kb.add(record(dataset, "missing", "kNN", 0.6 + jitter, 0.55, 0));
        }
        kb
    }

    #[test]
    fn advisor_beats_static_baseline() {
        let advisor = Advisor {
            neighbors: 4,
            bandwidth: 0.05,
        };
        let eval = leave_one_dataset_out(&kb(), &advisor).unwrap();
        assert_eq!(eval.decisions, 6);
        assert_eq!(eval.top1_hit_rate, 1.0, "pattern is perfectly learnable");
        assert!(eval.mean_regret < 1e-9);
        assert!(
            eval.baseline_regret > eval.mean_regret,
            "static pick must pay regret on half the contexts"
        );
    }

    #[test]
    fn single_algorithm_groups_are_skipped() {
        let mut kb = KnowledgeBase::new();
        kb.add(record("d1", "clean", "only", 0.9, 0.9, 0));
        kb.add(record("d2", "clean", "only", 0.9, 0.9, 0));
        // Multiple seeds of one algorithm are still a single-choice
        // group: the seed code counted *records*, not algorithms, and
        // would have scored this as a decision.
        kb.add(record("d1", "clean", "only", 0.9, 0.8, 1));
        kb.add(record("d2", "clean", "only", 0.9, 0.8, 1));
        let eval = leave_one_dataset_out(&kb, &Advisor::default()).unwrap();
        assert_eq!(eval.decisions, 0);
        assert_eq!(eval.top1_hit_rate, 0.0);
    }

    /// Regression test for the seed-collapse bug: per-seed winners
    /// differ, and the empirical best must come from *mean* scores, not
    /// whichever seed was inserted last.
    #[test]
    fn multi_seed_groups_are_averaged_not_last_wins() {
        // Stable: 0.80 on both seeds (mean 0.80).
        // Spiky: 0.60 then 0.95 (mean 0.775, but last-inserted 0.95).
        // The old code would crown Spiky; averaging crowns Stable.
        let mut kb = KnowledgeBase::new();
        for dataset in ["d1", "d2"] {
            kb.add(record(dataset, "clean", "Stable", 0.9, 0.80, 0));
            kb.add(record(dataset, "clean", "Spiky", 0.9, 0.60, 0));
            kb.add(record(dataset, "clean", "Stable", 0.9, 0.80, 1));
            kb.add(record(dataset, "clean", "Spiky", 0.9, 0.95, 1));
        }
        let advisor = Advisor {
            neighbors: 8,
            bandwidth: 0.25,
        };
        let eval = leave_one_dataset_out(&kb, &advisor).unwrap();
        assert_eq!(eval.decisions, 2);
        // The advisor's similarity-weighted pick is also Stable (same
        // averaging), so hit rate is perfect and regret is zero only
        // because the evaluator agrees means decide the winner.
        assert_eq!(eval.top1_hit_rate, 1.0, "mean-of-seeds winner is Stable");
        assert!(eval.mean_regret.abs() < 1e-9);
        assert_eq!(eval.baseline_algorithm, "Stable");
    }
}
