//! Guidance-rule extraction: distill the knowledge base into
//! human-readable statements like *"when completeness < 0.8, NaiveBayes
//! beats kNN by 0.07 accuracy"* — the explainable layer a non-expert
//! can audit.

use crate::store::KnowledgeBase;
use openbi_quality::PROFILE_DIMENSIONS;

/// One extracted guidance rule.
#[derive(Debug, Clone, PartialEq)]
pub struct GuidanceRule {
    /// Profile dimension the rule conditions on.
    pub criterion: String,
    /// Threshold splitting "low" vs "high".
    pub threshold: f64,
    /// True when the rule applies below the threshold, false above.
    pub below: bool,
    /// The algorithm that wins in the region.
    pub winner: String,
    /// The overall-best algorithm it overtakes (the comparison target).
    pub baseline: String,
    /// Mean score advantage of the winner over the baseline in-region.
    pub advantage: f64,
    /// Number of records in the region.
    pub support: usize,
}

impl GuidanceRule {
    /// Render the rule as a sentence.
    pub fn render(&self) -> String {
        format!(
            "when {} {} {:.2}, prefer {} over {} (+{:.3} score, {} experiments)",
            self.criterion,
            if self.below { "<" } else { ">=" },
            self.threshold,
            self.winner,
            self.baseline,
            self.advantage,
            self.support
        )
    }
}

fn dimension_value(profile: &openbi_quality::QualityProfile, dim: usize) -> f64 {
    profile.to_vector()[dim]
}

/// Extract guidance rules: for each profile dimension, split the records
/// at the dimension's median and report regions where the regional
/// winner differs from the global winner with at least `min_advantage`
/// score difference and `min_support` records.
pub fn extract_rules(
    kb: &KnowledgeBase,
    min_advantage: f64,
    min_support: usize,
) -> Vec<GuidanceRule> {
    if kb.is_empty() {
        return vec![];
    }
    // Global winner by mean score.
    let mean_score = |algo: &str,
                      pred: &dyn Fn(&crate::record::ExperimentRecord) -> bool|
     -> Option<(f64, usize)> {
        let records = kb.filter(|r| r.algorithm == algo && pred(r));
        if records.is_empty() {
            return None;
        }
        let sum: f64 = records.iter().map(|r| r.metrics.score()).sum();
        Some((sum / records.len() as f64, records.len()))
    };
    let algorithms = kb.algorithms();
    let everything = |_: &crate::record::ExperimentRecord| true;
    let global_winner = algorithms
        .iter()
        .filter_map(|a| mean_score(a, &everything).map(|(s, _)| (a.clone(), s)))
        .max_by(|x, y| x.1.total_cmp(&y.1))
        .map(|(a, _)| a)
        .expect("non-empty kb has a winner");
    let mut rules = Vec::new();
    for (dim, name) in PROFILE_DIMENSIONS.iter().enumerate() {
        let mut values: Vec<f64> = kb
            .records()
            .iter()
            .map(|r| dimension_value(&r.profile, dim))
            .collect();
        values.sort_by(f64::total_cmp);
        let threshold = values[values.len() / 2];
        // Skip dimensions with no spread.
        if values[0] == values[values.len() - 1] {
            continue;
        }
        for below in [true, false] {
            let region = move |r: &crate::record::ExperimentRecord| {
                let v = dimension_value(&r.profile, dim);
                if below {
                    v < threshold
                } else {
                    v >= threshold
                }
            };
            let mut best: Option<(String, f64, usize)> = None;
            for algo in &algorithms {
                if let Some((score, support)) = mean_score(algo, &region) {
                    if best.as_ref().map(|(_, s, _)| score > *s).unwrap_or(true) {
                        best = Some((algo.clone(), score, support));
                    }
                }
            }
            let Some((winner, winner_score, _)) = best else {
                continue;
            };
            if winner == global_winner {
                continue;
            }
            let Some((baseline_score, support)) = mean_score(&global_winner, &region) else {
                continue;
            };
            let advantage = winner_score - baseline_score;
            if advantage >= min_advantage && support >= min_support {
                rules.push(GuidanceRule {
                    criterion: (*name).to_string(),
                    threshold,
                    below,
                    winner,
                    baseline: global_winner.clone(),
                    advantage,
                    support,
                });
            }
        }
    }
    rules.sort_by(|a, b| b.advantage.total_cmp(&a.advantage));
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{ExperimentRecord, PerfMetrics};
    use openbi_quality::QualityProfile;

    fn record(algorithm: &str, completeness: f64, acc: f64) -> ExperimentRecord {
        ExperimentRecord {
            dataset: "d".into(),
            degradations: vec![],
            profile: QualityProfile {
                completeness,
                ..Default::default()
            },
            algorithm: algorithm.into(),
            metrics: PerfMetrics {
                accuracy: acc,
                macro_f1: acc,
                minority_f1: acc,
                kappa: acc,
                train_ms: 1.0,
                model_size: 1.0,
            },
            seed: 0,
        }
    }

    /// kNN wins overall, NaiveBayes wins when completeness is low.
    fn kb() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        for i in 0..20 {
            let c_low = 0.5 + (i as f64) * 0.001;
            let c_high = 0.95 + (i as f64) * 0.001;
            kb.add(record("NaiveBayes", c_low, 0.80));
            kb.add(record("kNN", c_low, 0.55));
            kb.add(record("NaiveBayes", c_high, 0.60));
            kb.add(record("kNN", c_high, 0.97));
        }
        kb
    }

    #[test]
    fn extracts_the_low_completeness_rule() {
        let rules = extract_rules(&kb(), 0.05, 5);
        let rule = rules
            .iter()
            .find(|r| r.criterion == "completeness" && r.below)
            .expect("low-completeness rule extracted");
        assert_eq!(rule.winner, "NaiveBayes");
        assert_eq!(rule.baseline, "kNN");
        assert!(rule.advantage > 0.1);
        assert!(rule.render().contains("prefer NaiveBayes over kNN"));
    }

    #[test]
    fn no_rules_from_empty_or_uniform_kb() {
        assert!(extract_rules(&KnowledgeBase::new(), 0.01, 1).is_empty());
        let mut kb = KnowledgeBase::new();
        for _ in 0..10 {
            kb.add(record("only", 0.9, 0.9));
        }
        assert!(extract_rules(&kb, 0.01, 1).is_empty());
    }

    #[test]
    fn min_support_filters_rules() {
        let rules = extract_rules(&kb(), 0.05, 10_000);
        assert!(rules.is_empty());
    }

    #[test]
    fn rules_sorted_by_advantage() {
        let rules = extract_rules(&kb(), 0.0, 1);
        for w in rules.windows(2) {
            assert!(w[0].advantage >= w[1].advantage);
        }
    }
}
