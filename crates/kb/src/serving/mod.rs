//! Read-mostly snapshot serving for the knowledge base (DESIGN.md §13).
//!
//! [`SharedKnowledgeBase`] funnels every reader through an `RwLock` and
//! its `snapshot()` deep-clones the whole store per call — fine for the
//! experiment grid, hostile to a serving tier answering many concurrent
//! advice queries while experiments keep publishing. This module is the
//! serving-tier alternative:
//!
//! * [`SnapshotKnowledgeBase`] — an epoch/snapshot-swap store. The
//!   current [`KnowledgeBase`] lives behind an atomic pointer as an
//!   immutable `Arc` snapshot with a **generation number**. Writers
//!   build the next snapshot off-lock (clone + append) and publish it
//!   with a single pointer swap; readers pin a snapshot without ever
//!   blocking and without cloning any records. A bounded publish queue
//!   coalesces `add_batch` bursts from the grid executor: while one
//!   thread is publishing, other appenders enqueue and return
//!   immediately, and the publisher folds everything pending into one
//!   new generation.
//! * [`KbSnapshot`] — a pinned generation: cheap to clone, `Deref`s to
//!   [`KnowledgeBase`], immutable forever.
//! * [`AdvisorService`] — pins exactly one snapshot per query (or per
//!   `advise_many` batch), so every ranking is computed against a
//!   single internally consistent generation even mid-publish.
//!
//! ## Observability
//!
//! With an `openbi-obs` registry installed the store records
//! `kb.snapshot.generation` (gauge), `kb.publish.coalesced_total`,
//! `kb.publish.failed_total`, `kb.publish.seconds` and
//! `kb.publish.batch_records`; the service records
//! `serving.advise.seconds` and `serving.queries_total`.
//!
//! ## Fault injection
//!
//! Every publish checks the `kb.publish` injection point (keyed by the
//! generation it is trying to create, with a per-generation attempt
//! counter) against the store's plan or the process-global slot. An
//! injected fault leaves the batch in the pending queue — pinned
//! snapshots and the serving generation are untouched, nothing is lost,
//! and a later publish (or [`SnapshotKnowledgeBase::flush`]) retries.

mod swap;

use crate::advisor::{Advice, Advisor};
use crate::error::{KbError, Result};
use crate::record::ExperimentRecord;
use crate::store::{KnowledgeBase, RecordSink};
use crate::wal::{
    CheckpointReport, FsyncPolicy, RecoveryReport, WalOptions, WalWriter, DEFAULT_SEGMENT_BYTES,
};
use openbi_obs as obs;
use openbi_quality::QualityProfile;
use parking_lot::{Mutex, MutexGuard};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Instant;
use swap::SwapCell;

/// The publish injection point: fires once per publish attempt, keyed
/// by the generation the publisher is trying to create.
pub const PUBLISH_FAULT_POINT: &str = "kb.publish";

/// Pending batches the queue absorbs before appenders block on the
/// publisher (backpressure); see [`SnapshotKnowledgeBase::with_capacity`].
pub const DEFAULT_PUBLISH_CAPACITY: usize = 4096;

/// A pinned, immutable knowledge-base generation.
///
/// Cloning is two reference-count bumps; the underlying records are
/// shared, never copied. A snapshot stays valid (and bitwise unchanged)
/// for as long as it is held, regardless of how many generations the
/// store publishes after it.
///
/// # Examples
///
/// ```
/// use openbi_kb::{ExperimentRecord, SnapshotKnowledgeBase};
///
/// let store = SnapshotKnowledgeBase::default();
/// let pinned = store.pin();
/// store.add_batch(vec![ExperimentRecord::default()]);
/// store.flush().unwrap();
/// // The pin still serves its original generation…
/// assert_eq!(pinned.generation(), 0);
/// assert!(pinned.is_empty());
/// // …while a fresh pin sees the published record.
/// assert_eq!(store.pin().len(), 1);
/// ```
#[derive(Clone)]
pub struct KbSnapshot {
    generation: u64,
    kb: Arc<KnowledgeBase>,
}

impl KbSnapshot {
    /// The generation number this snapshot pins (0 = initial contents).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The pinned knowledge base.
    pub fn kb(&self) -> &KnowledgeBase {
        &self.kb
    }
}

impl std::ops::Deref for KbSnapshot {
    type Target = KnowledgeBase;

    fn deref(&self) -> &KnowledgeBase {
        &self.kb
    }
}

impl std::fmt::Debug for KbSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KbSnapshot")
            .field("generation", &self.generation)
            .field("records", &self.kb.len())
            .finish()
    }
}

/// Instrument handles for the publish path, fetched once per
/// `add_batch`/`flush` call (the usual `openbi-obs` bundle pattern).
struct PublishMetrics {
    /// `kb.snapshot.generation`: the serving generation, set on every
    /// successful publish.
    generation: Arc<obs::Gauge>,
    /// `kb.publish.coalesced_total`: appends absorbed into another
    /// thread's in-flight publish instead of publishing themselves.
    coalesced: Arc<obs::Counter>,
    /// `kb.publish.failed_total`: publish attempts vetoed by the
    /// `kb.publish` injection point.
    failed: Arc<obs::Counter>,
    /// `kb.publish.seconds`: off-lock snapshot build + pointer swap.
    seconds: Arc<obs::Histogram>,
    /// `kb.publish.batch_records`: records folded into one generation.
    batch_records: Arc<obs::Histogram>,
}

impl PublishMetrics {
    fn fetch() -> Option<PublishMetrics> {
        let registry = obs::global()?;
        Some(PublishMetrics {
            generation: registry.gauge("kb.snapshot.generation"),
            coalesced: registry.counter("kb.publish.coalesced_total"),
            failed: registry.counter("kb.publish.failed_total"),
            seconds: registry.histogram("kb.publish.seconds"),
            batch_records: registry
                .histogram_with("kb.publish.batch_records", obs::default_count_buckets()),
        })
    }
}

/// Configuration for a crash-durable serving store
/// ([`SnapshotKnowledgeBase::open_durable`]): where the write-ahead
/// log lives, how eagerly it syncs, and when it checkpoints.
///
/// # Examples
///
/// ```no_run
/// use openbi_kb::{DurableOptions, FsyncPolicy, SnapshotKnowledgeBase};
///
/// let options = DurableOptions::new("run/wal")
///     .fsync(FsyncPolicy::Always)
///     .checkpoint_every(10_000);
/// let (store, recovery) = SnapshotKnowledgeBase::open_durable(options).unwrap();
/// println!("recovered {} frames", recovery.frames_replayed);
/// # drop(store);
/// ```
#[derive(Debug, Clone)]
pub struct DurableOptions {
    wal_dir: std::path::PathBuf,
    segment_bytes: u64,
    fsync: FsyncPolicy,
    checkpoint_every: Option<u64>,
    publish_capacity: usize,
    fault_plan: Option<Arc<openbi_faults::FaultPlan>>,
}

impl DurableOptions {
    /// Durability rooted at `wal_dir`, with the default segment size,
    /// fsync policy, publish capacity, and no automatic checkpoints.
    pub fn new(wal_dir: impl Into<std::path::PathBuf>) -> DurableOptions {
        DurableOptions {
            wal_dir: wal_dir.into(),
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            fsync: FsyncPolicy::default(),
            checkpoint_every: None,
            publish_capacity: DEFAULT_PUBLISH_CAPACITY,
            fault_plan: None,
        }
    }

    /// Segment size before the log rotates (see
    /// [`WalOptions::segment_bytes`]).
    pub fn segment_bytes(mut self, bytes: u64) -> DurableOptions {
        self.segment_bytes = bytes;
        self
    }

    /// When appended frames reach stable storage.
    pub fn fsync(mut self, policy: FsyncPolicy) -> DurableOptions {
        self.fsync = policy;
        self
    }

    /// Checkpoint-and-compact automatically after every `records`
    /// published records (`None`/default: only on explicit
    /// [`SnapshotKnowledgeBase::checkpoint`] calls).
    pub fn checkpoint_every(mut self, records: u64) -> DurableOptions {
        self.checkpoint_every = Some(records.max(1));
        self
    }

    /// Publish-queue bound (see
    /// [`SnapshotKnowledgeBase::with_capacity`]).
    pub fn publish_capacity(mut self, capacity: usize) -> DurableOptions {
        self.publish_capacity = capacity;
        self
    }

    /// One explicit fault plan for both the `kb.publish` point and the
    /// `kb.wal.*` points (tests; production uses the global slot).
    pub fn fault_plan(mut self, plan: Arc<openbi_faults::FaultPlan>) -> DurableOptions {
        self.fault_plan = Some(plan);
        self
    }
}

/// The durability side-car of a [`SnapshotKnowledgeBase`]: the log
/// writer plus checkpoint pacing and degradation counters.
struct DurableState {
    writer: Mutex<WalWriter>,
    checkpoint_every: Option<u64>,
    records_since_checkpoint: AtomicU64,
    wal_failures: AtomicU64,
    checkpoint_failures: AtomicU64,
}

/// The epoch/snapshot-swap knowledge-base store.
///
/// Readers ([`pin`](SnapshotKnowledgeBase::pin)) are lock-free and
/// never clone a record; writers fold pending batches into a freshly
/// built immutable snapshot and publish it with one pointer swap. See
/// the [module docs](self) for the full lifecycle and DESIGN.md §13 for
/// the consistency guarantees.
///
/// # Examples
///
/// ```
/// use openbi_kb::{ExperimentRecord, SnapshotKnowledgeBase};
///
/// let store = SnapshotKnowledgeBase::default();
/// assert_eq!(store.generation(), 0);
/// store.add_batch(vec![ExperimentRecord::default(), ExperimentRecord::default()]);
/// let generation = store.flush().unwrap();
/// assert!(generation >= 1);
/// assert_eq!(store.pin().len(), 2);
/// ```
pub struct SnapshotKnowledgeBase {
    cell: SwapCell<KnowledgeBase>,
    /// Records accepted but not yet folded into a snapshot.
    pending: Mutex<Vec<ExperimentRecord>>,
    /// Serializes snapshot builds; appenders `try_lock` it so at most
    /// one thread pays the clone+swap while the rest enqueue and leave.
    publish_lock: Mutex<()>,
    /// Pending-record count past which appenders stop coalescing and
    /// block on `publish_lock` instead (backpressure).
    capacity: usize,
    /// Explicit fault plan; falls back to the process-global slot.
    fault_plan: Option<Arc<openbi_faults::FaultPlan>>,
    /// Failed attempts at creating `attempt_generation`, for the
    /// `kb.publish` fault key. Only the publish-lock holder writes.
    attempts: AtomicU32,
    attempt_generation: AtomicU64,
    /// Write-ahead logging, when opened via
    /// [`open_durable`](SnapshotKnowledgeBase::open_durable).
    durable: Option<DurableState>,
}

impl Default for SnapshotKnowledgeBase {
    fn default() -> Self {
        SnapshotKnowledgeBase::new(KnowledgeBase::new())
    }
}

impl std::fmt::Debug for SnapshotKnowledgeBase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotKnowledgeBase")
            .field("generation", &self.generation())
            .field("records", &self.pin().len())
            .field("pending", &self.pending_len())
            .field("capacity", &self.capacity)
            .field("durable", &self.durable.is_some())
            .finish()
    }
}

impl SnapshotKnowledgeBase {
    /// Serve `kb` as generation 0.
    pub fn new(kb: KnowledgeBase) -> Self {
        Self::with_capacity(kb, DEFAULT_PUBLISH_CAPACITY)
    }

    /// Serve `kb` as generation 0 with an explicit publish-queue bound.
    ///
    /// While fewer than `capacity` records are pending, an `add_batch`
    /// that finds another thread mid-publish enqueues and returns
    /// (coalescing). At or past the bound it blocks until it can
    /// publish the backlog itself, so the queue cannot grow without
    /// limit under a stalled or fault-degraded publisher.
    pub fn with_capacity(kb: KnowledgeBase, capacity: usize) -> Self {
        SnapshotKnowledgeBase {
            cell: SwapCell::new(Arc::new(kb)),
            pending: Mutex::new(Vec::new()),
            publish_lock: Mutex::new(()),
            capacity: capacity.max(1),
            fault_plan: None,
            attempts: AtomicU32::new(0),
            attempt_generation: AtomicU64::new(0),
            durable: None,
        }
    }

    /// Open a **crash-durable** serving store: recover whatever the
    /// write-ahead log in `options.wal_dir` holds (checkpoint +
    /// verified replay, torn tail repaired), serve the recovered
    /// records as generation 0, and log every batch published from now
    /// on *before* its snapshot swap — write-ahead ordering, so a
    /// record is never visible to readers unless it would survive a
    /// crash (under the configured [`FsyncPolicy`]).
    ///
    /// Returns the store together with the [`RecoveryReport`] so
    /// callers can surface what was replayed, truncated, or
    /// checkpointed.
    pub fn open_durable(options: DurableOptions) -> Result<(Self, RecoveryReport)> {
        let (kb, report) = match &options.fault_plan {
            Some(plan) => crate::wal::recover_with(&options.wal_dir, Some(plan))?,
            None => crate::wal::recover(&options.wal_dir)?,
        };
        let mut wal_options = WalOptions::new(&options.wal_dir)
            .segment_bytes(options.segment_bytes)
            .fsync(options.fsync);
        if let Some(plan) = &options.fault_plan {
            wal_options = wal_options.fault_plan(plan.clone());
        }
        let writer = WalWriter::open(wal_options)?;
        let mut store = SnapshotKnowledgeBase::with_capacity(kb, options.publish_capacity);
        if let Some(plan) = options.fault_plan {
            store = store.with_fault_plan(plan);
        }
        store.durable = Some(DurableState {
            writer: Mutex::new(writer),
            checkpoint_every: options.checkpoint_every,
            records_since_checkpoint: AtomicU64::new(0),
            wal_failures: AtomicU64::new(0),
            checkpoint_failures: AtomicU64::new(0),
        });
        Ok((store, report))
    }

    /// Attach an explicit fault plan for the `kb.publish` injection
    /// point. Without one, the process-global plan (if installed)
    /// applies.
    pub fn with_fault_plan(mut self, plan: Arc<openbi_faults::FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Pin the current snapshot: lock-free, no record is cloned.
    pub fn pin(&self) -> KbSnapshot {
        let (generation, kb) = self.cell.load();
        KbSnapshot { generation, kb }
    }

    /// The serving generation (0 until the first publish).
    pub fn generation(&self) -> u64 {
        self.cell.generation()
    }

    /// Records visible in the serving snapshot (pending records are not
    /// counted until published).
    pub fn len(&self) -> usize {
        self.pin().len()
    }

    /// True iff the serving snapshot holds no records.
    pub fn is_empty(&self) -> bool {
        self.pin().is_empty()
    }

    /// Records accepted but not yet folded into a snapshot.
    pub fn pending_len(&self) -> usize {
        self.pending.lock().len()
    }

    /// Append one record (enqueue + opportunistic publish).
    pub fn add(&self, record: ExperimentRecord) {
        self.add_batch(vec![record]);
    }

    /// Append a batch and publish opportunistically.
    ///
    /// The batch is always accepted. If no other publisher is active,
    /// this thread builds and swaps in the next snapshot (folding in
    /// anything else pending); if one is, the batch rides along with
    /// that publisher — `kb.publish.coalesced_total` counts those — so
    /// grid workers flushing concurrently produce a handful of
    /// generations, not one per flush. A publish vetoed by the
    /// `kb.publish` fault point leaves the batch pending for a later
    /// attempt; [`flush`](SnapshotKnowledgeBase::flush) surfaces such
    /// errors, this fire-and-forget path only counts them.
    pub fn add_batch(&self, records: Vec<ExperimentRecord>) {
        if records.is_empty() {
            return;
        }
        let metrics = PublishMetrics::fetch();
        let backlog = {
            let mut pending = self.pending.lock();
            pending.extend(records);
            pending.len()
        };
        if backlog >= self.capacity {
            // Backpressure: the queue is full, so this appender must
            // wait its turn and drain the backlog itself.
            let guard = self.publish_lock.lock();
            let _ = self.drain(&guard, metrics.as_ref());
        } else if let Some(guard) = self.publish_lock.try_lock() {
            let _ = self.drain(&guard, metrics.as_ref());
        } else {
            // Another thread is publishing; it re-checks the pending
            // queue before releasing the lock and will fold this batch
            // into its snapshot (or leave it for the next publisher).
            if let Some(m) = &metrics {
                m.coalesced.inc();
            }
        }
    }

    /// Force-publish everything pending; returns the serving generation.
    ///
    /// Unlike [`add_batch`](SnapshotKnowledgeBase::add_batch) this
    /// surfaces an injected `kb.publish` fault as an error — records
    /// stay pending and a later `flush` retries them. Call it after a
    /// grid run to guarantee the last coalesced batches are visible.
    pub fn flush(&self) -> Result<u64> {
        let metrics = PublishMetrics::fetch();
        let guard = self.publish_lock.lock();
        self.drain(&guard, metrics.as_ref())?;
        Ok(self.generation())
    }

    /// Flush everything pending, then fold the serving snapshot into a
    /// `checkpoint-<W>.jsonl` snapshot and compact the log segments it
    /// supersedes (see [`WalWriter::checkpoint`]). Returns `None` on a
    /// store opened without [`open_durable`](Self::open_durable).
    pub fn checkpoint(&self) -> Result<Option<CheckpointReport>> {
        let metrics = PublishMetrics::fetch();
        let guard = self.publish_lock.lock();
        self.drain(&guard, metrics.as_ref())?;
        let Some(durable) = &self.durable else {
            return Ok(None);
        };
        let (_, kb) = self.cell.load();
        let report = durable.writer.lock().checkpoint(&kb)?;
        durable.records_since_checkpoint.store(0, Relaxed);
        Ok(Some(report))
    }

    /// Force the write-ahead log to stable storage regardless of the
    /// fsync policy. A no-op on a non-durable store.
    pub fn sync_wal(&self) -> Result<()> {
        match &self.durable {
            Some(durable) => durable.writer.lock().sync(),
            None => Ok(()),
        }
    }

    /// Whether this store write-ahead logs its publishes.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// Batches that failed to reach the write-ahead log (each failure
    /// left its records pending and surfaced an error).
    pub fn wal_failures(&self) -> u64 {
        self.durable
            .as_ref()
            .map_or(0, |d| d.wal_failures.load(Relaxed))
    }

    /// Automatic checkpoint passes that failed (the log keeps
    /// growing; durability itself is not affected).
    pub fn checkpoint_failures(&self) -> u64 {
        self.durable
            .as_ref()
            .map_or(0, |d| d.checkpoint_failures.load(Relaxed))
    }

    /// True once any WAL append or automatic checkpoint has failed —
    /// the run is degraded and its report should say so.
    pub fn durability_degraded(&self) -> bool {
        self.wal_failures() > 0 || self.checkpoint_failures() > 0
    }

    /// Drain the pending queue into successive snapshots while holding
    /// the publish lock. Re-checks the queue after every swap so
    /// batches enqueued mid-publish are folded in before the lock is
    /// released.
    fn drain(&self, _guard: &MutexGuard<'_, ()>, metrics: Option<&PublishMetrics>) -> Result<()> {
        loop {
            let batch = {
                let mut pending = self.pending.lock();
                if pending.is_empty() {
                    return Ok(());
                }
                std::mem::take(&mut *pending)
            };
            if let Err(e) = self.publish_batch(batch, metrics) {
                if let Some(m) = metrics {
                    m.failed.inc();
                }
                return Err(e);
            }
        }
    }

    /// Build and swap in one new generation from `batch`. On an
    /// injected fault — or, for a durable store, a write-ahead-log
    /// failure — the batch is restored to the *front* of the pending
    /// queue (append order is preserved) and the serving snapshot is
    /// left untouched.
    fn publish_batch(
        &self,
        batch: Vec<ExperimentRecord>,
        metrics: Option<&PublishMetrics>,
    ) -> Result<()> {
        let start = Instant::now();
        let (current_generation, current) = self.cell.load();
        let next_generation = current_generation + 1;
        if let Err(e) = self.fire_publish_fault(next_generation) {
            self.restore_batch(batch);
            return Err(KbError::Publish(e.to_string()));
        }
        // Write-ahead ordering: the batch reaches the log (and, per
        // the fsync policy, the disk) before any reader can see it.
        // The log rolls a failed batch back physically, so no retry
        // ever double-logs a record.
        if let Some(durable) = &self.durable {
            if let Err(e) = durable.writer.lock().append_batch(&batch) {
                durable.wal_failures.fetch_add(1, Relaxed);
                self.restore_batch(batch);
                return Err(KbError::Publish(format!(
                    "write-ahead log rejected batch: {e}"
                )));
            }
        }
        // Off-lock snapshot build: clone the current generation and
        // append. Readers keep serving `current` untouched until the
        // single pointer swap below.
        let mut next = KnowledgeBase::clone(&current);
        let records = batch.len();
        next.add_batch(batch);
        let generation = self.cell.publish(Arc::new(next));
        debug_assert_eq!(generation, next_generation);
        if let Some(m) = metrics {
            m.generation.set(generation as f64);
            m.batch_records.record(records as f64);
            m.seconds.record(start.elapsed().as_secs_f64());
        }
        self.maybe_auto_checkpoint(records as u64);
        Ok(())
    }

    /// Put a failed batch back at the front of the pending queue,
    /// preserving append order ahead of anything enqueued meanwhile.
    fn restore_batch(&self, batch: Vec<ExperimentRecord>) {
        let mut pending = self.pending.lock();
        let mut restored = batch;
        restored.append(&mut pending);
        *pending = restored;
    }

    /// Checkpoint-and-compact once enough records have been published
    /// since the last pass. Runs under the publish lock (callers hold
    /// it), so the snapshot it folds is exactly the serving one. A
    /// failure is counted, not surfaced: the log still holds every
    /// record, so durability is intact — only compaction lags.
    fn maybe_auto_checkpoint(&self, published: u64) {
        let Some(durable) = &self.durable else {
            return;
        };
        let Some(every) = durable.checkpoint_every else {
            return;
        };
        let since = durable
            .records_since_checkpoint
            .fetch_add(published, Relaxed)
            + published;
        if since < every {
            return;
        }
        durable.records_since_checkpoint.store(0, Relaxed);
        let (_, kb) = self.cell.load();
        if durable.writer.lock().checkpoint(&kb).is_err() {
            durable.checkpoint_failures.fetch_add(1, Relaxed);
        }
    }

    /// Fire `kb.publish` keyed by the generation under construction,
    /// with a per-generation attempt counter so retry budgets
    /// (`times=N`) behave like the executor's per-cell attempts.
    fn fire_publish_fault(
        &self,
        next_generation: u64,
    ) -> std::result::Result<(), openbi_faults::FaultError> {
        let plan = self.fault_plan.clone().or_else(openbi_faults::active);
        let Some(plan) = plan else {
            return Ok(());
        };
        // Only the publish-lock holder reaches this, so the pair of
        // atomics is effectively plain state.
        let attempt = if self.attempt_generation.load(Relaxed) == next_generation {
            self.attempts.load(Relaxed)
        } else {
            self.attempt_generation.store(next_generation, Relaxed);
            self.attempts.store(0, Relaxed);
            0
        };
        match plan.fire(PUBLISH_FAULT_POINT, next_generation, attempt) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.attempts.store(attempt + 1, Relaxed);
                Err(e)
            }
        }
    }
}

impl RecordSink for SnapshotKnowledgeBase {
    /// Grid-executor publish path: enqueue + opportunistic coalesced
    /// publish. Callers should [`flush`](SnapshotKnowledgeBase::flush)
    /// after the run to force out the tail and surface publish faults.
    fn add_batch(&self, records: Vec<ExperimentRecord>) {
        SnapshotKnowledgeBase::add_batch(self, records);
    }
}

/// Serving-path metric handles for [`AdvisorService`].
struct ServiceMetrics {
    /// `serving.queries_total`: advise calls answered.
    queries: Arc<obs::Counter>,
    /// `serving.advise.seconds`: pin-to-answer latency (whole batch for
    /// [`AdvisorService::advise_many`]).
    seconds: Arc<obs::Histogram>,
}

impl ServiceMetrics {
    fn fetch() -> Option<ServiceMetrics> {
        let registry = obs::global()?;
        Some(ServiceMetrics {
            queries: registry.counter("serving.queries_total"),
            seconds: registry.histogram("serving.advise.seconds"),
        })
    }
}

/// One advisor answer together with the generation it was computed on.
#[derive(Debug, Clone)]
pub struct ServedAdvice {
    /// The ranking and explanation.
    pub advice: Advice,
    /// The knowledge-base generation the ranking was computed against.
    pub generation: u64,
}

/// A batch of advisor answers, all computed on one pinned generation.
#[derive(Debug, Clone)]
pub struct ServedBatch {
    /// One advice per input profile, in order.
    pub advice: Vec<Advice>,
    /// The single generation every answer in the batch was computed on.
    pub generation: u64,
}

/// The serving front-end: an [`Advisor`] bound to a
/// [`SnapshotKnowledgeBase`], pinning exactly one snapshot per query
/// (or per batch) so every ranking is internally consistent even while
/// publishes land concurrently.
///
/// # Examples
///
/// ```
/// use openbi_kb::{Advisor, AdvisorService, ExperimentRecord, SnapshotKnowledgeBase};
/// use openbi_quality::QualityProfile;
/// use std::sync::Arc;
///
/// let store = Arc::new(SnapshotKnowledgeBase::default());
/// store.add_batch(vec![ExperimentRecord {
///     algorithm: "NaiveBayes".into(),
///     ..ExperimentRecord::default()
/// }]);
/// store.flush().unwrap();
///
/// let service = AdvisorService::new(Advisor::default(), Arc::clone(&store));
/// let served = service.advise(&QualityProfile::default()).unwrap();
/// assert_eq!(served.advice.best(), "NaiveBayes");
/// assert_eq!(served.generation, store.generation());
/// ```
#[derive(Clone)]
pub struct AdvisorService {
    advisor: Advisor,
    store: Arc<SnapshotKnowledgeBase>,
}

impl AdvisorService {
    /// Bind an advisor configuration to a snapshot store.
    pub fn new(advisor: Advisor, store: Arc<SnapshotKnowledgeBase>) -> Self {
        AdvisorService { advisor, store }
    }

    /// The underlying snapshot store.
    pub fn store(&self) -> &SnapshotKnowledgeBase {
        &self.store
    }

    /// The advisor configuration.
    pub fn advisor(&self) -> &Advisor {
        &self.advisor
    }

    /// Answer one query against a freshly pinned snapshot.
    pub fn advise(&self, profile: &QualityProfile) -> Result<ServedAdvice> {
        let metrics = ServiceMetrics::fetch();
        let start = Instant::now();
        let snapshot = self.store.pin();
        let advice = self.advisor.advise(snapshot.kb(), profile)?;
        if let Some(m) = &metrics {
            m.queries.inc();
            m.seconds.record(start.elapsed().as_secs_f64());
        }
        Ok(ServedAdvice {
            advice,
            generation: snapshot.generation(),
        })
    }

    /// Answer a batch of queries against **one** pinned snapshot: every
    /// answer reflects the same generation, no matter how many
    /// publishes land while the batch runs.
    pub fn advise_many(&self, profiles: &[QualityProfile]) -> Result<ServedBatch> {
        let metrics = ServiceMetrics::fetch();
        let start = Instant::now();
        let snapshot = self.store.pin();
        let advice = self.advisor.advise_many(snapshot.kb(), profiles)?;
        if let Some(m) = &metrics {
            m.queries.add(profiles.len() as u64);
            m.seconds.record(start.elapsed().as_secs_f64());
        }
        Ok(ServedBatch {
            advice,
            generation: snapshot.generation(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::PerfMetrics;
    use openbi_faults::{FaultPlan, FaultRule};

    fn record(dataset: &str, algorithm: &str, acc: f64) -> ExperimentRecord {
        ExperimentRecord {
            dataset: dataset.into(),
            degradations: vec![],
            profile: QualityProfile::default(),
            algorithm: algorithm.into(),
            metrics: PerfMetrics {
                accuracy: acc,
                macro_f1: acc,
                minority_f1: acc,
                kappa: acc,
                train_ms: 1.0,
                model_size: 5.0,
            },
            seed: 1,
        }
    }

    #[test]
    fn empty_batches_do_not_publish() {
        let store = SnapshotKnowledgeBase::default();
        store.add_batch(vec![]);
        assert_eq!(store.generation(), 0);
        assert_eq!(store.pending_len(), 0);
        assert!(store.is_empty());
    }

    #[test]
    fn add_batch_publishes_a_new_generation() {
        let store = SnapshotKnowledgeBase::default();
        store.add_batch(vec![record("d1", "a", 0.5), record("d1", "b", 0.6)]);
        assert_eq!(store.generation(), 1);
        assert_eq!(store.pending_len(), 0);
        let pinned = store.pin();
        assert_eq!(pinned.generation(), 1);
        assert_eq!(pinned.len(), 2);
        assert_eq!(pinned.algorithms(), vec!["a", "b"]);
    }

    #[test]
    fn pinned_snapshots_are_immutable_across_publishes() {
        let store = SnapshotKnowledgeBase::default();
        store.add(record("d1", "a", 0.5));
        let pinned = store.pin();
        store.add(record("d2", "b", 0.6));
        store.add(record("d3", "c", 0.7));
        assert_eq!(pinned.generation(), 1);
        assert_eq!(pinned.len(), 1, "a pin must never see later publishes");
        assert_eq!(store.pin().len(), 3);
        assert_eq!(store.generation(), 3);
    }

    #[test]
    fn snapshot_contents_match_a_sequential_store() {
        let store = SnapshotKnowledgeBase::default();
        let mut sequential = KnowledgeBase::new();
        for i in 0..10 {
            let r = record(&format!("d{}", i % 3), "a", i as f64 / 10.0);
            sequential.add(r.clone());
            store.add(r);
        }
        store.flush().unwrap();
        assert_eq!(store.pin().records(), sequential.records());
        assert_eq!(
            store.pin().to_jsonl().unwrap(),
            sequential.to_jsonl().unwrap()
        );
    }

    #[test]
    fn flush_is_a_no_op_when_nothing_is_pending() {
        let store = SnapshotKnowledgeBase::default();
        assert_eq!(store.flush().unwrap(), 0);
        store.add(record("d", "a", 0.5));
        assert_eq!(store.flush().unwrap(), 1, "already published by add");
    }

    #[test]
    fn injected_publish_fault_preserves_pending_and_serving_state() {
        let plan = Arc::new(FaultPlan::new(7).with(FaultRule::error(PUBLISH_FAULT_POINT)));
        let store = SnapshotKnowledgeBase::default().with_fault_plan(plan);
        let pinned = store.pin();

        // The fire-and-forget path degrades: records stay pending.
        store.add_batch(vec![record("d1", "a", 0.5)]);
        assert_eq!(store.generation(), 0, "faulted publish must not swap");
        assert_eq!(store.pending_len(), 1, "faulted batch must stay queued");
        assert_eq!(pinned.len(), 0, "pinned snapshot untouched");

        // flush() surfaces the second attempt… which the times(1)
        // budget no longer vetoes, so the batch lands.
        let generation = store.flush().unwrap();
        assert_eq!(generation, 1);
        assert_eq!(store.pin().len(), 1);
        assert_eq!(store.pending_len(), 0);
    }

    #[test]
    fn unbudgeted_publish_fault_surfaces_from_flush() {
        let plan =
            Arc::new(FaultPlan::new(7).with(FaultRule::error(PUBLISH_FAULT_POINT).times(u32::MAX)));
        let store = SnapshotKnowledgeBase::default().with_fault_plan(plan);
        store.add_batch(vec![record("d1", "a", 0.5)]);
        let err = store.flush().expect_err("every attempt is vetoed");
        assert!(err.to_string().contains("injected fault"), "{err}");
        assert!(matches!(err, KbError::Publish(_)));
        assert_eq!(store.pending_len(), 1, "records are never dropped");
        assert_eq!(store.generation(), 0);
    }

    #[test]
    fn faulted_batch_restores_in_append_order() {
        let plan = Arc::new(FaultPlan::new(7).with(FaultRule::error(PUBLISH_FAULT_POINT)));
        let store = SnapshotKnowledgeBase::default().with_fault_plan(plan);
        store.add_batch(vec![record("d1", "a", 0.1)]); // faulted, stays pending
        {
            // Enqueue directly (publish lock free, but we bypass the
            // opportunistic publish to model a coalesced batch).
            store.pending.lock().push(record("d2", "b", 0.2));
        }
        store.flush().unwrap();
        let pinned = store.pin();
        assert_eq!(pinned.records()[0].dataset, "d1");
        assert_eq!(pinned.records()[1].dataset, "d2");
    }

    #[test]
    fn capacity_floor_is_one_and_backpressure_drains() {
        // capacity 0 is clamped to 1, so every add_batch publishes
        // through the backpressure path and nothing accumulates.
        let store = SnapshotKnowledgeBase::with_capacity(KnowledgeBase::new(), 0);
        for i in 0..5 {
            store.add_batch(vec![record("d", "a", i as f64 / 5.0)]);
        }
        assert_eq!(store.pending_len(), 0);
        assert_eq!(store.pin().len(), 5);
    }

    #[test]
    fn concurrent_appends_coalesce_into_fewer_generations() {
        let store = SnapshotKnowledgeBase::default();
        std::thread::scope(|s| {
            for t in 0..4 {
                let store = &store;
                s.spawn(move || {
                    for i in 0..25 {
                        store.add_batch(vec![record(&format!("d{t}"), "a", i as f64 / 25.0)]);
                    }
                });
            }
        });
        store.flush().unwrap();
        let pinned = store.pin();
        assert_eq!(pinned.len(), 100);
        assert_eq!(pinned.datasets().len(), 4);
        assert!(
            store.generation() <= 100,
            "coalescing can only reduce the publish count"
        );
    }

    #[test]
    fn service_pins_one_generation_per_batch() {
        let store = Arc::new(SnapshotKnowledgeBase::default());
        store.add_batch(vec![record("d1", "a", 0.9), record("d1", "b", 0.4)]);
        let service = AdvisorService::new(Advisor::default(), Arc::clone(&store));
        let profiles = vec![QualityProfile::default(); 3];
        let batch = service.advise_many(&profiles).unwrap();
        assert_eq!(batch.advice.len(), 3);
        assert_eq!(batch.generation, 1);
        for advice in &batch.advice {
            assert_eq!(advice.best(), "a");
        }
        // advise() agrees with the plain Advisor on the pinned KB.
        let served = service.advise(&QualityProfile::default()).unwrap();
        let direct = Advisor::default()
            .advise(store.pin().kb(), &QualityProfile::default())
            .unwrap();
        assert_eq!(served.advice, direct);
        assert_eq!(served.generation, 1);
        assert_eq!(service.advisor().neighbors, Advisor::default().neighbors);
        assert_eq!(service.store().generation(), 1);
    }

    #[test]
    fn service_errors_on_an_empty_store() {
        let service = AdvisorService::new(
            Advisor::default(),
            Arc::new(SnapshotKnowledgeBase::default()),
        );
        assert!(matches!(
            service.advise(&QualityProfile::default()),
            Err(KbError::EmptyKnowledgeBase)
        ));
    }

    /// Readers hammering `pin` while a writer publishes must always see
    /// monotone generations whose record count matches the generation
    /// (each publish appends exactly one record here).
    #[test]
    fn concurrent_pins_see_monotone_consistent_generations() {
        const PUBLISHES: u64 = 200;
        let store = SnapshotKnowledgeBase::default();
        std::thread::scope(|s| {
            for _ in 0..3 {
                let store = &store;
                s.spawn(move || {
                    let mut last = 0u64;
                    loop {
                        let pinned = store.pin();
                        assert_eq!(
                            pinned.len() as u64,
                            pinned.generation(),
                            "every generation holds exactly its generation-count of records"
                        );
                        assert!(pinned.generation() >= last, "generations are monotone");
                        last = pinned.generation();
                        if last == PUBLISHES {
                            return;
                        }
                    }
                });
            }
            let store = &store;
            s.spawn(move || {
                for i in 0..PUBLISHES {
                    // flush() (not add_batch) so exactly one record
                    // lands per generation even under queue races.
                    store.pending.lock().push(record("d", "a", i as f64));
                    store.flush().unwrap();
                }
            });
        });
        assert_eq!(store.generation(), PUBLISHES);
    }

    fn durable_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::AtomicUsize;
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "openbi-serving-durable-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Relaxed)
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn durable_store_logs_before_it_serves_and_recovers_identically() {
        let dir = durable_dir("round-trip");
        {
            let (store, recovery) =
                SnapshotKnowledgeBase::open_durable(DurableOptions::new(&dir)).unwrap();
            assert!(store.is_durable());
            assert_eq!(recovery.frames_replayed, 0);
            store.add_batch(vec![record("d1", "a", 0.5), record("d1", "b", 0.6)]);
            store.add_batch(vec![record("d2", "a", 0.7)]);
            store.flush().unwrap();
            assert_eq!(store.len(), 3);
        }
        let (reopened, recovery) =
            SnapshotKnowledgeBase::open_durable(DurableOptions::new(&dir)).unwrap();
        assert_eq!(recovery.frames_replayed, 3);
        assert_eq!(
            reopened.generation(),
            0,
            "recovered contents are generation 0"
        );
        let pinned = reopened.pin();
        assert_eq!(pinned.len(), 3);
        assert_eq!(pinned.algorithms(), vec!["a", "b"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_failure_keeps_the_batch_pending_and_readers_unharmed() {
        let dir = durable_dir("wal-fault");
        let plan = Arc::new(
            FaultPlan::new(7).with(FaultRule::error(crate::wal::SYNC_FAULT_POINT).times(1)),
        );
        let (store, _) =
            SnapshotKnowledgeBase::open_durable(DurableOptions::new(&dir).fault_plan(plan))
                .unwrap();
        store.pending.lock().push(record("d", "a", 0.5));
        let err = store.flush();
        assert!(matches!(err, Err(KbError::Publish(_))), "{err:?}");
        assert_eq!(store.wal_failures(), 1);
        assert!(store.durability_degraded());
        assert_eq!(store.generation(), 0, "nothing was served");
        assert_eq!(store.pending_len(), 1, "the batch is preserved");
        // The injected fault was times=1: the retry lands.
        store.flush().unwrap();
        assert_eq!(store.pin().len(), 1);
        drop(store);
        let (kb, _) = crate::wal::recover(&dir).unwrap();
        assert_eq!(kb.len(), 1, "exactly one copy reached the log");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn automatic_checkpoints_compact_while_serving() {
        let dir = durable_dir("auto-checkpoint");
        let (store, _) =
            SnapshotKnowledgeBase::open_durable(DurableOptions::new(&dir).checkpoint_every(4))
                .unwrap();
        for i in 0..10 {
            store.add(record(&format!("d{i}"), "a", 0.5));
        }
        store.flush().unwrap();
        assert_eq!(store.checkpoint_failures(), 0);
        assert!(!store.durability_degraded());
        drop(store);
        let (kb, recovery) = crate::wal::recover(&dir).unwrap();
        assert_eq!(kb.len(), 10);
        assert!(
            recovery.checkpoint_watermark.is_some(),
            "at least one automatic checkpoint ran: {recovery:?}"
        );
        assert!(recovery.checkpoint_records >= 4, "{recovery:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn explicit_checkpoint_flushes_then_compacts() {
        let dir = durable_dir("explicit-checkpoint");
        let (store, _) = SnapshotKnowledgeBase::open_durable(DurableOptions::new(&dir)).unwrap();
        store.pending.lock().push(record("d", "a", 0.5));
        let report = store.checkpoint().unwrap().expect("durable store");
        assert_eq!(report.records, 1, "pending records are flushed first");
        drop(store);
        let (kb, recovery) = crate::wal::recover(&dir).unwrap();
        assert_eq!(kb.len(), 1);
        assert_eq!(recovery.checkpoint_watermark, Some(report.watermark));
        assert_eq!(
            recovery.frames_replayed, 0,
            "everything lives in the checkpoint"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_durable_store_answers_the_durable_accessors() {
        let store = SnapshotKnowledgeBase::default();
        assert!(!store.is_durable());
        assert_eq!(store.checkpoint().unwrap(), None);
        store.sync_wal().unwrap();
        assert_eq!(store.wal_failures(), 0);
        assert!(!store.durability_degraded());
    }
}
