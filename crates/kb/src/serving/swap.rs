//! The lock-free snapshot cell under the serving store (DESIGN.md §13).
//!
//! [`SwapCell<T>`] holds one current `Arc<T>` plus its generation
//! number. Readers obtain `(generation, Arc<T>)` pairs without ever
//! blocking on a lock; a writer publishes a replacement with a single
//! pointer swap and reclaims the previous value once no reader can
//! still observe it.
//!
//! ## Algorithm
//!
//! The cell keeps **two slots**, each a `(reader count, node pointer)`
//! pair, plus a `current` slot index. At any instant one slot is
//! *serving* (readers enter it) and the other is *retired* (the
//! previous generation drains out of it). A publish:
//!
//! 1. takes the writer mutex (publishers are serialized; readers never
//!    touch this lock),
//! 2. waits for the retired slot's reader count to reach zero — the
//!    *grace period*; readers hold the count only for the nanoseconds
//!    it takes to clone an `Arc`, never across user code,
//! 3. swaps the retired slot's pointer to the new node and frees the
//!    node that drained out,
//! 4. flips `current` to the refreshed slot.
//!
//! A reader increments the current slot's count, **re-validates** that
//! the slot is still current, and only then dereferences the pointer.
//! A reader that loses the race (the writer flipped in between)
//! decrements and retries; it never touches the pointer of a slot it
//! did not validate. Because a slot must be retired for one full
//! publish *and* drain to zero readers before its pointer is touched
//! again, a validated reader's pointer is stable until that reader
//! releases its count — the writer's step 2 is exactly the wait for
//! such readers.
//!
//! All atomics use `SeqCst`: the reader's increment/validate pair and
//! the writer's flip/count-check pair form a store-buffering pattern
//! that weaker orderings would not make safe, and publishes are rare
//! enough (they clone a whole [`KnowledgeBase`]) that the fence cost is
//! noise.
//!
//! This is the one module in `openbi-kb` that uses `unsafe`: safe Rust
//! cannot express "clone the `Arc` behind this pointer while a
//! concurrent writer may be installing a replacement" without either a
//! read lock (what [`SharedKnowledgeBase`] already does) or an external
//! epoch/hazard-pointer dependency. The unsafe surface is three
//! `Box`/pointer conversions, each with its invariant argued inline.
//!
//! [`KnowledgeBase`]: crate::KnowledgeBase
//! [`SharedKnowledgeBase`]: crate::SharedKnowledgeBase

#![allow(unsafe_code)]

use std::marker::PhantomData;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::Arc;
use std::sync::Mutex;

/// One published value: the generation number and the shared payload.
struct Node<T> {
    generation: u64,
    value: Arc<T>,
}

/// One of the cell's two slots.
struct Slot<T> {
    /// Readers currently between "entered this slot" and "cloned the
    /// `Arc` out of it". The writer may only touch `node` while this is
    /// zero *and* the slot is retired.
    readers: AtomicUsize,
    /// The slot's published node, or null before the slot's first use.
    node: AtomicPtr<Node<T>>,
}

impl<T> Slot<T> {
    fn empty() -> Self {
        Slot {
            readers: AtomicUsize::new(0),
            node: AtomicPtr::new(std::ptr::null_mut()),
        }
    }
}

/// A wait-free-for-readers, single-pointer-swap publication cell.
///
/// See the module docs for the algorithm and safety argument. Readers
/// call [`SwapCell::load`]; writers call [`SwapCell::publish`] (which
/// serializes writers internally). The generation number starts at 0
/// for the initial value and increments by exactly 1 per publish.
pub(crate) struct SwapCell<T> {
    slots: [Slot<T>; 2],
    /// Index of the serving slot (0 or 1).
    current: AtomicUsize,
    /// Mirror of the serving node's generation, for cheap
    /// [`SwapCell::generation`] reads.
    generation: AtomicU64,
    /// Serializes publishers. Readers never take this lock.
    writer: Mutex<()>,
    /// The cell owns `Node<T>` boxes (and through them `Arc<T>`s) via
    /// raw pointers, which auto-traits cannot see; this marker restores
    /// the correct `Send`/`Sync` bounds (`T: Send + Sync`).
    _owns: PhantomData<Arc<T>>,
}

impl<T> SwapCell<T> {
    /// A cell serving `initial` as generation 0.
    pub(crate) fn new(initial: Arc<T>) -> Self {
        let node = Box::into_raw(Box::new(Node {
            generation: 0,
            value: initial,
        }));
        let cell = SwapCell {
            slots: [Slot::empty(), Slot::empty()],
            current: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
            writer: Mutex::new(()),
            _owns: PhantomData,
        };
        cell.slots[0].node.store(node, SeqCst);
        cell
    }

    /// The current generation number (0 until the first publish).
    pub(crate) fn generation(&self) -> u64 {
        self.generation.load(SeqCst)
    }

    /// Lock-free read: the current `(generation, value)` pair.
    ///
    /// Never blocks; retries only while a concurrent publish flips the
    /// serving slot (publishes clone a whole knowledge base, so flips
    /// are orders of magnitude rarer than reads).
    pub(crate) fn load(&self) -> (u64, Arc<T>) {
        loop {
            let i = self.current.load(SeqCst);
            self.slots[i].readers.fetch_add(1, SeqCst);
            if self.current.load(SeqCst) == i {
                // SAFETY: we hold a reader count on slot `i`, taken
                // *before* re-validating that `i` is still the serving
                // slot. A writer mutates a slot's node only after the
                // slot has been retired (current != i) and its reader
                // count has drained to zero — our count blocks that
                // drain, and the validation proves the slot was not
                // already retired-and-refreshed when we entered. The
                // serving slot's node is never null: it was set in
                // `new` or by the publish that flipped `current` here.
                let node = unsafe { &*self.slots[i].node.load(SeqCst) };
                let out = (node.generation, Arc::clone(&node.value));
                self.slots[i].readers.fetch_sub(1, SeqCst);
                return out;
            }
            // Lost the race with a publish: leave the slot untouched.
            self.slots[i].readers.fetch_sub(1, SeqCst);
            std::hint::spin_loop();
        }
    }

    /// Publish `value` as the next generation; returns that generation.
    ///
    /// Serializes with other publishers; readers are never blocked.
    /// Readers that pinned the previous generation keep their `Arc`
    /// alive independently — the cell only frees a node once no slot
    /// references it and its last in-flight reader has left.
    pub(crate) fn publish(&self, value: Arc<T>) -> u64 {
        let _writer = self.writer.lock().expect("swap-cell writer lock");
        let serving = self.current.load(SeqCst);
        let retired = 1 - serving;
        // Grace period: readers that entered `retired` before it was
        // retired (or that entered on a stale `current` read and are
        // about to fail validation) must leave before its node moves.
        // Guard windows are a few instructions long, so this spin is
        // bounded by nanoseconds per reader.
        while self.slots[retired].readers.load(SeqCst) != 0 {
            std::thread::yield_now();
        }
        let generation = self.generation.load(SeqCst) + 1;
        let node = Box::into_raw(Box::new(Node { generation, value }));
        let drained = self.slots[retired].node.swap(node, SeqCst);
        self.current.store(retired, SeqCst);
        self.generation.store(generation, SeqCst);
        if !drained.is_null() {
            // SAFETY: `drained` was the retired slot's node. The slot
            // was retired by the *previous* publish's flip, no reader
            // validated it since (validation requires current == slot),
            // and the grace period above drained every reader that
            // entered before that flip. The node pointer left the slot
            // in the swap, so nothing can reach it again.
            unsafe { drop(Box::from_raw(drained)) };
        }
        generation
    }
}

impl<T> Drop for SwapCell<T> {
    fn drop(&mut self) {
        for slot in &self.slots {
            let node = slot.node.swap(std::ptr::null_mut(), SeqCst);
            if !node.is_null() {
                // SAFETY: `&mut self` proves no reader or writer is
                // active; both slots' nodes are exclusively ours.
                unsafe { drop(Box::from_raw(node)) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_value_is_generation_zero() {
        let cell = SwapCell::new(Arc::new(7u64));
        assert_eq!(cell.generation(), 0);
        let (generation, value) = cell.load();
        assert_eq!(generation, 0);
        assert_eq!(*value, 7);
    }

    #[test]
    fn publish_increments_generation_and_swaps_value() {
        let cell = SwapCell::new(Arc::new(0u64));
        for expected in 1..=100u64 {
            assert_eq!(cell.publish(Arc::new(expected)), expected);
            let (generation, value) = cell.load();
            assert_eq!(generation, expected);
            assert_eq!(*value, expected);
        }
        assert_eq!(cell.generation(), 100);
    }

    #[test]
    fn pinned_arc_survives_later_publishes() {
        let cell = SwapCell::new(Arc::new(vec![1u64, 2, 3]));
        let (generation, pinned) = cell.load();
        for i in 0..10u64 {
            cell.publish(Arc::new(vec![i]));
        }
        assert_eq!(generation, 0);
        assert_eq!(*pinned, vec![1, 2, 3]);
        assert_eq!(cell.load().1.as_slice(), &[9]);
    }

    #[test]
    fn drop_frees_both_slots_without_leaking() {
        // Exercised under the reader/writer stress below too; here we
        // just prove dropping a twice-published cell is sound (both
        // slots hold nodes).
        let payload = Arc::new(1u64);
        let cell = SwapCell::new(Arc::clone(&payload));
        cell.publish(Arc::new(2));
        cell.publish(Arc::new(3));
        drop(cell);
        assert_eq!(Arc::strong_count(&payload), 1, "initial node was freed");
    }

    /// The concurrency smoke for the unsafe core: hammer readers while
    /// a writer publishes, asserting every read observes a coherent
    /// (generation, payload) pair — the payload encodes its generation,
    /// so a torn or reclaimed read cannot go unnoticed.
    #[test]
    fn concurrent_readers_always_observe_coherent_pairs() {
        const PUBLISHES: u64 = 400;
        const READERS: usize = 4;
        let cell = SwapCell::new(Arc::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..READERS {
                s.spawn(|| {
                    let mut last = 0u64;
                    loop {
                        let (generation, value) = cell.load();
                        assert_eq!(generation, *value, "payload must match generation");
                        assert!(generation >= last, "generations must be monotone");
                        last = generation;
                        if generation == PUBLISHES {
                            return;
                        }
                    }
                });
            }
            s.spawn(|| {
                for g in 1..=PUBLISHES {
                    assert_eq!(cell.publish(Arc::new(g)), g);
                }
            });
        });
        assert_eq!(cell.generation(), PUBLISHES);
    }

    /// Publish-while-recovering: readers keep serving the pre-crash
    /// snapshot while a crash-recovered knowledge base is installed,
    /// then atomically see the recovered one — generations stay
    /// monotone and no read is torn between the two states.
    #[test]
    fn recovered_kb_installs_under_concurrent_readers_without_torn_reads() {
        use crate::record::{ExperimentRecord, PerfMetrics};
        use crate::store::KnowledgeBase;
        use crate::wal::{recover, WalOptions, WalWriter};
        use openbi_quality::QualityProfile;

        let record = |seed: u64| ExperimentRecord {
            dataset: "recovered".into(),
            degradations: vec![],
            profile: QualityProfile::default(),
            algorithm: "a".into(),
            metrics: PerfMetrics {
                accuracy: 0.9,
                macro_f1: 0.9,
                minority_f1: 0.9,
                kappa: 0.9,
                train_ms: 1.0,
                model_size: 1.0,
            },
            seed,
        };
        const RECOVERED_RECORDS: usize = 7;
        let dir = std::env::temp_dir().join(format!("openbi-swap-recovery-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        {
            let mut writer = WalWriter::open(WalOptions::new(&dir)).unwrap();
            let batch: Vec<_> = (0..RECOVERED_RECORDS as u64).map(record).collect();
            writer.append_batch(&batch).unwrap();
        }

        // The "old" serving state from before the crash: one record.
        let mut old = KnowledgeBase::new();
        old.add(record(1_000));
        let old_len = old.len();
        let cell = SwapCell::new(Arc::new(old));

        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    let mut last = 0u64;
                    loop {
                        let (generation, kb) = cell.load();
                        // Coherent pair: generation 0 is the old KB,
                        // generation 1 the recovered one — anything
                        // else is a torn read.
                        let expected = match generation {
                            0 => old_len,
                            1 => RECOVERED_RECORDS,
                            g => panic!("impossible generation {g}"),
                        };
                        assert_eq!(kb.len(), expected, "torn read at generation {generation}");
                        assert!(generation >= last, "generations must be monotone");
                        last = generation;
                        if generation == 1 {
                            return;
                        }
                    }
                });
            }
            s.spawn(|| {
                // Recovery runs while readers hammer the old snapshot;
                // the swap installs it in one publish.
                let (recovered, report) = recover(&dir).unwrap();
                assert_eq!(report.frames_replayed, RECOVERED_RECORDS as u64);
                assert_eq!(cell.publish(Arc::new(recovered)), 1);
            });
        });
        let (generation, kb) = cell.load();
        assert_eq!(generation, 1);
        assert_eq!(kb.len(), RECOVERED_RECORDS);
        std::fs::remove_dir_all(&dir).ok();
    }
}
