//! The DQ4DM knowledge base: an append-only store of experiment records
//! with JSON-lines persistence and a thread-safe shared wrapper for
//! parallel experiment runners.

use crate::error::{KbError, Result};
use crate::record::ExperimentRecord;
use parking_lot::RwLock;
use std::sync::Arc;

/// An in-memory knowledge base.
#[derive(Debug, Clone, Default)]
pub struct KnowledgeBase {
    records: Vec<ExperimentRecord>,
}

impl KnowledgeBase {
    /// Create an empty knowledge base.
    pub fn new() -> Self {
        KnowledgeBase::default()
    }

    /// Append a record.
    pub fn add(&mut self, record: ExperimentRecord) {
        self.records.push(record);
    }

    /// Append many records at once.
    pub fn add_batch(&mut self, records: impl IntoIterator<Item = ExperimentRecord>) {
        self.records.extend(records);
    }

    /// All records.
    pub fn records(&self) -> &[ExperimentRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True iff the base holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Distinct algorithm names, in first-seen order.
    pub fn algorithms(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for r in &self.records {
            if !out.contains(&r.algorithm) {
                out.push(r.algorithm.clone());
            }
        }
        out
    }

    /// Distinct dataset names, in first-seen order.
    pub fn datasets(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for r in &self.records {
            if !out.contains(&r.dataset) {
                out.push(r.dataset.clone());
            }
        }
        out
    }

    /// Records matching a predicate.
    pub fn filter(&self, pred: impl Fn(&ExperimentRecord) -> bool) -> Vec<&ExperimentRecord> {
        self.records.iter().filter(|r| pred(r)).collect()
    }

    /// A copy without any record from the named dataset — the
    /// leave-one-dataset-out view used by advisor evaluation.
    pub fn without_dataset(&self, dataset: &str) -> KnowledgeBase {
        KnowledgeBase {
            records: self
                .records
                .iter()
                .filter(|r| r.dataset != dataset)
                .cloned()
                .collect(),
        }
    }

    /// Serialize as JSON lines (one record per line).
    pub fn to_jsonl(&self) -> Result<String> {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&serde_json::to_string(r).map_err(|e| KbError::Serde(e.to_string()))?);
            out.push('\n');
        }
        Ok(out)
    }

    /// Parse from JSON lines.
    pub fn from_jsonl(text: &str) -> Result<Self> {
        let mut kb = KnowledgeBase::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let record: ExperimentRecord = serde_json::from_str(line)
                .map_err(|e| KbError::Serde(format!("line {}: {e}", i + 1)))?;
            kb.add(record);
        }
        Ok(kb)
    }

    /// Persist to a JSON-lines file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        std::fs::write(path, self.to_jsonl()?).map_err(|e| KbError::Io(e.to_string()))
    }

    /// Load from a JSON-lines file.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let text = std::fs::read_to_string(path).map_err(|e| KbError::Io(e.to_string()))?;
        Self::from_jsonl(&text)
    }
}

/// A cheaply clonable, thread-safe knowledge base handle for concurrent
/// experiment runners.
#[derive(Debug, Clone, Default)]
pub struct SharedKnowledgeBase {
    inner: Arc<RwLock<KnowledgeBase>>,
}

impl SharedKnowledgeBase {
    /// Wrap a knowledge base.
    pub fn new(kb: KnowledgeBase) -> Self {
        SharedKnowledgeBase {
            inner: Arc::new(RwLock::new(kb)),
        }
    }

    /// Append a record.
    pub fn add(&self, record: ExperimentRecord) {
        self.inner.write().add(record);
    }

    /// Append many records under a single write-lock acquisition — the
    /// per-worker flush path of the parallel experiment executor, which
    /// would otherwise contend on the lock once per record.
    pub fn add_batch(&self, records: Vec<ExperimentRecord>) {
        if records.is_empty() {
            return;
        }
        self.inner.write().add_batch(records);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Snapshot the current contents.
    pub fn snapshot(&self) -> KnowledgeBase {
        self.inner.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::PerfMetrics;
    use openbi_quality::QualityProfile;

    fn record(dataset: &str, algorithm: &str, acc: f64) -> ExperimentRecord {
        ExperimentRecord {
            dataset: dataset.into(),
            degradations: vec![],
            profile: QualityProfile::default(),
            algorithm: algorithm.into(),
            metrics: PerfMetrics {
                accuracy: acc,
                macro_f1: acc,
                minority_f1: acc,
                kappa: acc,
                train_ms: 1.0,
                model_size: 5.0,
            },
            seed: 1,
        }
    }

    #[test]
    fn add_query_filter() {
        let mut kb = KnowledgeBase::new();
        kb.add(record("d1", "NaiveBayes", 0.9));
        kb.add(record("d1", "kNN", 0.8));
        kb.add(record("d2", "NaiveBayes", 0.7));
        assert_eq!(kb.len(), 3);
        assert_eq!(kb.algorithms(), vec!["NaiveBayes", "kNN"]);
        assert_eq!(kb.datasets(), vec!["d1", "d2"]);
        assert_eq!(kb.filter(|r| r.dataset == "d1").len(), 2);
        assert_eq!(kb.without_dataset("d1").len(), 1);
    }

    #[test]
    fn jsonl_round_trip() {
        let mut kb = KnowledgeBase::new();
        kb.add(record("d1", "a", 0.5));
        kb.add(record("d2", "b", 0.6));
        let text = kb.to_jsonl().unwrap();
        assert_eq!(text.lines().count(), 2);
        let back = KnowledgeBase::from_jsonl(&text).unwrap();
        assert_eq!(back.records(), kb.records());
    }

    #[test]
    fn jsonl_skips_blank_lines_rejects_garbage() {
        let mut kb = KnowledgeBase::new();
        kb.add(record("d", "a", 0.5));
        let text = format!("\n{}\n\n", kb.to_jsonl().unwrap());
        assert_eq!(KnowledgeBase::from_jsonl(&text).unwrap().len(), 1);
        assert!(KnowledgeBase::from_jsonl("not json\n").is_err());
    }

    #[test]
    fn file_round_trip() {
        let mut kb = KnowledgeBase::new();
        kb.add(record("d", "a", 0.5));
        let dir = std::env::temp_dir().join("openbi-kb-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kb.jsonl");
        kb.save(&path).unwrap();
        assert_eq!(KnowledgeBase::load(&path).unwrap().len(), 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn batched_insert_matches_single_inserts() {
        let mut one_by_one = KnowledgeBase::new();
        one_by_one.add(record("d1", "a", 0.1));
        one_by_one.add(record("d1", "b", 0.2));
        let mut batched = KnowledgeBase::new();
        batched.add_batch(vec![record("d1", "a", 0.1), record("d1", "b", 0.2)]);
        assert_eq!(one_by_one.records(), batched.records());

        let shared = SharedKnowledgeBase::default();
        shared.add_batch(vec![]);
        assert!(shared.is_empty());
        shared.add_batch(vec![record("d2", "a", 0.3), record("d2", "b", 0.4)]);
        assert_eq!(shared.len(), 2);
    }

    #[test]
    fn shared_kb_accumulates_from_threads() {
        let shared = SharedKnowledgeBase::default();
        std::thread::scope(|s| {
            for t in 0..4 {
                let shared = shared.clone();
                s.spawn(move || {
                    for i in 0..25 {
                        shared.add(record(&format!("d{t}"), "a", i as f64 / 25.0));
                    }
                });
            }
        });
        assert_eq!(shared.len(), 100);
        assert_eq!(shared.snapshot().datasets().len(), 4);
    }
}
