//! The DQ4DM knowledge base: an append-only store of experiment records
//! with JSON-lines persistence, per-algorithm / per-dataset record
//! indices for the advisor's serving path, and a thread-safe shared
//! wrapper for parallel experiment runners.

use crate::error::{KbError, Result};
use crate::record::ExperimentRecord;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// An in-memory knowledge base.
///
/// Alongside the record vector it maintains two secondary indices —
/// algorithm name → record positions and dataset name → record
/// positions — kept up to date by every mutation path ([`add`],
/// [`add_batch`], [`from_jsonl`]). The indices turn the advisor's
/// per-algorithm candidate scan from "filter the whole store per
/// algorithm" into a direct slice walk, and make `algorithms()` /
/// `datasets()` O(1) per name instead of the former O(n²)
/// `Vec::contains` scan.
///
/// [`add`]: KnowledgeBase::add
/// [`add_batch`]: KnowledgeBase::add_batch
/// [`from_jsonl`]: KnowledgeBase::from_jsonl
#[derive(Debug, Clone, Default)]
pub struct KnowledgeBase {
    records: Vec<ExperimentRecord>,
    /// Distinct algorithm names, first-seen order.
    algorithm_order: Vec<String>,
    /// Algorithm name → positions in `records`, ascending.
    algorithm_index: HashMap<String, Vec<usize>>,
    /// Distinct dataset names, first-seen order.
    dataset_order: Vec<String>,
    /// Dataset name → positions in `records`, ascending.
    dataset_index: HashMap<String, Vec<usize>>,
}

impl KnowledgeBase {
    /// Create an empty knowledge base.
    ///
    /// # Examples
    ///
    /// ```
    /// use openbi_kb::KnowledgeBase;
    ///
    /// let kb = KnowledgeBase::new();
    /// assert!(kb.is_empty());
    /// assert_eq!(kb.len(), 0);
    /// ```
    pub fn new() -> Self {
        KnowledgeBase::default()
    }

    /// Append a record, updating the algorithm and dataset indices.
    pub fn add(&mut self, record: ExperimentRecord) {
        let position = self.records.len();
        match self.algorithm_index.get_mut(&record.algorithm) {
            Some(positions) => positions.push(position),
            None => {
                self.algorithm_order.push(record.algorithm.clone());
                self.algorithm_index
                    .insert(record.algorithm.clone(), vec![position]);
            }
        }
        match self.dataset_index.get_mut(&record.dataset) {
            Some(positions) => positions.push(position),
            None => {
                self.dataset_order.push(record.dataset.clone());
                self.dataset_index
                    .insert(record.dataset.clone(), vec![position]);
            }
        }
        self.records.push(record);
    }

    /// Append many records at once.
    ///
    /// # Examples
    ///
    /// ```
    /// use openbi_kb::{ExperimentRecord, KnowledgeBase};
    ///
    /// let mut kb = KnowledgeBase::new();
    /// kb.add_batch(vec![
    ///     ExperimentRecord {
    ///         algorithm: "NaiveBayes".into(),
    ///         ..ExperimentRecord::default()
    ///     },
    ///     ExperimentRecord {
    ///         algorithm: "kNN".into(),
    ///         ..ExperimentRecord::default()
    ///     },
    /// ]);
    /// assert_eq!(kb.len(), 2);
    /// assert_eq!(kb.algorithms(), vec!["NaiveBayes", "kNN"]);
    /// ```
    pub fn add_batch(&mut self, records: impl IntoIterator<Item = ExperimentRecord>) {
        for record in records {
            self.add(record);
        }
    }

    /// All records.
    pub fn records(&self) -> &[ExperimentRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True iff the base holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Distinct algorithm names, in first-seen order.
    pub fn algorithms(&self) -> Vec<String> {
        self.algorithm_order.clone()
    }

    /// Distinct algorithm names, in first-seen order, without cloning.
    pub fn algorithm_names(&self) -> &[String] {
        &self.algorithm_order
    }

    /// Distinct dataset names, in first-seen order.
    pub fn datasets(&self) -> Vec<String> {
        self.dataset_order.clone()
    }

    /// Distinct dataset names, in first-seen order, without cloning.
    pub fn dataset_names(&self) -> &[String] {
        &self.dataset_order
    }

    /// Record positions for one algorithm, ascending (empty for unknown
    /// names).
    pub fn algorithm_record_indices(&self, algorithm: &str) -> &[usize] {
        self.algorithm_index
            .get(algorithm)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Record positions for one dataset, ascending (empty for unknown
    /// names).
    pub fn dataset_record_indices(&self, dataset: &str) -> &[usize] {
        self.dataset_index
            .get(dataset)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All records for one algorithm, in insertion order.
    pub fn algorithm_records<'a>(
        &'a self,
        algorithm: &str,
    ) -> impl Iterator<Item = &'a ExperimentRecord> + 'a {
        self.algorithm_record_indices(algorithm)
            .iter()
            .map(move |&i| &self.records[i])
    }

    /// All records for one dataset, in insertion order.
    pub fn dataset_records<'a>(
        &'a self,
        dataset: &str,
    ) -> impl Iterator<Item = &'a ExperimentRecord> + 'a {
        self.dataset_record_indices(dataset)
            .iter()
            .map(move |&i| &self.records[i])
    }

    /// Records matching a predicate.
    pub fn filter(&self, pred: impl Fn(&ExperimentRecord) -> bool) -> Vec<&ExperimentRecord> {
        self.records.iter().filter(|r| pred(r)).collect()
    }

    /// A borrowed view over every record (no exclusions).
    pub fn view(&self) -> KbView<'_> {
        KbView {
            kb: self,
            excluded_dataset: None,
        }
    }

    /// A borrowed view that hides every record of the named dataset —
    /// the leave-one-dataset-out evaluation path, without the deep
    /// clone that [`without_dataset`](KnowledgeBase::without_dataset)
    /// pays.
    pub fn view_without_dataset<'a>(&'a self, dataset: &'a str) -> KbView<'a> {
        KbView {
            kb: self,
            excluded_dataset: Some(dataset),
        }
    }

    /// A copy without any record from the named dataset. Prefer
    /// [`view_without_dataset`](KnowledgeBase::view_without_dataset)
    /// when a borrow suffices: this clones every surviving record.
    pub fn without_dataset(&self, dataset: &str) -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        kb.add_batch(
            self.records
                .iter()
                .filter(|r| r.dataset != dataset)
                .cloned(),
        );
        kb
    }

    /// Serialize as JSON lines (one record per line).
    pub fn to_jsonl(&self) -> Result<String> {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&serde_json::to_string(r).map_err(|e| KbError::Serde(e.to_string()))?);
            out.push('\n');
        }
        Ok(out)
    }

    /// Parse from JSON lines.
    ///
    /// A malformed line fails with its 1-based line number *and* a
    /// truncated excerpt of the offending text, so a corrupt entry in
    /// a million-line knowledge base can be found without a hex dump.
    pub fn from_jsonl(text: &str) -> Result<Self> {
        let mut kb = KnowledgeBase::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let record: ExperimentRecord = serde_json::from_str(line)
                .map_err(|e| KbError::Serde(format!("line {}: {e} in {}", i + 1, excerpt(line))))?;
            kb.add(record);
        }
        Ok(kb)
    }

    /// Persist to a JSON-lines file, crash-safely.
    ///
    /// The contents are written to a temporary file in the **same
    /// directory** (`rename` is only atomic within one filesystem),
    /// fsynced, and atomically renamed over the target, after which
    /// the parent directory is fsynced too — so a crash (or injected
    /// fault) at any point can never leave a truncated, half-written,
    /// or lost knowledge base behind: readers see either the old file
    /// or the complete new one. Checks the `kb.store.save` injection
    /// point (keyed by the path) against the process-global fault plan
    /// before touching the filesystem, so chaos runs can simulate a
    /// failing disk.
    ///
    /// # Examples
    ///
    /// ```
    /// use openbi_kb::{ExperimentRecord, KnowledgeBase};
    ///
    /// let mut kb = KnowledgeBase::new();
    /// kb.add(ExperimentRecord::default());
    /// let path = std::env::temp_dir().join("openbi-doc-save.jsonl");
    /// kb.save(&path).unwrap();
    /// assert_eq!(KnowledgeBase::load(&path).unwrap().len(), 1);
    /// # std::fs::remove_file(&path).ok();
    /// ```
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        let path = path.as_ref();
        fire_store_fault("kb.store.save", path)?;
        let text = self.to_jsonl()?;
        // Same-directory temp file: `rename` is atomic only within a
        // filesystem, and the system temp dir may be a different one.
        let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
        let file_name = path.file_name().ok_or_else(|| {
            KbError::Io(format!("save path has no file name: {}", path.display()))
        })?;
        let mut tmp_name = std::ffi::OsString::from(".");
        tmp_name.push(file_name);
        tmp_name.push(format!(".tmp.{}", std::process::id()));
        let tmp = match dir {
            Some(dir) => dir.join(&tmp_name),
            None => std::path::PathBuf::from(&tmp_name),
        };
        let write_and_rename = (|| {
            // `write` + `sync_all` before the rename: without the
            // fsync, a power cut after the rename could surface the
            // *name* pointing at unwritten data blocks.
            let mut file = std::fs::File::create(&tmp)?;
            std::io::Write::write_all(&mut file, text.as_bytes())?;
            file.sync_all()?;
            drop(file);
            std::fs::rename(&tmp, path)?;
            // And the directory fsync makes the rename itself durable.
            crate::wal::segment::sync_dir(dir.unwrap_or(std::path::Path::new(".")))
        })();
        if let Err(e) = write_and_rename {
            // Never leave a stale `.<name>.tmp.<pid>` behind for the
            // next save (or a directory listing) to trip over.
            std::fs::remove_file(&tmp).ok();
            return Err(KbError::Io(e.to_string()));
        }
        Ok(())
    }

    /// Load from a JSON-lines file.
    ///
    /// Checks the `kb.store.load` injection point (keyed by the path)
    /// against the process-global fault plan before reading.
    ///
    /// # Examples
    ///
    /// ```
    /// use openbi_kb::KnowledgeBase;
    ///
    /// let path = std::env::temp_dir().join("openbi-doc-load.jsonl");
    /// KnowledgeBase::new().save(&path).unwrap();
    /// let kb = KnowledgeBase::load(&path).unwrap();
    /// assert!(kb.is_empty());
    /// # std::fs::remove_file(&path).ok();
    /// ```
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let path = path.as_ref();
        fire_store_fault("kb.store.load", path)?;
        let text = std::fs::read_to_string(path).map_err(|e| KbError::Io(e.to_string()))?;
        Self::from_jsonl(&text)
    }
}

/// At most 60 characters of an offending JSONL line, quoted and
/// escaped, for [`KnowledgeBase::from_jsonl`] error messages
/// (char-boundary safe: corrupt files are exactly where multi-byte
/// sequences get cut).
fn excerpt(line: &str) -> String {
    const MAX_CHARS: usize = 60;
    if line.chars().count() <= MAX_CHARS {
        format!("{line:?}")
    } else {
        let cut: String = line.chars().take(MAX_CHARS).collect();
        format!("{cut:?}…")
    }
}

/// Fire a store I/O injection point against the process-global fault
/// plan, mapping an injected fault into [`KbError::Io`]. The store has
/// no configuration struct of its own, so the global slot is the only
/// plan source here; the miss path is one atomic load.
fn fire_store_fault(point: &str, path: &std::path::Path) -> Result<()> {
    openbi_faults::fire_installed(point, openbi_faults::key(&path.to_string_lossy()), 0)
        .map_err(|e| KbError::Io(e.to_string()))
}

/// A borrowed, optionally dataset-masked view of a [`KnowledgeBase`].
///
/// The advisor and the leave-one-dataset-out evaluator consume this
/// instead of an owned store, so holding out a dataset costs a string
/// comparison per candidate record rather than a deep clone of the
/// whole knowledge base per dataset.
#[derive(Debug, Clone, Copy)]
pub struct KbView<'a> {
    kb: &'a KnowledgeBase,
    excluded_dataset: Option<&'a str>,
}

impl<'a> KbView<'a> {
    /// Number of visible records.
    pub fn len(&self) -> usize {
        match self.excluded_dataset {
            None => self.kb.len(),
            Some(d) => self.kb.len() - self.kb.dataset_record_indices(d).len(),
        }
    }

    /// True iff no record is visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Algorithm names of the underlying store, first-seen order. An
    /// algorithm whose records all belong to the masked dataset yields
    /// no visible records; callers that iterate candidates must treat
    /// that as "algorithm absent".
    pub fn algorithm_names(&self) -> &'a [String] {
        self.kb.algorithm_names()
    }

    /// Record positions for one algorithm in the underlying store
    /// (ascending; may include masked records — pair with
    /// [`includes`](KbView::includes)).
    pub fn algorithm_record_indices(&self, algorithm: &str) -> &'a [usize] {
        self.kb.algorithm_record_indices(algorithm)
    }

    /// The record at an underlying-store position.
    pub fn record(&self, position: usize) -> &'a ExperimentRecord {
        &self.kb.records[position]
    }

    /// True iff the record is visible through this view.
    pub fn includes(&self, record: &ExperimentRecord) -> bool {
        match self.excluded_dataset {
            None => true,
            Some(d) => record.dataset != d,
        }
    }
}

/// Anything the experiment grid can publish record batches into.
///
/// The executor is generic over its sink, so the same grid run can feed
/// the lock-based [`SharedKnowledgeBase`] (the default) or the
/// snapshot-swap [`SnapshotKnowledgeBase`] serving store without either
/// knowing about the other.
///
/// `Sync` is a supertrait because the parallel executor shares one sink
/// reference across its worker threads.
///
/// [`SnapshotKnowledgeBase`]: crate::SnapshotKnowledgeBase
pub trait RecordSink: Sync {
    /// Accept a batch of freshly produced experiment records. Batches
    /// may arrive from many workers concurrently; implementations
    /// decide when the records become visible to readers.
    fn add_batch(&self, records: Vec<ExperimentRecord>);
}

/// A cheaply clonable, thread-safe knowledge base handle for concurrent
/// experiment runners.
///
/// Every reader and writer goes through one `RwLock`; `snapshot()`
/// deep-clones the store. That is the right trade for the experiment
/// grid (few readers, write-heavy); for read-mostly serving, prefer
/// [`SnapshotKnowledgeBase`](crate::SnapshotKnowledgeBase), whose
/// readers neither lock nor clone.
///
/// # Examples
///
/// ```
/// use openbi_kb::{ExperimentRecord, SharedKnowledgeBase};
///
/// let shared = SharedKnowledgeBase::default();
/// let handle = shared.clone(); // same store, cheap to clone
/// handle.add_batch(vec![ExperimentRecord::default()]);
/// assert_eq!(shared.len(), 1);
/// assert_eq!(shared.snapshot().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharedKnowledgeBase {
    inner: Arc<RwLock<KnowledgeBase>>,
}

impl SharedKnowledgeBase {
    /// Wrap a knowledge base.
    pub fn new(kb: KnowledgeBase) -> Self {
        SharedKnowledgeBase {
            inner: Arc::new(RwLock::new(kb)),
        }
    }

    /// Append a record.
    pub fn add(&self, record: ExperimentRecord) {
        self.inner.write().add(record);
    }

    /// Append many records under a single write-lock acquisition — the
    /// per-worker flush path of the parallel experiment executor, which
    /// would otherwise contend on the lock once per record.
    pub fn add_batch(&self, records: Vec<ExperimentRecord>) {
        if records.is_empty() {
            return;
        }
        self.inner.write().add_batch(records);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Snapshot the current contents (a deep clone of every record).
    pub fn snapshot(&self) -> KnowledgeBase {
        self.inner.read().clone()
    }

    /// Run `f` against the store under the read lock, without cloning.
    ///
    /// This is the "shared-lock read" serving baseline the
    /// `serving_bench` binary measures: readers skip the deep clone but
    /// hold the lock for the whole call, so they block (and are blocked
    /// by) concurrent publishes — and two consecutive calls may observe
    /// different contents.
    pub fn with_read<R>(&self, f: impl FnOnce(&KnowledgeBase) -> R) -> R {
        f(&self.inner.read())
    }
}

impl RecordSink for SharedKnowledgeBase {
    /// Publish under one write-lock acquisition per batch.
    fn add_batch(&self, records: Vec<ExperimentRecord>) {
        SharedKnowledgeBase::add_batch(self, records);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::PerfMetrics;
    use openbi_quality::QualityProfile;

    fn record(dataset: &str, algorithm: &str, acc: f64) -> ExperimentRecord {
        ExperimentRecord {
            dataset: dataset.into(),
            degradations: vec![],
            profile: QualityProfile::default(),
            algorithm: algorithm.into(),
            metrics: PerfMetrics {
                accuracy: acc,
                macro_f1: acc,
                minority_f1: acc,
                kappa: acc,
                train_ms: 1.0,
                model_size: 5.0,
            },
            seed: 1,
        }
    }

    #[test]
    fn add_query_filter() {
        let mut kb = KnowledgeBase::new();
        kb.add(record("d1", "NaiveBayes", 0.9));
        kb.add(record("d1", "kNN", 0.8));
        kb.add(record("d2", "NaiveBayes", 0.7));
        assert_eq!(kb.len(), 3);
        assert_eq!(kb.algorithms(), vec!["NaiveBayes", "kNN"]);
        assert_eq!(kb.datasets(), vec!["d1", "d2"]);
        assert_eq!(kb.filter(|r| r.dataset == "d1").len(), 2);
        assert_eq!(kb.without_dataset("d1").len(), 1);
    }

    /// The naive first-seen scans the indices replaced.
    fn naive_algorithms(kb: &KnowledgeBase) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for r in kb.records() {
            if !out.contains(&r.algorithm) {
                out.push(r.algorithm.clone());
            }
        }
        out
    }

    fn naive_datasets(kb: &KnowledgeBase) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for r in kb.records() {
            if !out.contains(&r.dataset) {
                out.push(r.dataset.clone());
            }
        }
        out
    }

    fn assert_index_consistent(kb: &KnowledgeBase) {
        assert_eq!(kb.algorithms(), naive_algorithms(kb));
        assert_eq!(kb.datasets(), naive_datasets(kb));
        let mut seen = 0usize;
        for algo in kb.algorithm_names() {
            let indices = kb.algorithm_record_indices(algo);
            assert!(indices.windows(2).all(|w| w[0] < w[1]), "ascending");
            assert!(indices.iter().all(|&i| kb.records()[i].algorithm == *algo));
            seen += indices.len();
        }
        assert_eq!(seen, kb.len(), "algorithm index covers every record");
        let mut seen = 0usize;
        for ds in kb.dataset_names() {
            let indices = kb.dataset_record_indices(ds);
            assert!(indices.windows(2).all(|w| w[0] < w[1]), "ascending");
            assert!(indices.iter().all(|&i| kb.records()[i].dataset == *ds));
            seen += indices.len();
        }
        assert_eq!(seen, kb.len(), "dataset index covers every record");
    }

    #[test]
    fn index_tracks_every_mutation_path() {
        let mut kb = KnowledgeBase::new();
        kb.add(record("d1", "a", 0.1));
        kb.add(record("d2", "b", 0.2));
        kb.add(record("d1", "a", 0.3));
        kb.add_batch(vec![record("d3", "c", 0.4), record("d2", "a", 0.5)]);
        assert_index_consistent(&kb);

        let restored = KnowledgeBase::from_jsonl(&kb.to_jsonl().unwrap()).unwrap();
        assert_eq!(restored.records(), kb.records());
        assert_index_consistent(&restored);

        let reduced = kb.without_dataset("d2");
        assert_eq!(reduced.len(), 3);
        assert!(reduced.dataset_record_indices("d2").is_empty());
        assert_index_consistent(&reduced);

        assert!(kb.algorithm_record_indices("nope").is_empty());
        assert_eq!(kb.algorithm_records("a").count(), 3);
        assert_eq!(kb.dataset_records("d1").count(), 2);
    }

    #[test]
    fn view_masks_one_dataset_without_cloning() {
        let mut kb = KnowledgeBase::new();
        kb.add(record("d1", "a", 0.1));
        kb.add(record("d2", "a", 0.2));
        kb.add(record("d2", "b", 0.3));
        let full = kb.view();
        assert_eq!(full.len(), 3);
        assert!(!full.is_empty());
        assert!(kb.records().iter().all(|r| full.includes(r)));

        let masked = kb.view_without_dataset("d2");
        assert_eq!(masked.len(), 1);
        let visible: Vec<&ExperimentRecord> = masked
            .algorithm_record_indices("a")
            .iter()
            .map(|&i| masked.record(i))
            .filter(|r| masked.includes(r))
            .collect();
        assert_eq!(visible.len(), 1);
        assert_eq!(visible[0].dataset, "d1");
        // Algorithm "b" only exists in the masked dataset: indices
        // remain but none are visible.
        assert!(masked
            .algorithm_record_indices("b")
            .iter()
            .all(|&i| !masked.includes(masked.record(i))));

        // Masking the only dataset empties the view.
        let mut solo = KnowledgeBase::new();
        solo.add(record("only", "a", 0.5));
        assert!(solo.view_without_dataset("only").is_empty());
    }

    #[test]
    fn jsonl_round_trip() {
        let mut kb = KnowledgeBase::new();
        kb.add(record("d1", "a", 0.5));
        kb.add(record("d2", "b", 0.6));
        let text = kb.to_jsonl().unwrap();
        assert_eq!(text.lines().count(), 2);
        let back = KnowledgeBase::from_jsonl(&text).unwrap();
        assert_eq!(back.records(), kb.records());
    }

    #[test]
    fn jsonl_skips_blank_lines_rejects_garbage() {
        let mut kb = KnowledgeBase::new();
        kb.add(record("d", "a", 0.5));
        let text = format!("\n{}\n\n", kb.to_jsonl().unwrap());
        assert_eq!(KnowledgeBase::from_jsonl(&text).unwrap().len(), 1);
        assert!(KnowledgeBase::from_jsonl("not json\n").is_err());
    }

    #[test]
    fn file_round_trip() {
        let mut kb = KnowledgeBase::new();
        kb.add(record("d", "a", 0.5));
        let dir = std::env::temp_dir().join("openbi-kb-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kb.jsonl");
        kb.save(&path).unwrap();
        assert_eq!(KnowledgeBase::load(&path).unwrap().len(), 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn save_replaces_existing_files_atomically() {
        let dir = std::env::temp_dir().join("openbi-kb-atomic-save");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kb.jsonl");

        let mut first = KnowledgeBase::new();
        first.add(record("d", "a", 0.5));
        first.save(&path).unwrap();

        let mut second = KnowledgeBase::new();
        second.add(record("d", "a", 0.1));
        second.add(record("d", "b", 0.2));
        second.save(&path).unwrap();

        assert_eq!(KnowledgeBase::load(&path).unwrap().len(), 2);
        // The same-directory temp file must not survive a successful
        // rename.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "stale temp files: {leftovers:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_rejects_directory_targets() {
        // A path with no file name cannot be renamed into; the error
        // must surface instead of panicking.
        let err = KnowledgeBase::new().save("..").expect_err("no file name");
        assert!(err.to_string().contains("file name"), "{err}");
    }

    #[test]
    fn save_cleans_its_temp_file_when_the_rename_fails() {
        let dir = std::env::temp_dir().join("openbi-kb-failed-rename");
        std::fs::create_dir_all(&dir).unwrap();
        // Renaming a file over a non-empty directory fails on every
        // platform, after the temp file was already written.
        let target = dir.join("kb.jsonl");
        std::fs::remove_dir_all(&target).ok();
        std::fs::create_dir_all(target.join("occupied")).unwrap();
        let mut kb = KnowledgeBase::new();
        kb.add(record("d", "a", 0.5));
        kb.save(&target).expect_err("rename over a directory");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "stale temp files: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn from_jsonl_names_the_line_and_shows_an_excerpt() {
        let good = serde_json::to_string(&record("d", "a", 0.5)).unwrap();
        let text = format!("{good}\n{{\"dataset\": 7, \"broken\"}}\n{good}\n");
        let err = KnowledgeBase::from_jsonl(&text).expect_err("corrupt middle line");
        let message = err.to_string();
        assert!(message.contains("line 2"), "{message}");
        assert!(
            message.contains("dataset\\\": 7") || message.contains("dataset\": 7"),
            "excerpt of the offending line missing: {message}"
        );
    }

    #[test]
    fn from_jsonl_truncates_long_excerpts_on_char_boundaries() {
        // 200 four-byte scissors: a byte-indexed truncation would
        // panic; the excerpt must cut on a char boundary and elide.
        let long = format!("not json {}", "\u{2702}".repeat(200));
        let err = KnowledgeBase::from_jsonl(&long).expect_err("not json");
        let message = err.to_string();
        assert!(message.contains("line 1"), "{message}");
        assert!(message.contains('…'), "long excerpt not elided: {message}");
        let scissors = message.chars().filter(|c| *c == '\u{2702}').count();
        assert!(scissors <= 60, "excerpt not truncated: {scissors} scissors");
    }

    #[test]
    fn with_read_observes_the_live_store() {
        let shared = SharedKnowledgeBase::default();
        shared.add(record("d1", "a", 0.5));
        let (len, algorithms) = shared.with_read(|kb| (kb.len(), kb.algorithms()));
        assert_eq!(len, 1);
        assert_eq!(algorithms, vec!["a"]);
        shared.add(record("d1", "b", 0.6));
        assert_eq!(shared.with_read(|kb| kb.len()), 2);
    }

    #[test]
    fn record_sink_routes_through_the_shared_store() {
        fn publish<S: RecordSink>(sink: &S) {
            sink.add_batch(vec![record("d", "a", 0.5)]);
        }
        let shared = SharedKnowledgeBase::default();
        publish(&shared);
        assert_eq!(shared.len(), 1);
    }

    #[test]
    fn batched_insert_matches_single_inserts() {
        let mut one_by_one = KnowledgeBase::new();
        one_by_one.add(record("d1", "a", 0.1));
        one_by_one.add(record("d1", "b", 0.2));
        let mut batched = KnowledgeBase::new();
        batched.add_batch(vec![record("d1", "a", 0.1), record("d1", "b", 0.2)]);
        assert_eq!(one_by_one.records(), batched.records());

        let shared = SharedKnowledgeBase::default();
        shared.add_batch(vec![]);
        assert!(shared.is_empty());
        shared.add_batch(vec![record("d2", "a", 0.3), record("d2", "b", 0.4)]);
        assert_eq!(shared.len(), 2);
    }

    #[test]
    fn shared_kb_accumulates_from_threads() {
        let shared = SharedKnowledgeBase::default();
        std::thread::scope(|s| {
            for t in 0..4 {
                let shared = shared.clone();
                s.spawn(move || {
                    for i in 0..25 {
                        shared.add(record(&format!("d{t}"), "a", i as f64 / 25.0));
                    }
                });
            }
        });
        assert_eq!(shared.len(), 100);
        assert_eq!(shared.snapshot().datasets().len(), 4);
    }
}
