//! Checkpointing: fold the log into a snapshot and drop the segments
//! it supersedes.
//!
//! A checkpoint is a full [`KnowledgeBase::save`] snapshot written as
//! `checkpoint-<W>.jsonl`, where the *watermark* `W` is the generation
//! of the fresh segment the writer rotates to immediately before
//! snapshotting. The invariant recovery relies on: **every record in a
//! segment with generation < W is contained in `checkpoint-W`**, so
//! those segments are dead weight and are deleted. Replay therefore
//! always starts from the newest checkpoint and walks segments
//! `W, W+1, …` only.

use crate::error::{KbError, Result};
use crate::store::KnowledgeBase;
use crate::wal::segment::{list_segments, sync_dir};
use crate::wal::writer::WalWriter;
use openbi_obs as obs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// What a checkpoint pass wrote and removed.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointReport {
    /// Watermark generation the snapshot covers everything below.
    pub watermark: u64,
    /// Records in the snapshot.
    pub records: u64,
    /// Superseded segment files deleted.
    pub compacted_segments: u64,
    /// Older checkpoint snapshots deleted.
    pub removed_checkpoints: u64,
    /// Wall-clock seconds the pass took.
    pub seconds: f64,
}

/// File name of the checkpoint at `watermark` (zero-padded like
/// segment names so lexicographic order is numeric order).
pub fn checkpoint_file_name(watermark: u64) -> String {
    format!("checkpoint-{watermark:020}.jsonl")
}

/// Parse a watermark back out of a checkpoint file name.
pub(crate) fn parse_checkpoint_watermark(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("checkpoint-")?.strip_suffix(".jsonl")?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Every checkpoint in `dir`, sorted by watermark. A missing directory
/// is an empty list.
fn list_checkpoints(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut checkpoints = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(checkpoints),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        if let Some(watermark) = entry
            .file_name()
            .to_str()
            .and_then(parse_checkpoint_watermark)
        {
            checkpoints.push((watermark, entry.path()));
        }
    }
    checkpoints.sort();
    Ok(checkpoints)
}

/// The newest checkpoint in `dir`, if any.
pub(crate) fn latest_checkpoint(dir: &Path) -> io::Result<Option<(u64, PathBuf)>> {
    Ok(list_checkpoints(dir)?.into_iter().next_back())
}

fn io_err(e: io::Error) -> KbError {
    KbError::Io(e.to_string())
}

impl WalWriter {
    /// Snapshot `kb` as a checkpoint and compact every segment the
    /// snapshot supersedes.
    ///
    /// The ordering is what makes this crash-safe at every step: the
    /// current segment is synced, the writer rotates to a fresh
    /// segment `W`, the snapshot lands atomically as `checkpoint-W`
    /// (via [`KnowledgeBase::save`]'s write-rename), and only then are
    /// segments `< W` deleted. A crash before the snapshot rename
    /// leaves the old checkpoint and all segments; a crash after it
    /// merely leaves garbage segments for the next checkpoint to
    /// collect.
    pub fn checkpoint(&mut self, kb: &KnowledgeBase) -> Result<CheckpointReport> {
        let start = Instant::now();
        self.sync()?;
        self.rotate()?;
        let watermark = self.generation();
        kb.save(self.dir.join(checkpoint_file_name(watermark)))?;

        let mut compacted_segments = 0u64;
        for (generation, path) in list_segments(&self.dir).map_err(io_err)? {
            if generation < watermark && std::fs::remove_file(path).is_ok() {
                compacted_segments += 1;
            }
        }
        let mut removed_checkpoints = 0u64;
        for (old, path) in list_checkpoints(&self.dir).map_err(io_err)? {
            if old < watermark && std::fs::remove_file(path).is_ok() {
                removed_checkpoints += 1;
            }
        }
        sync_dir(&self.dir).map_err(io_err)?;

        self.live_segments = self.live_segments.saturating_sub(compacted_segments);
        obs::gauge_set("kb.wal.segments", self.live_segments as f64);
        let seconds = start.elapsed().as_secs_f64();
        obs::observe("kb.checkpoint.seconds", seconds);

        Ok(CheckpointReport {
            watermark,
            records: kb.len() as u64,
            compacted_segments,
            removed_checkpoints,
            seconds,
        })
    }
}
