//! Crash-durable persistence for the knowledge base: a checksummed
//! write-ahead log, recovery replay, and checkpoint compaction.
//!
//! The executor streams experiment records into the serving layer; a
//! SIGKILL, OOM, or power cut must not cost hours of grid results.
//! This module makes the KB crash-durable with the classic WAL
//! discipline (DESIGN.md §15):
//!
//! * [`WalWriter`] appends each record as a length-prefixed,
//!   CRC32C-checksummed frame to rotating `wal-<gen>.seg` files
//!   ([`segment`] defines the format), with a configurable
//!   [`FsyncPolicy`];
//! * [`recover`] rebuilds a [`KnowledgeBase`] byte-identically from
//!   the newest checkpoint plus a verified replay, repairing a torn
//!   tail by truncation and refusing (with segment + offset) anything
//!   actually corrupt;
//! * [`WalWriter::checkpoint`] folds the log into a
//!   `checkpoint-<W>.jsonl` snapshot and deletes the segments it
//!   supersedes.
//!
//! Fault injection reaches every durability edge through three
//! dedicated points — [`APPEND_FAULT_POINT`], [`SYNC_FAULT_POINT`],
//! [`RECOVER_FAULT_POINT`] — and the corruption kinds
//! `short_write` / `bit_flip` exercise torn and silently damaged
//! frames end to end.
//!
//! [`KnowledgeBase`]: crate::store::KnowledgeBase

pub mod checkpoint;
pub mod recover;
pub mod segment;
pub mod writer;

pub use checkpoint::{checkpoint_file_name, CheckpointReport};
pub use recover::{recover, recover_with, RecoveryReport};
pub use writer::{
    FsyncPolicy, WalOptions, WalSink, WalWriter, DEFAULT_SEGMENT_BYTES, MIN_SEGMENT_BYTES,
};

/// Fault point fired (with [`corrupt_buffer`]) for every frame append;
/// keyed by the global frame index.
///
/// [`corrupt_buffer`]: openbi_faults::FaultPlan::corrupt_buffer
pub const APPEND_FAULT_POINT: &str = "kb.wal.append";

/// Fault point fired before each `fdatasync`; keyed by the segment
/// generation.
pub const SYNC_FAULT_POINT: &str = "kb.wal.sync";

/// Fault point fired once at the start of recovery; keyed by the FNV
/// hash of the log directory path.
pub const RECOVER_FAULT_POINT: &str = "kb.wal.recover";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{ExperimentRecord, PerfMetrics};
    use crate::store::{KnowledgeBase, RecordSink, SharedKnowledgeBase};
    use crate::KbError;
    use openbi_faults::{FaultPlan, FaultRule};
    use openbi_quality::QualityProfile;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn fresh_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "openbi-wal-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn record(dataset: &str, algorithm: &str, seed: u64) -> ExperimentRecord {
        ExperimentRecord {
            dataset: dataset.into(),
            degradations: vec!["MCAR 0.2".into()],
            profile: QualityProfile::default(),
            algorithm: algorithm.into(),
            metrics: PerfMetrics {
                accuracy: 0.9,
                macro_f1: 0.8,
                minority_f1: 0.7,
                kappa: 0.6,
                train_ms: 0.0,
                model_size: 3.0,
            },
            seed,
        }
    }

    fn records(n: usize) -> Vec<ExperimentRecord> {
        (0..n)
            .map(|i| record(&format!("ds{}", i % 3), &format!("algo{}", i % 4), i as u64))
            .collect()
    }

    /// Order-independent fingerprint of a knowledge base's contents.
    fn fingerprint(kb: &KnowledgeBase) -> Vec<String> {
        let mut lines: Vec<String> = kb
            .records()
            .iter()
            .map(|r| serde_json::to_string(r).unwrap())
            .collect();
        lines.sort();
        lines
    }

    fn last_segment(dir: &PathBuf) -> PathBuf {
        segment::list_segments(dir).unwrap().pop().unwrap().1
    }

    #[test]
    fn missing_dir_recovers_to_an_empty_kb() {
        let dir = fresh_dir("empty");
        let (kb, report) = recover(&dir).unwrap();
        assert!(kb.is_empty());
        assert_eq!(report.frames_replayed, 0);
        assert_eq!(report.checkpoint_watermark, None);
    }

    #[test]
    fn write_then_recover_is_fingerprint_identical() {
        let dir = fresh_dir("round-trip");
        let expected = records(10);
        {
            let mut writer = WalWriter::open(WalOptions::new(&dir)).unwrap();
            writer.append_batch(&expected[..4]).unwrap();
            writer.append_batch(&expected[4..]).unwrap();
            assert_eq!(writer.frames(), 10);
        }
        let mut reference = KnowledgeBase::new();
        reference.add_batch(expected);
        let (kb, report) = recover(&dir).unwrap();
        assert_eq!(fingerprint(&kb), fingerprint(&reference));
        assert_eq!(report.frames_replayed, 10);
        assert_eq!(report.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_spreads_the_log_and_recovery_stitches_it() {
        let dir = fresh_dir("rotate");
        let expected = records(12);
        {
            let mut writer =
                WalWriter::open(WalOptions::new(&dir).segment_bytes(MIN_SEGMENT_BYTES)).unwrap();
            for chunk in expected.chunks(2) {
                writer.append_batch(chunk).unwrap();
            }
        }
        let segments = segment::list_segments(&dir).unwrap();
        assert!(
            segments.len() >= 3,
            "tiny segments should rotate, got {}",
            segments.len()
        );
        let (kb, report) = recover(&dir).unwrap();
        assert_eq!(kb.len(), 12);
        assert_eq!(report.segments_scanned, segments.len() as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopening_starts_a_fresh_generation_and_keeps_old_data() {
        let dir = fresh_dir("reopen");
        {
            let mut writer = WalWriter::open(WalOptions::new(&dir)).unwrap();
            writer.append_batch(&records(3)).unwrap();
            assert_eq!(writer.generation(), 0);
        }
        {
            let mut writer = WalWriter::open(WalOptions::new(&dir)).unwrap();
            assert_eq!(writer.generation(), 1);
            writer.append_batch(&records(2)).unwrap();
        }
        let (kb, report) = recover(&dir).unwrap();
        assert_eq!(kb.len(), 5);
        assert_eq!(report.frames_replayed, 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_once_and_stays_repaired() {
        let dir = fresh_dir("torn");
        {
            let mut writer = WalWriter::open(WalOptions::new(&dir)).unwrap();
            writer.append_batch(&records(3)).unwrap();
        }
        // Simulate a crash mid-write: append half a frame by hand.
        let torn_frame = segment::encode_frame(br#"{"never":"lands"}"#);
        let path = last_segment(&dir);
        let clean_len = std::fs::metadata(&path).unwrap().len();
        {
            use std::io::Write;
            let mut file = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            file.write_all(&torn_frame[..torn_frame.len() / 2]).unwrap();
        }
        let (kb, report) = recover(&dir).unwrap();
        assert_eq!(kb.len(), 3, "acknowledged records survive the torn tail");
        assert_eq!(report.truncated_bytes, (torn_frame.len() / 2) as u64);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            clean_len,
            "the torn tail is physically removed"
        );
        let (_, second) = recover(&dir).unwrap();
        assert_eq!(second.truncated_bytes, 0, "repair happens exactly once");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_truncation_point_of_the_last_segment_recovers() {
        let dir = fresh_dir("fuzz");
        {
            let mut writer = WalWriter::open(WalOptions::new(&dir)).unwrap();
            writer.append_batch(&records(3)).unwrap();
        }
        let path = last_segment(&dir);
        let full = std::fs::read(&path).unwrap();
        for keep in 0..=full.len() {
            std::fs::write(&path, &full[..keep]).unwrap();
            let (kb, report) = recover(&dir)
                .unwrap_or_else(|e| panic!("recovery must absorb a {keep}-byte truncation: {e}"));
            assert!(kb.len() <= 3);
            assert_eq!(
                report.truncated_bytes > 0,
                keep != full.len() && !is_frame_boundary(&full, keep),
                "keep={keep}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Whether `keep` lands exactly between frames (or on the magic
    /// boundary) in a fully intact segment image.
    fn is_frame_boundary(full: &[u8], keep: usize) -> bool {
        let mut offset = segment::SEGMENT_MAGIC.len();
        if keep < offset {
            return keep == 0;
        }
        loop {
            if keep == offset {
                return true;
            }
            match segment::decode_frame(&full[offset..]) {
                segment::FrameDecode::Complete { consumed, .. } => offset += consumed,
                _ => return false,
            }
        }
    }

    #[test]
    fn mid_log_corruption_is_a_hard_error_naming_the_offset() {
        let dir = fresh_dir("corrupt");
        {
            let mut writer = WalWriter::open(WalOptions::new(&dir)).unwrap();
            writer.append_batch(&records(3)).unwrap();
        }
        let path = last_segment(&dir);
        let mut data = std::fs::read(&path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0x40;
        std::fs::write(&path, &data).unwrap();
        match recover(&dir) {
            Err(KbError::WalCorrupt {
                segment,
                offset,
                detail,
            }) => {
                assert!(segment.starts_with("wal-") && segment.ends_with(".seg"));
                assert!((offset as usize) <= mid, "offset {offset} names the frame");
                assert!(!detail.is_empty());
            }
            other => panic!("expected WalCorrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_compacts_and_recovery_starts_from_it() {
        let dir = fresh_dir("checkpoint");
        let all = records(9);
        let mut writer = WalWriter::open(WalOptions::new(&dir)).unwrap();
        writer.append_batch(&all[..6]).unwrap();

        let mut kb = KnowledgeBase::new();
        kb.add_batch(all[..6].to_vec());
        let report = writer.checkpoint(&kb).unwrap();
        assert_eq!(report.records, 6);
        assert!(report.compacted_segments >= 1);

        writer.append_batch(&all[6..]).unwrap();
        drop(writer);

        for (generation, _) in segment::list_segments(&dir).unwrap() {
            assert!(
                generation >= report.watermark,
                "segment {generation} should have been compacted (watermark {})",
                report.watermark
            );
        }

        let mut reference = KnowledgeBase::new();
        reference.add_batch(all);
        let (recovered, recovery) = recover(&dir).unwrap();
        assert_eq!(fingerprint(&recovered), fingerprint(&reference));
        assert_eq!(recovery.checkpoint_watermark, Some(report.watermark));
        assert_eq!(recovery.checkpoint_records, 6);
        assert_eq!(recovery.frames_replayed, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn second_checkpoint_removes_the_first() {
        let dir = fresh_dir("checkpoint-chain");
        let mut writer = WalWriter::open(WalOptions::new(&dir)).unwrap();
        let mut kb = KnowledgeBase::new();

        writer.append_batch(&records(2)).unwrap();
        kb.add_batch(records(2));
        let first = writer.checkpoint(&kb).unwrap();

        writer.append_batch(&records(4)[2..]).unwrap();
        kb.add_batch(records(4)[2..].to_vec());
        let second = writer.checkpoint(&kb).unwrap();
        assert!(second.watermark > first.watermark);
        assert_eq!(second.removed_checkpoints, 1);
        drop(writer);

        let (recovered, report) = recover(&dir).unwrap();
        assert_eq!(recovered.len(), 4);
        assert_eq!(report.checkpoint_watermark, Some(second.watermark));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_short_write_fails_the_batch_then_retry_succeeds() {
        let dir = fresh_dir("short-write");
        let plan =
            Arc::new(FaultPlan::new(7).with(FaultRule::short_write(APPEND_FAULT_POINT).times(1)));
        let batch = records(4);
        {
            let mut writer =
                WalWriter::open(WalOptions::new(&dir).fault_plan(plan.clone())).unwrap();
            let err = writer.append_batch(&batch).unwrap_err();
            assert!(matches!(err, KbError::Wal(_)), "{err}");
            assert_eq!(writer.frames(), 0, "failed batch acknowledges nothing");
            writer.append_batch(&batch).unwrap();
            assert_eq!(writer.frames(), 4);
        }
        let (kb, report) = recover(&dir).unwrap();
        assert_eq!(kb.len(), 4, "the retried batch lands exactly once");
        assert_eq!(report.truncated_bytes, 0, "rollback left no torn bytes");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_bit_flip_is_silent_on_append_and_caught_by_recovery() {
        let dir = fresh_dir("bit-flip");
        let plan =
            Arc::new(FaultPlan::new(21).with(FaultRule::bit_flip(APPEND_FAULT_POINT).times(1)));
        {
            let mut writer = WalWriter::open(WalOptions::new(&dir).fault_plan(plan)).unwrap();
            // The flip hits frame 0; the frames after it make the
            // damage mid-log, where recovery must hard-error.
            writer.append_batch(&records(5)).unwrap();
            assert_eq!(writer.frames(), 5, "bit flips are silent at append time");
        }
        match recover(&dir) {
            Err(KbError::WalCorrupt { offset, .. }) => {
                assert_eq!(offset, segment::SEGMENT_MAGIC.len() as u64);
            }
            other => panic!("recovery must detect the flipped frame, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_sync_fault_rolls_back_and_surfaces() {
        let dir = fresh_dir("sync-fault");
        let plan = Arc::new(FaultPlan::new(3).with(FaultRule::error(SYNC_FAULT_POINT).times(1)));
        let mut writer = WalWriter::open(WalOptions::new(&dir).fault_plan(plan)).unwrap();
        let err = writer.append_batch(&records(2)).unwrap_err();
        assert!(matches!(err, KbError::Wal(_)), "{err}");
        writer.append_batch(&records(2)).unwrap();
        drop(writer);
        let (kb, _) = recover(&dir).unwrap();
        assert_eq!(kb.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_fault_point_fires() {
        let dir = fresh_dir("recover-fault");
        let plan = FaultPlan::new(1).with(FaultRule::error(RECOVER_FAULT_POINT));
        let err = recover_with(&dir, Some(&plan)).unwrap_err();
        assert!(matches!(err, KbError::Wal(_)), "{err}");
    }

    #[test]
    fn fsync_policies_produce_identical_logs() {
        let mut fingerprints = Vec::new();
        let expected = records(6);
        for policy in [FsyncPolicy::Always, FsyncPolicy::Batch, FsyncPolicy::Never] {
            let dir = fresh_dir("policy");
            {
                let mut writer = WalWriter::open(WalOptions::new(&dir).fsync(policy)).unwrap();
                writer.append_batch(&expected).unwrap();
            }
            let (kb, _) = recover(&dir).unwrap();
            fingerprints.push(fingerprint(&kb));
            std::fs::remove_dir_all(&dir).ok();
        }
        assert_eq!(fingerprints[0], fingerprints[1]);
        assert_eq!(fingerprints[1], fingerprints[2]);
    }

    #[test]
    fn fsync_policy_parses_its_cli_spellings() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("batch"), Some(FsyncPolicy::Batch));
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
        assert_eq!(FsyncPolicy::Always.to_string(), "always");
        assert_eq!(FsyncPolicy::default(), FsyncPolicy::Batch);
    }

    #[test]
    fn wal_sink_logs_batches_before_forwarding() {
        let dir = fresh_dir("sink");
        let shared = SharedKnowledgeBase::new(KnowledgeBase::new());
        let sink = WalSink::new(
            shared.clone(),
            WalWriter::open(WalOptions::new(&dir)).unwrap(),
        );
        sink.add_batch(records(5));
        sink.add_batch(Vec::new());
        assert_eq!(sink.inner().len(), 5);
        assert!(!sink.degraded());
        drop(sink);
        let (kb, _) = recover(&dir).unwrap();
        assert_eq!(fingerprint(&kb), fingerprint(&shared.snapshot()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_sink_degrades_gracefully_when_the_log_keeps_failing() {
        let dir = fresh_dir("sink-degraded");
        // `times` far above the sink's retry budget: every attempt
        // fails, the batch must still reach the inner sink.
        let plan = Arc::new(FaultPlan::new(5).with(FaultRule::error(SYNC_FAULT_POINT).times(100)));
        let shared = SharedKnowledgeBase::new(KnowledgeBase::new());
        let sink = WalSink::new(
            shared.clone(),
            WalWriter::open(WalOptions::new(&dir).fault_plan(plan)).unwrap(),
        );
        sink.add_batch(records(3));
        assert_eq!(sink.inner().len(), 3, "serving keeps working");
        assert_eq!(sink.failures(), 1);
        assert!(sink.degraded());
        drop(sink);
        let (kb, _) = recover(&dir).unwrap();
        assert!(kb.is_empty(), "nothing unacknowledged leaks into the log");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_file_names_round_trip() {
        assert_eq!(
            checkpoint_file_name(7),
            "checkpoint-00000000000000000007.jsonl"
        );
        assert_eq!(
            checkpoint::parse_checkpoint_watermark(&checkpoint_file_name(7)),
            Some(7)
        );
        assert_eq!(checkpoint::parse_checkpoint_watermark("kb.jsonl"), None);
        assert_eq!(
            checkpoint::parse_checkpoint_watermark("checkpoint-7.jsonl"),
            None
        );
    }
}
