//! Crash recovery: rebuild a [`KnowledgeBase`] from the newest
//! checkpoint plus a checksum-verified replay of every later segment.
//!
//! The contract, proven by the truncation fuzz and SIGKILL tests in
//! `tests/tests/wal_recovery.rs`:
//!
//! * every acknowledged record (per the fsync policy in force) is
//!   replayed, bit for bit;
//! * a *torn tail* — the file ends inside the final frame of the final
//!   segment, the only shape a crashed `write` can leave — is
//!   physically truncated away and reported, never treated as data;
//! * anything else (checksum mismatch, impossible length, damage
//!   before the end of the log) is a hard [`KbError::WalCorrupt`]
//!   naming the segment file and byte offset, because silently
//!   skipping verified-bad data is how knowledge bases diverge.

use crate::error::{KbError, Result};
use crate::store::KnowledgeBase;
use crate::wal::checkpoint::latest_checkpoint;
use crate::wal::segment::{decode_frame, list_segments, FrameDecode, SEGMENT_MAGIC};
use crate::wal::RECOVER_FAULT_POINT;
use openbi_faults::FaultPlan;
use openbi_obs as obs;
use std::path::Path;
use std::time::Instant;

/// What [`recover`] found and did.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Checksum-verified frames replayed from segments.
    pub frames_replayed: u64,
    /// Torn-tail bytes truncated from the final segment.
    pub truncated_bytes: u64,
    /// Segment files scanned.
    pub segments_scanned: u64,
    /// Records loaded from the checkpoint snapshot, if any.
    pub checkpoint_records: u64,
    /// Watermark of the checkpoint the replay started from.
    pub checkpoint_watermark: Option<u64>,
    /// Wall-clock seconds the recovery pass took.
    pub seconds: f64,
}

fn io_err(e: std::io::Error) -> KbError {
    KbError::Io(e.to_string())
}

/// Recover the knowledge base persisted in `dir`, consulting the
/// process-global fault plan (if any) for the `kb.wal.recover` point.
pub fn recover(dir: impl AsRef<Path>) -> Result<(KnowledgeBase, RecoveryReport)> {
    recover_with(dir, openbi_faults::active().as_deref())
}

/// [`recover`] with an explicit fault plan (tests pass one directly).
pub fn recover_with(
    dir: impl AsRef<Path>,
    plan: Option<&FaultPlan>,
) -> Result<(KnowledgeBase, RecoveryReport)> {
    let dir = dir.as_ref();
    let start = Instant::now();
    if let Some(plan) = plan {
        plan.fire(
            RECOVER_FAULT_POINT,
            openbi_faults::key(&dir.to_string_lossy()),
            0,
        )
        .map_err(|e| KbError::Wal(e.to_string()))?;
    }

    let (checkpoint_watermark, mut kb, checkpoint_records) =
        match latest_checkpoint(dir).map_err(io_err)? {
            Some((watermark, path)) => {
                let kb = KnowledgeBase::load(&path)?;
                let records = kb.len() as u64;
                (Some(watermark), kb, records)
            }
            None => (None, KnowledgeBase::new(), 0),
        };

    // Only segments at or above the watermark matter: the checkpoint
    // invariant is that every record in older segments is contained in
    // the snapshot.
    let segments: Vec<_> = list_segments(dir)
        .map_err(io_err)?
        .into_iter()
        .filter(|(generation, _)| checkpoint_watermark.is_none_or(|w| *generation >= w))
        .collect();

    // The replayable suffix must be contiguous: a missing generation
    // means acknowledged data is gone, which no replay can paper over.
    if let (Some(watermark), Some((first, _))) = (checkpoint_watermark, segments.first()) {
        if *first != watermark {
            return Err(KbError::Wal(format!(
                "segment wal-{first:020}.seg follows checkpoint {watermark} \
                 but generations {watermark}..{first} are missing"
            )));
        }
    }
    for pair in segments.windows(2) {
        let (prev, next) = (pair[0].0, pair[1].0);
        if next != prev + 1 {
            return Err(KbError::Wal(format!(
                "segment generations jump from {prev} to {next}: \
                 the log is missing acknowledged data"
            )));
        }
    }

    let mut frames_replayed = 0u64;
    let mut truncated_bytes = 0u64;
    let last_index = segments.len().saturating_sub(1);
    for (index, (_, path)) in segments.iter().enumerate() {
        let is_last = index == last_index;
        let segment_name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        let data = std::fs::read(path).map_err(io_err)?;

        if data.len() < SEGMENT_MAGIC.len() {
            // Crash while writing the 8-byte magic itself: a torn tail
            // at offset zero. Only tolerable in the final segment.
            if is_last {
                truncated_bytes += data.len() as u64;
                truncate_file(path, 0)?;
                break;
            }
            return Err(KbError::WalCorrupt {
                segment: segment_name,
                offset: 0,
                detail: format!("segment header is {} bytes, need {}", data.len(), 8),
            });
        }
        if data[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
            return Err(KbError::WalCorrupt {
                segment: segment_name,
                offset: 0,
                detail: "bad segment magic".into(),
            });
        }

        let mut offset = SEGMENT_MAGIC.len();
        loop {
            match decode_frame(&data[offset..]) {
                FrameDecode::Complete { payload, consumed } => {
                    let text = std::str::from_utf8(payload).map_err(|_| KbError::WalCorrupt {
                        segment: segment_name.clone(),
                        offset: offset as u64,
                        detail: "checksummed payload is not UTF-8".into(),
                    })?;
                    let record = serde_json::from_str(text).map_err(|e| KbError::WalCorrupt {
                        segment: segment_name.clone(),
                        offset: offset as u64,
                        detail: format!("checksummed payload is not a record: {e}"),
                    })?;
                    kb.add(record);
                    frames_replayed += 1;
                    offset += consumed;
                }
                FrameDecode::Incomplete => {
                    let torn = data.len() - offset;
                    if torn == 0 {
                        break; // clean end of segment
                    }
                    if is_last {
                        truncated_bytes += torn as u64;
                        truncate_file(path, offset as u64)?;
                        break;
                    }
                    return Err(KbError::WalCorrupt {
                        segment: segment_name,
                        offset: offset as u64,
                        detail: format!(
                            "torn frame ({torn} trailing bytes) in a non-final segment"
                        ),
                    });
                }
                FrameDecode::Corrupt { detail } => {
                    return Err(KbError::WalCorrupt {
                        segment: segment_name,
                        offset: offset as u64,
                        detail,
                    });
                }
            }
        }
    }

    let seconds = start.elapsed().as_secs_f64();
    obs::counter_add("kb.recovery.frames_replayed", frames_replayed);
    obs::counter_add("kb.recovery.truncated_bytes", truncated_bytes);
    obs::observe("kb.recovery.seconds", seconds);

    let report = RecoveryReport {
        frames_replayed,
        truncated_bytes,
        segments_scanned: segments.len() as u64,
        checkpoint_records,
        checkpoint_watermark,
        seconds,
    };
    Ok((kb, report))
}

/// Physically cut a torn tail off `path` so the next writer and the
/// next recovery see a clean log.
fn truncate_file(path: &Path, len: u64) -> Result<()> {
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(io_err)?;
    file.set_len(len).map_err(io_err)?;
    file.sync_data().map_err(io_err)?;
    Ok(())
}
