//! On-disk framing for write-ahead-log segments.
//!
//! A segment file is the 8-byte magic [`SEGMENT_MAGIC`] followed by
//! zero or more frames. Each frame is
//!
//! ```text
//! +----------------+----------------+=========================+
//! | payload length | CRC32C(payload)| payload (JSON record)   |
//! |   u32 LE       |    u32 LE      |   `length` bytes        |
//! +----------------+----------------+=========================+
//! ```
//!
//! so a reader can always tell a *torn* frame (the file ends before
//! `length` payload bytes arrive — the classic crash-mid-write shape,
//! repaired by truncation) from a *corrupt* frame (all bytes present
//! but the checksum or length field disagrees — never repaired, always
//! a hard error naming the byte offset).

use std::io;
use std::path::{Path, PathBuf};

/// Magic bytes opening every segment file; the trailing byte is the
/// format version.
pub const SEGMENT_MAGIC: [u8; 8] = *b"OBWAL\x00\x00\x01";

/// Bytes of framing overhead per record: length word + checksum word.
pub const FRAME_HEADER_LEN: usize = 8;

/// Upper bound on a single frame payload. A length word above this is
/// treated as corruption rather than an instruction to allocate
/// gigabytes: no legitimate experiment record comes close.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// CRC32C (Castagnoli) lookup table, built at compile time. The
/// Castagnoli polynomial detects all burst errors up to 32 bits and is
/// the checksum used by iSCSI, ext4, and most production WALs.
const CRC32C_TABLE: [u32; 256] = build_crc32c_table();

const fn build_crc32c_table() -> [u32; 256] {
    // Reflected Castagnoli polynomial.
    const POLY: u32 = 0x82F6_3B78;
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC32C checksum of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc = (crc >> 8) ^ CRC32C_TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

/// Encode one payload as a frame: length word, checksum word, payload.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() <= MAX_FRAME_LEN);
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32c(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Outcome of decoding the frame at the start of `buf`.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameDecode<'a> {
    /// A full, checksum-verified frame.
    Complete {
        /// The verified payload bytes.
        payload: &'a [u8],
        /// Total bytes the frame occupies (header + payload).
        consumed: usize,
    },
    /// The buffer ends mid-frame: a torn tail if this is the end of the
    /// log, corruption if any data follows.
    Incomplete,
    /// All bytes are present but the frame fails verification.
    Corrupt {
        /// Which check failed, with the observed and expected values.
        detail: String,
    },
}

/// Decode the frame that starts at `buf[0]`.
pub fn decode_frame(buf: &[u8]) -> FrameDecode<'_> {
    if buf.len() < FRAME_HEADER_LEN {
        return FrameDecode::Incomplete;
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    let expected = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    if len > MAX_FRAME_LEN {
        return FrameDecode::Corrupt {
            detail: format!("frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap"),
        };
    }
    let Some(payload) = buf.get(FRAME_HEADER_LEN..FRAME_HEADER_LEN + len) else {
        return FrameDecode::Incomplete;
    };
    let actual = crc32c(payload);
    if actual != expected {
        return FrameDecode::Corrupt {
            detail: format!("checksum mismatch: stored {expected:#010x}, computed {actual:#010x}"),
        };
    }
    FrameDecode::Complete {
        payload,
        consumed: FRAME_HEADER_LEN + len,
    }
}

/// File name of the segment holding generation `generation`
/// (zero-padded so lexicographic order is numeric order).
pub fn segment_file_name(generation: u64) -> String {
    format!("wal-{generation:020}.seg")
}

/// Parse a generation number back out of a segment file name.
pub fn parse_segment_generation(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal-")?.strip_suffix(".seg")?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// List the segment files in `dir`, sorted by generation. A missing
/// directory is an empty log, not an error.
pub fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(segments),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        if let Some(generation) = entry
            .file_name()
            .to_str()
            .and_then(parse_segment_generation)
        {
            segments.push((generation, entry.path()));
        }
    }
    segments.sort();
    Ok(segments)
}

/// Flush directory metadata so a just-created or just-renamed file
/// survives power loss. Directory fsync is a Unix concept; elsewhere
/// this is a no-op.
pub(crate) fn sync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        std::fs::File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32c_matches_published_test_vectors() {
        // The canonical check value for CRC32C from RFC 3720 appendix.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
    }

    #[test]
    fn frame_round_trip() {
        let payload = b"{\"dataset\":\"iris\"}";
        let frame = encode_frame(payload);
        assert_eq!(frame.len(), FRAME_HEADER_LEN + payload.len());
        match decode_frame(&frame) {
            FrameDecode::Complete {
                payload: decoded,
                consumed,
            } => {
                assert_eq!(decoded, payload);
                assert_eq!(consumed, frame.len());
            }
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn every_truncation_is_incomplete_never_corrupt() {
        let frame = encode_frame(b"torn tails must be recognised, not feared");
        for keep in 0..frame.len() {
            assert_eq!(
                decode_frame(&frame[..keep]),
                FrameDecode::Incomplete,
                "prefix of {keep} bytes"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let frame = encode_frame(b"checksummed");
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut damaged = frame.clone();
                damaged[byte] ^= 1 << bit;
                match decode_frame(&damaged) {
                    FrameDecode::Complete { .. } => {
                        panic!("flip of byte {byte} bit {bit} went undetected")
                    }
                    FrameDecode::Incomplete | FrameDecode::Corrupt { .. } => {}
                }
            }
        }
    }

    #[test]
    fn oversized_length_word_is_corruption_not_allocation() {
        let mut frame = encode_frame(b"x");
        frame[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        match decode_frame(&frame) {
            FrameDecode::Corrupt { detail } => assert!(detail.contains("cap")),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn segment_names_round_trip_and_sort_numerically() {
        assert_eq!(segment_file_name(0), "wal-00000000000000000000.seg");
        assert_eq!(parse_segment_generation(&segment_file_name(42)), Some(42));
        assert_eq!(parse_segment_generation("wal-abc.seg"), None);
        assert_eq!(parse_segment_generation("checkpoint-7.jsonl"), None);
        assert!(segment_file_name(9) < segment_file_name(10));
    }

    #[test]
    fn list_segments_on_missing_dir_is_empty() {
        let dir = std::env::temp_dir().join("openbi-wal-no-such-dir");
        assert!(list_segments(&dir).unwrap().is_empty());
    }
}
