//! The write-ahead-log writer: rotating segments, fsync policy,
//! fault-aware appends.
//!
//! [`WalWriter::append_batch`] is all-or-nothing per batch: every frame
//! of the batch is written (and synced according to policy) or the
//! segment is physically rolled back to its pre-batch length and the
//! error returned, so the log never acknowledges a record it may lose
//! and never leaves its *own* torn bytes behind for recovery to clean
//! up. Torn tails still happen — a crash between `write` and the
//! rollback, or an injected [`FaultKind::ShortWrite`] — and those are
//! exactly what [`recover`](crate::wal::recover) repairs.
//!
//! [`FaultKind::ShortWrite`]: openbi_faults::FaultKind::ShortWrite

use crate::error::{KbError, Result};
use crate::record::ExperimentRecord;
use crate::store::{KnowledgeBase, RecordSink};
use crate::wal::checkpoint::{latest_checkpoint, CheckpointReport};
use crate::wal::segment::{
    encode_frame, list_segments, segment_file_name, sync_dir, SEGMENT_MAGIC,
};
use crate::wal::{APPEND_FAULT_POINT, SYNC_FAULT_POINT};
use openbi_faults::{Corruption, FaultPlan};
use openbi_obs as obs;
use parking_lot::Mutex;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default segment size before rotation: 8 MiB.
pub const DEFAULT_SEGMENT_BYTES: u64 = 8 * 1024 * 1024;

/// Smallest accepted segment size — big enough for the magic plus a
/// frame header, small enough that tests can force rotation.
pub const MIN_SEGMENT_BYTES: u64 = 64;

/// When the log flushes to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fdatasync` after every frame. Strongest guarantee, slowest.
    Always,
    /// `fdatasync` once per appended batch (the default): a crash can
    /// lose only the batch being written, never an acknowledged one.
    #[default]
    Batch,
    /// Never sync; the OS flushes when it pleases. Fastest, and a
    /// power loss may drop acknowledged records — fine for benchmarks
    /// and rerunnable experiment sweeps, wrong for anything else.
    Never,
}

impl FsyncPolicy {
    /// Parse the CLI spelling (`always` | `batch` | `never`).
    pub fn parse(text: &str) -> Option<FsyncPolicy> {
        match text {
            "always" => Some(FsyncPolicy::Always),
            "batch" => Some(FsyncPolicy::Batch),
            "never" => Some(FsyncPolicy::Never),
            _ => None,
        }
    }
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Batch => "batch",
            FsyncPolicy::Never => "never",
        })
    }
}

/// Configuration for [`WalWriter::open`].
#[derive(Debug, Clone)]
pub struct WalOptions {
    pub(crate) dir: PathBuf,
    pub(crate) segment_bytes: u64,
    pub(crate) fsync: FsyncPolicy,
    pub(crate) fault_plan: Option<Arc<FaultPlan>>,
}

impl WalOptions {
    /// Options for a log rooted at `dir`, with the default segment
    /// size and fsync policy.
    pub fn new(dir: impl Into<PathBuf>) -> WalOptions {
        WalOptions {
            dir: dir.into(),
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            fsync: FsyncPolicy::default(),
            fault_plan: None,
        }
    }

    /// Rotate to a fresh segment once the current one reaches `bytes`
    /// (clamped to [`MIN_SEGMENT_BYTES`]).
    pub fn segment_bytes(mut self, bytes: u64) -> WalOptions {
        self.segment_bytes = bytes.max(MIN_SEGMENT_BYTES);
        self
    }

    /// Choose when the log reaches stable storage.
    pub fn fsync(mut self, policy: FsyncPolicy) -> WalOptions {
        self.fsync = policy;
        self
    }

    /// Inject faults from `plan` instead of the process-global plan.
    pub fn fault_plan(mut self, plan: Arc<FaultPlan>) -> WalOptions {
        self.fault_plan = Some(plan);
        self
    }
}

/// Appends checksummed record frames to rotating segment files.
///
/// Not internally synchronised — wrap in a mutex (as
/// [`WalSink`] and the serving layer do) to share across threads.
pub struct WalWriter {
    pub(crate) dir: PathBuf,
    pub(crate) segment_bytes: u64,
    pub(crate) fsync: FsyncPolicy,
    pub(crate) fault_plan: Option<Arc<FaultPlan>>,
    pub(crate) file: File,
    /// Generation of the segment currently being written.
    pub(crate) generation: u64,
    /// Bytes written to the current segment, magic included.
    pub(crate) offset: u64,
    /// Frames acknowledged over the writer's lifetime; doubles as the
    /// deterministic fault key for the next frame.
    pub(crate) frames: u64,
    /// Consecutive failed attempts of the pending operation — lets
    /// `times=N` fault rules exhaust under retry.
    pub(crate) attempt: u32,
    /// Whether unsynced bytes sit in the current segment.
    pub(crate) dirty: bool,
    /// Segment files currently on disk (updated on rotate/compact).
    pub(crate) live_segments: u64,
}

impl fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WalWriter")
            .field("dir", &self.dir)
            .field("generation", &self.generation)
            .field("offset", &self.offset)
            .field("frames", &self.frames)
            .field("fsync", &self.fsync)
            .finish_non_exhaustive()
    }
}

fn io_err(e: std::io::Error) -> KbError {
    KbError::Io(e.to_string())
}

impl WalWriter {
    /// Open the log at `options.dir`, creating the directory if
    /// needed, and start a fresh segment strictly after every existing
    /// segment and checkpoint. Existing segments are never appended
    /// to — recovery replays them, checkpointing compacts them.
    pub fn open(options: WalOptions) -> Result<WalWriter> {
        std::fs::create_dir_all(&options.dir).map_err(io_err)?;
        let segments = list_segments(&options.dir).map_err(io_err)?;
        let max_segment = segments.last().map(|(generation, _)| *generation);
        let max_checkpoint = latest_checkpoint(&options.dir)
            .map_err(io_err)?
            .map(|(watermark, _)| watermark);
        let generation = match max_segment.max(max_checkpoint) {
            Some(max) => max + 1,
            None => 0,
        };
        let path = options.dir.join(segment_file_name(generation));
        let mut file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(&path)
            .map_err(io_err)?;
        file.write_all(&SEGMENT_MAGIC).map_err(io_err)?;
        if options.fsync != FsyncPolicy::Never {
            file.sync_data().map_err(io_err)?;
            sync_dir(&options.dir).map_err(io_err)?;
        }
        let live_segments = segments.len() as u64 + 1;
        obs::gauge_set("kb.wal.segments", live_segments as f64);
        Ok(WalWriter {
            dir: options.dir,
            segment_bytes: options.segment_bytes,
            fsync: options.fsync,
            fault_plan: options.fault_plan,
            file,
            generation,
            offset: SEGMENT_MAGIC.len() as u64,
            frames: 0,
            attempt: 0,
            dirty: false,
            live_segments,
        })
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Generation of the segment currently being written.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Frames acknowledged since this writer opened.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// The fsync policy the writer was opened with.
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.fsync
    }

    fn plan(&self) -> Option<Arc<FaultPlan>> {
        self.fault_plan.clone().or_else(openbi_faults::active)
    }

    /// Append `records` as one atomic batch and return the total frame
    /// count. On any error the segment is rolled back to its pre-batch
    /// length: either every record of the batch is durable (per the
    /// fsync policy) or none is.
    pub fn append_batch(&mut self, records: &[ExperimentRecord]) -> Result<u64> {
        if records.is_empty() {
            return Ok(self.frames);
        }
        if self.offset >= self.segment_bytes {
            self.rotate()?;
        }
        let rollback_offset = self.offset;
        let rollback_frames = self.frames;
        let attempt = self.attempt;
        match self.try_append(records, attempt) {
            Ok(bytes) => {
                self.attempt = 0;
                obs::counter_add("kb.wal.appends_total", records.len() as u64);
                obs::counter_add("kb.wal.bytes_total", bytes);
                Ok(self.frames)
            }
            Err(e) => {
                self.attempt = self.attempt.saturating_add(1);
                obs::counter_add("kb.wal.append_failures_total", 1);
                self.rollback_to(rollback_offset, rollback_frames)?;
                Err(e)
            }
        }
    }

    fn try_append(&mut self, records: &[ExperimentRecord], attempt: u32) -> Result<u64> {
        let plan = self.plan();
        let mut bytes = 0u64;
        for record in records {
            let payload =
                serde_json::to_string(record).map_err(|e| KbError::Serde(e.to_string()))?;
            let mut frame = encode_frame(payload.as_bytes());
            if let Some(plan) = &plan {
                match plan.corrupt_buffer(APPEND_FAULT_POINT, self.frames, attempt, &mut frame) {
                    // A bit flip is *silent* storage corruption: the
                    // damaged frame goes to disk and only recovery's
                    // checksum pass can call it out.
                    Ok(None) | Ok(Some(Corruption::BitFlip { .. })) => {}
                    Ok(Some(Corruption::ShortWrite { kept })) => {
                        // A short write persists a torn prefix and then
                        // fails, exactly like a crash mid-`write`. The
                        // batch rollback truncates it away.
                        self.file.write_all(&frame).map_err(io_err)?;
                        self.dirty = true;
                        return Err(KbError::Wal(format!(
                            "injected short write at frame {} (kept {kept} bytes)",
                            self.frames
                        )));
                    }
                    Err(e) => return Err(KbError::Wal(e.to_string())),
                }
            }
            self.file.write_all(&frame).map_err(io_err)?;
            self.dirty = true;
            self.offset += frame.len() as u64;
            self.frames += 1;
            bytes += frame.len() as u64;
            if self.fsync == FsyncPolicy::Always {
                self.sync_inner(attempt)?;
            }
        }
        if self.fsync == FsyncPolicy::Batch {
            self.sync_inner(attempt)?;
        }
        Ok(bytes)
    }

    /// Flush buffered frames to stable storage regardless of policy
    /// (checkpointing and clean shutdown call this).
    pub fn sync(&mut self) -> Result<()> {
        let attempt = self.attempt;
        match self.sync_inner(attempt) {
            Ok(()) => {
                self.attempt = 0;
                Ok(())
            }
            Err(e) => {
                self.attempt = self.attempt.saturating_add(1);
                Err(e)
            }
        }
    }

    fn sync_inner(&mut self, attempt: u32) -> Result<()> {
        if !self.dirty {
            return Ok(());
        }
        if let Some(plan) = self.plan() {
            plan.fire(SYNC_FAULT_POINT, self.generation, attempt)
                .map_err(|e| KbError::Wal(e.to_string()))?;
        }
        let start = Instant::now();
        self.file.sync_data().map_err(io_err)?;
        obs::observe_duration("kb.wal.fsync.seconds", start.elapsed());
        self.dirty = false;
        Ok(())
    }

    /// Truncate the current segment back to `offset` after a failed
    /// batch, wiping any partially written frames.
    fn rollback_to(&mut self, offset: u64, frames: u64) -> Result<()> {
        self.file.set_len(offset).map_err(io_err)?;
        self.file.seek(SeekFrom::Start(offset)).map_err(io_err)?;
        self.offset = offset;
        self.frames = frames;
        // The truncation itself must reach disk before the caller
        // retries, or a crash could resurrect the wiped bytes.
        if self.fsync != FsyncPolicy::Never {
            self.file.sync_data().map_err(io_err)?;
        }
        self.dirty = false;
        Ok(())
    }

    /// Seal the current segment and start writing generation + 1.
    pub(crate) fn rotate(&mut self) -> Result<()> {
        if self.fsync != FsyncPolicy::Never {
            self.sync()?;
        }
        let generation = self.generation + 1;
        let path = self.dir.join(segment_file_name(generation));
        let mut file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(&path)
            .map_err(io_err)?;
        file.write_all(&SEGMENT_MAGIC).map_err(io_err)?;
        if self.fsync != FsyncPolicy::Never {
            file.sync_data().map_err(io_err)?;
            sync_dir(&self.dir).map_err(io_err)?;
        }
        self.file = file;
        self.generation = generation;
        self.offset = SEGMENT_MAGIC.len() as u64;
        self.dirty = false;
        self.live_segments += 1;
        obs::gauge_set("kb.wal.segments", self.live_segments as f64);
        Ok(())
    }
}

impl Drop for WalWriter {
    fn drop(&mut self) {
        // Best-effort flush on clean shutdown; no fault injection here
        // (a drop during unwinding must not panic or inject).
        if self.dirty && self.fsync != FsyncPolicy::Never {
            let _ = self.file.sync_data();
        }
    }
}

/// A [`RecordSink`] decorator that logs every batch to a [`WalWriter`]
/// before forwarding it to the wrapped sink.
///
/// Logging is retried a few times; if the log persistently fails the
/// batch is forwarded *anyway* and the failure counted — the run
/// degrades from crash-durable to in-memory rather than losing the
/// result or deadlocking the executor (see
/// [`degraded`](WalSink::degraded)).
pub struct WalSink<S> {
    inner: S,
    writer: Mutex<WalWriter>,
    failures: AtomicU64,
}

/// How many times a batch append is retried before degrading.
const WAL_SINK_ATTEMPTS: u32 = 3;

impl<S: RecordSink> WalSink<S> {
    /// Wrap `inner` so every batch is logged to `writer` first.
    pub fn new(inner: S, writer: WalWriter) -> WalSink<S> {
        WalSink {
            inner,
            writer: Mutex::new(writer),
            failures: AtomicU64::new(0),
        }
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Batches that could not be logged (forwarded without
    /// durability).
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// Whether any batch was forwarded without reaching the log.
    pub fn degraded(&self) -> bool {
        self.failures() > 0
    }

    /// Force the log to stable storage.
    pub fn sync(&self) -> Result<()> {
        self.writer.lock().sync()
    }

    /// Checkpoint `kb` and compact segments (see
    /// [`WalWriter::checkpoint`]).
    pub fn checkpoint(&self, kb: &KnowledgeBase) -> Result<CheckpointReport> {
        self.writer.lock().checkpoint(kb)
    }
}

impl<S: RecordSink> RecordSink for WalSink<S> {
    fn add_batch(&self, records: Vec<ExperimentRecord>) {
        if !records.is_empty() {
            let mut writer = self.writer.lock();
            let mut logged = false;
            for _ in 0..WAL_SINK_ATTEMPTS {
                if writer.append_batch(&records).is_ok() {
                    logged = true;
                    break;
                }
            }
            drop(writer);
            if !logged {
                self.failures.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.inner.add_batch(records);
    }
}
