//! Error type for the LOD substrate.

use std::fmt;

/// Errors produced by RDF parsing, querying and tabularization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LodError {
    /// Syntax error while parsing N-Triples or Turtle input.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An IRI was syntactically invalid.
    InvalidIri(String),
    /// An undeclared prefix was used in Turtle input.
    UnknownPrefix(String),
    /// A query referenced an unbound variable.
    UnboundVariable(String),
    /// Tabularization failed (e.g. no entities of the requested class).
    Tabularize(String),
    /// An I/O error, carried as a string to keep the error type `Clone`.
    Io(String),
}

impl fmt::Display for LodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LodError::Parse { line, message } => {
                write!(f, "RDF parse error at line {line}: {message}")
            }
            LodError::InvalidIri(iri) => write!(f, "invalid IRI: {iri}"),
            LodError::UnknownPrefix(p) => write!(f, "unknown prefix: {p}"),
            LodError::UnboundVariable(v) => write!(f, "unbound variable: ?{v}"),
            LodError::Tabularize(msg) => write!(f, "tabularization error: {msg}"),
            LodError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for LodError {}

impl From<std::io::Error> for LodError {
    fn from(e: std::io::Error) -> Self {
        LodError::Io(e.to_string())
    }
}

/// Convenience result alias for LOD operations.
pub type Result<T> = std::result::Result<T, LodError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(LodError::Parse {
            line: 3,
            message: "bad".into()
        }
        .to_string()
        .contains("line 3"));
        assert!(LodError::UnknownPrefix("ex".into())
            .to_string()
            .contains("ex"));
        assert!(LodError::UnboundVariable("x".into())
            .to_string()
            .contains("?x"));
    }
}
