//! An in-memory, indexed RDF graph (triple store).
//!
//! Terms are interned to `u32` ids; triples are kept in three sorted
//! permutation indexes (SPO, POS, OSP) so every single-pattern lookup is a
//! logarithmic range scan regardless of which positions are bound.

use crate::term::{Iri, Term};
use std::collections::{BTreeSet, HashMap};
use std::ops::Bound;

/// A single RDF triple.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// Subject (IRI or blank node).
    pub subject: Term,
    /// Predicate (IRI).
    pub predicate: Term,
    /// Object (any term).
    pub object: Term,
}

impl Triple {
    /// Create a triple.
    pub fn new(subject: Term, predicate: Term, object: Term) -> Self {
        debug_assert!(subject.is_subject(), "literal in subject position");
        debug_assert!(
            matches!(predicate, Term::Iri(_)),
            "predicate must be an IRI"
        );
        Triple {
            subject,
            predicate,
            object,
        }
    }
}

impl std::fmt::Display for Triple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

/// An indexed set of triples with term interning.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    terms: Vec<Term>,
    ids: HashMap<Term, u32>,
    spo: BTreeSet<(u32, u32, u32)>,
    pos: BTreeSet<(u32, u32, u32)>,
    osp: BTreeSet<(u32, u32, u32)>,
}

impl Graph {
    /// Create an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// True iff the graph holds no triples.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Number of distinct interned terms.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    fn intern(&mut self, term: &Term) -> u32 {
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        let id = self.terms.len() as u32;
        self.terms.push(term.clone());
        self.ids.insert(term.clone(), id);
        id
    }

    fn lookup(&self, term: &Term) -> Option<u32> {
        self.ids.get(term).copied()
    }

    fn term(&self, id: u32) -> &Term {
        &self.terms[id as usize]
    }

    /// Insert a triple; returns true if it was not already present.
    pub fn insert(&mut self, triple: Triple) -> bool {
        let s = self.intern(&triple.subject);
        let p = self.intern(&triple.predicate);
        let o = self.intern(&triple.object);
        let added = self.spo.insert((s, p, o));
        if added {
            self.pos.insert((p, o, s));
            self.osp.insert((o, s, p));
        }
        added
    }

    /// Convenience insert from parts.
    pub fn add(&mut self, subject: Term, predicate: Term, object: Term) -> bool {
        self.insert(Triple::new(subject, predicate, object))
    }

    /// Remove a triple; returns true if it was present.
    pub fn remove(&mut self, triple: &Triple) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.lookup(&triple.subject),
            self.lookup(&triple.predicate),
            self.lookup(&triple.object),
        ) else {
            return false;
        };
        let removed = self.spo.remove(&(s, p, o));
        if removed {
            self.pos.remove(&(p, o, s));
            self.osp.remove(&(o, s, p));
        }
        removed
    }

    /// Whether a triple is present.
    pub fn contains(&self, triple: &Triple) -> bool {
        match (
            self.lookup(&triple.subject),
            self.lookup(&triple.predicate),
            self.lookup(&triple.object),
        ) {
            (Some(s), Some(p), Some(o)) => self.spo.contains(&(s, p, o)),
            _ => false,
        }
    }

    /// Iterate over all triples in SPO order.
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.spo.iter().map(move |&(s, p, o)| {
            Triple::new(
                self.term(s).clone(),
                self.term(p).clone(),
                self.term(o).clone(),
            )
        })
    }

    fn scan_index(
        index: &BTreeSet<(u32, u32, u32)>,
        first: Option<u32>,
        second: Option<u32>,
    ) -> Vec<(u32, u32, u32)> {
        match (first, second) {
            (Some(a), Some(b)) => index
                .range((
                    Bound::Included((a, b, 0)),
                    Bound::Included((a, b, u32::MAX)),
                ))
                .copied()
                .collect(),
            (Some(a), None) => index
                .range((
                    Bound::Included((a, 0, 0)),
                    Bound::Included((a, u32::MAX, u32::MAX)),
                ))
                .copied()
                .collect(),
            _ => index.iter().copied().collect(),
        }
    }

    /// Find all triples matching a pattern with optionally bound positions.
    pub fn match_pattern(
        &self,
        subject: Option<&Term>,
        predicate: Option<&Term>,
        object: Option<&Term>,
    ) -> Vec<Triple> {
        // Resolve bound terms; a bound term not present in the graph
        // matches nothing.
        let s = match subject {
            Some(t) => match self.lookup(t) {
                Some(id) => Some(id),
                None => return vec![],
            },
            None => None,
        };
        let p = match predicate {
            Some(t) => match self.lookup(t) {
                Some(id) => Some(id),
                None => return vec![],
            },
            None => None,
        };
        let o = match object {
            Some(t) => match self.lookup(t) {
                Some(id) => Some(id),
                None => return vec![],
            },
            None => None,
        };
        let raw: Vec<(u32, u32, u32)> = match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                if self.spo.contains(&(s, p, o)) {
                    vec![(s, p, o)]
                } else {
                    vec![]
                }
            }
            (Some(_), _, None) => Self::scan_index(&self.spo, s, p),
            (Some(s), None, Some(o)) => Self::scan_index(&self.osp, Some(o), Some(s))
                .into_iter()
                .map(|(o, s, p)| (s, p, o))
                .collect(),
            (None, Some(p2), _) => Self::scan_index(&self.pos, Some(p2), o)
                .into_iter()
                .map(|(p, o, s)| (s, p, o))
                .collect(),
            (None, None, Some(o2)) => Self::scan_index(&self.osp, Some(o2), None)
                .into_iter()
                .map(|(o, s, p)| (s, p, o))
                .collect(),
            (None, None, None) => self.spo.iter().copied().collect(),
        };
        raw.into_iter()
            .map(|(s, p, o)| {
                Triple::new(
                    self.term(s).clone(),
                    self.term(p).clone(),
                    self.term(o).clone(),
                )
            })
            .collect()
    }

    /// All objects of `(subject, predicate, ?o)`.
    pub fn objects(&self, subject: &Term, predicate: &Term) -> Vec<Term> {
        self.match_pattern(Some(subject), Some(predicate), None)
            .into_iter()
            .map(|t| t.object)
            .collect()
    }

    /// All subjects of `(?s, predicate, object)`.
    pub fn subjects(&self, predicate: &Term, object: &Term) -> Vec<Term> {
        self.match_pattern(None, Some(predicate), Some(object))
            .into_iter()
            .map(|t| t.subject)
            .collect()
    }

    /// All subjects with `rdf:type` equal to `class`.
    pub fn subjects_of_type(&self, class: &Iri) -> Vec<Term> {
        self.subjects(
            &Term::Iri(crate::vocab::rdf::type_()),
            &Term::Iri(class.clone()),
        )
    }

    /// All distinct predicates used by subjects of the given class.
    pub fn predicates_of_type(&self, class: &Iri) -> Vec<Iri> {
        let mut out: Vec<Iri> = Vec::new();
        for s in self.subjects_of_type(class) {
            for t in self.match_pattern(Some(&s), None, None) {
                if let Term::Iri(p) = &t.predicate {
                    if !out.contains(p) {
                        out.push(p.clone());
                    }
                }
            }
        }
        out
    }

    /// Merge all triples of `other` into `self`; returns how many were new.
    pub fn merge(&mut self, other: &Graph) -> usize {
        let mut added = 0;
        for t in other.iter() {
            if self.insert(t) {
                added += 1;
            }
        }
        added
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Literal;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    const EX: &str = "http://ex.org/";

    fn sample() -> Graph {
        let mut g = Graph::new();
        g.insert(t(
            &format!("{EX}a"),
            &format!("{EX}knows"),
            &format!("{EX}b"),
        ));
        g.insert(t(
            &format!("{EX}a"),
            &format!("{EX}knows"),
            &format!("{EX}c"),
        ));
        g.insert(t(
            &format!("{EX}b"),
            &format!("{EX}knows"),
            &format!("{EX}c"),
        ));
        g.add(
            Term::iri(&format!("{EX}a")),
            Term::iri(&format!("{EX}age")),
            Term::Literal(Literal::integer(30)),
        );
        g
    }

    #[test]
    fn insert_is_idempotent() {
        let mut g = sample();
        assert_eq!(g.len(), 4);
        assert!(!g.insert(t(
            &format!("{EX}a"),
            &format!("{EX}knows"),
            &format!("{EX}b")
        )));
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn remove_and_contains() {
        let mut g = sample();
        let tr = t(&format!("{EX}a"), &format!("{EX}knows"), &format!("{EX}b"));
        assert!(g.contains(&tr));
        assert!(g.remove(&tr));
        assert!(!g.contains(&tr));
        assert!(!g.remove(&tr));
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn pattern_s_bound() {
        let g = sample();
        let a = Term::iri(&format!("{EX}a"));
        let found = g.match_pattern(Some(&a), None, None);
        assert_eq!(found.len(), 3);
    }

    #[test]
    fn pattern_p_bound() {
        let g = sample();
        let knows = Term::iri(&format!("{EX}knows"));
        assert_eq!(g.match_pattern(None, Some(&knows), None).len(), 3);
    }

    #[test]
    fn pattern_o_bound() {
        let g = sample();
        let c = Term::iri(&format!("{EX}c"));
        let found = g.match_pattern(None, None, Some(&c));
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|t| t.object == c));
    }

    #[test]
    fn pattern_sp_bound() {
        let g = sample();
        let a = Term::iri(&format!("{EX}a"));
        let knows = Term::iri(&format!("{EX}knows"));
        assert_eq!(g.match_pattern(Some(&a), Some(&knows), None).len(), 2);
    }

    #[test]
    fn pattern_so_bound() {
        let g = sample();
        let a = Term::iri(&format!("{EX}a"));
        let c = Term::iri(&format!("{EX}c"));
        let found = g.match_pattern(Some(&a), None, Some(&c));
        assert_eq!(found.len(), 1);
    }

    #[test]
    fn pattern_po_bound() {
        let g = sample();
        let knows = Term::iri(&format!("{EX}knows"));
        let c = Term::iri(&format!("{EX}c"));
        assert_eq!(g.match_pattern(None, Some(&knows), Some(&c)).len(), 2);
    }

    #[test]
    fn pattern_unknown_term_matches_nothing() {
        let g = sample();
        let z = Term::iri(&format!("{EX}zzz"));
        assert!(g.match_pattern(Some(&z), None, None).is_empty());
    }

    #[test]
    fn objects_and_subjects_helpers() {
        let g = sample();
        let a = Term::iri(&format!("{EX}a"));
        let knows = Term::iri(&format!("{EX}knows"));
        assert_eq!(g.objects(&a, &knows).len(), 2);
        let c = Term::iri(&format!("{EX}c"));
        assert_eq!(g.subjects(&knows, &c).len(), 2);
    }

    #[test]
    fn type_helpers() {
        let mut g = Graph::new();
        let person = Iri::new(format!("{EX}Person")).unwrap();
        g.add(
            Term::iri(&format!("{EX}a")),
            Term::Iri(crate::vocab::rdf::type_()),
            Term::Iri(person.clone()),
        );
        g.add(
            Term::iri(&format!("{EX}a")),
            Term::iri(&format!("{EX}age")),
            Term::Literal(Literal::integer(5)),
        );
        let subs = g.subjects_of_type(&person);
        assert_eq!(subs.len(), 1);
        let preds = g.predicates_of_type(&person);
        assert_eq!(preds.len(), 2); // rdf:type and ex:age
    }

    #[test]
    fn merge_counts_new_triples() {
        let mut g = sample();
        let mut h = Graph::new();
        h.insert(t(
            &format!("{EX}a"),
            &format!("{EX}knows"),
            &format!("{EX}b"),
        ));
        h.insert(t(
            &format!("{EX}x"),
            &format!("{EX}knows"),
            &format!("{EX}y"),
        ));
        assert_eq!(g.merge(&h), 1);
        assert_eq!(g.len(), 5);
    }

    #[test]
    fn iter_round_trip() {
        let g = sample();
        let collected: Vec<Triple> = g.iter().collect();
        assert_eq!(collected.len(), g.len());
        for t in &collected {
            assert!(g.contains(t));
        }
    }
}
