//! # openbi-lod
//!
//! Linked Open Data substrate for OpenBI: an in-memory indexed RDF triple
//! store, N-Triples and Turtle-subset parsers/serializers, a SPARQL-lite
//! basic-graph-pattern query engine, tabularization (graph → table pivot)
//! and publication (table / quality measurements / advice / rules → LOD).
//!
//! Together with `openbi-table` this implements both directions of the
//! OpenBI vision (paper §1): *analyze* LOD by turning it into a common
//! tabular representation, and *share* acquired information back as LOD.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod graph;
pub mod ntriples;
pub mod publish;
pub mod query;
pub mod tabularize;
pub mod term;
pub mod turtle;
pub mod turtle_writer;
pub mod vocab;

pub use error::{LodError, Result};
pub use graph::{Graph, Triple};
pub use ntriples::{parse_ntriples, write_ntriples};
pub use publish::{
    publish_advice, publish_quality_measurements, publish_rules, publish_table, PublishableRule,
};
pub use query::{Binding, Node, Query, TriplePattern};
pub use tabularize::{tabularize, MultiValue, TabularizeOptions};
pub use term::{Iri, Literal, Term};
pub use turtle::parse_turtle;
pub use turtle_writer::{write_turtle, PrefixMap};
