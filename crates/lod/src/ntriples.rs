//! N-Triples parsing and serialization.
//!
//! Supports the full term syntax used by this system: IRIs, blank nodes,
//! plain / language-tagged / datatyped literals with the standard string
//! escapes, and `#` comments.

use crate::error::{LodError, Result};
use crate::graph::{Graph, Triple};
use crate::term::{Iri, Literal, Term};
use std::fmt::Write as _;

/// A cursor over one line of N-Triples input.
struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str, line: usize) -> Self {
        Cursor {
            chars: text.chars().peekable(),
            line,
        }
    }

    fn err(&self, message: impl Into<String>) -> LodError {
        LodError::Parse {
            line: self.line,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some(c) if c.is_whitespace()) {
            self.chars.next();
        }
    }

    fn expect(&mut self, c: char) -> Result<()> {
        match self.chars.next() {
            Some(x) if x == c => Ok(()),
            other => Err(self.err(format!("expected {c:?}, found {other:?}"))),
        }
    }

    fn parse_iri(&mut self) -> Result<Iri> {
        self.expect('<')?;
        let mut s = String::new();
        loop {
            match self.chars.next() {
                Some('>') => break,
                Some(c) => s.push(c),
                None => return Err(self.err("unterminated IRI")),
            }
        }
        Iri::new(s)
    }

    fn parse_blank(&mut self) -> Result<Term> {
        self.expect('_')?;
        self.expect(':')?;
        let mut s = String::new();
        while matches!(self.chars.peek(), Some(c) if c.is_alphanumeric() || *c == '_' || *c == '-')
        {
            s.push(self.chars.next().expect("peeked"));
        }
        if s.is_empty() {
            return Err(self.err("empty blank node label"));
        }
        Ok(Term::Blank(s))
    }

    fn parse_escape(&mut self) -> Result<char> {
        match self.chars.next() {
            Some('n') => Ok('\n'),
            Some('r') => Ok('\r'),
            Some('t') => Ok('\t'),
            Some('"') => Ok('"'),
            Some('\\') => Ok('\\'),
            Some('u') => {
                let hex: String = (0..4)
                    .map(|_| self.chars.next().ok_or_else(|| self.err("truncated \\u")))
                    .collect::<Result<String>>()?;
                let code = u32::from_str_radix(&hex, 16)
                    .map_err(|_| self.err(format!("bad \\u escape: {hex}")))?;
                char::from_u32(code).ok_or_else(|| self.err("invalid unicode escape"))
            }
            other => Err(self.err(format!("unknown escape \\{other:?}"))),
        }
    }

    fn parse_literal(&mut self) -> Result<Literal> {
        self.expect('"')?;
        let mut lexical = String::new();
        loop {
            match self.chars.next() {
                Some('"') => break,
                Some('\\') => lexical.push(self.parse_escape()?),
                Some(c) => lexical.push(c),
                None => return Err(self.err("unterminated literal")),
            }
        }
        match self.chars.peek() {
            Some('@') => {
                self.chars.next();
                let mut tag = String::new();
                while matches!(self.chars.peek(), Some(c) if c.is_ascii_alphanumeric() || *c == '-')
                {
                    tag.push(self.chars.next().expect("peeked"));
                }
                if tag.is_empty() {
                    return Err(self.err("empty language tag"));
                }
                Ok(Literal::lang(lexical, tag))
            }
            Some('^') => {
                self.chars.next();
                self.expect('^')?;
                let dt = self.parse_iri()?;
                Ok(Literal::typed(lexical, dt))
            }
            _ => Ok(Literal::plain(lexical)),
        }
    }

    fn parse_term(&mut self) -> Result<Term> {
        self.skip_ws();
        match self.chars.peek().copied() {
            Some('<') => Ok(Term::Iri(self.parse_iri()?)),
            Some('_') => self.parse_blank(),
            Some('"') => Ok(Term::Literal(self.parse_literal()?)),
            other => Err(self.err(format!("expected term, found {other:?}"))),
        }
    }

    fn parse_triple(&mut self) -> Result<Triple> {
        let subject = self.parse_term()?;
        if !subject.is_subject() {
            return Err(self.err("literal in subject position"));
        }
        let predicate = self.parse_term()?;
        if !matches!(predicate, Term::Iri(_)) {
            return Err(self.err("predicate must be an IRI"));
        }
        let object = self.parse_term()?;
        self.skip_ws();
        self.expect('.')?;
        self.skip_ws();
        match self.chars.peek().copied() {
            None | Some('#') => Ok(Triple::new(subject, predicate, object)),
            Some(c) => Err(self.err(format!("trailing content after '.': {c:?}"))),
        }
    }
}

/// Parse an N-Triples document into a graph.
pub fn parse_ntriples(text: &str) -> Result<Graph> {
    let mut g = Graph::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut cur = Cursor::new(line, i + 1);
        g.insert(cur.parse_triple()?);
    }
    Ok(g)
}

/// Serialize a graph as N-Triples (one triple per line, SPO order).
pub fn write_ntriples(graph: &Graph) -> String {
    let mut out = String::new();
    for t in graph.iter() {
        let _ = writeln!(out, "{t}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_iri_triple() {
        let g = parse_ntriples("<http://e.org/a> <http://e.org/p> <http://e.org/b> .\n").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn parses_literals() {
        let src = r#"<http://e.org/a> <http://e.org/name> "Alice" .
<http://e.org/a> <http://e.org/age> "30"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://e.org/a> <http://e.org/greet> "hola"@es .
"#;
        let g = parse_ntriples(src).unwrap();
        assert_eq!(g.len(), 3);
        let a = Term::iri("http://e.org/a");
        let age = Term::iri("http://e.org/age");
        let objs = g.objects(&a, &age);
        assert_eq!(objs[0].as_literal().unwrap().as_i64(), Some(30));
    }

    #[test]
    fn parses_escapes() {
        let src = "<http://e.org/a> <http://e.org/v> \"a\\\"b\\nc\\u0041\" .\n";
        let g = parse_ntriples(src).unwrap();
        let lit = g.iter().next().unwrap().object;
        assert_eq!(lit.as_literal().unwrap().lexical, "a\"b\ncA");
    }

    #[test]
    fn parses_blank_nodes() {
        let g = parse_ntriples("_:b0 <http://e.org/p> _:b1 .\n").unwrap();
        let t = g.iter().next().unwrap();
        assert_eq!(t.subject, Term::Blank("b0".into()));
        assert_eq!(t.object, Term::Blank("b1".into()));
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let src =
            "# a comment\n\n<http://e.org/a> <http://e.org/p> <http://e.org/b> . # trailing\n";
        let g = parse_ntriples(src).unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn error_reports_line_numbers() {
        let src = "<http://e.org/a> <http://e.org/p> <http://e.org/b> .\nnot a triple\n";
        match parse_ntriples(src).unwrap_err() {
            LodError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_literal_subject() {
        assert!(parse_ntriples("\"x\" <http://e.org/p> <http://e.org/b> .\n").is_err());
    }

    #[test]
    fn rejects_missing_dot() {
        assert!(parse_ntriples("<http://e.org/a> <http://e.org/p> <http://e.org/b>\n").is_err());
    }

    #[test]
    fn round_trip_preserves_graph() {
        let src = r#"<http://e.org/a> <http://e.org/name> "Al\"ice\n" .
<http://e.org/a> <http://e.org/age> "30"^^<http://www.w3.org/2001/XMLSchema#integer> .
_:b <http://e.org/p> "x"@en .
"#;
        let g = parse_ntriples(src).unwrap();
        let text = write_ntriples(&g);
        let g2 = parse_ntriples(&text).unwrap();
        assert_eq!(g.len(), g2.len());
        for t in g.iter() {
            assert!(g2.contains(&t), "missing {t}");
        }
    }
}
