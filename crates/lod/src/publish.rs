//! Publishing tabular data and analysis results back as Linked Open Data.
//!
//! The second half of the OpenBI vision: "share the new acquired
//! information as LOD to be reused by anyone" (paper §1). These helpers
//! produce graphs in the `obi:` vocabulary that round-trip through the
//! N-Triples serializer.

use crate::error::Result;
use crate::graph::Graph;
use crate::term::{Iri, Literal, Term};
use crate::vocab::{obi, rdf, rdfs};
use openbi_table::{Table, Value};

fn slugify(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('-') && !out.is_empty() {
            out.push('-');
        }
    }
    out.trim_matches('-').to_string()
}

/// Slug for property IRIs: keeps word characters (so tabularization
/// round-trips column names exactly), replaces anything else with '-'.
fn prop_slug(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect()
}

fn value_to_object(v: &Value) -> Option<Term> {
    match v {
        Value::Null => None,
        Value::Int(i) => Some(Term::Literal(Literal::integer(*i))),
        Value::Float(f) => Some(Term::Literal(Literal::double(*f))),
        Value::Bool(b) => Some(Term::Literal(Literal::boolean(*b))),
        Value::Str(s) => Some(Term::Literal(Literal::plain(s.clone()))),
    }
}

/// Publish a table as LOD: one `obi:Dataset` resource, one `obi:Column`
/// resource per column, and one entity per row under `base_iri` with a
/// predicate per column.
pub fn publish_table(table: &Table, base_iri: &str, dataset_name: &str) -> Result<Graph> {
    let mut g = Graph::new();
    let base = base_iri.trim_end_matches('/');
    let slug = slugify(dataset_name);
    let ds = Term::Iri(Iri::new(format!("{base}/dataset/{slug}"))?);
    g.add(
        ds.clone(),
        Term::Iri(rdf::type_()),
        Term::Iri(obi::dataset()),
    );
    g.add(
        ds.clone(),
        Term::Iri(rdfs::label()),
        Term::Literal(Literal::plain(dataset_name)),
    );
    g.add(
        ds.clone(),
        Term::Iri(obi::row_count()),
        Term::Literal(Literal::integer(table.n_rows() as i64)),
    );
    let mut pred_iris = Vec::new();
    for field in table.schema().fields() {
        let col_slug = prop_slug(&field.name);
        let col = Term::Iri(Iri::new(format!(
            "{base}/dataset/{slug}/column/{col_slug}"
        ))?);
        g.add(
            col.clone(),
            Term::Iri(rdf::type_()),
            Term::Iri(obi::column()),
        );
        g.add(
            col.clone(),
            Term::Iri(rdfs::label()),
            Term::Literal(Literal::plain(field.name.clone())),
        );
        g.add(
            col.clone(),
            Term::Iri(obi::data_type()),
            Term::Literal(Literal::plain(field.dtype.to_string())),
        );
        g.add(ds.clone(), Term::Iri(obi::has_column()), col);
        pred_iris.push(Term::Iri(Iri::new(format!("{base}/prop/{col_slug}"))?));
    }
    let row_class = Term::Iri(Iri::new(format!("{base}/dataset/{slug}/Row"))?);
    for (ri, row) in table.iter_rows().enumerate() {
        let entity = Term::Iri(Iri::new(format!("{base}/dataset/{slug}/row/{ri}"))?);
        g.add(entity.clone(), Term::Iri(rdf::type_()), row_class.clone());
        for (pred, v) in pred_iris.iter().zip(&row) {
            if let Some(obj) = value_to_object(v) {
                g.add(entity.clone(), pred.clone(), obj);
            }
        }
    }
    Ok(g)
}

/// Publish a set of data-quality measurements for a dataset.
pub fn publish_quality_measurements(
    base_iri: &str,
    dataset_name: &str,
    measurements: &[(String, f64)],
) -> Result<Graph> {
    let mut g = Graph::new();
    let base = base_iri.trim_end_matches('/');
    let slug = slugify(dataset_name);
    let ds = Term::Iri(Iri::new(format!("{base}/dataset/{slug}"))?);
    for (i, (criterion, value)) in measurements.iter().enumerate() {
        let m = Term::Iri(Iri::new(format!("{base}/dataset/{slug}/quality/{i}"))?);
        g.add(
            m.clone(),
            Term::Iri(rdf::type_()),
            Term::Iri(obi::quality_measurement()),
        );
        g.add(
            m.clone(),
            Term::Iri(obi::criterion()),
            Term::Literal(Literal::plain(criterion.clone())),
        );
        g.add(
            m.clone(),
            Term::Iri(obi::measured_value()),
            Term::Literal(Literal::double(*value)),
        );
        g.add(ds.clone(), Term::Iri(obi::has_quality()), m);
    }
    Ok(g)
}

/// Publish the advisor's recommendation ("the best option is ALGORITHM X")
/// as an `obi:Advice` resource with a ranked list of alternatives.
pub fn publish_advice(
    base_iri: &str,
    dataset_name: &str,
    ranking: &[(String, f64)],
) -> Result<Graph> {
    let mut g = Graph::new();
    let base = base_iri.trim_end_matches('/');
    let slug = slugify(dataset_name);
    let ds = Term::Iri(Iri::new(format!("{base}/dataset/{slug}"))?);
    for (rank, (algorithm, score)) in ranking.iter().enumerate() {
        let a = Term::Iri(Iri::new(format!("{base}/dataset/{slug}/advice/{rank}"))?);
        g.add(a.clone(), Term::Iri(rdf::type_()), Term::Iri(obi::advice()));
        g.add(
            a.clone(),
            Term::Iri(obi::recommended_algorithm()),
            Term::Literal(Literal::plain(algorithm.clone())),
        );
        g.add(
            a.clone(),
            Term::Iri(obi::expected_score()),
            Term::Literal(Literal::double(*score)),
        );
        g.add(ds.clone(), Term::Iri(rdfs::see_also()), a);
    }
    Ok(g)
}

/// Publish mined association rules as `obi:AssociationRule` resources.
pub fn publish_rules(
    base_iri: &str,
    dataset_name: &str,
    rules: &[PublishableRule],
) -> Result<Graph> {
    let mut g = Graph::new();
    let base = base_iri.trim_end_matches('/');
    let slug = slugify(dataset_name);
    for (i, rule) in rules.iter().enumerate() {
        let r = Term::Iri(Iri::new(format!("{base}/dataset/{slug}/rule/{i}"))?);
        g.add(
            r.clone(),
            Term::Iri(rdf::type_()),
            Term::Iri(obi::association_rule()),
        );
        g.add(
            r.clone(),
            Term::Iri(obi::antecedent()),
            Term::Literal(Literal::plain(rule.antecedent.clone())),
        );
        g.add(
            r.clone(),
            Term::Iri(obi::consequent()),
            Term::Literal(Literal::plain(rule.consequent.clone())),
        );
        g.add(
            r.clone(),
            Term::Iri(obi::support()),
            Term::Literal(Literal::double(rule.support)),
        );
        g.add(
            r.clone(),
            Term::Iri(obi::confidence()),
            Term::Literal(Literal::double(rule.confidence)),
        );
        g.add(
            r.clone(),
            Term::Iri(obi::lift()),
            Term::Literal(Literal::double(rule.lift)),
        );
    }
    Ok(g)
}

/// A mined rule in publishable (serialized) form. Kept vocabulary-level
/// here so the LOD crate does not depend on the mining crate.
#[derive(Debug, Clone, PartialEq)]
pub struct PublishableRule {
    /// Rendered antecedent, e.g. `"district=north & spend=high"`.
    pub antecedent: String,
    /// Rendered consequent.
    pub consequent: String,
    /// Rule support in `[0,1]`.
    pub support: f64,
    /// Rule confidence in `[0,1]`.
    pub confidence: f64,
    /// Rule lift (`>1` means positive association).
    pub lift: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ntriples::{parse_ntriples, write_ntriples};
    use crate::tabularize::{tabularize, TabularizeOptions};
    use openbi_table::Column;

    fn sample_table() -> Table {
        Table::new(vec![
            Column::from_str_values("city", ["Alicante", "Elche"]),
            Column::from_f64("pm10", [21.5, 33.0]),
            Column::from_opt_i64("sensors", [Some(4), None]),
        ])
        .unwrap()
    }

    #[test]
    fn publish_table_links_columns_and_rows() {
        let g = publish_table(&sample_table(), "http://openbi.org", "Air Quality").unwrap();
        let ds = Term::iri("http://openbi.org/dataset/air-quality");
        let cols = g.objects(&ds, &Term::Iri(obi::has_column()));
        assert_eq!(cols.len(), 3);
        let rows =
            g.subjects_of_type(&Iri::new("http://openbi.org/dataset/air-quality/Row").unwrap());
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn nulls_are_not_published() {
        let g = publish_table(&sample_table(), "http://openbi.org", "aq").unwrap();
        let pred = Term::iri("http://openbi.org/prop/sensors");
        assert_eq!(g.match_pattern(None, Some(&pred), None).len(), 1);
    }

    #[test]
    fn published_table_round_trips_through_tabularize() {
        let t = sample_table();
        let g = publish_table(&t, "http://openbi.org", "aq").unwrap();
        let row_class = Iri::new("http://openbi.org/dataset/aq/Row").unwrap();
        let opts = TabularizeOptions {
            include_iri: false,
            ..Default::default()
        };
        let back = tabularize(&g, &row_class, &opts).unwrap();
        assert_eq!(back.n_rows(), 2);
        assert!(back.has_column("city"));
        assert!(back.has_column("pm10"));
        // Round-trip through N-Triples text too.
        let text = write_ntriples(&g);
        let g2 = parse_ntriples(&text).unwrap();
        assert_eq!(g.len(), g2.len());
    }

    #[test]
    fn quality_measurements_publish() {
        let g = publish_quality_measurements(
            "http://openbi.org",
            "aq",
            &[("completeness".into(), 0.83), ("duplicates".into(), 0.02)],
        )
        .unwrap();
        let measurements = g.subjects_of_type(&obi::quality_measurement());
        assert_eq!(measurements.len(), 2);
        let ds = Term::iri("http://openbi.org/dataset/aq");
        assert_eq!(g.objects(&ds, &Term::Iri(obi::has_quality())).len(), 2);
    }

    #[test]
    fn advice_publishes_ranking() {
        let g = publish_advice(
            "http://openbi.org",
            "aq",
            &[("NaiveBayes".into(), 0.91), ("DecisionTree".into(), 0.88)],
        )
        .unwrap();
        assert_eq!(g.subjects_of_type(&obi::advice()).len(), 2);
        let best = Term::iri("http://openbi.org/dataset/aq/advice/0");
        let alg = g.objects(&best, &Term::Iri(obi::recommended_algorithm()));
        assert_eq!(alg[0].as_literal().unwrap().lexical, "NaiveBayes");
    }

    #[test]
    fn rules_publish_with_metrics() {
        let rule = PublishableRule {
            antecedent: "district=north".into(),
            consequent: "overspend=yes".into(),
            support: 0.2,
            confidence: 0.8,
            lift: 1.5,
        };
        let g = publish_rules("http://openbi.org", "budget", &[rule]).unwrap();
        let r = Term::iri("http://openbi.org/dataset/budget/rule/0");
        assert_eq!(
            g.objects(&r, &Term::Iri(obi::lift()))[0]
                .as_literal()
                .unwrap()
                .as_f64(),
            Some(1.5)
        );
    }

    #[test]
    fn slugify_normalizes() {
        assert_eq!(slugify("Air Quality 2024!"), "air-quality-2024");
        assert_eq!(slugify("--x--"), "x");
    }

    #[test]
    fn prop_slug_preserves_underscores() {
        assert_eq!(prop_slug("aqi_band"), "aqi_band");
        assert_eq!(prop_slug("PM 10"), "pm-10");
    }

    #[test]
    fn underscore_columns_round_trip() {
        let t = Table::new(vec![Column::from_f64("aqi_band", [1.0, 2.0])]).unwrap();
        let g = publish_table(&t, "http://openbi.org", "x").unwrap();
        let row_class = Iri::new("http://openbi.org/dataset/x/Row").unwrap();
        let opts = TabularizeOptions {
            include_iri: false,
            ..Default::default()
        };
        let back = tabularize(&g, &row_class, &opts).unwrap();
        assert!(back.has_column("aqi_band"));
    }
}
