//! SPARQL-lite: basic graph pattern matching with variables, joins,
//! filters and projection.
//!
//! This is the analytical query path of the LOD substrate — enough to
//! express the attribute-extraction queries tabularization and the OpenBI
//! pipeline need, without a full SPARQL engine.

use crate::error::{LodError, Result};
use crate::graph::Graph;
use crate::term::Term;
use std::collections::HashMap;

/// One position of a triple pattern: a constant term or a variable.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// A constant term that must match exactly.
    Term(Term),
    /// A named variable (without the `?`).
    Var(String),
}

impl Node {
    /// Shorthand for a variable node.
    pub fn var(name: impl Into<String>) -> Node {
        Node::Var(name.into())
    }

    /// Shorthand for a constant IRI node.
    pub fn iri(iri: &str) -> Node {
        Node::Term(Term::iri(iri))
    }
}

impl From<Term> for Node {
    fn from(t: Term) -> Node {
        Node::Term(t)
    }
}

/// A triple pattern over constants and variables.
#[derive(Debug, Clone, PartialEq)]
pub struct TriplePattern {
    /// Subject position.
    pub subject: Node,
    /// Predicate position.
    pub predicate: Node,
    /// Object position.
    pub object: Node,
}

impl TriplePattern {
    /// Create a pattern.
    pub fn new(subject: Node, predicate: Node, object: Node) -> Self {
        TriplePattern {
            subject,
            predicate,
            object,
        }
    }
}

/// A set of variable bindings (one solution row).
pub type Binding = HashMap<String, Term>;

/// A boxed binding predicate used by query filters.
pub type BindingFilter = Box<dyn Fn(&Binding) -> bool>;

/// A basic-graph-pattern query with optional filters and projection.
#[derive(Default)]
pub struct Query {
    patterns: Vec<TriplePattern>,
    filters: Vec<BindingFilter>,
    select: Option<Vec<String>>,
}

impl std::fmt::Debug for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Query")
            .field("patterns", &self.patterns)
            .field("filters", &self.filters.len())
            .field("select", &self.select)
            .finish()
    }
}

impl Query {
    /// Start an empty query.
    pub fn new() -> Self {
        Query::default()
    }

    /// Add a triple pattern (joined with previous patterns on shared
    /// variables).
    pub fn pattern(mut self, subject: Node, predicate: Node, object: Node) -> Self {
        self.patterns
            .push(TriplePattern::new(subject, predicate, object));
        self
    }

    /// Add a filter over complete bindings.
    pub fn filter(mut self, f: impl Fn(&Binding) -> bool + 'static) -> Self {
        self.filters.push(Box::new(f));
        self
    }

    /// Project the solutions onto the given variables.
    pub fn select(mut self, vars: &[&str]) -> Self {
        self.select = Some(vars.iter().map(|v| v.to_string()).collect());
        self
    }

    fn node_to_bound<'a>(node: &'a Node, binding: &'a Binding) -> Option<&'a Term> {
        match node {
            Node::Term(t) => Some(t),
            Node::Var(v) => binding.get(v),
        }
    }

    fn extend_binding(binding: &Binding, node: &Node, term: &Term) -> Option<Binding> {
        match node {
            Node::Term(t) => {
                if t == term {
                    Some(binding.clone())
                } else {
                    None
                }
            }
            Node::Var(v) => match binding.get(v) {
                Some(existing) if existing == term => Some(binding.clone()),
                Some(_) => None,
                None => {
                    let mut b = binding.clone();
                    b.insert(v.clone(), term.clone());
                    Some(b)
                }
            },
        }
    }

    /// Execute against a graph, returning all solution bindings.
    pub fn execute(&self, graph: &Graph) -> Result<Vec<Binding>> {
        let mut solutions: Vec<Binding> = vec![Binding::new()];
        for pat in &self.patterns {
            let mut next: Vec<Binding> = Vec::new();
            for binding in &solutions {
                let s = Self::node_to_bound(&pat.subject, binding).cloned();
                let p = Self::node_to_bound(&pat.predicate, binding).cloned();
                let o = Self::node_to_bound(&pat.object, binding).cloned();
                for t in graph.match_pattern(s.as_ref(), p.as_ref(), o.as_ref()) {
                    // Each extension carries the full binding forward, so
                    // shared variables across positions join consistently.
                    let b = Self::extend_binding(binding, &pat.subject, &t.subject)
                        .and_then(|b| Self::extend_binding(&b, &pat.predicate, &t.predicate))
                        .and_then(|b| Self::extend_binding(&b, &pat.object, &t.object));
                    if let Some(b) = b {
                        next.push(b);
                    }
                }
            }
            solutions = next;
            if solutions.is_empty() {
                break;
            }
        }
        solutions.retain(|b| self.filters.iter().all(|f| f(b)));
        if let Some(select) = &self.select {
            for v in select {
                if !self.patterns.iter().any(|p| {
                    [&p.subject, &p.predicate, &p.object]
                        .iter()
                        .any(|n| matches!(n, Node::Var(name) if name == v))
                }) {
                    return Err(LodError::UnboundVariable(v.clone()));
                }
            }
            solutions = solutions
                .into_iter()
                .map(|b| {
                    b.into_iter()
                        .filter(|(k, _)| select.contains(k))
                        .collect::<Binding>()
                })
                .collect();
        }
        Ok(solutions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Literal;
    use crate::turtle::parse_turtle;

    fn sample() -> Graph {
        parse_turtle(
            r#"
@prefix ex: <http://ex.org/> .
ex:alice a ex:Person ; ex:age 30 ; ex:knows ex:bob .
ex:bob a ex:Person ; ex:age 25 ; ex:knows ex:carol .
ex:carol a ex:Person ; ex:age 41 .
ex:acme a ex:Org .
"#,
        )
        .unwrap()
    }

    #[test]
    fn single_pattern_var_subject() {
        let g = sample();
        let q = Query::new().pattern(
            Node::var("s"),
            Node::iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
            Node::iri("http://ex.org/Person"),
        );
        let sols = q.execute(&g).unwrap();
        assert_eq!(sols.len(), 3);
    }

    #[test]
    fn join_on_shared_variable() {
        let g = sample();
        // Who do people know, and the knower's age?
        let q = Query::new()
            .pattern(
                Node::var("s"),
                Node::iri("http://ex.org/knows"),
                Node::var("o"),
            )
            .pattern(
                Node::var("s"),
                Node::iri("http://ex.org/age"),
                Node::var("age"),
            );
        let sols = q.execute(&g).unwrap();
        assert_eq!(sols.len(), 2);
        for b in &sols {
            assert!(b.contains_key("s") && b.contains_key("o") && b.contains_key("age"));
        }
    }

    #[test]
    fn transitive_style_two_hop_join() {
        let g = sample();
        let q = Query::new()
            .pattern(
                Node::var("a"),
                Node::iri("http://ex.org/knows"),
                Node::var("b"),
            )
            .pattern(
                Node::var("b"),
                Node::iri("http://ex.org/knows"),
                Node::var("c"),
            );
        let sols = q.execute(&g).unwrap();
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0]["a"], Term::iri("http://ex.org/alice"));
        assert_eq!(sols[0]["c"], Term::iri("http://ex.org/carol"));
    }

    #[test]
    fn filter_on_literal() {
        let g = sample();
        let q = Query::new()
            .pattern(
                Node::var("s"),
                Node::iri("http://ex.org/age"),
                Node::var("age"),
            )
            .filter(|b| {
                b["age"]
                    .as_literal()
                    .and_then(Literal::as_i64)
                    .map(|a| a > 28)
                    .unwrap_or(false)
            });
        let sols = q.execute(&g).unwrap();
        assert_eq!(sols.len(), 2);
    }

    #[test]
    fn select_projects() {
        let g = sample();
        let q = Query::new()
            .pattern(
                Node::var("s"),
                Node::iri("http://ex.org/age"),
                Node::var("age"),
            )
            .select(&["s"]);
        let sols = q.execute(&g).unwrap();
        assert!(sols.iter().all(|b| b.len() == 1 && b.contains_key("s")));
    }

    #[test]
    fn select_unknown_variable_errors() {
        let g = sample();
        let q = Query::new()
            .pattern(
                Node::var("s"),
                Node::iri("http://ex.org/age"),
                Node::var("age"),
            )
            .select(&["nope"]);
        assert!(matches!(
            q.execute(&g).unwrap_err(),
            LodError::UnboundVariable(_)
        ));
    }

    #[test]
    fn same_variable_twice_in_one_pattern() {
        let mut g = Graph::new();
        g.add(
            Term::iri("http://ex.org/a"),
            Term::iri("http://ex.org/p"),
            Term::iri("http://ex.org/a"),
        );
        g.add(
            Term::iri("http://ex.org/a"),
            Term::iri("http://ex.org/p"),
            Term::iri("http://ex.org/b"),
        );
        let q = Query::new().pattern(Node::var("x"), Node::iri("http://ex.org/p"), Node::var("x"));
        let sols = q.execute(&g).unwrap();
        assert_eq!(sols.len(), 1, "only the self-loop binds x consistently");
    }

    #[test]
    fn empty_pattern_list_yields_single_empty_binding() {
        let g = sample();
        let sols = Query::new().execute(&g).unwrap();
        assert_eq!(sols.len(), 1);
        assert!(sols[0].is_empty());
    }

    #[test]
    fn no_match_returns_empty() {
        let g = sample();
        let q = Query::new().pattern(
            Node::var("s"),
            Node::iri("http://ex.org/nonexistent"),
            Node::var("o"),
        );
        assert!(q.execute(&g).unwrap().is_empty());
    }
}
