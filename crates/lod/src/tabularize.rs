//! Tabularization: the entity–property pivot from an RDF graph to a
//! [`Table`].
//!
//! This is the first half of the paper's §3.2 "common representation"
//! step: every subject of a chosen `rdf:type` becomes a row; every
//! predicate its instances use becomes a column. Multi-valued properties
//! and object links are handled per [`TabularizeOptions`]. Literal columns
//! are typed by majority datatype; cells that fail to parse — or are
//! absent for an entity — become nulls, which is exactly what makes LOD
//! "high-dimensional and incomplete" downstream.

use crate::error::{LodError, Result};
use crate::graph::Graph;
use crate::term::{Iri, Term};
use crate::vocab::rdf;
use openbi_table::{Column, DataType, Table, Value};
use std::collections::HashMap;

/// How to reduce multiple values of one property for one entity to a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiValue {
    /// Take the first value (in term order) and ignore the rest.
    First,
    /// Store the number of values as an integer.
    Count,
}

/// Options controlling tabularization.
#[derive(Debug, Clone)]
pub struct TabularizeOptions {
    /// Reduction for multi-valued properties (default: `First`).
    pub multi_value: MultiValue,
    /// Include a leading `iri` column holding each entity's identifier.
    pub include_iri: bool,
    /// Skip the `rdf:type` predicate as a column (default true).
    pub skip_type: bool,
    /// Represent object (IRI/blank) values by their local name string.
    /// When false, object-valued predicates are dropped entirely.
    pub objects_as_local_names: bool,
}

impl Default for TabularizeOptions {
    fn default() -> Self {
        TabularizeOptions {
            multi_value: MultiValue::First,
            include_iri: true,
            skip_type: true,
            objects_as_local_names: true,
        }
    }
}

fn cell_from_terms(terms: &[Term], options: &TabularizeOptions) -> Value {
    match options.multi_value {
        MultiValue::Count if terms.len() > 1 => return Value::Int(terms.len() as i64),
        _ => {}
    }
    let Some(first) = terms.first() else {
        return Value::Null;
    };
    match first {
        Term::Literal(l) => {
            if let Some(dt) = &l.datatype {
                match dt.local_name() {
                    "integer" | "int" | "long" => l.as_i64().map(Value::Int).unwrap_or(Value::Null),
                    "double" | "float" | "decimal" => {
                        l.as_f64().map(Value::Float).unwrap_or(Value::Null)
                    }
                    "boolean" => l.as_bool().map(Value::Bool).unwrap_or(Value::Null),
                    _ => Value::Str(l.lexical.clone()),
                }
            } else {
                Value::Str(l.lexical.clone())
            }
        }
        Term::Iri(i) => {
            if options.objects_as_local_names {
                Value::Str(i.local_name().to_string())
            } else {
                Value::Null
            }
        }
        Term::Blank(b) => {
            if options.objects_as_local_names {
                Value::Str(format!("_:{b}"))
            } else {
                Value::Null
            }
        }
    }
}

/// Decide a column type from its (possibly heterogeneous) cell values:
/// the narrowest type covering every non-null cell, falling back to Str.
fn unify_dtype(values: &[Value]) -> DataType {
    let mut dtype: Option<DataType> = None;
    for v in values {
        let Some(t) = v.dtype() else { continue };
        dtype = Some(match (dtype, t) {
            (None, t) => t,
            (Some(a), b) if a == b => a,
            (Some(DataType::Int), DataType::Float) | (Some(DataType::Float), DataType::Int) => {
                DataType::Float
            }
            _ => DataType::Str,
        });
    }
    dtype.unwrap_or(DataType::Str)
}

fn coerce(values: Vec<Value>, dtype: DataType) -> Vec<Value> {
    values
        .into_iter()
        .map(|v| match (dtype, v) {
            (_, Value::Null) => Value::Null,
            (DataType::Float, Value::Int(i)) => Value::Float(i as f64),
            (DataType::Str, v) => Value::Str(v.to_string()),
            (_, v) => v,
        })
        .collect()
}

/// Pivot all subjects of `class` into a table.
///
/// Column names are predicate local names (deduplicated with `_2`, `_3`
/// suffixes on collision across namespaces). Columns appear in
/// first-encountered order; entities appear in the graph's subject order.
pub fn tabularize(graph: &Graph, class: &Iri, options: &TabularizeOptions) -> Result<Table> {
    let entities = graph.subjects_of_type(class);
    if entities.is_empty() {
        return Err(LodError::Tabularize(format!(
            "no entities of type <{}>",
            class.as_str()
        )));
    }
    let type_pred = Term::Iri(rdf::type_());
    // Collect predicate order.
    let mut predicates: Vec<Iri> = Vec::new();
    for e in &entities {
        for t in graph.match_pattern(Some(e), None, None) {
            if options.skip_type && t.predicate == type_pred {
                continue;
            }
            if let Term::Iri(p) = &t.predicate {
                if !predicates.contains(p) {
                    predicates.push(p.clone());
                }
            }
        }
    }
    // Unique column names from local names.
    let mut name_counts: HashMap<String, usize> = HashMap::new();
    let mut col_names: Vec<String> = Vec::with_capacity(predicates.len());
    for p in &predicates {
        let base = p.local_name().to_string();
        let count = name_counts.entry(base.clone()).or_insert(0);
        *count += 1;
        if *count == 1 {
            col_names.push(base);
        } else {
            col_names.push(format!("{base}_{count}"));
        }
    }
    // Build cells.
    let mut columns: Vec<Column> = Vec::new();
    if options.include_iri {
        let iris: Vec<String> = entities
            .iter()
            .map(|e| match e {
                Term::Iri(i) => i.as_str().to_string(),
                Term::Blank(b) => format!("_:{b}"),
                Term::Literal(_) => unreachable!("subjects are never literals"),
            })
            .collect();
        columns.push(Column::from_str_values("iri", iris));
    }
    for (p, name) in predicates.iter().zip(&col_names) {
        let pred_term = Term::Iri(p.clone());
        let values: Vec<Value> = entities
            .iter()
            .map(|e| {
                let mut terms = graph.objects(e, &pred_term);
                terms.sort();
                cell_from_terms(&terms, options)
            })
            .collect();
        let dtype = unify_dtype(&values);
        let values = coerce(values, dtype);
        let col = Column::from_values(name.clone(), dtype, values)
            .map_err(|e| LodError::Tabularize(e.to_string()))?;
        // Drop columns that ended up entirely null (e.g. object-valued
        // predicates with objects_as_local_names = false).
        if col.null_count() < col.len() {
            columns.push(col);
        }
    }
    Table::new(columns).map_err(|e| LodError::Tabularize(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::turtle::parse_turtle;

    fn sample() -> Graph {
        parse_turtle(
            r#"
@prefix ex: <http://ex.org/> .
ex:a a ex:Station ; ex:city "Alicante" ; ex:pm10 21.5 ; ex:sensors 4 ; ex:active true .
ex:b a ex:Station ; ex:city "Elche" ; ex:pm10 33.0 ; ex:sensors 2 ; ex:near ex:a .
ex:c a ex:Station ; ex:city "Alcoy" ; ex:sensors 1 ; ex:active false .
ex:zzz a ex:Other ; ex:city "Nowhere" .
"#,
        )
        .unwrap()
    }

    fn station() -> Iri {
        Iri::new("http://ex.org/Station").unwrap()
    }

    #[test]
    fn rows_are_entities_of_class() {
        let t = tabularize(&sample(), &station(), &TabularizeOptions::default()).unwrap();
        assert_eq!(t.n_rows(), 3);
        assert!(t.has_column("iri"));
        assert!(t.has_column("city"));
        assert!(!t.has_column("type"));
    }

    #[test]
    fn missing_properties_become_nulls() {
        let t = tabularize(&sample(), &station(), &TabularizeOptions::default()).unwrap();
        let pm10 = t.column("pm10").unwrap();
        assert_eq!(pm10.dtype(), DataType::Float);
        assert_eq!(pm10.null_count(), 1);
    }

    #[test]
    fn typed_literals_become_typed_columns() {
        let t = tabularize(&sample(), &station(), &TabularizeOptions::default()).unwrap();
        assert_eq!(t.column("sensors").unwrap().dtype(), DataType::Int);
        assert_eq!(t.column("active").unwrap().dtype(), DataType::Bool);
        assert_eq!(t.column("city").unwrap().dtype(), DataType::Str);
    }

    #[test]
    fn object_links_become_local_names() {
        let t = tabularize(&sample(), &station(), &TabularizeOptions::default()).unwrap();
        let near = t.column("near").unwrap();
        assert_eq!(near.dtype(), DataType::Str);
        let non_null: Vec<Value> = near.iter().filter(|v| !v.is_null()).collect();
        assert_eq!(non_null, vec![Value::Str("a".into())]);
    }

    #[test]
    fn object_links_dropped_when_disabled() {
        let opts = TabularizeOptions {
            objects_as_local_names: false,
            ..Default::default()
        };
        let t = tabularize(&sample(), &station(), &opts).unwrap();
        assert!(!t.has_column("near"));
    }

    #[test]
    fn multivalue_count_mode() {
        let g = parse_turtle(
            r#"
@prefix ex: <http://ex.org/> .
ex:a a ex:P ; ex:tag "x", "y", "z" .
ex:b a ex:P ; ex:tag "only" .
"#,
        )
        .unwrap();
        let opts = TabularizeOptions {
            multi_value: MultiValue::Count,
            include_iri: false,
            ..Default::default()
        };
        let t = tabularize(&g, &Iri::new("http://ex.org/P").unwrap(), &opts).unwrap();
        // Mixed Int (count 3) and Str ("only") unify to Str.
        let tag = t.column("tag").unwrap();
        assert_eq!(tag.dtype(), DataType::Str);
        let mut vals: Vec<String> = tag.iter().map(|v| v.to_string()).collect();
        vals.sort();
        assert_eq!(vals, vec!["3".to_string(), "only".to_string()]);
    }

    #[test]
    fn multivalue_first_is_deterministic() {
        let g = parse_turtle(
            r#"
@prefix ex: <http://ex.org/> .
ex:a a ex:P ; ex:tag "zebra", "apple" .
"#,
        )
        .unwrap();
        let t = tabularize(
            &g,
            &Iri::new("http://ex.org/P").unwrap(),
            &TabularizeOptions::default(),
        )
        .unwrap();
        // Terms are sorted, so "apple" wins regardless of insertion order.
        assert_eq!(t.get("tag", 0).unwrap(), Value::Str("apple".into()));
    }

    #[test]
    fn no_entities_is_error() {
        let err = tabularize(
            &sample(),
            &Iri::new("http://ex.org/Nothing").unwrap(),
            &TabularizeOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, LodError::Tabularize(_)));
    }

    #[test]
    fn mixed_int_float_unifies_to_float() {
        let g = parse_turtle(
            r#"
@prefix ex: <http://ex.org/> .
ex:a a ex:P ; ex:v 1 .
ex:b a ex:P ; ex:v 2.5 .
"#,
        )
        .unwrap();
        let t = tabularize(
            &g,
            &Iri::new("http://ex.org/P").unwrap(),
            &TabularizeOptions::default(),
        )
        .unwrap();
        assert_eq!(t.column("v").unwrap().dtype(), DataType::Float);
    }
}
