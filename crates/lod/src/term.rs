//! RDF terms: IRIs, blank nodes and literals.

use crate::error::{LodError, Result};
use std::fmt;

/// An IRI (absolute, held verbatim without `<>` delimiters).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Iri(String);

impl Iri {
    /// Create an IRI, validating minimal syntax (a scheme, no whitespace
    /// or angle brackets).
    pub fn new(iri: impl Into<String>) -> Result<Self> {
        let s = iri.into();
        let valid = s.contains(':')
            && !s.is_empty()
            && !s
                .chars()
                .any(|c| c.is_whitespace() || c == '<' || c == '>' || c == '"');
        if valid {
            Ok(Iri(s))
        } else {
            Err(LodError::InvalidIri(s))
        }
    }

    /// The IRI text.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The "local name": the part after the last `#` or `/`.
    pub fn local_name(&self) -> &str {
        let s = &self.0;
        let cut = s.rfind(['#', '/']).map(|i| i + 1).unwrap_or(0);
        &s[cut..]
    }
}

impl fmt::Display for Iri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}>", self.0)
    }
}

/// An RDF literal: lexical form plus optional datatype or language tag.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    /// The lexical form (unescaped).
    pub lexical: String,
    /// Datatype IRI, if any (plain literals have none).
    pub datatype: Option<Iri>,
    /// Language tag, if any (mutually exclusive with datatype in practice).
    pub language: Option<String>,
}

impl Literal {
    /// A plain (untyped, untagged) string literal.
    pub fn plain(lexical: impl Into<String>) -> Self {
        Literal {
            lexical: lexical.into(),
            datatype: None,
            language: None,
        }
    }

    /// A typed literal.
    pub fn typed(lexical: impl Into<String>, datatype: Iri) -> Self {
        Literal {
            lexical: lexical.into(),
            datatype: Some(datatype),
            language: None,
        }
    }

    /// A language-tagged literal.
    pub fn lang(lexical: impl Into<String>, tag: impl Into<String>) -> Self {
        Literal {
            lexical: lexical.into(),
            datatype: None,
            language: Some(tag.into()),
        }
    }

    /// An `xsd:integer` literal.
    pub fn integer(v: i64) -> Self {
        Literal::typed(v.to_string(), crate::vocab::xsd::integer())
    }

    /// An `xsd:double` literal.
    pub fn double(v: f64) -> Self {
        Literal::typed(v.to_string(), crate::vocab::xsd::double())
    }

    /// An `xsd:boolean` literal.
    pub fn boolean(v: bool) -> Self {
        Literal::typed(v.to_string(), crate::vocab::xsd::boolean())
    }

    /// Parse the lexical form as an integer, honoring the datatype if set.
    pub fn as_i64(&self) -> Option<i64> {
        self.lexical.trim().parse().ok()
    }

    /// Parse the lexical form as a float.
    pub fn as_f64(&self) -> Option<f64> {
        self.lexical.trim().parse().ok()
    }

    /// Parse the lexical form as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self.lexical.trim() {
            "true" | "1" => Some(true),
            "false" | "0" => Some(false),
            _ => None,
        }
    }
}

fn escape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"{}\"", escape_literal(&self.lexical))?;
        if let Some(lang) = &self.language {
            write!(f, "@{lang}")?;
        } else if let Some(dt) = &self.datatype {
            write!(f, "^^{dt}")?;
        }
        Ok(())
    }
}

/// Any RDF term.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An IRI.
    Iri(Iri),
    /// A blank node with a local label (without the `_:` prefix).
    Blank(String),
    /// A literal.
    Literal(Literal),
}

impl Term {
    /// Shorthand: build an IRI term, panicking on invalid syntax.
    /// Use [`Iri::new`] for fallible construction.
    pub fn iri(s: &str) -> Term {
        Term::Iri(Iri::new(s).expect("valid IRI"))
    }

    /// The IRI inside, if this term is one.
    pub fn as_iri(&self) -> Option<&Iri> {
        match self {
            Term::Iri(i) => Some(i),
            _ => None,
        }
    }

    /// The literal inside, if this term is one.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(l) => Some(l),
            _ => None,
        }
    }

    /// True iff the term may appear in subject position (IRI or blank).
    pub fn is_subject(&self) -> bool {
        !matches!(self, Term::Literal(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(i) => write!(f, "{i}"),
            Term::Blank(b) => write!(f, "_:{b}"),
            Term::Literal(l) => write!(f, "{l}"),
        }
    }
}

impl From<Iri> for Term {
    fn from(i: Iri) -> Term {
        Term::Iri(i)
    }
}

impl From<Literal> for Term {
    fn from(l: Literal) -> Term {
        Term::Literal(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iri_validation() {
        assert!(Iri::new("http://example.org/x").is_ok());
        assert!(Iri::new("urn:uuid:1234").is_ok());
        assert!(Iri::new("no-scheme").is_err());
        assert!(Iri::new("http://bad iri").is_err());
        assert!(Iri::new("http://bad<iri>").is_err());
    }

    #[test]
    fn local_name_extraction() {
        assert_eq!(Iri::new("http://ex.org/p#age").unwrap().local_name(), "age");
        assert_eq!(Iri::new("http://ex.org/p/age").unwrap().local_name(), "age");
        assert_eq!(Iri::new("urn:x").unwrap().local_name(), "urn:x");
    }

    #[test]
    fn literal_typed_parsing() {
        assert_eq!(Literal::integer(42).as_i64(), Some(42));
        assert_eq!(Literal::double(2.5).as_f64(), Some(2.5));
        assert_eq!(Literal::boolean(true).as_bool(), Some(true));
        assert_eq!(Literal::plain("x").as_i64(), None);
    }

    #[test]
    fn literal_display_escapes() {
        let l = Literal::plain("a\"b\\c\nd");
        assert_eq!(l.to_string(), "\"a\\\"b\\\\c\\nd\"");
        let l = Literal::lang("hola", "es");
        assert_eq!(l.to_string(), "\"hola\"@es");
        let l = Literal::integer(5);
        assert!(l
            .to_string()
            .contains("^^<http://www.w3.org/2001/XMLSchema#integer>"));
    }

    #[test]
    fn term_display() {
        assert_eq!(Term::iri("http://e.org/a").to_string(), "<http://e.org/a>");
        assert_eq!(Term::Blank("b0".into()).to_string(), "_:b0");
    }

    #[test]
    fn subject_position() {
        assert!(Term::iri("http://e.org/a").is_subject());
        assert!(Term::Blank("x".into()).is_subject());
        assert!(!Term::Literal(Literal::plain("x")).is_subject());
    }
}
