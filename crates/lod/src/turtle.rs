//! A Turtle subset parser.
//!
//! Supported: `@prefix` declarations, prefixed names, the `a` keyword,
//! `;` predicate lists and `,` object lists, IRIs, blank node labels,
//! plain / language-tagged / datatyped literals, and bare numeric and
//! boolean literal shorthands. This covers the Turtle that open-data
//! portals commonly emit and that this system itself produces.

use crate::error::{LodError, Result};
use crate::graph::{Graph, Triple};
use crate::term::{Iri, Literal, Term};
use crate::vocab::xsd;
use std::collections::HashMap;

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Iri(String),
    Prefixed(String, String),
    Blank(String),
    Literal {
        lexical: String,
        lang: Option<String>,
        datatype: Option<Box<Token>>,
    },
    Integer(String),
    Decimal(String),
    Boolean(bool),
    A,
    PrefixDecl,
    Dot,
    Semicolon,
    Comma,
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(text: &'a str) -> Self {
        Lexer {
            chars: text.chars().peekable(),
            line: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> LodError {
        LodError::Parse {
            line: self.line,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next();
        if c == Some('\n') {
            self.line += 1;
        }
        c
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.chars.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn lex_iri(&mut self) -> Result<Token> {
        self.bump(); // consume '<'
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('>') => return Ok(Token::Iri(s)),
                Some(c) => s.push(c),
                None => return Err(self.err("unterminated IRI")),
            }
        }
    }

    fn lex_string(&mut self) -> Result<String> {
        self.bump(); // consume '"'
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(s),
                Some('\\') => match self.bump() {
                    Some('n') => s.push('\n'),
                    Some('r') => s.push('\r'),
                    Some('t') => s.push('\t'),
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('u') => {
                        let hex: String = (0..4)
                            .map(|_| self.bump().ok_or_else(|| self.err("truncated \\u")))
                            .collect::<Result<String>>()?;
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|_| self.err("bad \\u escape"))?;
                        s.push(char::from_u32(code).ok_or_else(|| self.err("bad codepoint"))?);
                    }
                    other => return Err(self.err(format!("unknown escape \\{other:?}"))),
                },
                Some(c) => s.push(c),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn lex_literal(&mut self) -> Result<Token> {
        let lexical = self.lex_string()?;
        match self.chars.peek() {
            Some('@') => {
                self.bump();
                let mut tag = String::new();
                while matches!(self.chars.peek(), Some(c) if c.is_ascii_alphanumeric() || *c == '-')
                {
                    tag.push(self.bump().expect("peeked"));
                }
                Ok(Token::Literal {
                    lexical,
                    lang: Some(tag),
                    datatype: None,
                })
            }
            Some('^') => {
                self.bump();
                if self.bump() != Some('^') {
                    return Err(self.err("expected ^^"));
                }
                let dt = match self.chars.peek() {
                    Some('<') => self.lex_iri()?,
                    _ => self.lex_name()?,
                };
                Ok(Token::Literal {
                    lexical,
                    lang: None,
                    datatype: Some(Box::new(dt)),
                })
            }
            _ => Ok(Token::Literal {
                lexical,
                lang: None,
                datatype: None,
            }),
        }
    }

    fn lex_number(&mut self) -> Result<Token> {
        let mut s = String::new();
        if matches!(self.chars.peek(), Some('+' | '-')) {
            s.push(self.bump().expect("peeked"));
        }
        let mut is_decimal = false;
        while let Some(&c) = self.chars.peek() {
            if c.is_ascii_digit() {
                s.push(self.bump().expect("peeked"));
            } else if c == '.' {
                // A '.' is only part of the number if a digit follows;
                // otherwise it terminates the statement.
                let mut clone = self.chars.clone();
                clone.next();
                if matches!(clone.peek(), Some(d) if d.is_ascii_digit()) {
                    is_decimal = true;
                    s.push(self.bump().expect("peeked"));
                } else {
                    break;
                }
            } else if c == 'e' || c == 'E' {
                is_decimal = true;
                s.push(self.bump().expect("peeked"));
                if matches!(self.chars.peek(), Some('+' | '-')) {
                    s.push(self.bump().expect("peeked"));
                }
            } else {
                break;
            }
        }
        if s.is_empty() || s == "+" || s == "-" {
            return Err(self.err("malformed number"));
        }
        if is_decimal {
            Ok(Token::Decimal(s))
        } else {
            Ok(Token::Integer(s))
        }
    }

    fn lex_name(&mut self) -> Result<Token> {
        let mut s = String::new();
        while matches!(self.chars.peek(), Some(c) if c.is_alphanumeric() || matches!(c, '_' | '-' | ':' | '.'))
        {
            // '.' terminates a statement unless followed by a name char.
            if self.chars.peek() == Some(&'.') {
                let mut clone = self.chars.clone();
                clone.next();
                if !matches!(clone.peek(), Some(c) if c.is_alphanumeric() || matches!(c, '_' | '-'))
                {
                    break;
                }
            }
            s.push(self.bump().expect("peeked"));
        }
        match s.as_str() {
            "" => Err(self.err("expected name")),
            "a" => Ok(Token::A),
            "true" => Ok(Token::Boolean(true)),
            "false" => Ok(Token::Boolean(false)),
            _ => {
                if let Some(pos) = s.find(':') {
                    if let Some(label) = s.strip_prefix("_:") {
                        Ok(Token::Blank(label.to_string()))
                    } else {
                        Ok(Token::Prefixed(
                            s[..pos].to_string(),
                            s[pos + 1..].to_string(),
                        ))
                    }
                } else {
                    Err(self.err(format!("unexpected token: {s}")))
                }
            }
        }
    }

    fn tokens(mut self) -> Result<Vec<(Token, usize)>> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let Some(&c) = self.chars.peek() else {
                return Ok(out);
            };
            let line = self.line;
            let tok = match c {
                '<' => self.lex_iri()?,
                '"' => self.lex_literal()?,
                '.' => {
                    self.bump();
                    Token::Dot
                }
                ';' => {
                    self.bump();
                    Token::Semicolon
                }
                ',' => {
                    self.bump();
                    Token::Comma
                }
                '@' => {
                    self.bump();
                    let mut kw = String::new();
                    while matches!(self.chars.peek(), Some(c) if c.is_ascii_alphabetic()) {
                        kw.push(self.bump().expect("peeked"));
                    }
                    if kw == "prefix" {
                        Token::PrefixDecl
                    } else {
                        return Err(self.err(format!("unsupported directive @{kw}")));
                    }
                }
                d if d.is_ascii_digit() || d == '+' || d == '-' => self.lex_number()?,
                _ => self.lex_name()?,
            };
            out.push((tok, line));
        }
    }
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
    prefixes: HashMap<String, String>,
}

impl Parser {
    fn err_at(&self, message: impl Into<String>) -> LodError {
        let line = self
            .tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|t| t.1)
            .unwrap_or(0);
        LodError::Parse {
            line,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.0)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|t| t.0.clone());
        self.pos += 1;
        t
    }

    fn resolve(&self, token: Token) -> Result<Term> {
        match token {
            Token::Iri(s) => Ok(Term::Iri(Iri::new(s)?)),
            Token::Prefixed(p, local) => {
                let ns = self
                    .prefixes
                    .get(&p)
                    .ok_or_else(|| LodError::UnknownPrefix(p.clone()))?;
                Ok(Term::Iri(Iri::new(format!("{ns}{local}"))?))
            }
            Token::Blank(b) => Ok(Term::Blank(b)),
            Token::Literal {
                lexical,
                lang,
                datatype,
            } => {
                let lit = if let Some(tag) = lang {
                    Literal::lang(lexical, tag)
                } else if let Some(dt) = datatype {
                    let dt_term = self.resolve(*dt)?;
                    let Term::Iri(dt_iri) = dt_term else {
                        return Err(self.err_at("datatype must be an IRI"));
                    };
                    Literal::typed(lexical, dt_iri)
                } else {
                    Literal::plain(lexical)
                };
                Ok(Term::Literal(lit))
            }
            Token::Integer(s) => Ok(Term::Literal(Literal::typed(s, xsd::integer()))),
            Token::Decimal(s) => Ok(Term::Literal(Literal::typed(s, xsd::double()))),
            Token::Boolean(b) => Ok(Term::Literal(Literal::boolean(b))),
            Token::A => Ok(Term::Iri(crate::vocab::rdf::type_())),
            t => Err(self.err_at(format!("unexpected token {t:?}"))),
        }
    }

    fn parse_document(&mut self) -> Result<Graph> {
        let mut g = Graph::new();
        while self.peek().is_some() {
            if self.peek() == Some(&Token::PrefixDecl) {
                self.next();
                let Some(Token::Prefixed(p, local)) = self.next() else {
                    return Err(self.err_at("expected prefix name after @prefix"));
                };
                if !local.is_empty() {
                    return Err(self.err_at("prefix declaration must end with ':'"));
                }
                let Some(Token::Iri(ns)) = self.next() else {
                    return Err(self.err_at("expected namespace IRI in @prefix"));
                };
                if self.next() != Some(Token::Dot) {
                    return Err(self.err_at("expected '.' after @prefix"));
                }
                self.prefixes.insert(p, ns);
                continue;
            }
            self.parse_statement(&mut g)?;
        }
        Ok(g)
    }

    fn parse_statement(&mut self, g: &mut Graph) -> Result<()> {
        let subj_tok = self.next().ok_or_else(|| self.err_at("expected subject"))?;
        let subject = self.resolve(subj_tok)?;
        if !subject.is_subject() {
            return Err(self.err_at("literal in subject position"));
        }
        loop {
            let pred_tok = self
                .next()
                .ok_or_else(|| self.err_at("expected predicate"))?;
            let predicate = self.resolve(pred_tok)?;
            if !matches!(predicate, Term::Iri(_)) {
                return Err(self.err_at("predicate must be an IRI"));
            }
            loop {
                let obj_tok = self.next().ok_or_else(|| self.err_at("expected object"))?;
                let object = self.resolve(obj_tok)?;
                g.insert(Triple::new(subject.clone(), predicate.clone(), object));
                match self.peek() {
                    Some(Token::Comma) => {
                        self.next();
                    }
                    _ => break,
                }
            }
            match self.next() {
                Some(Token::Semicolon) => {
                    // allow trailing ';' before '.'
                    if self.peek() == Some(&Token::Dot) {
                        self.next();
                        return Ok(());
                    }
                    continue;
                }
                Some(Token::Dot) => return Ok(()),
                other => return Err(self.err_at(format!("expected ';' or '.', got {other:?}"))),
            }
        }
    }
}

/// Parse a Turtle document (the supported subset) into a graph.
pub fn parse_turtle(text: &str) -> Result<Graph> {
    let tokens = Lexer::new(text).tokens()?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        prefixes: HashMap::new(),
    };
    parser.parse_document()
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"
@prefix ex: <http://ex.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .

ex:alice a ex:Person ;
    ex:name "Alice" ;
    ex:age 30 ;
    ex:height 1.65 ;
    ex:knows ex:bob, ex:carol .

ex:bob a ex:Person ;
    ex:name "Bob"@en ;
    ex:active true ;
    ex:score "7"^^xsd:integer .
"#;

    #[test]
    fn parses_full_document() {
        let g = parse_turtle(DOC).unwrap();
        // alice: type, name, age, height, knows x2 = 6; bob: type, name, active, score = 4.
        assert_eq!(g.len(), 10);
    }

    #[test]
    fn keyword_a_is_rdf_type() {
        let g = parse_turtle(DOC).unwrap();
        let person = Iri::new("http://ex.org/Person").unwrap();
        assert_eq!(g.subjects_of_type(&person).len(), 2);
    }

    #[test]
    fn numbers_become_typed_literals() {
        let g = parse_turtle(DOC).unwrap();
        let alice = Term::iri("http://ex.org/alice");
        let age = Term::iri("http://ex.org/age");
        let objs = g.objects(&alice, &age);
        let lit = objs[0].as_literal().unwrap();
        assert_eq!(lit.as_i64(), Some(30));
        assert_eq!(lit.datatype.as_ref().unwrap().local_name(), "integer");
        let height = Term::iri("http://ex.org/height");
        let objs = g.objects(&alice, &height);
        assert_eq!(objs[0].as_literal().unwrap().as_f64(), Some(1.65));
    }

    #[test]
    fn comma_expands_object_lists() {
        let g = parse_turtle(DOC).unwrap();
        let alice = Term::iri("http://ex.org/alice");
        let knows = Term::iri("http://ex.org/knows");
        assert_eq!(g.objects(&alice, &knows).len(), 2);
    }

    #[test]
    fn prefixed_datatype_resolves() {
        let g = parse_turtle(DOC).unwrap();
        let bob = Term::iri("http://ex.org/bob");
        let score = Term::iri("http://ex.org/score");
        let lit_objs = g.objects(&bob, &score);
        assert_eq!(
            lit_objs[0].as_literal().unwrap().datatype.as_ref().unwrap(),
            &xsd::integer()
        );
    }

    #[test]
    fn boolean_shorthand() {
        let g = parse_turtle(DOC).unwrap();
        let bob = Term::iri("http://ex.org/bob");
        let active = Term::iri("http://ex.org/active");
        assert_eq!(
            g.objects(&bob, &active)[0].as_literal().unwrap().as_bool(),
            Some(true)
        );
    }

    #[test]
    fn unknown_prefix_is_error() {
        let err = parse_turtle("zzz:a zzz:b zzz:c .").unwrap_err();
        assert!(matches!(err, LodError::UnknownPrefix(_)));
    }

    #[test]
    fn comments_ignored() {
        let g = parse_turtle(
            "# header\n@prefix ex: <http://ex.org/> . # inline\nex:a ex:p ex:b . # done\n",
        )
        .unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn blank_nodes_parse() {
        let g = parse_turtle("@prefix ex: <http://ex.org/> .\n_:x ex:p _:y .").unwrap();
        let t = g.iter().next().unwrap();
        assert_eq!(t.subject, Term::Blank("x".into()));
    }

    #[test]
    fn error_carries_line() {
        let src = "@prefix ex: <http://ex.org/> .\nex:a ex:p .\n";
        match parse_turtle(src).unwrap_err() {
            LodError::Parse { line, .. } => assert!(line >= 2, "line was {line}"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negative_and_exponent_numbers() {
        let g =
            parse_turtle("@prefix ex: <http://ex.org/> .\nex:a ex:v -3 ; ex:w 1.5e2 .").unwrap();
        let a = Term::iri("http://ex.org/a");
        let v = Term::iri("http://ex.org/v");
        assert_eq!(
            g.objects(&a, &v)[0].as_literal().unwrap().as_i64(),
            Some(-3)
        );
        let w = Term::iri("http://ex.org/w");
        assert_eq!(
            g.objects(&a, &w)[0].as_literal().unwrap().as_f64(),
            Some(150.0)
        );
    }
}
