//! Turtle serialization with prefix compaction and subject grouping —
//! the human-readable publication format for shared LOD.

use crate::graph::Graph;
use crate::term::{Iri, Literal, Term};
use crate::vocab;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A prefix table for Turtle output.
#[derive(Debug, Clone)]
pub struct PrefixMap {
    /// `(prefix, namespace)` pairs, longest-namespace-first at render.
    pairs: Vec<(String, String)>,
}

impl Default for PrefixMap {
    /// The well-known vocabularies plus `obi:`.
    fn default() -> Self {
        PrefixMap {
            pairs: vec![
                ("rdf".into(), vocab::rdf::NS.into()),
                ("rdfs".into(), vocab::rdfs::NS.into()),
                ("xsd".into(), vocab::xsd::NS.into()),
                ("owl".into(), vocab::owl::NS.into()),
                ("obi".into(), vocab::obi::NS.into()),
            ],
        }
    }
}

impl PrefixMap {
    /// An empty prefix map (every IRI stays absolute).
    pub fn empty() -> Self {
        PrefixMap { pairs: vec![] }
    }

    /// Add a prefix (later entries win on overlap).
    pub fn add(&mut self, prefix: impl Into<String>, namespace: impl Into<String>) {
        self.pairs.push((prefix.into(), namespace.into()));
    }

    /// Compact an IRI to `prefix:local` if a namespace matches and the
    /// local part is a safe Turtle name.
    fn compact(&self, iri: &Iri) -> Option<String> {
        let s = iri.as_str();
        let mut best: Option<(&str, &str)> = None;
        for (p, ns) in &self.pairs {
            if let Some(local) = s.strip_prefix(ns.as_str()) {
                if best.map(|(_, b)| ns.len() > b.len()).unwrap_or(true) {
                    best = Some((p, ns));
                }
                let _ = local;
            }
        }
        let (prefix, ns) = best?;
        let local = &s[ns.len()..];
        let safe = !local.is_empty()
            && local
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
        safe.then(|| format!("{prefix}:{local}"))
    }

    fn used_by(&self, graph: &Graph) -> Vec<(String, String)> {
        let mut used: Vec<(String, String)> = Vec::new();
        let mut mark = |t: &Term| {
            if let Term::Iri(iri) = t {
                if let Some(compacted) = self.compact(iri) {
                    let prefix = compacted.split(':').next().expect("has colon");
                    if let Some(pair) = self.pairs.iter().find(|(p, _)| p == prefix) {
                        if !used.contains(pair) {
                            used.push(pair.clone());
                        }
                    }
                }
            } else if let Term::Literal(
                l @ Literal {
                    datatype: Some(dt), ..
                },
            ) = t
            {
                // Literals rendered as bare shorthands never reference
                // their datatype prefix.
                let shorthand = match dt.local_name() {
                    "integer" => l.as_i64().is_some(),
                    "boolean" => l.as_bool().is_some(),
                    _ => false,
                };
                if shorthand {
                    return;
                }
                if let Some(compacted) = self.compact(dt) {
                    let prefix = compacted.split(':').next().expect("has colon");
                    if let Some(pair) = self.pairs.iter().find(|(p, _)| p == prefix) {
                        if !used.contains(pair) {
                            used.push(pair.clone());
                        }
                    }
                }
            }
        };
        for t in graph.iter() {
            mark(&t.subject);
            mark(&t.predicate);
            mark(&t.object);
        }
        used.sort();
        used
    }
}

fn render_term(term: &Term, prefixes: &PrefixMap) -> String {
    match term {
        Term::Iri(iri) => {
            if *iri == vocab::rdf::type_() {
                // handled by caller as `a`, but be safe here too
                prefixes.compact(iri).unwrap_or_else(|| iri.to_string())
            } else {
                prefixes.compact(iri).unwrap_or_else(|| iri.to_string())
            }
        }
        Term::Blank(b) => format!("_:{b}"),
        Term::Literal(l) => {
            // Numeric/boolean shorthands where lossless.
            if let Some(dt) = &l.datatype {
                match dt.local_name() {
                    "integer" if l.as_i64().is_some() => return l.lexical.clone(),
                    "boolean" if l.as_bool().is_some() => return l.lexical.clone(),
                    _ => {}
                }
                let mut s = format!("{}", Literal::plain(l.lexical.clone()));
                let dt_str = prefixes.compact(dt).unwrap_or_else(|| dt.to_string());
                let _ = write!(s, "^^{dt_str}");
                s
            } else {
                l.to_string()
            }
        }
    }
}

/// Serialize a graph as Turtle: `@prefix` header (only prefixes actually
/// used), subjects grouped with `;`, objects grouped with `,`,
/// `rdf:type` written as `a`.
pub fn write_turtle(graph: &Graph, prefixes: &PrefixMap) -> String {
    let mut out = String::new();
    for (p, ns) in prefixes.used_by(graph) {
        let _ = writeln!(out, "@prefix {p}: <{ns}> .");
    }
    if !out.is_empty() {
        out.push('\n');
    }
    // Group triples: subject → predicate → objects (BTreeMap for
    // deterministic output).
    let mut by_subject: BTreeMap<String, BTreeMap<String, Vec<String>>> = BTreeMap::new();
    let type_pred = Term::Iri(vocab::rdf::type_());
    for t in graph.iter() {
        let s = render_term(&t.subject, prefixes);
        let p = if t.predicate == type_pred {
            "a".to_string()
        } else {
            render_term(&t.predicate, prefixes)
        };
        let o = render_term(&t.object, prefixes);
        by_subject
            .entry(s)
            .or_default()
            .entry(p)
            .or_default()
            .push(o);
    }
    for (subject, predicates) in by_subject {
        let _ = write!(out, "{subject}");
        let n_preds = predicates.len();
        for (pi, (predicate, objects)) in predicates.into_iter().enumerate() {
            let sep = if pi == 0 { " " } else { "    " };
            let _ = write!(out, "{sep}{predicate} {}", objects.join(", "));
            if pi + 1 < n_preds {
                let _ = writeln!(out, " ;");
            } else {
                let _ = writeln!(out, " .");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::turtle::parse_turtle;

    fn sample() -> Graph {
        let mut g = Graph::new();
        let alice = Term::iri("http://openbi.org/ns#alice");
        g.add(
            alice.clone(),
            Term::Iri(vocab::rdf::type_()),
            Term::iri("http://openbi.org/ns#Dataset"),
        );
        g.add(
            alice.clone(),
            Term::Iri(vocab::rdfs::label()),
            Term::Literal(Literal::plain("Alice's data")),
        );
        g.add(
            alice.clone(),
            Term::Iri(vocab::obi::row_count()),
            Term::Literal(Literal::integer(42)),
        );
        g.add(
            alice,
            Term::Iri(vocab::rdfs::see_also()),
            Term::iri("http://openbi.org/ns#bob"),
        );
        g
    }

    #[test]
    fn emits_prefixes_and_a_keyword() {
        let text = write_turtle(&sample(), &PrefixMap::default());
        assert!(text.contains("@prefix obi:"));
        assert!(text.contains("@prefix rdfs:"));
        assert!(!text.contains("@prefix xsd:"), "unused prefixes omitted");
        assert!(text.contains("obi:alice a obi:Dataset"));
        assert!(text.contains("obi:rowCount 42"));
    }

    #[test]
    fn round_trips_through_the_parser() {
        let g = sample();
        let text = write_turtle(&g, &PrefixMap::default());
        let back = parse_turtle(&text).unwrap();
        assert_eq!(back.len(), g.len());
        for t in g.iter() {
            assert!(back.contains(&t), "missing {t} in:\n{text}");
        }
    }

    #[test]
    fn literal_escapes_and_datatypes_round_trip() {
        let mut g = Graph::new();
        let s = Term::iri("http://e.org/s");
        g.add(
            s.clone(),
            Term::iri("http://e.org/note"),
            Term::Literal(Literal::plain("line1\nline\"2\"")),
        );
        g.add(
            s.clone(),
            Term::iri("http://e.org/when"),
            Term::Literal(Literal::typed("2024-01-01", vocab::xsd::date())),
        );
        g.add(
            s,
            Term::iri("http://e.org/flag"),
            Term::Literal(Literal::boolean(true)),
        );
        let text = write_turtle(&g, &PrefixMap::default());
        let back = parse_turtle(&text).unwrap();
        assert_eq!(back.len(), 3);
        for t in g.iter() {
            assert!(back.contains(&t), "missing {t} in:\n{text}");
        }
    }

    #[test]
    fn groups_subjects_with_semicolons() {
        let text = write_turtle(&sample(), &PrefixMap::default());
        // One subject block: exactly one '.', three ';'.
        let body: String = text
            .lines()
            .filter(|l| !l.starts_with("@prefix") && !l.is_empty())
            .collect::<Vec<_>>()
            .join("\n");
        assert_eq!(body.matches(" .").count(), 1);
        assert_eq!(body.matches(" ;").count(), 3);
    }

    #[test]
    fn empty_prefix_map_keeps_absolute_iris() {
        let text = write_turtle(&sample(), &PrefixMap::empty());
        assert!(!text.contains("@prefix"));
        assert!(text.contains("<http://openbi.org/ns#alice>"));
        let back = parse_turtle(&text).unwrap();
        assert_eq!(back.len(), sample().len());
    }

    #[test]
    fn published_pipeline_graph_round_trips() {
        let table = openbi_table::Table::new(vec![
            openbi_table::Column::from_str_values("city", ["A", "B"]),
            openbi_table::Column::from_f64("pm10", [1.5, 2.5]),
        ])
        .unwrap();
        let g = crate::publish::publish_table(&table, "http://openbi.org", "aq").unwrap();
        let text = write_turtle(&g, &PrefixMap::default());
        let back = parse_turtle(&text).unwrap();
        assert_eq!(back.len(), g.len());
    }
}
