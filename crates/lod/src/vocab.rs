//! Well-known vocabularies: RDF, RDFS, XSD, and the OpenBI (`obi:`)
//! vocabulary used when publishing analysis results back as LOD.

use crate::term::Iri;

macro_rules! vocab {
    ($(#[$meta:meta])* $modname:ident, $ns:expr, { $($(#[$imeta:meta])* $name:ident => $local:expr),+ $(,)? }) => {
        $(#[$meta])*
        pub mod $modname {
            use super::Iri;

            /// Namespace IRI prefix of this vocabulary.
            pub const NS: &str = $ns;

            $(
                $(#[$imeta])*
                pub fn $name() -> Iri {
                    Iri::new(concat!($ns, $local)).expect("static vocabulary IRI is valid")
                }
            )+
        }
    };
}

vocab!(
    /// The RDF core vocabulary.
    rdf,
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#",
    {
        /// `rdf:type`.
        type_ => "type",
        /// `rdf:value`.
        value => "value",
        /// `rdf:Property`.
        property => "Property",
    }
);

vocab!(
    /// The RDF Schema vocabulary.
    rdfs,
    "http://www.w3.org/2000/01/rdf-schema#",
    {
        /// `rdfs:label`.
        label => "label",
        /// `rdfs:comment`.
        comment => "comment",
        /// `rdfs:Class`.
        class => "Class",
        /// `rdfs:subClassOf`.
        sub_class_of => "subClassOf",
        /// `rdfs:seeAlso`.
        see_also => "seeAlso",
    }
);

vocab!(
    /// XML Schema datatypes.
    xsd,
    "http://www.w3.org/2001/XMLSchema#",
    {
        /// `xsd:integer`.
        integer => "integer",
        /// `xsd:double`.
        double => "double",
        /// `xsd:boolean`.
        boolean => "boolean",
        /// `xsd:string`.
        string => "string",
        /// `xsd:date`.
        date => "date",
    }
);

vocab!(
    /// OWL terms used for entity linking.
    owl,
    "http://www.w3.org/2002/07/owl#",
    {
        /// `owl:sameAs`.
        same_as => "sameAs",
    }
);

vocab!(
    /// The OpenBI vocabulary: dataset/quality/mining terms this system
    /// uses to publish acquired information back as Linked Open Data
    /// ("share the new acquired information as LOD to be reused by
    /// anyone", paper §1).
    obi,
    "http://openbi.org/ns#",
    {
        /// Class of published datasets.
        dataset => "Dataset",
        /// Class of dataset columns.
        column => "Column",
        /// Class of data-quality measurements.
        quality_measurement => "QualityMeasurement",
        /// Class of mining-advice resources.
        advice => "Advice",
        /// Class of discovered association rules.
        association_rule => "AssociationRule",
        /// Links a dataset to one of its columns.
        has_column => "hasColumn",
        /// Links an element to a quality measurement.
        has_quality => "hasQuality",
        /// The criterion a measurement quantifies.
        criterion => "criterion",
        /// The measured value.
        measured_value => "measuredValue",
        /// The recommended algorithm of an advice resource.
        recommended_algorithm => "recommendedAlgorithm",
        /// The expected score of the recommendation.
        expected_score => "expectedScore",
        /// The antecedent of a published rule.
        antecedent => "antecedent",
        /// The consequent of a published rule.
        consequent => "consequent",
        /// Rule confidence.
        confidence => "confidence",
        /// Rule support.
        support => "support",
        /// Rule lift.
        lift => "lift",
        /// Number of rows of a published dataset.
        row_count => "rowCount",
        /// Data type of a published column.
        data_type => "dataType",
    }
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespaces_compose() {
        assert_eq!(
            rdf::type_().as_str(),
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
        );
        assert_eq!(xsd::integer().local_name(), "integer");
        assert_eq!(
            obi::has_quality().as_str(),
            "http://openbi.org/ns#hasQuality"
        );
        assert!(owl::same_as().as_str().ends_with("sameAs"));
        assert!(rdfs::label().as_str().starts_with(rdfs::NS));
    }
}
