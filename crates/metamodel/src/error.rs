//! Error type for the metamodel crate.

use std::fmt;

/// Errors produced by model construction and serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetamodelError {
    /// JSON (de)serialization failed.
    Serde(String),
    /// File I/O failed.
    Io(String),
    /// A referenced model element does not exist.
    ElementNotFound(String),
}

impl fmt::Display for MetamodelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetamodelError::Serde(m) => write!(f, "serialization error: {m}"),
            MetamodelError::Io(m) => write!(f, "I/O error: {m}"),
            MetamodelError::ElementNotFound(m) => write!(f, "model element not found: {m}"),
        }
    }
}

impl std::error::Error for MetamodelError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, MetamodelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(MetamodelError::ElementNotFound("x".into())
            .to_string()
            .contains("x"));
    }
}
