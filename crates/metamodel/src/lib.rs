//! # openbi-metamodel
//!
//! The CWM-like "common representation" of data sources (paper §3.2.1)
//! plus data-quality annotations (§3.2.2) and the model-driven transforms
//! that produce it from CSV tables and LOD graphs (§3.3's Eclipse/EMF
//! plugin, reimplemented natively).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod model;
pub mod serialize;
pub mod transform;

pub use error::{MetamodelError, Result};
pub use model::{
    Catalog, ColumnModel, ColumnRole, ColumnSet, ModelDataType, Provenance, QualityAnnotation,
    SchemaModel,
};
pub use serialize::{from_json, load, save, to_json};
pub use transform::{catalog_from_lod, catalog_from_table, column_set_from_table, model_dtype};
