//! The CWM-core-like common representation.
//!
//! The paper (§3.2.1) proposes the OMG Common Warehouse Metamodel as the
//! carrier of the "common representation of LOD". This module implements
//! the relevant slice of CWM's relational/resource packages:
//! `Catalog → Schema → ColumnSet → Column`, with provenance and typed
//! quality annotations attachable to any element (§3.2.2).

use serde::{Deserialize, Serialize};

/// Data types of the metamodel (aligned with `openbi-table` types).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelDataType {
    /// 64-bit integer.
    Integer,
    /// 64-bit float.
    Double,
    /// UTF-8 string.
    String,
    /// Boolean.
    Boolean,
}

impl ModelDataType {
    /// Whether the type is numeric.
    pub fn is_numeric(self) -> bool {
        matches!(self, ModelDataType::Integer | ModelDataType::Double)
    }
}

/// The analytical role a column plays in mining.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ColumnRole {
    /// An input attribute.
    #[default]
    Feature,
    /// The class / target attribute.
    Target,
    /// An identifier — excluded from mining.
    Identifier,
    /// Ignored by mining (e.g. free text).
    Ignored,
}

/// Where a model element came from.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Provenance {
    /// Loaded from a CSV document.
    Csv {
        /// Origin descriptor (path or label).
        source: String,
    },
    /// Extracted from Linked Open Data.
    Lod {
        /// The `rdf:type` class IRI that was tabularized.
        class_iri: String,
        /// Number of triples in the source graph.
        triple_count: usize,
    },
    /// Produced synthetically (generator name and seed).
    Synthetic {
        /// Generator identifier.
        generator: String,
        /// Seed used.
        seed: u64,
    },
    /// Unknown origin.
    Unknown,
}

/// A measured data-quality criterion attached to a model element
/// (the paper's §3.2.2 "data quality criteria annotation").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityAnnotation {
    /// Criterion identifier, e.g. `"completeness"`.
    pub criterion: String,
    /// Measured value (criterion-specific scale, usually `[0,1]`).
    pub value: f64,
    /// Free-form detail for the non-expert user.
    pub detail: Option<String>,
}

impl QualityAnnotation {
    /// Create an annotation.
    pub fn new(criterion: impl Into<String>, value: f64) -> Self {
        QualityAnnotation {
            criterion: criterion.into(),
            value,
            detail: None,
        }
    }

    /// Attach a human-readable detail.
    pub fn with_detail(mut self, detail: impl Into<String>) -> Self {
        self.detail = Some(detail.into());
        self
    }
}

/// A column of a [`ColumnSet`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnModel {
    /// Column name.
    pub name: String,
    /// Data type.
    pub data_type: ModelDataType,
    /// Whether nulls were observed.
    pub nullable: bool,
    /// Analytical role.
    pub role: ColumnRole,
    /// Number of distinct non-null values observed (if known).
    pub distinct_count: Option<usize>,
    /// Quality annotations scoped to this column.
    pub annotations: Vec<QualityAnnotation>,
}

impl ColumnModel {
    /// Create a column model.
    pub fn new(name: impl Into<String>, data_type: ModelDataType, nullable: bool) -> Self {
        ColumnModel {
            name: name.into(),
            data_type,
            nullable,
            role: ColumnRole::default(),
            distinct_count: None,
            annotations: Vec::new(),
        }
    }

    /// Add a quality annotation (replacing any previous annotation with
    /// the same criterion).
    pub fn annotate(&mut self, annotation: QualityAnnotation) {
        self.annotations
            .retain(|a| a.criterion != annotation.criterion);
        self.annotations.push(annotation);
    }

    /// Look up an annotation by criterion.
    pub fn annotation(&self, criterion: &str) -> Option<&QualityAnnotation> {
        self.annotations.iter().find(|a| a.criterion == criterion)
    }
}

/// A named set of columns (CWM `ColumnSet`; a table or tabularized class).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnSet {
    /// Name of the set.
    pub name: String,
    /// Columns, in order.
    pub columns: Vec<ColumnModel>,
    /// Number of rows observed.
    pub row_count: usize,
    /// Where the data came from.
    pub provenance: Provenance,
    /// Quality annotations scoped to the whole set.
    pub annotations: Vec<QualityAnnotation>,
}

impl ColumnSet {
    /// Create a column set.
    pub fn new(name: impl Into<String>, provenance: Provenance) -> Self {
        ColumnSet {
            name: name.into(),
            columns: Vec::new(),
            row_count: 0,
            provenance,
            annotations: Vec::new(),
        }
    }

    /// Look up a column by name.
    pub fn column(&self, name: &str) -> Option<&ColumnModel> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Mutably look up a column by name.
    pub fn column_mut(&mut self, name: &str) -> Option<&mut ColumnModel> {
        self.columns.iter_mut().find(|c| c.name == name)
    }

    /// Add a set-level quality annotation (replacing same-criterion ones).
    pub fn annotate(&mut self, annotation: QualityAnnotation) {
        self.annotations
            .retain(|a| a.criterion != annotation.criterion);
        self.annotations.push(annotation);
    }

    /// Look up a set-level annotation by criterion.
    pub fn annotation(&self, criterion: &str) -> Option<&QualityAnnotation> {
        self.annotations.iter().find(|a| a.criterion == criterion)
    }

    /// Names of columns with the [`ColumnRole::Feature`] role.
    pub fn feature_names(&self) -> Vec<&str> {
        self.columns
            .iter()
            .filter(|c| c.role == ColumnRole::Feature)
            .map(|c| c.name.as_str())
            .collect()
    }

    /// The target column, if one is designated.
    pub fn target(&self) -> Option<&ColumnModel> {
        self.columns.iter().find(|c| c.role == ColumnRole::Target)
    }

    /// Designate `name` as the target column (resetting any previous one
    /// to `Feature`).
    pub fn set_target(&mut self, name: &str) -> bool {
        if self.column(name).is_none() {
            return false;
        }
        for c in &mut self.columns {
            if c.role == ColumnRole::Target {
                c.role = ColumnRole::Feature;
            }
        }
        self.column_mut(name).expect("checked").role = ColumnRole::Target;
        true
    }
}

/// A schema groups column sets (CWM `Schema`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemaModel {
    /// Schema name.
    pub name: String,
    /// Column sets in this schema.
    pub column_sets: Vec<ColumnSet>,
}

impl SchemaModel {
    /// Create an empty schema.
    pub fn new(name: impl Into<String>) -> Self {
        SchemaModel {
            name: name.into(),
            column_sets: Vec::new(),
        }
    }

    /// Look up a column set by name.
    pub fn column_set(&self, name: &str) -> Option<&ColumnSet> {
        self.column_sets.iter().find(|c| c.name == name)
    }
}

/// The root of the common representation (CWM `Catalog`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    /// Catalog name.
    pub name: String,
    /// Schemas in this catalog.
    pub schemas: Vec<SchemaModel>,
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new(name: impl Into<String>) -> Self {
        Catalog {
            name: name.into(),
            schemas: Vec::new(),
        }
    }

    /// Look up a schema by name.
    pub fn schema(&self, name: &str) -> Option<&SchemaModel> {
        self.schemas.iter().find(|s| s.name == name)
    }

    /// Mutably look up a schema by name, creating it if absent.
    pub fn schema_mut_or_create(&mut self, name: &str) -> &mut SchemaModel {
        if let Some(pos) = self.schemas.iter().position(|s| s.name == name) {
            &mut self.schemas[pos]
        } else {
            self.schemas.push(SchemaModel::new(name));
            self.schemas.last_mut().expect("just pushed")
        }
    }

    /// Find a column set anywhere in the catalog.
    pub fn find_column_set(&self, name: &str) -> Option<&ColumnSet> {
        self.schemas.iter().find_map(|s| s.column_set(name))
    }

    /// Mutably find a column set anywhere in the catalog.
    pub fn find_column_set_mut(&mut self, name: &str) -> Option<&mut ColumnSet> {
        self.schemas
            .iter_mut()
            .find_map(|s| s.column_sets.iter_mut().find(|c| c.name == name))
    }

    /// Total number of column sets.
    pub fn column_set_count(&self) -> usize {
        self.schemas.iter().map(|s| s.column_sets.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> ColumnSet {
        let mut cs = ColumnSet::new("stations", Provenance::Unknown);
        cs.columns
            .push(ColumnModel::new("city", ModelDataType::String, false));
        cs.columns
            .push(ColumnModel::new("pm10", ModelDataType::Double, true));
        cs.row_count = 3;
        cs
    }

    #[test]
    fn annotations_replace_same_criterion() {
        let mut cs = sample_set();
        cs.annotate(QualityAnnotation::new("completeness", 0.8));
        cs.annotate(QualityAnnotation::new("completeness", 0.9));
        assert_eq!(cs.annotations.len(), 1);
        assert_eq!(cs.annotation("completeness").unwrap().value, 0.9);
    }

    #[test]
    fn column_annotation_lookup() {
        let mut cs = sample_set();
        cs.column_mut("pm10")
            .unwrap()
            .annotate(QualityAnnotation::new("outlier_ratio", 0.05).with_detail("IQR fence"));
        let a = cs
            .column("pm10")
            .unwrap()
            .annotation("outlier_ratio")
            .unwrap();
        assert_eq!(a.value, 0.05);
        assert_eq!(a.detail.as_deref(), Some("IQR fence"));
    }

    #[test]
    fn target_designation_is_exclusive() {
        let mut cs = sample_set();
        assert!(cs.set_target("city"));
        assert!(cs.set_target("pm10"));
        assert_eq!(cs.target().unwrap().name, "pm10");
        assert_eq!(cs.feature_names(), vec!["city"]);
        assert!(!cs.set_target("nope"));
    }

    #[test]
    fn catalog_navigation() {
        let mut cat = Catalog::new("open-data");
        cat.schema_mut_or_create("env")
            .column_sets
            .push(sample_set());
        assert_eq!(cat.column_set_count(), 1);
        assert!(cat.find_column_set("stations").is_some());
        assert!(cat.schema("env").is_some());
        // Creating again does not duplicate.
        cat.schema_mut_or_create("env");
        assert_eq!(cat.schemas.len(), 1);
    }

    #[test]
    fn model_datatype_numeric() {
        assert!(ModelDataType::Integer.is_numeric());
        assert!(ModelDataType::Double.is_numeric());
        assert!(!ModelDataType::String.is_numeric());
        assert!(!ModelDataType::Boolean.is_numeric());
    }
}
