//! JSON (de)serialization of catalogs.
//!
//! Models are durable artifacts: the pipeline writes the annotated common
//! representation to disk so a later session (or another tool) can reuse
//! it without re-profiling the data.

use crate::error::{MetamodelError, Result};
use crate::model::Catalog;

/// Serialize a catalog to pretty-printed JSON.
pub fn to_json(catalog: &Catalog) -> Result<String> {
    serde_json::to_string_pretty(catalog).map_err(|e| MetamodelError::Serde(e.to_string()))
}

/// Parse a catalog from JSON.
pub fn from_json(json: &str) -> Result<Catalog> {
    serde_json::from_str(json).map_err(|e| MetamodelError::Serde(e.to_string()))
}

/// Write a catalog to a JSON file.
pub fn save(catalog: &Catalog, path: impl AsRef<std::path::Path>) -> Result<()> {
    std::fs::write(path, to_json(catalog)?).map_err(|e| MetamodelError::Io(e.to_string()))
}

/// Load a catalog from a JSON file.
pub fn load(path: impl AsRef<std::path::Path>) -> Result<Catalog> {
    let text = std::fs::read_to_string(path).map_err(|e| MetamodelError::Io(e.to_string()))?;
    from_json(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ColumnModel, ColumnSet, ModelDataType, Provenance, QualityAnnotation};

    fn sample() -> Catalog {
        let mut cat = Catalog::new("c");
        let mut cs = ColumnSet::new(
            "t",
            Provenance::Synthetic {
                generator: "blobs".into(),
                seed: 7,
            },
        );
        let mut col = ColumnModel::new("x", ModelDataType::Double, true);
        col.annotate(QualityAnnotation::new("completeness", 0.75).with_detail("25% MCAR"));
        cs.columns.push(col);
        cs.annotate(QualityAnnotation::new("duplicates", 0.0));
        cat.schema_mut_or_create("s").column_sets.push(cs);
        cat
    }

    #[test]
    fn json_round_trip() {
        let cat = sample();
        let json = to_json(&cat).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(cat, back);
    }

    #[test]
    fn file_round_trip() {
        let cat = sample();
        let dir = std::env::temp_dir().join("openbi-metamodel-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("catalog.json");
        save(&cat, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(cat, back);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn malformed_json_is_error() {
        assert!(from_json("{not json").is_err());
        assert!(load("/nonexistent/openbi/catalog.json").is_err());
    }

    #[test]
    fn json_contains_annotations() {
        let json = to_json(&sample()).unwrap();
        assert!(json.contains("completeness"));
        assert!(json.contains("25% MCAR"));
    }
}
