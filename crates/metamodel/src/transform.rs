//! Model-driven transformations into the common representation.
//!
//! The paper implements this step with Eclipse EMF plugins (§3.3, "LOD
//! integration module" / "Data source module"); here the transforms are
//! native functions from `openbi-table` tables and `openbi-lod` graphs
//! into [`Catalog`] models.

use crate::model::{
    Catalog, ColumnModel, ColumnRole, ColumnSet, ModelDataType, Provenance, SchemaModel,
};
use openbi_lod::{tabularize, Graph, Iri, TabularizeOptions};
use openbi_table::{DataType, Table};

/// Map a table data type to the metamodel data type.
pub fn model_dtype(dtype: DataType) -> ModelDataType {
    match dtype {
        DataType::Int => ModelDataType::Integer,
        DataType::Float => ModelDataType::Double,
        DataType::Str => ModelDataType::String,
        DataType::Bool => ModelDataType::Boolean,
    }
}

/// Build a [`ColumnSet`] describing a table.
///
/// Columns named `id`, `iri` or ending in `_id` are given the
/// [`ColumnRole::Identifier`] role; everything else starts as a feature.
pub fn column_set_from_table(table: &Table, name: &str, provenance: Provenance) -> ColumnSet {
    let mut cs = ColumnSet::new(name, provenance);
    cs.row_count = table.n_rows();
    for col in table.columns() {
        let mut cm = ColumnModel::new(col.name(), model_dtype(col.dtype()), col.null_count() > 0);
        let lower = col.name().to_ascii_lowercase();
        if lower == "id" || lower == "iri" || lower.ends_with("_id") {
            cm.role = ColumnRole::Identifier;
        }
        cm.distinct_count = Some(col.distinct().len());
        cs.columns.push(cm);
    }
    cs
}

/// Build a catalog holding a single table.
pub fn catalog_from_table(table: &Table, catalog: &str, schema: &str, set: &str) -> Catalog {
    let mut cat = Catalog::new(catalog);
    let cs = column_set_from_table(
        table,
        set,
        Provenance::Csv {
            source: set.to_string(),
        },
    );
    cat.schema_mut_or_create(schema).column_sets.push(cs);
    cat
}

/// Extract the common representation of a LOD graph: one column set per
/// requested class, each obtained by tabularization. Returns the catalog
/// and the tabularized tables (same order as `classes`), since callers
/// almost always need both the model and the data.
pub fn catalog_from_lod(
    graph: &Graph,
    catalog_name: &str,
    classes: &[Iri],
    options: &TabularizeOptions,
) -> openbi_lod::Result<(Catalog, Vec<Table>)> {
    let mut cat = Catalog::new(catalog_name);
    let mut schema = SchemaModel::new("lod");
    let mut tables = Vec::with_capacity(classes.len());
    for class in classes {
        let table = tabularize(graph, class, options)?;
        let mut cs = column_set_from_table(
            &table,
            class.local_name(),
            Provenance::Lod {
                class_iri: class.as_str().to_string(),
                triple_count: graph.len(),
            },
        );
        // Tabularized LOD always carries the entity IRI as identifier.
        if let Some(c) = cs.column_mut("iri") {
            c.role = ColumnRole::Identifier;
        }
        schema.column_sets.push(cs);
        tables.push(table);
    }
    cat.schemas.push(schema);
    Ok((cat, tables))
}

#[cfg(test)]
mod tests {
    use super::*;
    use openbi_lod::parse_turtle;
    use openbi_table::Column;

    fn sample_table() -> Table {
        Table::new(vec![
            Column::from_i64("id", [1, 2, 3]),
            Column::from_f64("pm10", [20.0, 30.0, 25.0]),
            Column::from_opt_str("city", [Some("a".to_string()), None, Some("b".to_string())]),
        ])
        .unwrap()
    }

    #[test]
    fn table_to_column_set_types_and_roles() {
        let cs = column_set_from_table(&sample_table(), "aq", Provenance::Unknown);
        assert_eq!(cs.row_count, 3);
        assert_eq!(cs.column("id").unwrap().role, ColumnRole::Identifier);
        assert_eq!(cs.column("pm10").unwrap().data_type, ModelDataType::Double);
        assert!(cs.column("city").unwrap().nullable);
        assert!(!cs.column("pm10").unwrap().nullable);
        assert_eq!(cs.column("city").unwrap().distinct_count, Some(2));
    }

    #[test]
    fn catalog_from_table_wires_schema() {
        let cat = catalog_from_table(&sample_table(), "cat", "raw", "aq");
        assert_eq!(cat.column_set_count(), 1);
        assert!(cat.schema("raw").is_some());
        assert!(cat.find_column_set("aq").is_some());
    }

    #[test]
    fn catalog_from_lod_extracts_classes() {
        let g = parse_turtle(
            r#"
@prefix ex: <http://ex.org/> .
ex:s1 a ex:Station ; ex:pm10 20.5 ; ex:city "A" .
ex:s2 a ex:Station ; ex:pm10 31.0 .
ex:d1 a ex:District ; ex:name "North" .
"#,
        )
        .unwrap();
        let classes = vec![
            Iri::new("http://ex.org/Station").unwrap(),
            Iri::new("http://ex.org/District").unwrap(),
        ];
        let (cat, tables) =
            catalog_from_lod(&g, "lod-cat", &classes, &TabularizeOptions::default()).unwrap();
        assert_eq!(cat.column_set_count(), 2);
        assert_eq!(tables.len(), 2);
        let station = cat.find_column_set("Station").unwrap();
        assert_eq!(station.row_count, 2);
        assert_eq!(station.column("iri").unwrap().role, ColumnRole::Identifier);
        assert!(!station.column("pm10").unwrap().nullable);
        match &station.provenance {
            Provenance::Lod { class_iri, .. } => {
                assert_eq!(class_iri, "http://ex.org/Station")
            }
            other => panic!("unexpected provenance {other:?}"),
        }
        // The "city" column is missing for s2 → nullable.
        assert!(station.column("city").unwrap().nullable);
    }

    #[test]
    fn dtype_mapping_is_total() {
        assert_eq!(model_dtype(DataType::Int), ModelDataType::Integer);
        assert_eq!(model_dtype(DataType::Float), ModelDataType::Double);
        assert_eq!(model_dtype(DataType::Str), ModelDataType::String);
        assert_eq!(model_dtype(DataType::Bool), ModelDataType::Boolean);
    }
}
