//! A C4.5-style decision tree: gain-ratio splits, binary thresholds on
//! numeric attributes, multiway splits on nominal attributes, missing
//! values routed to the most populated branch.
//!
//! Split search is columnar: each candidate attribute gathers its node
//! rows' values from one contiguous column slice (one pass builds the
//! present/missing partition and the value buffer), instead of chasing a
//! row pointer per cell. The arithmetic — sort order, prefix counts,
//! entropy/gain-ratio evaluation — is unchanged from the row-major
//! implementation, so fitted trees are bit-identical.

use super::Classifier;
use crate::error::{MiningError, Result};
use crate::instances::{AttrKind, InstancesView};

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        class: usize,
    },
    NumericSplit {
        attribute: usize,
        threshold: f64,
        /// Branch for missing values (index into `children`: 0 = left).
        missing_to: usize,
        children: Vec<Node>, // exactly [left (<=), right (>)]
    },
    NominalSplit {
        attribute: usize,
        missing_to: usize,
        /// One child per category (same order as the dictionary).
        children: Vec<Node>,
        /// Fallback class for unseen categories.
        default: usize,
    },
}

impl Node {
    fn size(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::NumericSplit { children, .. } | Node::NominalSplit { children, .. } => {
                1 + children.iter().map(Node::size).sum::<usize>()
            }
        }
    }

    fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::NumericSplit { children, .. } | Node::NominalSplit { children, .. } => {
                1 + children.iter().map(Node::depth).max().unwrap_or(0)
            }
        }
    }
}

/// The decision-tree classifier.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    /// Maximum depth of the tree.
    pub max_depth: usize,
    /// Minimum number of rows in a leaf.
    pub min_leaf: usize,
    /// Restrict split search to these attribute indices (used by the
    /// random forest for feature subsampling). `None` = all attributes.
    pub feature_subset: Option<Vec<usize>>,
    root: Option<Node>,
}

fn entropy(counts: &[usize]) -> f64 {
    entropy_with_total(counts, counts.iter().sum())
}

/// Entropy when the caller already tracks `total` incrementally (an exact
/// integer equal to `counts.iter().sum()` — same `f64` divisions, so the
/// result is bit-identical to [`entropy`]).
fn entropy_with_total(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total as f64;
            -p * p.log2()
        })
        .sum()
}

/// Per-fit state threaded through the recursive build.
///
/// Each numeric attribute is sorted once per fit; every node then derives
/// its own sorted value lists by filtering its parent's lists with a
/// membership stamp (a stable filter preserves sort order), so no node
/// ever re-sorts and per-level work shrinks with the partitions. Sort
/// order is `(value, row)`; tie order among equal values never influences
/// the chosen split, because equal values admit no threshold between them
/// and class counts accumulate as exact integers.
struct FitCtx {
    /// Label cache, one slot per view row.
    labels: Vec<Option<usize>>,
    /// Node-membership stamps (one slot per view row; bumping the
    /// counter invalidates the previous node's marks without an O(n)
    /// clear).
    stamp: Vec<u32>,
    counter: u32,
    /// Scratch: the node's `(value, label)` pairs in ascending value
    /// order (reused across attributes and nodes).
    vals: Vec<(f64, Option<usize>)>,
    /// Scratch for the local-sort fallback path.
    sort_buf: Vec<(f64, usize)>,
    /// Scratch class-count accumulators.
    total_counts: Vec<usize>,
    left_counts: Vec<usize>,
}

struct Split {
    attribute: usize,
    /// `Some(threshold)` for numeric, `None` for nominal.
    threshold: Option<f64>,
    /// Row partitions (numeric: [left, right]; nominal: per category).
    partitions: Vec<Vec<usize>>,
    missing_rows: Vec<usize>,
}

impl DecisionTree {
    /// Create an untrained tree.
    pub fn new(max_depth: usize, min_leaf: usize) -> Self {
        DecisionTree {
            max_depth: max_depth.max(1),
            min_leaf: min_leaf.max(1),
            feature_subset: None,
            root: None,
        }
    }

    /// Number of nodes in the fitted tree.
    pub fn node_count(&self) -> usize {
        self.root.as_ref().map(Node::size).unwrap_or(0)
    }

    /// Depth of the fitted tree.
    pub fn depth(&self) -> usize {
        self.root.as_ref().map(Node::depth).unwrap_or(0)
    }

    fn majority(counts: &[usize], fallback: usize) -> usize {
        counts
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .filter(|(_, c)| **c > 0)
            .map(|(i, _)| i)
            .unwrap_or(fallback)
    }

    /// Scan every candidate split and return the winner. Only `(attr,
    /// threshold, gain_ratio)` is tracked during the scan; the winning
    /// partition index vectors are rebuilt once at the end, instead of on
    /// every improvement. The comparison sequence (attribute order, then
    /// ascending value order, strict `>` on gain ratio) matches the
    /// row-major reference, so the chosen split is identical.
    fn best_split(
        &self,
        data: &InstancesView<'_>,
        rows: &[usize],
        parent_entropy: f64,
        ctx: &mut FitCtx,
        sorted: &[Option<Vec<(usize, f64)>>],
    ) -> Option<Split> {
        let n = rows.len() as f64;
        // (gain_ratio, attribute, Some(threshold) | None = nominal).
        let mut best: Option<(f64, usize, Option<f64>)> = None;
        let attrs: Vec<usize> = match &self.feature_subset {
            Some(subset) => subset.clone(),
            None => (0..data.n_attributes()).collect(),
        };
        let FitCtx {
            labels,
            vals,
            sort_buf,
            total_counts,
            left_counts,
            ..
        } = ctx;
        let n_classes = data.n_classes();
        for a in attrs {
            let col = data.col(a);
            match &data.attribute(a).kind {
                AttrKind::Numeric => {
                    // The node's present `(value, label)` pairs in
                    // ascending value order, straight from the node's
                    // filtered sort list (local sort only as a fallback
                    // if a list is missing). Buffers are reused across
                    // attributes and nodes.
                    vals.clear();
                    match &sorted[a] {
                        Some(list) => {
                            vals.extend(list.iter().map(|&(i, v)| (v, labels[i])));
                        }
                        None => {
                            sort_buf.clear();
                            sort_buf
                                .extend(rows.iter().filter_map(|&i| col.get(i).map(|v| (v, i))));
                            sort_buf
                                .sort_unstable_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)));
                            vals.extend(sort_buf.iter().map(|&(v, i)| (v, labels[i])));
                        }
                    };
                    if vals.len() < 2 * self.min_leaf {
                        continue;
                    }
                    let present_n = vals.len();
                    let present_frac = present_n as f64 / n;
                    // Prefix class counts for O(1) split evaluation.
                    total_counts.clear();
                    total_counts.resize(n_classes, 0);
                    for (_, l) in vals.iter() {
                        if let Some(l) = l {
                            total_counts[*l] += 1;
                        }
                    }
                    let total_labeled: usize = total_counts.iter().sum();
                    left_counts.clear();
                    left_counts.resize(n_classes, 0);
                    let mut left_labeled = 0usize;
                    let mut i = 0;
                    while i + 1 < vals.len() {
                        if let Some(l) = vals[i].1 {
                            left_counts[l] += 1;
                            left_labeled += 1;
                        }
                        let (v, _) = vals[i];
                        let (next_v, _) = vals[i + 1];
                        i += 1;
                        if v == next_v {
                            continue;
                        }
                        let left_n = i;
                        let right_n = present_n - i;
                        if left_n < self.min_leaf || right_n < self.min_leaf {
                            continue;
                        }
                        // Right-side entropy from `total - left` without
                        // allocating: same per-class terms, same fold
                        // order as `entropy()` over a materialized slice.
                        let right_labeled = total_labeled - left_labeled;
                        let right_entropy = if right_labeled == 0 {
                            0.0
                        } else {
                            total_counts
                                .iter()
                                .zip(left_counts.iter())
                                .map(|(t, l)| t - l)
                                .filter(|&c| c > 0)
                                .map(|c| {
                                    let p = c as f64 / right_labeled as f64;
                                    -p * p.log2()
                                })
                                .sum()
                        };
                        let child_entropy = (left_n as f64 / present_n as f64)
                            * entropy_with_total(left_counts, left_labeled)
                            + (right_n as f64 / present_n as f64) * right_entropy;
                        let gain = present_frac * (parent_entropy - child_entropy);
                        if gain <= 1e-12 {
                            continue;
                        }
                        let p_l = left_n as f64 / present_n as f64;
                        let split_info = -p_l * p_l.log2() - (1.0 - p_l) * (1.0 - p_l).log2();
                        let gain_ratio = gain / split_info.max(1e-9);
                        if best.map(|(g, _, _)| gain_ratio > g).unwrap_or(true) {
                            best = Some((gain_ratio, a, Some((v + next_v) / 2.0)));
                        }
                    }
                }
                AttrKind::Nominal(dict) => {
                    if dict.len() < 2 {
                        continue;
                    }
                    // Per-category sizes and class counts in one pass —
                    // no per-category index vectors during the scan.
                    let mut sizes = vec![0usize; dict.len()];
                    let mut counts = vec![vec![0usize; n_classes]; dict.len()];
                    let mut present_n = 0usize;
                    for &i in rows {
                        if let Some(v) = col.get(i) {
                            present_n += 1;
                            let idx = v as usize;
                            if idx < dict.len() {
                                sizes[idx] += 1;
                                if let Some(l) = labels[i] {
                                    counts[idx][l] += 1;
                                }
                            }
                        }
                    }
                    if present_n < 2 * self.min_leaf {
                        continue;
                    }
                    let present_frac = present_n as f64 / n;
                    let non_empty = sizes.iter().filter(|&&s| s > 0).count();
                    if non_empty < 2 {
                        continue;
                    }
                    let mut child_entropy = 0.0;
                    let mut split_info = 0.0;
                    for (s, c) in sizes.iter().zip(&counts) {
                        if *s == 0 {
                            continue;
                        }
                        let frac = *s as f64 / present_n as f64;
                        child_entropy += frac * entropy(c);
                        split_info -= frac * frac.log2();
                    }
                    let gain = present_frac * (parent_entropy - child_entropy);
                    if gain <= 1e-12 {
                        continue;
                    }
                    let gain_ratio = gain / split_info.max(1e-9);
                    if best.map(|(g, _, _)| gain_ratio > g).unwrap_or(true) {
                        best = Some((gain_ratio, a, None));
                    }
                }
            }
        }
        // Rebuild the winning split's partitions (row order, exactly as
        // the scan-time builds did).
        let (_, attribute, threshold) = best?;
        let col = data.col(attribute);
        let mut missing_rows: Vec<usize> = Vec::new();
        let partitions: Vec<Vec<usize>> = match threshold {
            Some(t) => {
                let mut left = Vec::new();
                let mut right = Vec::new();
                for &i in rows {
                    match col.get(i) {
                        Some(v) => {
                            if v <= t {
                                left.push(i);
                            } else {
                                right.push(i);
                            }
                        }
                        None => missing_rows.push(i),
                    }
                }
                vec![left, right]
            }
            None => {
                let AttrKind::Nominal(dict) = &data.attribute(attribute).kind else {
                    unreachable!("nominal winner on a numeric attribute");
                };
                let mut partitions: Vec<Vec<usize>> = vec![Vec::new(); dict.len()];
                for &i in rows {
                    match col.get(i) {
                        Some(v) => {
                            let idx = v as usize;
                            if idx < dict.len() {
                                partitions[idx].push(i);
                            }
                        }
                        None => missing_rows.push(i),
                    }
                }
                partitions
            }
        };
        Some(Split {
            attribute,
            threshold,
            partitions,
            missing_rows,
        })
    }

    fn build(
        &self,
        data: &InstancesView<'_>,
        rows: &[usize],
        depth: usize,
        fallback: usize,
        ctx: &mut FitCtx,
        parent_sorted: &[Option<Vec<(usize, f64)>>],
    ) -> Node {
        let mut counts = vec![0usize; data.n_classes()];
        for &i in rows {
            if let Some(l) = ctx.labels[i] {
                counts[l] += 1;
            }
        }
        let majority = Self::majority(&counts, fallback);
        let non_zero_classes = counts.iter().filter(|&&c| c > 0).count();
        if depth >= self.max_depth || rows.len() < 2 * self.min_leaf || non_zero_classes <= 1 {
            return Node::Leaf { class: majority };
        }
        // Derive this node's sorted lists by stable-filtering the parent's
        // with a membership stamp — order is preserved, nothing re-sorts,
        // and leaves (handled above) never pay for it.
        ctx.counter += 1;
        for &i in rows {
            ctx.stamp[i] = ctx.counter;
        }
        let (stamp, counter) = (&ctx.stamp, ctx.counter);
        let sorted: Vec<Option<Vec<(usize, f64)>>> = parent_sorted
            .iter()
            .map(|o| {
                o.as_ref().map(|list| {
                    list.iter()
                        .copied()
                        .filter(|&(i, _)| stamp[i] == counter)
                        .collect()
                })
            })
            .collect();
        let parent_entropy = entropy(&counts);
        let Some(split) = self.best_split(data, rows, parent_entropy, ctx, &sorted) else {
            return Node::Leaf { class: majority };
        };
        // Missing rows follow the most populated partition.
        let missing_to = split
            .partitions
            .iter()
            .enumerate()
            .max_by_key(|(_, p)| p.len())
            .map(|(i, _)| i)
            .unwrap_or(0);
        let children: Vec<Node> = split
            .partitions
            .iter()
            .enumerate()
            .map(|(pi, partition)| {
                let mut child_rows = partition.clone();
                if pi == missing_to {
                    child_rows.extend_from_slice(&split.missing_rows);
                }
                if child_rows.is_empty() {
                    Node::Leaf { class: majority }
                } else {
                    self.build(data, &child_rows, depth + 1, majority, ctx, &sorted)
                }
            })
            .collect();
        match split.threshold {
            Some(threshold) => Node::NumericSplit {
                attribute: split.attribute,
                threshold,
                missing_to,
                children,
            },
            None => Node::NominalSplit {
                attribute: split.attribute,
                missing_to,
                children,
                default: majority,
            },
        }
    }

    fn walk(&self, node: &Node, value_of: &impl Fn(usize) -> Option<f64>) -> usize {
        match node {
            Node::Leaf { class } => *class,
            Node::NumericSplit {
                attribute,
                threshold,
                missing_to,
                children,
            } => {
                let child = match value_of(*attribute) {
                    Some(v) => {
                        if v <= *threshold {
                            0
                        } else {
                            1
                        }
                    }
                    None => *missing_to,
                };
                self.walk(&children[child], value_of)
            }
            Node::NominalSplit {
                attribute,
                missing_to,
                children,
                default,
            } => match value_of(*attribute) {
                Some(v) => {
                    let idx = v as usize;
                    if idx < children.len() {
                        self.walk(&children[idx], value_of)
                    } else {
                        *default
                    }
                }
                None => self.walk(&children[*missing_to], value_of),
            },
        }
    }
}

impl Classifier for DecisionTree {
    fn name(&self) -> &'static str {
        "DecisionTree"
    }

    fn fit_view(&mut self, data: &InstancesView<'_>) -> Result<()> {
        let labeled = data.labeled_indices();
        if labeled.is_empty() {
            return Err(MiningError::InvalidDataset(
                "DecisionTree needs labeled rows".into(),
            ));
        }
        let fallback = data.majority_class();
        let n = data.len();
        let labels: Vec<Option<usize>> = (0..n).map(|i| data.label(i)).collect();
        let attrs: Vec<usize> = match &self.feature_subset {
            Some(subset) => subset.clone(),
            None => (0..data.n_attributes()).collect(),
        };
        // One sort per numeric attribute per fit; every node reuses it.
        let mut presorted: Vec<Option<Vec<(usize, f64)>>> = vec![None; data.n_attributes()];
        for &a in &attrs {
            if data.attribute(a).kind != AttrKind::Numeric {
                continue;
            }
            let col = data.col(a);
            let mut order: Vec<(usize, f64)> =
                (0..n).filter_map(|i| col.get(i).map(|v| (i, v))).collect();
            order.sort_unstable_by(|x, y| x.1.total_cmp(&y.1).then(x.0.cmp(&y.0)));
            presorted[a] = Some(order);
        }
        let mut ctx = FitCtx {
            labels,
            stamp: vec![0u32; n],
            counter: 0,
            vals: Vec::new(),
            sort_buf: Vec::new(),
            total_counts: Vec::new(),
            left_counts: Vec::new(),
        };
        self.root = Some(self.build(data, &labeled, 0, fallback, &mut ctx, &presorted));
        Ok(())
    }

    fn predict_row(&self, row: &[Option<f64>]) -> Result<usize> {
        let root = self
            .root
            .as_ref()
            .ok_or(MiningError::NotFitted("DecisionTree"))?;
        Ok(self.walk(root, &|a| row.get(a).copied().flatten()))
    }

    fn predict_view(&self, data: &InstancesView<'_>) -> Result<Vec<usize>> {
        let root = self
            .root
            .as_ref()
            .ok_or(MiningError::NotFitted("DecisionTree"))?;
        // Iterative descent against pre-fetched column views: no closure
        // dispatch or recursion per node on the prediction fast path.
        let cols: Vec<_> = (0..data.n_attributes()).map(|a| data.col(a)).collect();
        Ok((0..data.len())
            .map(|i| {
                let mut node = root;
                loop {
                    match node {
                        Node::Leaf { class } => break *class,
                        Node::NumericSplit {
                            attribute,
                            threshold,
                            missing_to,
                            children,
                        } => {
                            let child = match cols.get(*attribute).and_then(|c| c.get(i)) {
                                // Keep the reference's `<=` comparison
                                // (a present NaN goes right, as before).
                                Some(v) => {
                                    if v <= *threshold {
                                        0
                                    } else {
                                        1
                                    }
                                }
                                None => *missing_to,
                            };
                            node = &children[child];
                        }
                        Node::NominalSplit {
                            attribute,
                            missing_to,
                            children,
                            default,
                        } => match cols.get(*attribute).and_then(|c| c.get(i)) {
                            Some(v) => {
                                let idx = v as usize;
                                if idx < children.len() {
                                    node = &children[idx];
                                } else {
                                    break *default;
                                }
                            }
                            None => node = &children[*missing_to],
                        },
                    }
                }
            })
            .collect())
    }

    fn model_size(&self) -> usize {
        self.node_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::{Attribute, Instances};

    fn xor_like() -> Instances {
        // Class = (x > 3.5) XOR (y > 3.5): needs depth-2 splits. The
        // boundary is off-center so single splits have positive gain
        // (a perfectly centered XOR has zero gain for every greedy
        // split and defeats any C4.5-style tree).
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for xi in 0..10 {
            for yi in 0..10 {
                let x = xi as f64;
                let y = yi as f64;
                rows.push(vec![Some(x), Some(y)]);
                labels.push(Some(usize::from((x > 3.5) != (y > 3.5))));
            }
        }
        Instances::from_rows(
            vec![
                Attribute {
                    name: "x".into(),
                    kind: AttrKind::Numeric,
                },
                Attribute {
                    name: "y".into(),
                    kind: AttrKind::Numeric,
                },
            ],
            rows,
            labels,
            vec!["0".into(), "1".into()],
        )
    }

    #[test]
    fn learns_xor_with_depth() {
        let mut t = DecisionTree::new(4, 1);
        t.fit(&xor_like()).unwrap();
        let d = xor_like();
        let preds = t.predict(&d).unwrap();
        let acc = preds
            .iter()
            .zip(&d.labels)
            .filter(|(p, l)| Some(**p) == **l)
            .count() as f64
            / d.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
        assert!(t.node_count() >= 7);
    }

    #[test]
    fn depth_one_cannot_learn_xor() {
        let mut t = DecisionTree::new(1, 1);
        t.fit(&xor_like()).unwrap();
        let d = xor_like();
        let preds = t.predict(&d).unwrap();
        let acc = preds
            .iter()
            .zip(&d.labels)
            .filter(|(p, l)| Some(**p) == **l)
            .count() as f64
            / d.len() as f64;
        assert!(acc < 0.7, "depth-1 accuracy {acc} should be near chance");
    }

    #[test]
    fn nominal_split() {
        let d = Instances::from_rows(
            vec![Attribute {
                name: "color".into(),
                kind: AttrKind::Nominal(vec!["r".into(), "g".into(), "b".into()]),
            }],
            (0..30).map(|i| vec![Some((i % 3) as f64)]).collect(),
            (0..30).map(|i| Some(usize::from(i % 3 == 2))).collect(),
            vec!["no".into(), "yes".into()],
        );
        let mut t = DecisionTree::new(3, 1);
        t.fit(&d).unwrap();
        assert_eq!(t.predict_row(&[Some(2.0)]).unwrap(), 1);
        assert_eq!(t.predict_row(&[Some(0.0)]).unwrap(), 0);
        // Unseen category falls back to the split default.
        let p = t.predict_row(&[Some(99.0)]).unwrap();
        assert!(p <= 1);
    }

    #[test]
    fn missing_routed_to_majority_branch() {
        let mut t = DecisionTree::new(4, 1);
        t.fit(&xor_like()).unwrap();
        // Just must not panic and must return a valid class.
        let p = t.predict_row(&[None, None]).unwrap();
        assert!(p < 2);
    }

    #[test]
    fn min_leaf_prunes() {
        let mut small = DecisionTree::new(16, 1);
        small.fit(&xor_like()).unwrap();
        let mut big = DecisionTree::new(16, 30);
        big.fit(&xor_like()).unwrap();
        assert!(big.node_count() < small.node_count());
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let d = Instances::from_rows(
            vec![Attribute {
                name: "x".into(),
                kind: AttrKind::Numeric,
            }],
            vec![vec![Some(1.0)], vec![Some(2.0)]],
            vec![Some(0), Some(0)],
            vec!["a".into(), "b".into()],
        );
        let mut t = DecisionTree::new(5, 1);
        t.fit(&d).unwrap();
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict_row(&[Some(9.0)]).unwrap(), 0);
    }

    #[test]
    fn unfitted_errors() {
        assert!(DecisionTree::new(3, 1).predict_row(&[Some(1.0)]).is_err());
    }
}
