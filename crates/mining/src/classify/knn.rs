//! k-nearest neighbors with min-max normalized heterogeneous distance
//! (HEOM-style): numeric dimensions use range-normalized absolute
//! difference, nominal dimensions 0/1 mismatch, and any missing value
//! contributes the maximum distance of 1 — the standard Weka convention.
//!
//! kNN is the suite's canary for the *dimensionality* defect: irrelevant
//! attributes dilute the distance and degrade it faster than the other
//! algorithms.

use super::Classifier;
use crate::error::{MiningError, Result};
use crate::instances::{AttrKind, Instances};

/// The kNN classifier (stores the training data).
#[derive(Debug, Clone)]
pub struct Knn {
    /// Neighborhood size.
    pub k: usize,
    train: Option<Instances>,
    ranges: Vec<Option<(f64, f64)>>,
    numeric: Vec<bool>,
}

impl Knn {
    /// Create an untrained kNN.
    pub fn new(k: usize) -> Self {
        Knn {
            k: k.max(1),
            train: None,
            ranges: vec![],
            numeric: vec![],
        }
    }

    fn dim_distance(&self, a: usize, x: Option<f64>, y: Option<f64>) -> f64 {
        match (x, y) {
            (Some(x), Some(y)) => {
                if self.numeric[a] {
                    match self.ranges[a] {
                        Some((lo, hi)) if hi > lo => ((x - y).abs() / (hi - lo)).min(1.0),
                        _ => {
                            if x == y {
                                0.0
                            } else {
                                1.0
                            }
                        }
                    }
                } else if x == y {
                    0.0
                } else {
                    1.0
                }
            }
            // Missing on either side: maximal dissimilarity.
            _ => 1.0,
        }
    }

    fn distance(&self, a: &[Option<f64>], b: &[Option<f64>]) -> f64 {
        (0..self.numeric.len())
            .map(|i| {
                let d = self.dim_distance(i, a.get(i).copied().flatten(), b[i]);
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }
}

impl Classifier for Knn {
    fn name(&self) -> &'static str {
        "kNN"
    }

    fn fit(&mut self, data: &Instances) -> Result<()> {
        let labeled = data.labeled_indices();
        if labeled.is_empty() {
            return Err(MiningError::InvalidDataset("kNN needs labeled rows".into()));
        }
        let train = data.subset(&labeled);
        self.ranges = train.numeric_ranges();
        self.numeric = train
            .attributes
            .iter()
            .map(|a| a.kind == AttrKind::Numeric)
            .collect();
        self.train = Some(train);
        Ok(())
    }

    fn predict_row(&self, row: &[Option<f64>]) -> Result<usize> {
        let train = self.train.as_ref().ok_or(MiningError::NotFitted("kNN"))?;
        let mut dists: Vec<(f64, usize)> = train
            .rows
            .iter()
            .enumerate()
            .map(|(i, r)| (self.distance(row, r), i))
            .collect();
        dists.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut votes = vec![0.0f64; train.n_classes().max(1)];
        for &(d, i) in dists.iter().take(self.k) {
            let label = train.labels[i].expect("training rows are labeled");
            // Inverse-distance weighting with a floor for exact matches.
            votes[label] += 1.0 / (d + 1e-6);
        }
        Ok(votes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0))
    }

    fn model_size(&self) -> usize {
        self.train
            .as_ref()
            .map(|t| t.len() * t.n_attributes())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::Attribute;

    fn clusters() -> Instances {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            let j = (i % 5) as f64 * 0.1;
            rows.push(vec![Some(j), Some(j)]);
            labels.push(Some(0));
            rows.push(vec![Some(8.0 + j), Some(8.0 - j)]);
            labels.push(Some(1));
        }
        Instances {
            attributes: vec![
                Attribute {
                    name: "x".into(),
                    kind: AttrKind::Numeric,
                },
                Attribute {
                    name: "y".into(),
                    kind: AttrKind::Numeric,
                },
            ],
            rows,
            labels,
            class_names: vec!["near".into(), "far".into()],
        }
    }

    #[test]
    fn classifies_clusters() {
        let mut m = Knn::new(3);
        m.fit(&clusters()).unwrap();
        assert_eq!(m.predict_row(&[Some(0.2), Some(0.3)]).unwrap(), 0);
        assert_eq!(m.predict_row(&[Some(7.9), Some(8.1)]).unwrap(), 1);
    }

    #[test]
    fn k_one_memorizes_training_points() {
        let d = clusters();
        let mut m = Knn::new(1);
        m.fit(&d).unwrap();
        let preds = m.predict(&d).unwrap();
        for (p, l) in preds.iter().zip(&d.labels) {
            assert_eq!(Some(*p), *l);
        }
    }

    #[test]
    fn normalization_prevents_scale_domination() {
        // y is on a huge scale but irrelevant; x separates the classes.
        let d = Instances {
            attributes: vec![
                Attribute {
                    name: "x".into(),
                    kind: AttrKind::Numeric,
                },
                Attribute {
                    name: "y".into(),
                    kind: AttrKind::Numeric,
                },
            ],
            rows: vec![
                vec![Some(0.0), Some(100_000.0)],
                vec![Some(0.1), Some(-100_000.0)],
                vec![Some(1.0), Some(50_000.0)],
                vec![Some(0.9), Some(-50_000.0)],
            ],
            labels: vec![Some(0), Some(0), Some(1), Some(1)],
            class_names: vec!["a".into(), "b".into()],
        };
        let mut m = Knn::new(1);
        m.fit(&d).unwrap();
        assert_eq!(m.predict_row(&[Some(0.05), Some(0.0)]).unwrap(), 0);
        assert_eq!(m.predict_row(&[Some(0.95), Some(0.0)]).unwrap(), 1);
    }

    #[test]
    fn missing_dimension_counts_as_max_distance() {
        let mut m = Knn::new(1);
        m.fit(&clusters()).unwrap();
        // With x missing, y still identifies the cluster.
        assert_eq!(m.predict_row(&[None, Some(0.1)]).unwrap(), 0);
        assert_eq!(m.predict_row(&[None, Some(7.9)]).unwrap(), 1);
    }

    #[test]
    fn nominal_mismatch_distance() {
        let d = Instances {
            attributes: vec![Attribute {
                name: "c".into(),
                kind: AttrKind::Nominal(vec!["p".into(), "q".into()]),
            }],
            rows: vec![vec![Some(0.0)], vec![Some(1.0)]],
            labels: vec![Some(0), Some(1)],
            class_names: vec!["a".into(), "b".into()],
        };
        let mut m = Knn::new(1);
        m.fit(&d).unwrap();
        assert_eq!(m.predict_row(&[Some(0.0)]).unwrap(), 0);
        assert_eq!(m.predict_row(&[Some(1.0)]).unwrap(), 1);
    }

    #[test]
    fn unfitted_errors() {
        assert!(Knn::new(3).predict_row(&[Some(0.0)]).is_err());
    }
}
