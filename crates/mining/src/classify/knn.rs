//! k-nearest neighbors with min-max normalized heterogeneous distance
//! (HEOM-style): numeric dimensions use range-normalized absolute
//! difference, nominal dimensions 0/1 mismatch, and any missing value
//! contributes the maximum distance of 1 — the standard Weka convention.
//!
//! kNN is the suite's canary for the *dimensionality* defect: irrelevant
//! attributes dilute the distance and degrade it faster than the other
//! algorithms.
//!
//! The kernel is columnar: squared distances accumulate one training
//! column at a time over contiguous value slices, neighbor selection is
//! `select_nth_unstable_by` with a `(distance, index)` tie-break instead
//! of a full sort, and the distance/vote buffers live in a reusable
//! scratch so a prediction allocates nothing in steady state.

use super::Classifier;
use crate::error::{MiningError, Result};
use crate::instances::{AttrKind, Bitmap, InstancesView};
use std::cell::RefCell;
use std::cmp::Ordering;

/// One training attribute gathered into contiguous columnar storage.
#[derive(Debug, Clone)]
struct TrainColumn {
    values: Vec<f64>,
    validity: Bitmap,
    numeric: bool,
    /// Min-max of the training column (numeric only).
    range: Option<(f64, f64)>,
}

#[derive(Debug, Clone)]
struct Model {
    columns: Vec<TrainColumn>,
    labels: Vec<usize>,
    n_classes: usize,
}

#[derive(Debug, Clone, Default)]
struct Scratch {
    /// Squared-distance accumulator, one slot per training row.
    acc: Vec<f64>,
    /// `(distance, train index)` pairs fed to the selection.
    dists: Vec<(f64, usize)>,
    votes: Vec<f64>,
}

/// The kNN classifier (stores the training data in columnar form).
#[derive(Debug, Clone)]
pub struct Knn {
    /// Neighborhood size.
    pub k: usize,
    model: Option<Model>,
    scratch: RefCell<Scratch>,
}

#[inline]
fn neighbor_order(a: &(f64, usize), b: &(f64, usize)) -> Ordering {
    a.0.total_cmp(&b.0).then(a.1.cmp(&b.1))
}

impl Knn {
    /// Create an untrained kNN.
    pub fn new(k: usize) -> Self {
        Knn {
            k: k.max(1),
            model: None,
            scratch: RefCell::new(Scratch::default()),
        }
    }

    /// Accumulate one query dimension into the per-row squared-distance
    /// accumulator: the column-at-a-time form of the HEOM distance.
    fn accumulate_dim(col: &TrainColumn, x: Option<f64>, acc: &mut [f64]) {
        let Some(x) = x else {
            // Missing query value: maximal dissimilarity to every row.
            for a in acc.iter_mut() {
                *a += 1.0;
            }
            return;
        };
        match (col.numeric, col.range) {
            (true, Some((lo, hi))) if hi > lo => {
                let span = hi - lo;
                for (i, a) in acc.iter_mut().enumerate() {
                    if col.validity.get(i) {
                        let d = ((x - col.values[i]).abs() / span).min(1.0);
                        *a += d * d;
                    } else {
                        *a += 1.0;
                    }
                }
            }
            // Degenerate numeric range or nominal: 0/1 match distance.
            _ => {
                for (i, a) in acc.iter_mut().enumerate() {
                    if !(col.validity.get(i) && x == col.values[i]) {
                        *a += 1.0;
                    }
                }
            }
        }
    }

    /// The shared prediction kernel; `query` yields the row's value for a
    /// training attribute index.
    fn predict_query(&self, model: &Model, query: impl Fn(usize) -> Option<f64>) -> usize {
        let n = model.labels.len();
        let mut scratch = self.scratch.borrow_mut();
        let Scratch { acc, dists, votes } = &mut *scratch;
        acc.clear();
        acc.resize(n, 0.0);
        for (a, col) in model.columns.iter().enumerate() {
            Self::accumulate_dim(col, query(a), acc);
        }
        dists.clear();
        dists.extend(acc.iter().enumerate().map(|(i, s)| (s.sqrt(), i)));
        // Partition the k nearest to the front, then order just those —
        // O(n + k log k) against the old full O(n log n) sort. The
        // (distance, index) key is a total order, so the first k pairs
        // come out exactly as the full sort produced them.
        let k = self.k.min(n);
        if k < n {
            dists.select_nth_unstable_by(k - 1, neighbor_order);
        }
        dists[..k].sort_unstable_by(neighbor_order);
        votes.clear();
        votes.resize(model.n_classes.max(1), 0.0);
        for &(d, i) in &dists[..k] {
            // Inverse-distance weighting with a floor for exact matches.
            votes[model.labels[i]] += 1.0 / (d + 1e-6);
        }
        votes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

impl Classifier for Knn {
    fn name(&self) -> &'static str {
        "kNN"
    }

    fn fit_view(&mut self, data: &InstancesView<'_>) -> Result<()> {
        let labeled = data.labeled_indices();
        if labeled.is_empty() {
            return Err(MiningError::InvalidDataset("kNN needs labeled rows".into()));
        }
        let mut columns = Vec::with_capacity(data.n_attributes());
        for a in 0..data.n_attributes() {
            let numeric = data.attribute(a).kind == AttrKind::Numeric;
            let col = data.col(a);
            let mut values = Vec::with_capacity(labeled.len());
            let mut validity = Bitmap::with_capacity(labeled.len());
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            let mut any = false;
            for &i in &labeled {
                match col.get(i) {
                    Some(v) => {
                        values.push(v);
                        validity.push(true);
                        if numeric {
                            lo = lo.min(v);
                            hi = hi.max(v);
                            any = true;
                        }
                    }
                    None => {
                        values.push(f64::NAN);
                        validity.push(false);
                    }
                }
            }
            columns.push(TrainColumn {
                values,
                validity,
                numeric,
                range: (numeric && any).then_some((lo, hi)),
            });
        }
        let labels = labeled
            .iter()
            .map(|&i| data.label(i).expect("labeled"))
            .collect();
        self.model = Some(Model {
            columns,
            labels,
            n_classes: data.n_classes(),
        });
        Ok(())
    }

    fn predict_row(&self, row: &[Option<f64>]) -> Result<usize> {
        let model = self.model.as_ref().ok_or(MiningError::NotFitted("kNN"))?;
        Ok(self.predict_query(model, |a| row.get(a).copied().flatten()))
    }

    fn predict_view(&self, data: &InstancesView<'_>) -> Result<Vec<usize>> {
        let model = self.model.as_ref().ok_or(MiningError::NotFitted("kNN"))?;
        let cols: Vec<_> = (0..data.n_attributes()).map(|a| data.col(a)).collect();
        Ok((0..data.len())
            .map(|i| self.predict_query(model, |a| cols.get(a).and_then(|c| c.get(i))))
            .collect())
    }

    fn model_size(&self) -> usize {
        self.model
            .as_ref()
            .map(|m| m.labels.len() * m.columns.len())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::{Attribute, Instances};

    fn clusters() -> Instances {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            let j = (i % 5) as f64 * 0.1;
            rows.push(vec![Some(j), Some(j)]);
            labels.push(Some(0));
            rows.push(vec![Some(8.0 + j), Some(8.0 - j)]);
            labels.push(Some(1));
        }
        Instances::from_rows(
            vec![
                Attribute {
                    name: "x".into(),
                    kind: AttrKind::Numeric,
                },
                Attribute {
                    name: "y".into(),
                    kind: AttrKind::Numeric,
                },
            ],
            rows,
            labels,
            vec!["near".into(), "far".into()],
        )
    }

    #[test]
    fn classifies_clusters() {
        let mut m = Knn::new(3);
        m.fit(&clusters()).unwrap();
        assert_eq!(m.predict_row(&[Some(0.2), Some(0.3)]).unwrap(), 0);
        assert_eq!(m.predict_row(&[Some(7.9), Some(8.1)]).unwrap(), 1);
    }

    #[test]
    fn k_one_memorizes_training_points() {
        let d = clusters();
        let mut m = Knn::new(1);
        m.fit(&d).unwrap();
        let preds = m.predict(&d).unwrap();
        for (p, l) in preds.iter().zip(&d.labels) {
            assert_eq!(Some(*p), *l);
        }
    }

    #[test]
    fn k_larger_than_training_set_votes_over_everyone() {
        let d = clusters();
        let mut m = Knn::new(1000);
        m.fit(&d).unwrap();
        // Degenerates gracefully: all rows vote, inverse-distance
        // weighting still favors the near cluster.
        assert_eq!(m.predict_row(&[Some(0.0), Some(0.0)]).unwrap(), 0);
    }

    #[test]
    fn normalization_prevents_scale_domination() {
        // y is on a huge scale but irrelevant; x separates the classes.
        let d = Instances::from_rows(
            vec![
                Attribute {
                    name: "x".into(),
                    kind: AttrKind::Numeric,
                },
                Attribute {
                    name: "y".into(),
                    kind: AttrKind::Numeric,
                },
            ],
            vec![
                vec![Some(0.0), Some(100_000.0)],
                vec![Some(0.1), Some(-100_000.0)],
                vec![Some(1.0), Some(50_000.0)],
                vec![Some(0.9), Some(-50_000.0)],
            ],
            vec![Some(0), Some(0), Some(1), Some(1)],
            vec!["a".into(), "b".into()],
        );
        let mut m = Knn::new(1);
        m.fit(&d).unwrap();
        assert_eq!(m.predict_row(&[Some(0.05), Some(0.0)]).unwrap(), 0);
        assert_eq!(m.predict_row(&[Some(0.95), Some(0.0)]).unwrap(), 1);
    }

    #[test]
    fn missing_dimension_counts_as_max_distance() {
        let mut m = Knn::new(1);
        m.fit(&clusters()).unwrap();
        // With x missing, y still identifies the cluster.
        assert_eq!(m.predict_row(&[None, Some(0.1)]).unwrap(), 0);
        assert_eq!(m.predict_row(&[None, Some(7.9)]).unwrap(), 1);
    }

    #[test]
    fn nominal_mismatch_distance() {
        let d = Instances::from_rows(
            vec![Attribute {
                name: "c".into(),
                kind: AttrKind::Nominal(vec!["p".into(), "q".into()]),
            }],
            vec![vec![Some(0.0)], vec![Some(1.0)]],
            vec![Some(0), Some(1)],
            vec!["a".into(), "b".into()],
        );
        let mut m = Knn::new(1);
        m.fit(&d).unwrap();
        assert_eq!(m.predict_row(&[Some(0.0)]).unwrap(), 0);
        assert_eq!(m.predict_row(&[Some(1.0)]).unwrap(), 1);
    }

    #[test]
    fn unfitted_errors() {
        assert!(Knn::new(3).predict_row(&[Some(0.0)]).is_err());
    }
}
