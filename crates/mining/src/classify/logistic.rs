//! One-vs-rest logistic regression trained by full-batch gradient
//! descent. Numeric attributes are z-scored; nominal attributes are
//! one-hot encoded; missing values are mean/zero-imputed at encoding
//! time (the model's documented missing-value strategy).
//!
//! Training encodes the design matrix column-by-column into one flat
//! row-major `Vec<f64>` (contiguous rows, no per-row allocations), then
//! runs the same gradient loop as before over slice windows — the
//! floating-point sequence is unchanged, only the memory layout is.

use super::Classifier;
use crate::error::{MiningError, Result};
use crate::instances::{AttrKind, InstancesView};

/// The logistic-regression classifier.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Per-class weight vectors (bias last), after fit.
    weights: Vec<Vec<f64>>,
    encoder: Option<Encoder>,
}

/// Feature encoder: attribute layout, z-score parameters and one-hot
/// offsets derived from the training data.
#[derive(Debug, Clone)]
struct Encoder {
    /// Per attribute: numeric (mean, std) or nominal cardinality.
    specs: Vec<EncSpec>,
    /// Total encoded width (excluding bias).
    width: usize,
}

#[derive(Debug, Clone)]
enum EncSpec {
    Numeric { mean: f64, std: f64 },
    Nominal { cardinality: usize },
}

impl Encoder {
    fn from_view(data: &InstancesView<'_>) -> Encoder {
        let means = data.numeric_means();
        let mut specs = Vec::with_capacity(data.n_attributes());
        let mut width = 0;
        for a in 0..data.n_attributes() {
            match &data.attribute(a).kind {
                AttrKind::Numeric => {
                    let mean = means[a].unwrap_or(0.0);
                    let col = data.col(a);
                    // One column pass for count and squared deviations,
                    // in row order (same additions as the old collect-
                    // then-sum).
                    let mut n = 0usize;
                    let mut sq = 0.0f64;
                    for i in 0..col.len() {
                        if let Some(x) = col.get(i) {
                            sq += (x - mean) * (x - mean);
                            n += 1;
                        }
                    }
                    let std = if n < 2 {
                        1.0
                    } else {
                        (sq / (n - 1) as f64).sqrt().max(1e-9)
                    };
                    specs.push(EncSpec::Numeric { mean, std });
                    width += 1;
                }
                AttrKind::Nominal(dict) => {
                    specs.push(EncSpec::Nominal {
                        cardinality: dict.len(),
                    });
                    width += dict.len();
                }
            }
        }
        Encoder { specs, width }
    }

    fn encode(&self, row: &[Option<f64>]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.width);
        for (a, spec) in self.specs.iter().enumerate() {
            let v = row.get(a).copied().flatten();
            match spec {
                EncSpec::Numeric { mean, std } => {
                    // Missing numeric → mean → encodes to 0.
                    out.push((v.unwrap_or(*mean) - mean) / std);
                }
                EncSpec::Nominal { cardinality } => {
                    let hot = v.map(|x| x as usize).filter(|i| i < cardinality);
                    for i in 0..*cardinality {
                        out.push(if Some(i) == hot { 1.0 } else { 0.0 });
                    }
                }
            }
        }
        out
    }

    /// Encode a whole training view into a flat row-major design matrix,
    /// filling one encoded column at a time (contiguous source reads).
    fn encode_matrix(&self, data: &InstancesView<'_>) -> Vec<f64> {
        let n_rows = data.len();
        let mut xs = vec![0.0f64; n_rows * self.width];
        let mut offset = 0usize;
        for (a, spec) in self.specs.iter().enumerate() {
            let col = data.col(a);
            match spec {
                EncSpec::Numeric { mean, std } => {
                    for r in 0..n_rows {
                        let v = col.get(r).unwrap_or(*mean);
                        xs[r * self.width + offset] = (v - mean) / std;
                    }
                    offset += 1;
                }
                EncSpec::Nominal { cardinality } => {
                    for r in 0..n_rows {
                        if let Some(x) = col.get(r) {
                            let i = x as usize;
                            if i < *cardinality {
                                xs[r * self.width + offset + i] = 1.0;
                            }
                        }
                    }
                    offset += *cardinality;
                }
            }
        }
        xs
    }
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl LogisticRegression {
    /// Create an untrained model.
    pub fn new(epochs: usize, learning_rate: f64) -> Self {
        LogisticRegression {
            epochs: epochs.max(1),
            learning_rate,
            l2: 1e-4,
            weights: vec![],
            encoder: None,
        }
    }

    /// Per-class probabilities for a row (softmax over OvR scores).
    pub fn probabilities(&self, row: &[Option<f64>]) -> Result<Vec<f64>> {
        let enc = self
            .encoder
            .as_ref()
            .ok_or(MiningError::NotFitted("LogisticRegression"))?;
        let x = enc.encode(row);
        let mut probs: Vec<f64> = self
            .weights
            .iter()
            .map(|w| {
                let z: f64 =
                    x.iter().zip(w.iter()).map(|(xi, wi)| xi * wi).sum::<f64>() + w[w.len() - 1];
                sigmoid(z)
            })
            .collect();
        let total: f64 = probs.iter().sum();
        if total > 0.0 {
            for p in &mut probs {
                *p /= total;
            }
        }
        Ok(probs)
    }
}

impl Classifier for LogisticRegression {
    fn name(&self) -> &'static str {
        "LogisticRegression"
    }

    fn fit_view(&mut self, data: &InstancesView<'_>) -> Result<()> {
        let labeled = data.labeled_indices();
        if labeled.is_empty() {
            return Err(MiningError::InvalidDataset(
                "LogisticRegression needs labeled rows".into(),
            ));
        }
        if self.learning_rate <= 0.0 {
            return Err(MiningError::InvalidParameter(
                "learning rate must be positive".into(),
            ));
        }
        let train = data.select_rows(&labeled);
        let encoder = Encoder::from_view(&train);
        let xs = encoder.encode_matrix(&train);
        let labels: Vec<Option<usize>> = (0..train.len()).map(|i| train.label(i)).collect();
        let n = train.len() as f64;
        let n_classes = train.n_classes().max(2);
        let width = encoder.width;
        let mut weights = vec![vec![0.0f64; width + 1]; n_classes];
        for (c, w) in weights.iter_mut().enumerate() {
            for _ in 0..self.epochs {
                let mut grad = vec![0.0f64; width + 1];
                for (r, label) in labels.iter().enumerate() {
                    let x = &xs[r * width..(r + 1) * width];
                    let y = if *label == Some(c) { 1.0 } else { 0.0 };
                    let z: f64 =
                        x.iter().zip(w.iter()).map(|(xi, wi)| xi * wi).sum::<f64>() + w[width];
                    let err = sigmoid(z) - y;
                    for (g, xi) in grad.iter_mut().zip(x.iter()) {
                        *g += err * xi;
                    }
                    grad[width] += err;
                }
                for (wi, gi) in w.iter_mut().zip(grad.iter()) {
                    *wi -= self.learning_rate * (gi / n + self.l2 * *wi);
                }
            }
        }
        self.weights = weights;
        self.encoder = Some(encoder);
        Ok(())
    }

    fn predict_row(&self, row: &[Option<f64>]) -> Result<usize> {
        let probs = self.probabilities(row)?;
        Ok(probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0))
    }

    fn model_size(&self) -> usize {
        self.weights.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::{Attribute, Instances};

    fn linearly_separable() -> Instances {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let j = (i % 10) as f64 * 0.1;
            rows.push(vec![Some(j), Some(1.0 - j)]);
            labels.push(Some(0));
            rows.push(vec![Some(3.0 + j), Some(4.0 - j)]);
            labels.push(Some(1));
        }
        Instances::from_rows(
            vec![
                Attribute {
                    name: "x".into(),
                    kind: AttrKind::Numeric,
                },
                Attribute {
                    name: "y".into(),
                    kind: AttrKind::Numeric,
                },
            ],
            rows,
            labels,
            vec!["a".into(), "b".into()],
        )
    }

    #[test]
    fn learns_linear_boundary() {
        let mut m = LogisticRegression::new(300, 0.5);
        let d = linearly_separable();
        m.fit(&d).unwrap();
        let preds = m.predict(&d).unwrap();
        let acc = preds
            .iter()
            .zip(&d.labels)
            .filter(|(p, l)| Some(**p) == **l)
            .count() as f64
            / d.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut m = LogisticRegression::new(50, 0.5);
        m.fit(&linearly_separable()).unwrap();
        let p = m.probabilities(&[Some(0.5), Some(0.5)]).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn multiclass_one_vs_rest() {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            let j = (i % 10) as f64 * 0.05;
            rows.push(vec![Some(j)]);
            labels.push(Some(0));
            rows.push(vec![Some(5.0 + j)]);
            labels.push(Some(1));
            rows.push(vec![Some(10.0 + j)]);
            labels.push(Some(2));
        }
        let d = Instances::from_rows(
            vec![Attribute {
                name: "x".into(),
                kind: AttrKind::Numeric,
            }],
            rows,
            labels,
            vec!["lo".into(), "mid".into(), "hi".into()],
        );
        let mut m = LogisticRegression::new(400, 0.5);
        m.fit(&d).unwrap();
        assert_eq!(m.predict_row(&[Some(0.1)]).unwrap(), 0);
        assert_eq!(m.predict_row(&[Some(5.1)]).unwrap(), 1);
        assert_eq!(m.predict_row(&[Some(10.2)]).unwrap(), 2);
    }

    #[test]
    fn nominal_one_hot() {
        let d = Instances::from_rows(
            vec![Attribute {
                name: "c".into(),
                kind: AttrKind::Nominal(vec!["p".into(), "q".into()]),
            }],
            (0..20).map(|i| vec![Some((i % 2) as f64)]).collect(),
            (0..20).map(|i| Some(i % 2)).collect(),
            vec!["a".into(), "b".into()],
        );
        let mut m = LogisticRegression::new(300, 0.5);
        m.fit(&d).unwrap();
        assert_eq!(m.predict_row(&[Some(0.0)]).unwrap(), 0);
        assert_eq!(m.predict_row(&[Some(1.0)]).unwrap(), 1);
    }

    #[test]
    fn missing_numeric_mean_imputed() {
        let mut m = LogisticRegression::new(100, 0.5);
        m.fit(&linearly_separable()).unwrap();
        // Must not panic; prediction with all-missing is prior-like.
        let p = m.predict_row(&[None, None]).unwrap();
        assert!(p < 2);
    }

    #[test]
    fn invalid_learning_rate_rejected() {
        let mut m = LogisticRegression::new(10, 0.0);
        assert!(m.fit(&linearly_separable()).is_err());
    }

    #[test]
    fn unfitted_errors() {
        assert!(LogisticRegression::new(10, 0.1)
            .predict_row(&[Some(1.0)])
            .is_err());
    }
}
