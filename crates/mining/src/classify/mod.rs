//! Classification algorithms.
//!
//! All classifiers implement [`Classifier`] and tolerate missing feature
//! values — a hard requirement here, since the quality experiments train
//! on deliberately degraded data. [`AlgorithmSpec`] is the serializable
//! recipe used by the experiment runner and the knowledge base.

pub mod decision_tree;
pub mod knn;
pub mod logistic;
pub mod naive_bayes;
pub mod one_r;
pub mod random_forest;
pub mod zero_r;

pub use decision_tree::DecisionTree;
pub use knn::Knn;
pub use logistic::LogisticRegression;
pub use naive_bayes::NaiveBayes;
pub use one_r::OneR;
pub use random_forest::RandomForest;
pub use zero_r::ZeroR;

use crate::error::Result;
use crate::instances::{Instances, InstancesView};

/// A trainable classifier over [`Instances`].
///
/// The primary entry points are the view-based `fit_view` /
/// `predict_view`, which train and predict straight off borrowed
/// [`InstancesView`]s (the zero-copy cross-validation path); the owned
/// `fit` / `predict` are thin bridges over a whole-dataset view.
pub trait Classifier {
    /// Short algorithm name (e.g. `"NaiveBayes"`).
    fn name(&self) -> &'static str;

    /// Train on the labeled rows of a (possibly row/column-masked) view.
    fn fit_view(&mut self, data: &InstancesView<'_>) -> Result<()>;

    /// Train on the labeled rows of `data`.
    fn fit(&mut self, data: &Instances) -> Result<()> {
        self.fit_view(&data.view())
    }

    /// Predict the class index of one feature row (cells in the fitted
    /// view's attribute order).
    fn predict_row(&self, row: &[Option<f64>]) -> Result<usize>;

    /// Predict every row of a view. The default gathers each row into a
    /// reused scratch buffer; columnar classifiers override this with
    /// batch kernels.
    fn predict_view(&self, data: &InstancesView<'_>) -> Result<Vec<usize>> {
        let mut buf = Vec::with_capacity(data.n_attributes());
        (0..data.len())
            .map(|i| {
                data.fill_row(i, &mut buf);
                self.predict_row(&buf)
            })
            .collect()
    }

    /// Predict every row of a dataset.
    fn predict(&self, data: &Instances) -> Result<Vec<usize>> {
        self.predict_view(&data.view())
    }

    /// A size proxy for the fitted model (nodes, stored rows, weights…);
    /// used by the redundancy experiment to show model bloat.
    fn model_size(&self) -> usize {
        1
    }
}

/// A serializable recipe for building a classifier — what the DQ4DM
/// knowledge base stores and the advisor recommends.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgorithmSpec {
    /// Majority-class baseline.
    ZeroR,
    /// Single-attribute rule baseline (Holte's 1R).
    OneR,
    /// Naive Bayes (Gaussian numeric, Laplace-smoothed nominal).
    NaiveBayes,
    /// C4.5-style decision tree.
    DecisionTree {
        /// Maximum tree depth.
        max_depth: usize,
        /// Minimum rows per leaf.
        min_leaf: usize,
    },
    /// k-nearest neighbors.
    Knn {
        /// Neighborhood size.
        k: usize,
    },
    /// One-vs-rest logistic regression trained by gradient descent.
    Logistic {
        /// Training epochs.
        epochs: usize,
        /// Learning rate.
        learning_rate: f64,
    },
    /// Bagged random forest.
    RandomForest {
        /// Number of trees.
        trees: usize,
        /// Maximum tree depth.
        max_depth: usize,
        /// RNG seed for bagging / feature subsampling.
        seed: u64,
    },
}

impl AlgorithmSpec {
    /// Stable display name (parameters omitted).
    pub fn name(&self) -> &'static str {
        match self {
            AlgorithmSpec::ZeroR => "ZeroR",
            AlgorithmSpec::OneR => "OneR",
            AlgorithmSpec::NaiveBayes => "NaiveBayes",
            AlgorithmSpec::DecisionTree { .. } => "DecisionTree",
            AlgorithmSpec::Knn { .. } => "kNN",
            AlgorithmSpec::Logistic { .. } => "LogisticRegression",
            AlgorithmSpec::RandomForest { .. } => "RandomForest",
        }
    }

    /// Instantiate an untrained classifier.
    pub fn build(&self) -> Box<dyn Classifier> {
        match self {
            AlgorithmSpec::ZeroR => Box::new(ZeroR::new()),
            AlgorithmSpec::OneR => Box::new(OneR::new()),
            AlgorithmSpec::NaiveBayes => Box::new(NaiveBayes::new()),
            AlgorithmSpec::DecisionTree {
                max_depth,
                min_leaf,
            } => Box::new(DecisionTree::new(*max_depth, *min_leaf)),
            AlgorithmSpec::Knn { k } => Box::new(Knn::new(*k)),
            AlgorithmSpec::Logistic {
                epochs,
                learning_rate,
            } => Box::new(LogisticRegression::new(*epochs, *learning_rate)),
            AlgorithmSpec::RandomForest {
                trees,
                max_depth,
                seed,
            } => Box::new(RandomForest::new(*trees, *max_depth, *seed)),
        }
    }

    /// The default algorithm suite of the experiments: the two baselines
    /// plus the five "real" classifiers with sensible defaults.
    pub fn standard_suite() -> Vec<AlgorithmSpec> {
        vec![
            AlgorithmSpec::ZeroR,
            AlgorithmSpec::OneR,
            AlgorithmSpec::NaiveBayes,
            AlgorithmSpec::DecisionTree {
                max_depth: 12,
                min_leaf: 2,
            },
            AlgorithmSpec::Knn { k: 5 },
            AlgorithmSpec::Logistic {
                epochs: 200,
                learning_rate: 0.1,
            },
            AlgorithmSpec::RandomForest {
                trees: 20,
                max_depth: 10,
                seed: 17,
            },
        ]
    }
}

impl std::fmt::Display for AlgorithmSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlgorithmSpec::DecisionTree {
                max_depth,
                min_leaf,
            } => write!(f, "DecisionTree(depth={max_depth},leaf={min_leaf})"),
            AlgorithmSpec::Knn { k } => write!(f, "kNN(k={k})"),
            AlgorithmSpec::Logistic {
                epochs,
                learning_rate,
            } => write!(f, "LogisticRegression(epochs={epochs},lr={learning_rate})"),
            AlgorithmSpec::RandomForest {
                trees, max_depth, ..
            } => write!(f, "RandomForest(trees={trees},depth={max_depth})"),
            other => f.write_str(other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_contains_baselines_and_learners() {
        let suite = AlgorithmSpec::standard_suite();
        assert_eq!(suite.len(), 7);
        assert_eq!(suite[0].name(), "ZeroR");
        assert!(suite.iter().any(|s| s.name() == "RandomForest"));
    }

    #[test]
    fn build_produces_matching_names() {
        for spec in AlgorithmSpec::standard_suite() {
            assert_eq!(spec.build().name(), spec.name());
        }
    }

    #[test]
    fn display_includes_parameters() {
        let s = AlgorithmSpec::Knn { k: 3 }.to_string();
        assert_eq!(s, "kNN(k=3)");
        assert_eq!(AlgorithmSpec::ZeroR.to_string(), "ZeroR");
    }
}
