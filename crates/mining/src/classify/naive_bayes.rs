//! Naive Bayes: Gaussian likelihoods for numeric attributes, Laplace-
//! smoothed categorical likelihoods for nominal attributes. Missing
//! values are simply skipped in the likelihood product — the textbook
//! reason Naive Bayes degrades gracefully under missingness.
//!
//! Likelihood tables are built in one columnar pass per attribute:
//! per-class sums/counts accumulate down the contiguous column (in row
//! order, so the floating-point results are identical to the old
//! collect-then-sum row-major code), and batch prediction walks each
//! column once instead of gathering rows.

use super::Classifier;
use crate::error::{MiningError, Result};
use crate::instances::{AttrKind, InstancesView};

#[derive(Debug, Clone)]
enum AttrModel {
    /// Per-class `(mean, variance)`.
    Gaussian(Vec<(f64, f64)>),
    /// Per-class smoothed log-probabilities per category.
    Categorical(Vec<Vec<f64>>),
}

/// The Naive Bayes classifier.
#[derive(Debug, Clone, Default)]
pub struct NaiveBayes {
    log_priors: Vec<f64>,
    models: Vec<AttrModel>,
    fitted: bool,
}

const MIN_VARIANCE: f64 = 1e-9;

impl NaiveBayes {
    /// Create an untrained Naive Bayes.
    pub fn new() -> Self {
        NaiveBayes::default()
    }

    fn gaussian_log_pdf(x: f64, mean: f64, var: f64) -> f64 {
        let var = var.max(MIN_VARIANCE);
        -0.5 * ((x - mean) * (x - mean) / var + var.ln() + (2.0 * std::f64::consts::PI).ln())
    }

    /// Per-class log-posterior (unnormalized) of a row.
    pub fn log_posteriors(&self, row: &[Option<f64>]) -> Result<Vec<f64>> {
        if !self.fitted {
            return Err(MiningError::NotFitted("NaiveBayes"));
        }
        let mut scores = self.log_priors.clone();
        for (a, model) in self.models.iter().enumerate() {
            let Some(v) = row.get(a).copied().flatten() else {
                continue;
            };
            Self::add_likelihood(model, v, &mut scores);
        }
        Ok(scores)
    }

    #[inline]
    fn add_likelihood(model: &AttrModel, v: f64, scores: &mut [f64]) {
        for (c, score) in scores.iter_mut().enumerate() {
            match model {
                AttrModel::Gaussian(params) => {
                    let (mean, var) = params[c];
                    *score += Self::gaussian_log_pdf(v, mean, var);
                }
                AttrModel::Categorical(logps) => {
                    let idx = v as usize;
                    if let Some(lp) = logps[c].get(idx) {
                        *score += lp;
                    }
                }
            }
        }
    }

    #[inline]
    fn argmax(scores: &[f64]) -> usize {
        scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

impl Classifier for NaiveBayes {
    fn name(&self) -> &'static str {
        "NaiveBayes"
    }

    fn fit_view(&mut self, data: &InstancesView<'_>) -> Result<()> {
        let labeled = data.labeled_indices();
        if labeled.is_empty() {
            return Err(MiningError::InvalidDataset(
                "NaiveBayes needs labeled rows".into(),
            ));
        }
        let n_classes = data.n_classes();
        if n_classes == 0 {
            return Err(MiningError::InvalidDataset("dataset has no classes".into()));
        }
        let counts = data.class_counts();
        let total: usize = counts.iter().sum();
        self.log_priors = counts
            .iter()
            .map(|&c| ((c as f64 + 1.0) / (total as f64 + n_classes as f64)).ln())
            .collect();
        let labels: Vec<usize> = labeled
            .iter()
            .map(|&i| data.label(i).expect("labeled"))
            .collect();
        self.models = Vec::with_capacity(data.n_attributes());
        for a in 0..data.n_attributes() {
            let col = data.col(a);
            match &data.attribute(a).kind {
                AttrKind::Numeric => {
                    // Two column passes: per-class sum/count for the
                    // means, then per-class squared deviations. Each
                    // class's accumulator sees its values in row order —
                    // the same addition sequence as the old per-class
                    // collect-then-sum, so the bits match.
                    let mut sums = vec![0.0f64; n_classes];
                    let mut ns = vec![0usize; n_classes];
                    for (&i, &c) in labeled.iter().zip(&labels) {
                        if let Some(v) = col.get(i) {
                            sums[c] += v;
                            ns[c] += 1;
                        }
                    }
                    let means: Vec<f64> = sums
                        .iter()
                        .zip(&ns)
                        .map(|(&s, &n)| if n > 0 { s / n as f64 } else { 0.0 })
                        .collect();
                    let mut sq = vec![0.0f64; n_classes];
                    for (&i, &c) in labeled.iter().zip(&labels) {
                        if let Some(v) = col.get(i) {
                            sq[c] += (v - means[c]) * (v - means[c]);
                        }
                    }
                    let params: Vec<(f64, f64)> = (0..n_classes)
                        .map(|c| {
                            if ns[c] == 0 {
                                (0.0, 1.0)
                            } else if ns[c] < 2 {
                                (means[c], MIN_VARIANCE)
                            } else {
                                (means[c], sq[c] / (ns[c] - 1) as f64)
                            }
                        })
                        .collect();
                    self.models.push(AttrModel::Gaussian(params));
                }
                AttrKind::Nominal(dict) => {
                    let k = dict.len().max(1);
                    let mut cat_counts = vec![vec![0usize; k]; n_classes];
                    let mut totals = vec![0usize; n_classes];
                    for (&i, &c) in labeled.iter().zip(&labels) {
                        if let Some(v) = col.get(i) {
                            let idx = v as usize;
                            if idx < k {
                                cat_counts[c][idx] += 1;
                                totals[c] += 1;
                            }
                        }
                    }
                    let logps: Vec<Vec<f64>> = (0..n_classes)
                        .map(|c| {
                            cat_counts[c]
                                .iter()
                                .map(|&n| ((n as f64 + 1.0) / (totals[c] as f64 + k as f64)).ln())
                                .collect()
                        })
                        .collect();
                    self.models.push(AttrModel::Categorical(logps));
                }
            }
        }
        self.fitted = true;
        Ok(())
    }

    fn predict_row(&self, row: &[Option<f64>]) -> Result<usize> {
        let scores = self.log_posteriors(row)?;
        Ok(Self::argmax(&scores))
    }

    fn predict_view(&self, data: &InstancesView<'_>) -> Result<Vec<usize>> {
        if !self.fitted {
            return Err(MiningError::NotFitted("NaiveBayes"));
        }
        let n = data.len();
        let k = self.log_priors.len();
        // Row-major score matrix seeded with the priors; one pass per
        // attribute column keeps the per-(row, class) addition order
        // identical to log_posteriors().
        let mut scores = Vec::with_capacity(n * k);
        for _ in 0..n {
            scores.extend_from_slice(&self.log_priors);
        }
        for (a, model) in self.models.iter().enumerate() {
            if a >= data.n_attributes() {
                break;
            }
            let col = data.col(a);
            for (i, row_scores) in scores.chunks_mut(k.max(1)).enumerate() {
                if let Some(v) = col.get(i) {
                    Self::add_likelihood(model, v, row_scores);
                }
            }
        }
        Ok(scores.chunks(k.max(1)).map(Self::argmax).collect())
    }

    fn model_size(&self) -> usize {
        self.models
            .iter()
            .map(|m| match m {
                AttrModel::Gaussian(p) => p.len() * 2,
                AttrModel::Categorical(p) => p.iter().map(Vec::len).sum(),
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::{Attribute, Instances};

    fn gaussian_data() -> Instances {
        // Class 0 around x=0, class 1 around x=10.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            let jitter = (i % 5) as f64 * 0.2;
            rows.push(vec![Some(jitter)]);
            labels.push(Some(0));
            rows.push(vec![Some(10.0 + jitter)]);
            labels.push(Some(1));
        }
        Instances::from_rows(
            vec![Attribute {
                name: "x".into(),
                kind: AttrKind::Numeric,
            }],
            rows,
            labels,
            vec!["lo".into(), "hi".into()],
        )
    }

    #[test]
    fn separates_gaussian_classes() {
        let mut m = NaiveBayes::new();
        m.fit(&gaussian_data()).unwrap();
        assert_eq!(m.predict_row(&[Some(0.5)]).unwrap(), 0);
        assert_eq!(m.predict_row(&[Some(9.5)]).unwrap(), 1);
    }

    #[test]
    fn missing_value_falls_back_to_prior() {
        let mut d = gaussian_data();
        // Make class 0 twice as common.
        for l in d.labels.iter_mut().skip(40) {
            *l = Some(0);
        }
        let mut m = NaiveBayes::new();
        m.fit(&d).unwrap();
        assert_eq!(m.predict_row(&[None]).unwrap(), 0);
    }

    #[test]
    fn nominal_likelihoods() {
        let d = Instances::from_rows(
            vec![Attribute {
                name: "color".into(),
                kind: AttrKind::Nominal(vec!["r".into(), "g".into(), "b".into()]),
            }],
            vec![
                vec![Some(0.0)],
                vec![Some(0.0)],
                vec![Some(1.0)],
                vec![Some(1.0)],
                vec![Some(2.0)],
            ],
            vec![Some(0), Some(0), Some(1), Some(1), Some(0)],
            vec!["a".into(), "b".into()],
        );
        let mut m = NaiveBayes::new();
        m.fit(&d).unwrap();
        assert_eq!(m.predict_row(&[Some(0.0)]).unwrap(), 0);
        assert_eq!(m.predict_row(&[Some(1.0)]).unwrap(), 1);
    }

    #[test]
    fn batch_prediction_matches_per_row() {
        let d = gaussian_data();
        let mut m = NaiveBayes::new();
        m.fit(&d).unwrap();
        let batch = m.predict(&d).unwrap();
        for (i, &p) in batch.iter().enumerate() {
            assert_eq!(p, m.predict_row(&d.row_vec(i)).unwrap());
        }
    }

    #[test]
    fn log_posteriors_are_finite() {
        let mut m = NaiveBayes::new();
        m.fit(&gaussian_data()).unwrap();
        for p in m.log_posteriors(&[Some(5.0)]).unwrap() {
            assert!(p.is_finite());
        }
    }

    #[test]
    fn unfitted_errors() {
        assert!(NaiveBayes::new().predict_row(&[Some(1.0)]).is_err());
    }

    #[test]
    fn model_size_counts_parameters() {
        let mut m = NaiveBayes::new();
        m.fit(&gaussian_data()).unwrap();
        assert_eq!(m.model_size(), 4); // 1 attr × 2 classes × (mean,var)
    }
}
