//! Random forest: bagged C4.5-style trees with √d feature subsampling
//! and majority voting. Bootstrap samples are row-index views over the
//! training data — no per-tree row copies.

use super::{Classifier, DecisionTree};
use crate::error::{MiningError, Result};
use crate::instances::InstancesView;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// The random-forest classifier.
#[derive(Debug, Clone)]
pub struct RandomForest {
    /// Number of trees.
    pub trees: usize,
    /// Maximum depth per tree.
    pub max_depth: usize,
    /// Seed for bootstrap sampling and feature subsampling.
    pub seed: u64,
    forest: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForest {
    /// Create an untrained forest.
    pub fn new(trees: usize, max_depth: usize, seed: u64) -> Self {
        RandomForest {
            trees: trees.max(1),
            max_depth: max_depth.max(1),
            seed,
            forest: vec![],
            n_classes: 0,
        }
    }

    fn vote(&self, per_tree: &[usize]) -> usize {
        let mut votes = vec![0usize; self.n_classes.max(1)];
        for &p in per_tree {
            if p < votes.len() {
                votes[p] += 1;
            }
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| **v)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

impl Classifier for RandomForest {
    fn name(&self) -> &'static str {
        "RandomForest"
    }

    fn fit_view(&mut self, data: &InstancesView<'_>) -> Result<()> {
        let labeled = data.labeled_indices();
        if labeled.is_empty() {
            return Err(MiningError::InvalidDataset(
                "RandomForest needs labeled rows".into(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n_attrs = data.n_attributes();
        // √d features per tree, but never fewer than 2 (when available):
        // with tiny attribute counts a 1-feature tree cannot express
        // interactions at all.
        let subset_size = ((n_attrs as f64).sqrt().round() as usize)
            .max(2)
            .min(n_attrs);
        self.n_classes = data.n_classes();
        self.forest.clear();
        for _ in 0..self.trees {
            // Bootstrap sample of the labeled rows (view-local indices):
            // the tree trains on a borrowed row-index view, not a copy.
            let sample: Vec<usize> = (0..labeled.len())
                .map(|_| labeled[rng.random_range(0..labeled.len())])
                .collect();
            let boot = data.select_rows(&sample);
            // Feature subset (distinct attribute indices).
            let mut attrs: Vec<usize> = (0..n_attrs).collect();
            for i in 0..subset_size {
                let j = i + rng.random_range(0..n_attrs - i);
                attrs.swap(i, j);
            }
            attrs.truncate(subset_size);
            let mut tree = DecisionTree::new(self.max_depth, 2);
            tree.feature_subset = Some(attrs);
            tree.fit_view(&boot)?;
            self.forest.push(tree);
        }
        Ok(())
    }

    fn predict_row(&self, row: &[Option<f64>]) -> Result<usize> {
        if self.forest.is_empty() {
            return Err(MiningError::NotFitted("RandomForest"));
        }
        let preds = self
            .forest
            .iter()
            .map(|t| t.predict_row(row))
            .collect::<Result<Vec<usize>>>()?;
        Ok(self.vote(&preds))
    }

    fn predict_view(&self, data: &InstancesView<'_>) -> Result<Vec<usize>> {
        if self.forest.is_empty() {
            return Err(MiningError::NotFitted("RandomForest"));
        }
        // Each tree predicts the whole view in one columnar pass; votes
        // are tallied per row in tree order (same counts as the old
        // row-at-a-time loop).
        let per_tree = self
            .forest
            .iter()
            .map(|t| t.predict_view(data))
            .collect::<Result<Vec<Vec<usize>>>>()?;
        let mut row_votes = Vec::with_capacity(self.forest.len());
        Ok((0..data.len())
            .map(|i| {
                row_votes.clear();
                row_votes.extend(per_tree.iter().map(|p| p[i]));
                self.vote(&row_votes)
            })
            .collect())
    }

    fn model_size(&self) -> usize {
        self.forest.iter().map(DecisionTree::node_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::{AttrKind, Attribute, Instances};

    fn data() -> Instances {
        // Diagonal boundary: class = x + y > 10.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for xi in 0..12 {
            for yi in 0..12 {
                rows.push(vec![Some(xi as f64), Some(yi as f64)]);
                labels.push(Some(usize::from(xi + yi > 10)));
            }
        }
        Instances::from_rows(
            vec![
                Attribute {
                    name: "x".into(),
                    kind: AttrKind::Numeric,
                },
                Attribute {
                    name: "y".into(),
                    kind: AttrKind::Numeric,
                },
            ],
            rows,
            labels,
            vec!["lo".into(), "hi".into()],
        )
    }

    #[test]
    fn forest_learns_diagonal_boundary() {
        let d = data();
        let mut m = RandomForest::new(15, 8, 42);
        m.fit(&d).unwrap();
        let preds = m.predict(&d).unwrap();
        let acc = preds
            .iter()
            .zip(&d.labels)
            .filter(|(p, l)| Some(**p) == **l)
            .count() as f64
            / d.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let d = data();
        let mut a = RandomForest::new(5, 6, 7);
        a.fit(&d).unwrap();
        let mut b = RandomForest::new(5, 6, 7);
        b.fit(&d).unwrap();
        assert_eq!(a.predict(&d).unwrap(), b.predict(&d).unwrap());
    }

    #[test]
    fn model_size_grows_with_trees() {
        let d = data();
        let mut small = RandomForest::new(3, 6, 1);
        small.fit(&d).unwrap();
        let mut big = RandomForest::new(12, 6, 1);
        big.fit(&d).unwrap();
        assert!(big.model_size() > small.model_size());
    }

    #[test]
    fn unfitted_errors() {
        assert!(RandomForest::new(3, 4, 0)
            .predict_row(&[Some(0.0)])
            .is_err());
    }
}
