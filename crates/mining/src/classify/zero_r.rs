//! ZeroR: the majority-class baseline every real classifier must beat.

use super::Classifier;
use crate::error::{MiningError, Result};
use crate::instances::InstancesView;

/// Predicts the training majority class for every row.
#[derive(Debug, Clone, Default)]
pub struct ZeroR {
    majority: Option<usize>,
}

impl ZeroR {
    /// Create an untrained ZeroR.
    pub fn new() -> Self {
        ZeroR::default()
    }
}

impl Classifier for ZeroR {
    fn name(&self) -> &'static str {
        "ZeroR"
    }

    fn fit_view(&mut self, data: &InstancesView<'_>) -> Result<()> {
        if data.labeled_indices().is_empty() {
            return Err(MiningError::InvalidDataset(
                "ZeroR needs at least one labeled row".into(),
            ));
        }
        self.majority = Some(data.majority_class());
        Ok(())
    }

    fn predict_row(&self, _row: &[Option<f64>]) -> Result<usize> {
        self.majority.ok_or(MiningError::NotFitted("ZeroR"))
    }

    fn predict_view(&self, data: &InstancesView<'_>) -> Result<Vec<usize>> {
        let majority = self.majority.ok_or(MiningError::NotFitted("ZeroR"))?;
        Ok(vec![majority; data.len()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::{AttrKind, Attribute, Instances};

    fn data() -> Instances {
        Instances::from_rows(
            vec![Attribute {
                name: "x".into(),
                kind: AttrKind::Numeric,
            }],
            vec![vec![Some(1.0)], vec![Some(2.0)], vec![Some(3.0)]],
            vec![Some(1), Some(1), Some(0)],
            vec!["a".into(), "b".into()],
        )
    }

    #[test]
    fn predicts_majority() {
        let mut m = ZeroR::new();
        m.fit(&data()).unwrap();
        assert_eq!(m.predict_row(&[None]).unwrap(), 1);
        assert_eq!(m.predict(&data()).unwrap(), vec![1, 1, 1]);
    }

    #[test]
    fn unfitted_errors() {
        let m = ZeroR::new();
        assert!(matches!(
            m.predict_row(&[Some(0.0)]),
            Err(MiningError::NotFitted(_))
        ));
    }

    #[test]
    fn unlabeled_data_errors() {
        let mut d = data();
        d.labels = vec![None; 3];
        assert!(ZeroR::new().fit(&d).is_err());
    }
}
