//! k-means clustering with k-means++ initialization.
//!
//! Operates on the numeric attributes of [`Instances`] (nominal
//! attributes are ignored); missing values are mean-imputed internally.

use crate::error::{MiningError, Result};
use crate::instances::{AttrKind, Instances};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// The result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Cluster centroids (k × d over the numeric attributes).
    pub centroids: Vec<Vec<f64>>,
    /// Cluster index per row.
    pub assignments: Vec<usize>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
    /// Iterations executed.
    pub iterations: usize,
}

/// k-means configuration.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Number of clusters.
    pub k: usize,
    /// Maximum iterations.
    pub max_iter: usize,
    /// Seed for k-means++ initialization.
    pub seed: u64,
}

impl KMeans {
    /// Create a configuration.
    pub fn new(k: usize, seed: u64) -> Self {
        KMeans {
            k: k.max(1),
            max_iter: 100,
            seed,
        }
    }

    fn numeric_matrix(data: &Instances) -> Result<Vec<Vec<f64>>> {
        let numeric_attrs: Vec<usize> = data
            .attributes
            .iter()
            .enumerate()
            .filter(|(_, a)| a.kind == AttrKind::Numeric)
            .map(|(i, _)| i)
            .collect();
        if numeric_attrs.is_empty() {
            return Err(MiningError::InvalidDataset(
                "k-means needs at least one numeric attribute".into(),
            ));
        }
        let means = data.numeric_means();
        // Fill the point matrix one contiguous source column at a time;
        // missing cells take the cached column mean.
        let n = data.len();
        let mut points = vec![vec![0.0f64; numeric_attrs.len()]; n];
        for (ci, &a) in numeric_attrs.iter().enumerate() {
            let values = data.column_values(a);
            let validity = data.column_validity(a);
            let fill = means[a].unwrap_or(0.0);
            for (r, p) in points.iter_mut().enumerate() {
                p[ci] = if validity.get(r) { values[r] } else { fill };
            }
        }
        Ok(points)
    }

    fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    /// Run the algorithm.
    pub fn fit(&self, data: &Instances) -> Result<KMeansResult> {
        let points = Self::numeric_matrix(data)?;
        let n = points.len();
        if n < self.k {
            return Err(MiningError::InvalidDataset(format!(
                "{n} rows cannot form {} clusters",
                self.k
            )));
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        // k-means++ seeding.
        let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(self.k);
        centroids.push(points[rng.random_range(0..n)].clone());
        while centroids.len() < self.k {
            let d2: Vec<f64> = points
                .iter()
                .map(|p| {
                    centroids
                        .iter()
                        .map(|c| Self::sq_dist(p, c))
                        .fold(f64::INFINITY, f64::min)
                })
                .collect();
            let total: f64 = d2.iter().sum();
            if total <= 0.0 {
                // All remaining points coincide with a centroid.
                centroids.push(points[rng.random_range(0..n)].clone());
                continue;
            }
            let mut target = rng.random::<f64>() * total;
            let mut chosen = n - 1;
            for (i, d) in d2.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            centroids.push(points[chosen].clone());
        }
        let d = points[0].len();
        let mut assignments = vec![0usize; n];
        let mut iterations = 0;
        for it in 0..self.max_iter {
            iterations = it + 1;
            let mut changed = false;
            for (i, p) in points.iter().enumerate() {
                let best = (0..self.k)
                    .min_by(|&a, &b| {
                        Self::sq_dist(p, &centroids[a]).total_cmp(&Self::sq_dist(p, &centroids[b]))
                    })
                    .expect("k >= 1");
                if assignments[i] != best {
                    assignments[i] = best;
                    changed = true;
                }
            }
            if !changed && it > 0 {
                break;
            }
            // Recompute centroids; empty clusters keep their position.
            let mut sums = vec![vec![0.0; d]; self.k];
            let mut counts = vec![0usize; self.k];
            for (p, &a) in points.iter().zip(&assignments) {
                counts[a] += 1;
                for (s, x) in sums[a].iter_mut().zip(p) {
                    *s += x;
                }
            }
            for c in 0..self.k {
                if counts[c] > 0 {
                    for (j, s) in sums[c].iter().enumerate() {
                        centroids[c][j] = s / counts[c] as f64;
                    }
                }
            }
        }
        let inertia = points
            .iter()
            .zip(&assignments)
            .map(|(p, &a)| Self::sq_dist(p, &centroids[a]))
            .sum();
        Ok(KMeansResult {
            centroids,
            assignments,
            inertia,
            iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::Attribute;

    fn two_blobs() -> Instances {
        let mut rows = Vec::new();
        for i in 0..25 {
            let j = (i % 5) as f64 * 0.1;
            rows.push(vec![Some(j), Some(j)]);
            rows.push(vec![Some(10.0 + j), Some(10.0 + j)]);
        }
        let labels = vec![None; rows.len()];
        Instances::from_rows(
            vec![
                Attribute {
                    name: "x".into(),
                    kind: AttrKind::Numeric,
                },
                Attribute {
                    name: "y".into(),
                    kind: AttrKind::Numeric,
                },
            ],
            rows,
            labels,
            vec![],
        )
    }

    #[test]
    fn separates_two_blobs() {
        let r = KMeans::new(2, 1).fit(&two_blobs()).unwrap();
        // Rows alternate blob membership; check consistency.
        let a0 = r.assignments[0];
        for i in (0..50).step_by(2) {
            assert_eq!(r.assignments[i], a0);
        }
        for i in (1..50).step_by(2) {
            assert_ne!(r.assignments[i], a0);
        }
        assert!(r.inertia < 10.0, "inertia {}", r.inertia);
    }

    #[test]
    fn inertia_decreases_with_k() {
        let d = two_blobs();
        let r1 = KMeans::new(1, 3).fit(&d).unwrap();
        let r2 = KMeans::new(2, 3).fit(&d).unwrap();
        assert!(r2.inertia < r1.inertia);
    }

    #[test]
    fn deterministic_for_seed() {
        let d = two_blobs();
        let a = KMeans::new(2, 7).fit(&d).unwrap();
        let b = KMeans::new(2, 7).fit(&d).unwrap();
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn too_many_clusters_rejected() {
        let d = two_blobs();
        assert!(KMeans::new(100, 1).fit(&d).is_err());
    }

    #[test]
    fn missing_values_tolerated() {
        let mut d = two_blobs();
        d.set(0, 0, None);
        d.set(7, 1, None);
        let r = KMeans::new(2, 1).fit(&d).unwrap();
        assert_eq!(r.assignments.len(), 50);
    }

    #[test]
    fn no_numeric_attributes_rejected() {
        let d = Instances::from_rows(
            vec![Attribute {
                name: "c".into(),
                kind: AttrKind::Nominal(vec!["a".into()]),
            }],
            vec![vec![Some(0.0)]],
            vec![None],
            vec![],
        );
        assert!(KMeans::new(1, 1).fit(&d).is_err());
    }
}
