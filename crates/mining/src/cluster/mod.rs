//! Clustering algorithms.

pub mod kmeans;

pub use kmeans::{KMeans, KMeansResult};
