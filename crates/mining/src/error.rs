//! Error type for the mining crate.

use std::fmt;

/// Errors produced by dataset preparation, training and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum MiningError {
    /// The referenced column does not exist in the source table.
    ColumnNotFound(String),
    /// The dataset is unusable for the requested operation.
    InvalidDataset(String),
    /// A parameter was out of range.
    InvalidParameter(String),
    /// The model was used before `fit` succeeded.
    NotFitted(&'static str),
    /// A numeric routine failed to converge or was ill-conditioned.
    Numeric(String),
    /// A parallel evaluation thread failed or panicked.
    Execution(String),
}

impl fmt::Display for MiningError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MiningError::ColumnNotFound(c) => write!(f, "column not found: {c}"),
            MiningError::InvalidDataset(m) => write!(f, "invalid dataset: {m}"),
            MiningError::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
            MiningError::NotFitted(model) => write!(f, "{model} used before fit"),
            MiningError::Numeric(m) => write!(f, "numeric error: {m}"),
            MiningError::Execution(m) => write!(f, "execution failed: {m}"),
        }
    }
}

impl std::error::Error for MiningError {}

impl From<openbi_table::TableError> for MiningError {
    fn from(e: openbi_table::TableError) -> Self {
        match e {
            openbi_table::TableError::ColumnNotFound(c) => MiningError::ColumnNotFound(c),
            other => MiningError::InvalidDataset(other.to_string()),
        }
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, MiningError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(MiningError::NotFitted("kNN").to_string().contains("kNN"));
        assert!(MiningError::ColumnNotFound("y".into())
            .to_string()
            .contains("y"));
    }

    #[test]
    fn table_error_converts() {
        let e: MiningError = openbi_table::TableError::ColumnNotFound("c".into()).into();
        assert_eq!(e, MiningError::ColumnNotFound("c".into()));
    }
}
