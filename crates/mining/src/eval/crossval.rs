//! Seeded, stratified k-fold cross-validation and holdout evaluation.
//!
//! Folds are *views*: each fold trains and tests on a borrowed
//! row-index selection over the one columnar [`Instances`], so the CV
//! loop copies zero cells. Fold assignment, training and prediction are
//! bit-identical to the old materializing implementation — only the
//! allocations are gone.

use super::metrics::ConfusionMatrix;
use crate::classify::AlgorithmSpec;
use crate::error::{MiningError, Result};
use crate::instances::{Instances, InstancesView};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;

/// Aggregate result of evaluating one algorithm on one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalResult {
    /// Algorithm display name.
    pub algorithm: String,
    /// Pooled confusion matrix over all test folds.
    pub confusion: ConfusionMatrix,
    /// Accuracy per fold.
    pub fold_accuracies: Vec<f64>,
    /// Total training time (milliseconds).
    pub train_ms: f64,
    /// Total prediction time (milliseconds).
    pub predict_ms: f64,
    /// Mean fitted model size across folds.
    pub model_size: f64,
}

impl EvalResult {
    /// Pooled accuracy.
    pub fn accuracy(&self) -> f64 {
        self.confusion.accuracy()
    }

    /// Pooled macro F1.
    pub fn macro_f1(&self) -> f64 {
        self.confusion.macro_f1()
    }

    /// Pooled minority-class F1.
    pub fn minority_f1(&self) -> f64 {
        self.confusion.minority_f1()
    }

    /// Pooled kappa.
    pub fn kappa(&self) -> f64 {
        self.confusion.kappa()
    }

    /// Standard deviation of per-fold accuracy.
    pub fn accuracy_std(&self) -> f64 {
        let n = self.fold_accuracies.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.fold_accuracies.iter().sum::<f64>() / n as f64;
        (self
            .fold_accuracies
            .iter()
            .map(|a| (a - mean) * (a - mean))
            .sum::<f64>()
            / (n - 1) as f64)
            .sqrt()
    }
}

/// Stratified fold assignment: labeled rows are shuffled per class and
/// dealt round-robin so each fold preserves the class distribution.
/// Returns `folds` lists of row indices.
pub fn stratified_folds(data: &Instances, folds: usize, seed: u64) -> Result<Vec<Vec<usize>>> {
    stratified_folds_view(&data.view(), folds, seed)
}

/// [`stratified_folds`] over a view; the returned indices are
/// view-local.
pub fn stratified_folds_view(
    data: &InstancesView<'_>,
    folds: usize,
    seed: u64,
) -> Result<Vec<Vec<usize>>> {
    if folds < 2 {
        return Err(MiningError::InvalidParameter(
            "cross-validation needs at least 2 folds".into(),
        ));
    }
    let labeled = data.labeled_indices();
    if labeled.len() < folds {
        return Err(MiningError::InvalidDataset(format!(
            "{} labeled rows cannot fill {} folds",
            labeled.len(),
            folds
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); data.n_classes().max(1)];
    for &i in &labeled {
        per_class[data.label(i).expect("labeled")].push(i);
    }
    let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); folds];
    let mut next = 0usize;
    for class_rows in &mut per_class {
        class_rows.shuffle(&mut rng);
        for &row in class_rows.iter() {
            assignment[next % folds].push(row);
            next += 1;
        }
    }
    Ok(assignment)
}

/// Options controlling how [`cross_validate_with`] executes.
#[derive(Debug, Clone, Default)]
pub struct CrossValOptions {
    /// Evaluate folds on parallel threads. Fold assignment and the
    /// pooled result are identical either way; only wall-clock time
    /// changes. Leave off inside already-parallel experiment grids.
    pub parallel_folds: bool,
}

impl CrossValOptions {
    /// Options with the parallel fold loop enabled.
    pub fn parallel() -> Self {
        CrossValOptions {
            parallel_folds: true,
        }
    }
}

/// Everything one fold contributes to the pooled result, kept separate
/// so folds can run on any thread and still merge in fold order.
struct FoldOutcome {
    actual: Vec<usize>,
    predicted: Vec<usize>,
    accuracy: f64,
    train_ms: f64,
    predict_ms: f64,
    model_size: f64,
}

/// Train and test one fold over borrowed row selections — no cell is
/// copied. `train_buf` is a caller-owned scratch vector for the
/// training-row indices so sequential sweeps reuse one allocation
/// across all folds.
fn run_fold(
    data: &InstancesView<'_>,
    spec: &AlgorithmSpec,
    fold_rows: &[Vec<usize>],
    f: usize,
    train_buf: &mut Vec<usize>,
) -> Result<FoldOutcome> {
    train_buf.clear();
    for (i, rows) in fold_rows.iter().enumerate() {
        if i != f {
            train_buf.extend_from_slice(rows);
        }
    }
    let test_rows = &fold_rows[f];
    let train = data.select_rows(train_buf);
    let test = data.select_rows(test_rows);
    let mut model = spec.build();
    let t0 = Instant::now();
    model.fit_view(&train)?;
    let train_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let predicted = model.predict_view(&test)?;
    let predict_ms = t1.elapsed().as_secs_f64() * 1e3;
    let mut actual = Vec::with_capacity(test_rows.len());
    let mut correct = 0usize;
    for (i, p) in predicted.iter().enumerate() {
        let l = test.label(i).expect("stratified folds hold labeled rows");
        actual.push(l);
        if *p == l {
            correct += 1;
        }
    }
    Ok(FoldOutcome {
        accuracy: correct as f64 / test.len().max(1) as f64,
        actual,
        predicted,
        train_ms,
        predict_ms,
        model_size: model.model_size() as f64,
    })
}

/// Run stratified k-fold cross-validation of an algorithm spec.
pub fn cross_validate(
    data: &Instances,
    spec: &AlgorithmSpec,
    folds: usize,
    seed: u64,
) -> Result<EvalResult> {
    cross_validate_with(data, spec, folds, seed, &CrossValOptions::default())
}

/// [`cross_validate`] with explicit execution options. With
/// `parallel_folds` each fold trains and predicts on its own thread;
/// outcomes are merged in fold-index order, so the result is equal to
/// the sequential run (timings excepted).
pub fn cross_validate_with(
    data: &Instances,
    spec: &AlgorithmSpec,
    folds: usize,
    seed: u64,
    opts: &CrossValOptions,
) -> Result<EvalResult> {
    cross_validate_view(&data.view(), spec, folds, seed, opts)
}

/// Cross-validate directly on a view — lets callers evaluate an
/// attribute projection (`select_attrs`) or row selection without
/// materializing it first.
pub fn cross_validate_view(
    data: &InstancesView<'_>,
    spec: &AlgorithmSpec,
    folds: usize,
    seed: u64,
    opts: &CrossValOptions,
) -> Result<EvalResult> {
    let fold_rows = stratified_folds_view(data, folds, seed)?;
    let n_labeled: usize = fold_rows.iter().map(Vec::len).sum();
    let outcomes: Vec<FoldOutcome> = if opts.parallel_folds && folds > 1 {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..folds)
                .map(|f| {
                    let fold_rows = &fold_rows;
                    scope.spawn(move || {
                        let mut train_buf = Vec::with_capacity(n_labeled);
                        run_fold(data, spec, fold_rows, f, &mut train_buf)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(MiningError::Execution(
                            "cross-validation fold thread panicked".into(),
                        ))
                    })
                })
                .collect::<Result<Vec<FoldOutcome>>>()
        })?
    } else {
        let mut train_buf = Vec::with_capacity(n_labeled);
        let mut out = Vec::with_capacity(folds);
        for f in 0..folds {
            out.push(run_fold(data, spec, &fold_rows, f, &mut train_buf)?);
        }
        out
    };
    let mut actual = Vec::with_capacity(n_labeled);
    let mut predicted = Vec::with_capacity(n_labeled);
    let mut fold_accuracies = Vec::with_capacity(folds);
    let mut train_ms = 0.0;
    let mut predict_ms = 0.0;
    let mut model_size_sum = 0.0;
    for o in outcomes {
        actual.extend(o.actual);
        predicted.extend(o.predicted);
        fold_accuracies.push(o.accuracy);
        train_ms += o.train_ms;
        predict_ms += o.predict_ms;
        model_size_sum += o.model_size;
    }
    Ok(EvalResult {
        algorithm: spec.to_string(),
        confusion: ConfusionMatrix::from_predictions(data.class_names(), &actual, &predicted)?,
        fold_accuracies,
        train_ms,
        predict_ms,
        model_size: model_size_sum / folds as f64,
    })
}

/// Single stratified holdout split: returns `(train, test)` views with
/// `test_fraction` of each class in the test set. The views borrow
/// `data` — no rows are copied; call [`InstancesView::materialize`] if
/// an owned dataset is needed.
pub fn holdout_split(
    data: &Instances,
    test_fraction: f64,
    seed: u64,
) -> Result<(InstancesView<'_>, InstancesView<'_>)> {
    if !(0.0..1.0).contains(&test_fraction) || test_fraction == 0.0 {
        return Err(MiningError::InvalidParameter(
            "test fraction must be in (0,1)".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let labeled = data.labeled_indices();
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); data.n_classes().max(1)];
    for &i in &labeled {
        per_class[data.labels[i].expect("labeled")].push(i);
    }
    let mut train_rows = Vec::new();
    let mut test_rows = Vec::new();
    for class_rows in &mut per_class {
        class_rows.shuffle(&mut rng);
        let n_test = ((class_rows.len() as f64 * test_fraction).round() as usize)
            .min(class_rows.len().saturating_sub(1));
        test_rows.extend_from_slice(&class_rows[..n_test]);
        train_rows.extend_from_slice(&class_rows[n_test..]);
    }
    if train_rows.is_empty() || test_rows.is_empty() {
        return Err(MiningError::InvalidDataset(
            "holdout produced an empty split".into(),
        ));
    }
    Ok((
        data.view().select_rows_owned(train_rows),
        data.view().select_rows_owned(test_rows),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::{AttrKind, Attribute};

    fn data(n_per_class: usize) -> Instances {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_per_class {
            let j = (i % 7) as f64 * 0.1;
            rows.push(vec![Some(j)]);
            labels.push(Some(0));
            rows.push(vec![Some(5.0 + j)]);
            labels.push(Some(1));
        }
        Instances::from_rows(
            vec![Attribute {
                name: "x".into(),
                kind: AttrKind::Numeric,
            }],
            rows,
            labels,
            vec!["a".into(), "b".into()],
        )
    }

    #[test]
    fn folds_are_stratified_and_partition() {
        let d = data(25);
        let folds = stratified_folds(&d, 5, 3).unwrap();
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<usize>>());
        for f in &folds {
            let pos = f.iter().filter(|&&i| d.labels[i] == Some(0)).count();
            assert_eq!(pos, 5, "each fold holds 5 of each class");
        }
    }

    #[test]
    fn folds_deterministic_by_seed() {
        let d = data(20);
        assert_eq!(
            stratified_folds(&d, 4, 9).unwrap(),
            stratified_folds(&d, 4, 9).unwrap()
        );
        assert_ne!(
            stratified_folds(&d, 4, 9).unwrap(),
            stratified_folds(&d, 4, 10).unwrap()
        );
    }

    #[test]
    fn cross_validation_on_separable_data_is_accurate() {
        let d = data(30);
        let r = cross_validate(&d, &AlgorithmSpec::NaiveBayes, 5, 1).unwrap();
        assert!(r.accuracy() > 0.95, "accuracy {}", r.accuracy());
        assert_eq!(r.fold_accuracies.len(), 5);
        assert_eq!(r.confusion.total(), 60);
        assert!(r.model_size > 0.0);
    }

    #[test]
    fn parallel_folds_match_sequential() {
        let d = data(30);
        for spec in [AlgorithmSpec::NaiveBayes, AlgorithmSpec::ZeroR] {
            let seq = cross_validate(&d, &spec, 5, 7).unwrap();
            let par = cross_validate_with(&d, &spec, 5, 7, &CrossValOptions::parallel()).unwrap();
            assert_eq!(seq.confusion, par.confusion);
            assert_eq!(seq.fold_accuracies, par.fold_accuracies);
            assert_eq!(seq.model_size, par.model_size);
        }
    }

    #[test]
    fn view_cross_validation_matches_instances() {
        let d = data(30);
        let whole = cross_validate(&d, &AlgorithmSpec::NaiveBayes, 5, 7).unwrap();
        let via_view = cross_validate_view(
            &d.view(),
            &AlgorithmSpec::NaiveBayes,
            5,
            7,
            &CrossValOptions::default(),
        )
        .unwrap();
        assert_eq!(whole.confusion, via_view.confusion);
        assert_eq!(whole.fold_accuracies, via_view.fold_accuracies);
    }

    #[test]
    fn zero_r_floor_is_class_prior() {
        let d = data(30);
        let r = cross_validate(&d, &AlgorithmSpec::ZeroR, 5, 1).unwrap();
        assert!((r.accuracy() - 0.5).abs() < 0.1);
        assert!(r.kappa().abs() < 0.1);
    }

    #[test]
    fn too_few_folds_or_rows_rejected() {
        let d = data(30);
        assert!(cross_validate(&d, &AlgorithmSpec::ZeroR, 1, 1).is_err());
        let tiny = data(1);
        assert!(stratified_folds(&tiny, 5, 1).is_err());
    }

    #[test]
    fn holdout_respects_fraction_and_stratification() {
        let d = data(50);
        let (train, test) = holdout_split(&d, 0.2, 4).unwrap();
        assert_eq!(test.len(), 20);
        assert_eq!(train.len(), 80);
        let test_pos = (0..test.len())
            .filter(|&i| test.label(i) == Some(0))
            .count();
        assert_eq!(test_pos, 10);
    }

    #[test]
    fn holdout_views_borrow_without_copying() {
        let d = data(20);
        let (train, test) = holdout_split(&d, 0.25, 1).unwrap();
        // Views map back into the parent rows; materializing them
        // reproduces a plain subset.
        let m = test.materialize();
        assert_eq!(m.len(), test.len());
        for i in 0..test.len() {
            assert_eq!(m.get(i, 0), d.get(test.base_row(i), 0));
        }
        assert_eq!(train.len() + test.len(), d.len());
    }

    #[test]
    fn holdout_invalid_fraction_rejected() {
        let d = data(10);
        assert!(holdout_split(&d, 0.0, 1).is_err());
        assert!(holdout_split(&d, 1.0, 1).is_err());
    }
}
