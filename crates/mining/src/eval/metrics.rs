//! Classification evaluation metrics: confusion matrix, accuracy,
//! macro precision/recall/F1, per-class F1, and Cohen's kappa.

use crate::error::{MiningError, Result};

/// A square confusion matrix (`cell[actual][predicted]`).
#[derive(Debug, Clone, PartialEq)]
pub struct ConfusionMatrix {
    /// Class names, in index order.
    pub classes: Vec<String>,
    cells: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Build from aligned actual/predicted label indices.
    pub fn from_predictions(
        classes: &[String],
        actual: &[usize],
        predicted: &[usize],
    ) -> Result<Self> {
        if actual.len() != predicted.len() {
            return Err(MiningError::InvalidParameter(
                "actual and predicted lengths differ".into(),
            ));
        }
        let k = classes.len();
        let mut cells = vec![vec![0usize; k]; k];
        for (&a, &p) in actual.iter().zip(predicted) {
            if a >= k || p >= k {
                return Err(MiningError::InvalidParameter(format!(
                    "label index out of range: actual {a}, predicted {p}, classes {k}"
                )));
            }
            cells[a][p] += 1;
        }
        Ok(ConfusionMatrix {
            classes: classes.to_vec(),
            cells,
        })
    }

    /// Count at `(actual, predicted)`.
    pub fn cell(&self, actual: usize, predicted: usize) -> usize {
        self.cells[actual][predicted]
    }

    /// Total number of scored instances.
    pub fn total(&self) -> usize {
        self.cells.iter().flatten().sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.classes.len()).map(|i| self.cells[i][i]).sum();
        correct as f64 / total as f64
    }

    /// Precision of one class (0 when the class is never predicted).
    pub fn precision(&self, class: usize) -> f64 {
        let predicted: usize = (0..self.classes.len()).map(|a| self.cells[a][class]).sum();
        if predicted == 0 {
            0.0
        } else {
            self.cells[class][class] as f64 / predicted as f64
        }
    }

    /// Recall of one class (0 when the class never occurs).
    pub fn recall(&self, class: usize) -> f64 {
        let actual: usize = self.cells[class].iter().sum();
        if actual == 0 {
            0.0
        } else {
            self.cells[class][class] as f64 / actual as f64
        }
    }

    /// F1 of one class.
    pub fn f1(&self, class: usize) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Macro-averaged F1 over classes that actually occur.
    pub fn macro_f1(&self) -> f64 {
        let occurring: Vec<usize> = (0..self.classes.len())
            .filter(|&c| self.cells[c].iter().sum::<usize>() > 0)
            .collect();
        if occurring.is_empty() {
            return 0.0;
        }
        occurring.iter().map(|&c| self.f1(c)).sum::<f64>() / occurring.len() as f64
    }

    /// F1 of the rarest occurring class — the metric that exposes the
    /// imbalance defect while plain accuracy stays deceptively high.
    pub fn minority_f1(&self) -> f64 {
        (0..self.classes.len())
            .filter_map(|c| {
                let n: usize = self.cells[c].iter().sum();
                (n > 0).then_some((n, self.f1(c)))
            })
            .min_by_key(|(n, _)| *n)
            .map(|(_, f1)| f1)
            .unwrap_or(0.0)
    }

    /// Cohen's kappa: agreement corrected for chance.
    pub fn kappa(&self) -> f64 {
        let total = self.total() as f64;
        if total == 0.0 {
            return 0.0;
        }
        let po = self.accuracy();
        let mut pe = 0.0;
        for c in 0..self.classes.len() {
            let actual: usize = self.cells[c].iter().sum();
            let predicted: usize = (0..self.classes.len()).map(|a| self.cells[a][c]).sum();
            pe += (actual as f64 / total) * (predicted as f64 / total);
        }
        if (1.0 - pe).abs() < 1e-12 {
            0.0
        } else {
            (po - pe) / (1.0 - pe)
        }
    }

    /// Render as an aligned text matrix.
    pub fn render(&self) -> String {
        let mut out = String::from("actual \\ predicted\n");
        for (i, name) in self.classes.iter().enumerate() {
            out.push_str(&format!("{name:>12}"));
            for j in 0..self.classes.len() {
                out.push_str(&format!(" {:>6}", self.cells[i][j]));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classes() -> Vec<String> {
        vec!["a".into(), "b".into()]
    }

    #[test]
    fn perfect_predictions() {
        let cm =
            ConfusionMatrix::from_predictions(&classes(), &[0, 1, 0, 1], &[0, 1, 0, 1]).unwrap();
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.macro_f1(), 1.0);
        assert_eq!(cm.kappa(), 1.0);
        assert_eq!(cm.minority_f1(), 1.0);
    }

    #[test]
    fn known_confusion_values() {
        // actual:    a a a a b b
        // predicted: a a b a b a
        let cm =
            ConfusionMatrix::from_predictions(&classes(), &[0, 0, 0, 0, 1, 1], &[0, 0, 1, 0, 1, 0])
                .unwrap();
        assert_eq!(cm.cell(0, 0), 3);
        assert_eq!(cm.cell(0, 1), 1);
        assert_eq!(cm.cell(1, 0), 1);
        assert_eq!(cm.cell(1, 1), 1);
        assert!((cm.accuracy() - 4.0 / 6.0).abs() < 1e-12);
        assert!((cm.precision(0) - 0.75).abs() < 1e-12);
        assert!((cm.recall(0) - 0.75).abs() < 1e-12);
        assert!((cm.precision(1) - 0.5).abs() < 1e-12);
        assert!((cm.recall(1) - 0.5).abs() < 1e-12);
        assert!((cm.minority_f1() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn majority_predictor_has_zero_kappa() {
        // 90 a's, 10 b's, all predicted a: high accuracy, kappa 0.
        let actual: Vec<usize> = std::iter::repeat_n(0, 90)
            .chain(std::iter::repeat_n(1, 10))
            .collect();
        let predicted = vec![0usize; 100];
        let cm = ConfusionMatrix::from_predictions(&classes(), &actual, &predicted).unwrap();
        assert!((cm.accuracy() - 0.9).abs() < 1e-12);
        assert_eq!(cm.kappa(), 0.0);
        assert_eq!(cm.minority_f1(), 0.0);
    }

    #[test]
    fn length_mismatch_rejected() {
        assert!(ConfusionMatrix::from_predictions(&classes(), &[0], &[0, 1]).is_err());
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(ConfusionMatrix::from_predictions(&classes(), &[2], &[0]).is_err());
    }

    #[test]
    fn absent_class_excluded_from_macro_f1() {
        let three: Vec<String> = vec!["a".into(), "b".into(), "c".into()];
        let cm = ConfusionMatrix::from_predictions(&three, &[0, 1], &[0, 1]).unwrap();
        assert_eq!(cm.macro_f1(), 1.0);
    }

    #[test]
    fn render_contains_counts() {
        let cm = ConfusionMatrix::from_predictions(&classes(), &[0, 1], &[1, 1]).unwrap();
        let r = cm.render();
        assert!(r.contains('a') && r.contains('b'));
    }
}
