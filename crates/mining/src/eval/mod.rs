//! Model evaluation: metrics and resampling.

pub mod crossval;
pub mod metrics;

pub use crossval::{
    cross_validate, cross_validate_with, holdout_split, stratified_folds, CrossValOptions,
    EvalResult,
};
pub use metrics::ConfusionMatrix;
