//! Model evaluation: metrics and resampling.

pub mod crossval;
pub mod metrics;

pub use crossval::{cross_validate, holdout_split, stratified_folds, EvalResult};
pub use metrics::ConfusionMatrix;
