//! The [`Instances`] mining dataset: a typed feature matrix with an
//! optional nominal class attribute, built from an `openbi-table` table.
//!
//! Numeric attributes hold their value; nominal attributes hold a
//! category index (as `f64` so one row type serves both). Missing cells
//! are `None` — classifiers must tolerate them, since the quality
//! experiments inject missingness on purpose.

use crate::error::{MiningError, Result};
use openbi_table::{DataType, Table, Value};

/// The kind of a mining attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrKind {
    /// Real-valued.
    Numeric,
    /// Categorical with the given value dictionary (index = code).
    Nominal(Vec<String>),
}

impl AttrKind {
    /// Number of categories (0 for numeric).
    pub fn cardinality(&self) -> usize {
        match self {
            AttrKind::Numeric => 0,
            AttrKind::Nominal(v) => v.len(),
        }
    }
}

/// A named, typed mining attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    /// Attribute name (source column name).
    pub name: String,
    /// Attribute kind.
    pub kind: AttrKind,
}

/// A mining dataset: rows of optional feature values plus optional class
/// labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Instances {
    /// Attribute metadata, in column order.
    pub attributes: Vec<Attribute>,
    /// Feature rows; nominal values are category indices.
    pub rows: Vec<Vec<Option<f64>>>,
    /// Class label index per row (`None` = unlabeled).
    pub labels: Vec<Option<usize>>,
    /// Class value dictionary (empty when the dataset has no target).
    pub class_names: Vec<String>,
}

impl Instances {
    /// Build instances from a table.
    ///
    /// * `target`: optional class column (any type; values are stringified
    ///   into a nominal dictionary).
    /// * `exclude`: columns to skip entirely (identifiers etc.).
    pub fn from_table(table: &Table, target: Option<&str>, exclude: &[&str]) -> Result<Self> {
        if let Some(t) = target {
            table.column(t)?;
        }
        let mut attributes = Vec::new();
        let mut columns: Vec<(usize, AttrKind, Vec<Option<f64>>)> = Vec::new();
        for col in table.columns() {
            if exclude.contains(&col.name()) || Some(col.name()) == target {
                continue;
            }
            let (kind, data): (AttrKind, Vec<Option<f64>>) = match col.dtype() {
                DataType::Int | DataType::Float => (AttrKind::Numeric, col.to_f64_vec()),
                DataType::Bool => (
                    AttrKind::Nominal(vec!["false".into(), "true".into()]),
                    col.iter()
                        .map(|v| v.as_bool().map(|b| if b { 1.0 } else { 0.0 }))
                        .collect(),
                ),
                DataType::Str => {
                    let mut dict: Vec<String> = Vec::new();
                    let data = col
                        .iter()
                        .map(|v| match v {
                            Value::Null => None,
                            v => {
                                let s = v.to_string();
                                let idx = match dict.iter().position(|d| *d == s) {
                                    Some(i) => i,
                                    None => {
                                        dict.push(s);
                                        dict.len() - 1
                                    }
                                };
                                Some(idx as f64)
                            }
                        })
                        .collect();
                    (AttrKind::Nominal(dict), data)
                }
            };
            attributes.push(Attribute {
                name: col.name().to_string(),
                kind,
            });
            columns.push((
                attributes.len() - 1,
                attributes.last().expect("pushed").kind.clone(),
                data,
            ));
        }
        if attributes.is_empty() {
            return Err(MiningError::InvalidDataset(
                "no usable feature columns".to_string(),
            ));
        }
        let n = table.n_rows();
        let mut rows: Vec<Vec<Option<f64>>> = vec![Vec::with_capacity(attributes.len()); n];
        for (_, _, data) in &columns {
            for (r, v) in data.iter().enumerate() {
                rows[r].push(*v);
            }
        }
        let (labels, class_names) = match target {
            Some(t) => {
                let col = table.column(t)?;
                let mut dict: Vec<String> = Vec::new();
                let labels = col
                    .iter()
                    .map(|v| match v {
                        Value::Null => None,
                        v => {
                            let s = v.to_string();
                            let idx = match dict.iter().position(|d| *d == s) {
                                Some(i) => i,
                                None => {
                                    dict.push(s);
                                    dict.len() - 1
                                }
                            };
                            Some(idx)
                        }
                    })
                    .collect();
                (labels, dict)
            }
            None => (vec![None; n], vec![]),
        };
        Ok(Instances {
            attributes,
            rows,
            labels,
            class_names,
        })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of attributes.
    pub fn n_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Indices of rows with a known label.
    pub fn labeled_indices(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.labels[i].is_some())
            .collect()
    }

    /// Class distribution over labeled rows.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes()];
        for l in self.labels.iter().flatten() {
            counts[*l] += 1;
        }
        counts
    }

    /// A new dataset holding only the given rows (indices may repeat).
    pub fn subset(&self, indices: &[usize]) -> Instances {
        Instances {
            attributes: self.attributes.clone(),
            rows: indices.iter().map(|&i| self.rows[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            class_names: self.class_names.clone(),
        }
    }

    /// Per-attribute `(min, max)` over non-missing numeric values
    /// (`None` for nominal or all-missing attributes).
    pub fn numeric_ranges(&self) -> Vec<Option<(f64, f64)>> {
        self.attributes
            .iter()
            .enumerate()
            .map(|(a, attr)| {
                if attr.kind != AttrKind::Numeric {
                    return None;
                }
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                let mut any = false;
                for row in &self.rows {
                    if let Some(v) = row[a] {
                        lo = lo.min(v);
                        hi = hi.max(v);
                        any = true;
                    }
                }
                any.then_some((lo, hi))
            })
            .collect()
    }

    /// Per-attribute mean over non-missing numeric values (`None` for
    /// nominal attributes; nominal get their modal category instead via
    /// [`Instances::modes`]).
    pub fn numeric_means(&self) -> Vec<Option<f64>> {
        self.attributes
            .iter()
            .enumerate()
            .map(|(a, attr)| {
                if attr.kind != AttrKind::Numeric {
                    return None;
                }
                let vals: Vec<f64> = self.rows.iter().filter_map(|r| r[a]).collect();
                if vals.is_empty() {
                    None
                } else {
                    Some(vals.iter().sum::<f64>() / vals.len() as f64)
                }
            })
            .collect()
    }

    /// Per-attribute modal category index for nominal attributes.
    pub fn modes(&self) -> Vec<Option<f64>> {
        self.attributes
            .iter()
            .enumerate()
            .map(|(a, attr)| {
                let AttrKind::Nominal(dict) = &attr.kind else {
                    return None;
                };
                let mut counts = vec![0usize; dict.len()];
                for row in &self.rows {
                    if let Some(v) = row[a] {
                        let idx = v as usize;
                        if idx < counts.len() {
                            counts[idx] += 1;
                        }
                    }
                }
                counts
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, c)| **c)
                    .map(|(i, _)| i as f64)
            })
            .collect()
    }

    /// The majority class index over labeled rows (0 if unlabeled).
    pub fn majority_class(&self) -> usize {
        let counts = self.class_counts();
        counts
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openbi_table::Column;

    fn table() -> Table {
        Table::new(vec![
            Column::from_i64("id", [1, 2, 3, 4]),
            Column::from_f64("x", [0.5, 1.5, 2.5, 3.5]),
            Column::from_opt_str(
                "color",
                [
                    Some("red".to_string()),
                    Some("blue".to_string()),
                    None,
                    Some("red".to_string()),
                ],
            ),
            Column::from_bool("flag", [true, false, true, true]),
            Column::from_str_values("class", ["a", "b", "a", "a"]),
        ])
        .unwrap()
    }

    #[test]
    fn builds_typed_attributes() {
        let inst = Instances::from_table(&table(), Some("class"), &["id"]).unwrap();
        assert_eq!(inst.n_attributes(), 3);
        assert_eq!(inst.attributes[0].kind, AttrKind::Numeric);
        assert_eq!(
            inst.attributes[1].kind,
            AttrKind::Nominal(vec!["red".into(), "blue".into()])
        );
        assert_eq!(inst.attributes[2].kind.cardinality(), 2);
        assert_eq!(inst.class_names, vec!["a", "b"]);
        assert_eq!(inst.len(), 4);
    }

    #[test]
    fn nominal_codes_match_dictionary() {
        let inst = Instances::from_table(&table(), Some("class"), &["id"]).unwrap();
        assert_eq!(inst.rows[0][1], Some(0.0)); // red
        assert_eq!(inst.rows[1][1], Some(1.0)); // blue
        assert_eq!(inst.rows[2][1], None);
        assert_eq!(inst.rows[3][1], Some(0.0)); // red again
        assert_eq!(inst.labels, vec![Some(0), Some(1), Some(0), Some(0)]);
    }

    #[test]
    fn no_target_leaves_unlabeled() {
        let inst = Instances::from_table(&table(), None, &["id"]).unwrap();
        assert_eq!(inst.n_classes(), 0);
        assert!(inst.labels.iter().all(Option::is_none));
        assert!(inst.labeled_indices().is_empty());
    }

    #[test]
    fn missing_target_column_errors() {
        assert!(Instances::from_table(&table(), Some("nope"), &[]).is_err());
    }

    #[test]
    fn all_columns_excluded_errors() {
        let t = Table::new(vec![Column::from_i64("only", [1])]).unwrap();
        assert!(Instances::from_table(&t, None, &["only"]).is_err());
    }

    #[test]
    fn stats_helpers() {
        let inst = Instances::from_table(&table(), Some("class"), &["id"]).unwrap();
        assert_eq!(inst.class_counts(), vec![3, 1]);
        assert_eq!(inst.majority_class(), 0);
        let ranges = inst.numeric_ranges();
        assert_eq!(ranges[0], Some((0.5, 3.5)));
        assert_eq!(ranges[1], None);
        let means = inst.numeric_means();
        assert_eq!(means[0], Some(2.0));
        let modes = inst.modes();
        assert_eq!(modes[1], Some(0.0)); // red is modal
        assert_eq!(modes[0], None);
    }

    #[test]
    fn subset_selects_rows() {
        let inst = Instances::from_table(&table(), Some("class"), &["id"]).unwrap();
        let s = inst.subset(&[3, 0, 3]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.labels, vec![Some(0), Some(0), Some(0)]);
        assert_eq!(s.rows[0][0], Some(3.5));
    }
}
