//! The [`Instances`] mining dataset: a typed feature matrix with an
//! optional nominal class attribute, built from an `openbi-table` table.
//!
//! # Data layout (DESIGN.md §11)
//!
//! Storage is columnar struct-of-arrays: each attribute is one
//! contiguous `Vec<f64>` plus a validity [`Bitmap`] (one bit per row).
//! Missing cells carry a NaN sentinel in the value slot, but the bitmap
//! is the ground truth for presence — a *present* NaN (bit set, value
//! NaN) is representable and kept distinct from a missing cell, exactly
//! as the old `Option<f64>` rows distinguished `Some(NAN)` from `None`.
//! Numeric attributes hold their value; nominal attributes hold a
//! category index (as `f64` so one column type serves both). Classifiers
//! must tolerate missing cells, since the quality experiments inject
//! missingness on purpose.
//!
//! Per-column statistics (min/max/mean/mode/present-count) are computed
//! once at construction and cached, so [`Instances::numeric_ranges`],
//! [`Instances::numeric_means`] and [`Instances::modes`] are O(columns)
//! lookups instead of full re-scans. Any mutation goes through
//! [`Instances::set`], which recomputes the touched column's stats.
//!
//! Cross-validation folds and attribute subsets are expressed as
//! borrowed [`InstancesView`]s (row-index + column-mask) — zero row
//! copies per fold.

use crate::error::{MiningError, Result};
use openbi_table::{DataType, Table, Value};
use std::borrow::Cow;

/// The kind of a mining attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrKind {
    /// Real-valued.
    Numeric,
    /// Categorical with the given value dictionary (index = code).
    Nominal(Vec<String>),
}

impl AttrKind {
    /// Number of categories (0 for numeric).
    pub fn cardinality(&self) -> usize {
        match self {
            AttrKind::Numeric => 0,
            AttrKind::Nominal(v) => v.len(),
        }
    }
}

/// A named, typed mining attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    /// Attribute name (source column name).
    pub name: String,
    /// Attribute kind.
    pub kind: AttrKind,
}

/// A fixed-length validity bitmap: bit `i` set ⇔ row `i` is present.
///
/// Backed by `u64` words, little-endian within a word (bit `i` lives at
/// `words[i / 64] >> (i % 64)`). Bits past `len` are kept zero so word
/// slices of equal-length bitmaps compare directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// A bitmap of `len` bits, all set (`filled = true`) or all clear.
    pub fn new(len: usize, filled: bool) -> Self {
        let mut b = Bitmap {
            words: vec![if filled { !0u64 } else { 0 }; len.div_ceil(64)],
            len,
        };
        if filled {
            b.clear_tail();
        }
        b
    }

    /// An empty bitmap ready for [`Bitmap::push`].
    pub fn with_capacity(bits: usize) -> Self {
        Bitmap {
            words: Vec::with_capacity(bits.div_ceil(64)),
            len: 0,
        }
    }

    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(w) = self.words.last_mut() {
                *w &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the bitmap has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `i` (panics past the end).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range for {} bits", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Set bit `i` to `value`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit {i} out of range for {} bits", self.len);
        let (w, b) = (i / 64, i % 64);
        if value {
            self.words[w] |= 1u64 << b;
        } else {
            self.words[w] &= !(1u64 << b);
        }
    }

    /// Append one bit.
    pub fn push(&mut self, value: bool) {
        if self.len % 64 == 0 {
            self.words.push(0);
        }
        if value {
            let i = self.len;
            self.words[i / 64] |= 1u64 << (i % 64);
        }
        self.len += 1;
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True iff every bit is set.
    pub fn all_set(&self) -> bool {
        self.count_ones() == self.len
    }

    /// True iff no bit is set.
    pub fn none_set(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// The backing words (tail bits past `len` are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Cached per-column statistics, computed at construction time.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Non-missing cells in the column.
    pub present: usize,
    /// `(min, max)` over present values — numeric columns only.
    pub range: Option<(f64, f64)>,
    /// Mean over present values — numeric columns only.
    pub mean: Option<f64>,
    /// Modal category index — nominal columns only.
    pub mode: Option<f64>,
}

/// One attribute's storage: contiguous values, validity, cached stats.
#[derive(Debug, Clone)]
struct ColumnData {
    /// Cell values; missing slots hold `f64::NAN` (see module docs:
    /// `validity` is the ground truth for presence).
    values: Vec<f64>,
    validity: Bitmap,
    stats: ColumnStats,
}

impl ColumnData {
    fn from_options<I: IntoIterator<Item = Option<f64>>>(kind: &AttrKind, cells: I) -> Self {
        let mut values = Vec::new();
        let mut validity = Bitmap::with_capacity(0);
        for cell in cells {
            match cell {
                Some(v) => {
                    values.push(v);
                    validity.push(true);
                }
                None => {
                    values.push(f64::NAN);
                    validity.push(false);
                }
            }
        }
        let stats = compute_stats(kind, &values, &validity);
        ColumnData {
            values,
            validity,
            stats,
        }
    }

    fn gather(&self, kind: &AttrKind, indices: &[usize]) -> Self {
        let mut values = Vec::with_capacity(indices.len());
        let mut validity = Bitmap::with_capacity(indices.len());
        for &i in indices {
            values.push(self.values[i]);
            validity.push(self.validity.get(i));
        }
        let stats = compute_stats(kind, &values, &validity);
        ColumnData {
            values,
            validity,
            stats,
        }
    }
}

/// Column statistics with the exact accumulation order of the pre-rewrite
/// per-call scans (row-ascending running min/max/sum), so cached values
/// are bit-identical to what `numeric_ranges()` / `numeric_means()` /
/// `modes()` used to recompute.
fn compute_stats(kind: &AttrKind, values: &[f64], validity: &Bitmap) -> ColumnStats {
    match kind {
        AttrKind::Numeric => {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            let mut sum = 0.0;
            let mut present = 0usize;
            for (i, &v) in values.iter().enumerate() {
                if validity.get(i) {
                    lo = lo.min(v);
                    hi = hi.max(v);
                    sum += v;
                    present += 1;
                }
            }
            ColumnStats {
                present,
                range: (present > 0).then_some((lo, hi)),
                mean: (present > 0).then(|| sum / present as f64),
                mode: None,
            }
        }
        AttrKind::Nominal(dict) => {
            let mut counts = vec![0usize; dict.len()];
            let mut present = 0usize;
            for (i, &v) in values.iter().enumerate() {
                if validity.get(i) {
                    present += 1;
                    let idx = v as usize;
                    if idx < counts.len() {
                        counts[idx] += 1;
                    }
                }
            }
            let mode = counts
                .iter()
                .enumerate()
                .max_by_key(|(_, c)| **c)
                .map(|(i, _)| i as f64);
            ColumnStats {
                present,
                range: None,
                mean: None,
                mode,
            }
        }
    }
}

/// Same scans restricted to (and ordered by) a row selection — what a
/// masked [`InstancesView`] reports, matching a materialized subset.
fn compute_stats_over(
    kind: &AttrKind,
    values: &[f64],
    validity: &Bitmap,
    rows: &[usize],
) -> ColumnStats {
    match kind {
        AttrKind::Numeric => {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            let mut sum = 0.0;
            let mut present = 0usize;
            for &r in rows {
                if validity.get(r) {
                    let v = values[r];
                    lo = lo.min(v);
                    hi = hi.max(v);
                    sum += v;
                    present += 1;
                }
            }
            ColumnStats {
                present,
                range: (present > 0).then_some((lo, hi)),
                mean: (present > 0).then(|| sum / present as f64),
                mode: None,
            }
        }
        AttrKind::Nominal(dict) => {
            let mut counts = vec![0usize; dict.len()];
            let mut present = 0usize;
            for &r in rows {
                if validity.get(r) {
                    present += 1;
                    let idx = values[r] as usize;
                    if idx < counts.len() {
                        counts[idx] += 1;
                    }
                }
            }
            let mode = counts
                .iter()
                .enumerate()
                .max_by_key(|(_, c)| **c)
                .map(|(i, _)| i as f64);
            ColumnStats {
                present,
                range: None,
                mean: None,
                mode,
            }
        }
    }
}

/// A mining dataset in columnar struct-of-arrays layout (see module
/// docs): one contiguous value vector + validity bitmap per attribute,
/// plus optional class labels.
#[derive(Debug, Clone)]
pub struct Instances {
    /// Attribute metadata, in column order.
    pub attributes: Vec<Attribute>,
    /// Class label index per row (`None` = unlabeled).
    pub labels: Vec<Option<usize>>,
    /// Class value dictionary (empty when the dataset has no target).
    pub class_names: Vec<String>,
    columns: Vec<ColumnData>,
    n_rows: usize,
}

impl PartialEq for Instances {
    /// Cell-level equality with the old row-major semantics: missing
    /// matches missing, present values compare with `f64` equality (so a
    /// present NaN is unequal to itself, exactly like `Some(NAN)`).
    fn eq(&self, other: &Self) -> bool {
        if self.attributes != other.attributes
            || self.labels != other.labels
            || self.class_names != other.class_names
            || self.n_rows != other.n_rows
        {
            return false;
        }
        self.columns.iter().zip(&other.columns).all(|(a, b)| {
            a.validity == b.validity
                && (0..self.n_rows).all(|i| !a.validity.get(i) || a.values[i] == b.values[i])
        })
    }
}

impl Instances {
    /// Build instances from a table.
    ///
    /// * `target`: optional class column (any type; values are stringified
    ///   into a nominal dictionary).
    /// * `exclude`: columns to skip entirely (identifiers etc.).
    pub fn from_table(table: &Table, target: Option<&str>, exclude: &[&str]) -> Result<Self> {
        if let Some(t) = target {
            table.column(t)?;
        }
        let mut attributes = Vec::new();
        let mut columns: Vec<ColumnData> = Vec::new();
        for col in table.columns() {
            if exclude.contains(&col.name()) || Some(col.name()) == target {
                continue;
            }
            let (kind, data): (AttrKind, Vec<Option<f64>>) = match col.dtype() {
                DataType::Int | DataType::Float => (AttrKind::Numeric, col.to_f64_vec()),
                DataType::Bool => (
                    AttrKind::Nominal(vec!["false".into(), "true".into()]),
                    col.iter()
                        .map(|v| v.as_bool().map(|b| if b { 1.0 } else { 0.0 }))
                        .collect(),
                ),
                DataType::Str => {
                    let mut dict: Vec<String> = Vec::new();
                    let data = col
                        .iter()
                        .map(|v| match v {
                            Value::Null => None,
                            v => {
                                let s = v.to_string();
                                let idx = match dict.iter().position(|d| *d == s) {
                                    Some(i) => i,
                                    None => {
                                        dict.push(s);
                                        dict.len() - 1
                                    }
                                };
                                Some(idx as f64)
                            }
                        })
                        .collect();
                    (AttrKind::Nominal(dict), data)
                }
            };
            columns.push(ColumnData::from_options(&kind, data));
            attributes.push(Attribute {
                name: col.name().to_string(),
                kind,
            });
        }
        if attributes.is_empty() {
            return Err(MiningError::InvalidDataset(
                "no usable feature columns".to_string(),
            ));
        }
        let n = table.n_rows();
        let (labels, class_names) = match target {
            Some(t) => {
                let col = table.column(t)?;
                let mut dict: Vec<String> = Vec::new();
                let labels = col
                    .iter()
                    .map(|v| match v {
                        Value::Null => None,
                        v => {
                            let s = v.to_string();
                            let idx = match dict.iter().position(|d| *d == s) {
                                Some(i) => i,
                                None => {
                                    dict.push(s);
                                    dict.len() - 1
                                }
                            };
                            Some(idx)
                        }
                    })
                    .collect();
                (labels, dict)
            }
            None => (vec![None; n], vec![]),
        };
        Ok(Instances {
            attributes,
            labels,
            class_names,
            columns,
            n_rows: n,
        })
    }

    /// Build instances directly from row-major cells (test fixtures and
    /// the row-major reference bridge). Panics if any row's width differs
    /// from `attributes.len()` or `labels.len() != rows.len()`.
    pub fn from_rows(
        attributes: Vec<Attribute>,
        rows: Vec<Vec<Option<f64>>>,
        labels: Vec<Option<usize>>,
        class_names: Vec<String>,
    ) -> Self {
        let n = rows.len();
        assert_eq!(labels.len(), n, "labels and rows must be the same length");
        for row in &rows {
            assert_eq!(
                row.len(),
                attributes.len(),
                "every row must have one cell per attribute"
            );
        }
        let columns = attributes
            .iter()
            .enumerate()
            .map(|(a, attr)| ColumnData::from_options(&attr.kind, rows.iter().map(|r| r[a])))
            .collect();
        Instances {
            attributes,
            labels,
            class_names,
            columns,
            n_rows: n,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.n_rows
    }

    /// True iff there are no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Number of attributes.
    pub fn n_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Indices of rows with a known label.
    pub fn labeled_indices(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.labels[i].is_some())
            .collect()
    }

    /// Class distribution over labeled rows.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes()];
        for l in self.labels.iter().flatten() {
            counts[*l] += 1;
        }
        counts
    }

    /// Cell value (`None` = missing). The validity bit decides presence,
    /// so a present NaN comes back as `Some(NAN)`.
    #[inline]
    pub fn get(&self, row: usize, attr: usize) -> Option<f64> {
        let col = &self.columns[attr];
        col.validity.get(row).then(|| col.values[row])
    }

    /// Overwrite one cell and recompute the column's cached stats.
    pub fn set(&mut self, row: usize, attr: usize, value: Option<f64>) {
        let kind = self.attributes[attr].kind.clone();
        let col = &mut self.columns[attr];
        match value {
            Some(v) => {
                col.values[row] = v;
                col.validity.set(row, true);
            }
            None => {
                col.values[row] = f64::NAN;
                col.validity.set(row, false);
            }
        }
        col.stats = compute_stats(&kind, &col.values, &col.validity);
    }

    /// The contiguous value slice of one attribute (NaN at missing slots).
    pub fn column_values(&self, attr: usize) -> &[f64] {
        &self.columns[attr].values
    }

    /// The validity bitmap of one attribute.
    pub fn column_validity(&self, attr: usize) -> &Bitmap {
        &self.columns[attr].validity
    }

    /// Cached statistics of one attribute.
    pub fn column_stats(&self, attr: usize) -> &ColumnStats {
        &self.columns[attr].stats
    }

    /// A borrowed column accessor (unmasked).
    pub fn col(&self, attr: usize) -> ColumnView<'_> {
        let col = &self.columns[attr];
        ColumnView {
            values: &col.values,
            validity: &col.validity,
            rows: None,
        }
    }

    /// Copy one row's cells into `buf` (cleared first).
    pub fn fill_row(&self, row: usize, buf: &mut Vec<Option<f64>>) {
        buf.clear();
        buf.extend(
            self.columns
                .iter()
                .map(|c| c.validity.get(row).then(|| c.values[row])),
        );
    }

    /// One row as owned cells (prefer [`Instances::fill_row`] in loops).
    pub fn row_vec(&self, row: usize) -> Vec<Option<f64>> {
        let mut buf = Vec::with_capacity(self.n_attributes());
        self.fill_row(row, &mut buf);
        buf
    }

    /// A borrowed whole-dataset view (zero-copy fold building starts
    /// here: chain [`InstancesView::select_rows`] /
    /// [`InstancesView::select_attrs`]).
    pub fn view(&self) -> InstancesView<'_> {
        InstancesView {
            data: self,
            rows: None,
            cols: None,
        }
    }

    /// A new dataset holding only the given rows (indices may repeat).
    pub fn subset(&self, indices: &[usize]) -> Instances {
        Instances {
            attributes: self.attributes.clone(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            class_names: self.class_names.clone(),
            columns: self
                .attributes
                .iter()
                .zip(&self.columns)
                .map(|(attr, col)| col.gather(&attr.kind, indices))
                .collect(),
            n_rows: indices.len(),
        }
    }

    /// Per-attribute `(min, max)` over non-missing numeric values
    /// (`None` for nominal or all-missing attributes). Served from the
    /// cached column stats.
    pub fn numeric_ranges(&self) -> Vec<Option<(f64, f64)>> {
        self.columns.iter().map(|c| c.stats.range).collect()
    }

    /// Per-attribute mean over non-missing numeric values (`None` for
    /// nominal attributes; nominal get their modal category instead via
    /// [`Instances::modes`]). Served from the cached column stats.
    pub fn numeric_means(&self) -> Vec<Option<f64>> {
        self.columns.iter().map(|c| c.stats.mean).collect()
    }

    /// Per-attribute modal category index for nominal attributes.
    /// Served from the cached column stats.
    pub fn modes(&self) -> Vec<Option<f64>> {
        self.columns.iter().map(|c| c.stats.mode).collect()
    }

    /// The majority class index over labeled rows (0 if unlabeled).
    pub fn majority_class(&self) -> usize {
        let counts = self.class_counts();
        counts
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// A borrowed row-selection + column-mask over an [`Instances`].
///
/// Views are cheap (two optional index slices); `select_rows` on a fold
/// costs one index vector, never a row copy. Row indices in a view are
/// *view-local*: `get(i, j)` addresses the `i`-th selected row and the
/// `j`-th selected attribute. An unmasked view serves the dataset's
/// cached column stats; a row-masked view recomputes stats over the
/// selection in selection order, exactly matching what a materialized
/// [`Instances::subset`] would report.
///
/// Aliasing: a view holds `&Instances`, so the borrow checker statically
/// rules out mutation while any view is alive — there is no
/// copy-then-diverge hazard like the old cloning `subset()` had.
#[derive(Debug, Clone)]
pub struct InstancesView<'a> {
    data: &'a Instances,
    /// Selected base-dataset row indices (`None` = all rows, in order).
    rows: Option<Cow<'a, [usize]>>,
    /// Selected base-dataset attribute indices (`None` = all).
    cols: Option<Cow<'a, [usize]>>,
}

impl<'a> InstancesView<'a> {
    /// Map a view-local attribute index to the base dataset's index.
    #[inline]
    fn base_attr(&self, attr: usize) -> usize {
        match &self.cols {
            Some(c) => c[attr],
            None => attr,
        }
    }

    /// Map a view-local row index to the base dataset's index.
    #[inline]
    pub fn base_row(&self, row: usize) -> usize {
        match &self.rows {
            Some(r) => r[row],
            None => row,
        }
    }

    /// Number of (selected) rows.
    pub fn len(&self) -> usize {
        match &self.rows {
            Some(r) => r.len(),
            None => self.data.len(),
        }
    }

    /// True iff the view selects no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of (selected) attributes.
    pub fn n_attributes(&self) -> usize {
        match &self.cols {
            Some(c) => c.len(),
            None => self.data.n_attributes(),
        }
    }

    /// Attribute metadata by view-local index.
    pub fn attribute(&self, attr: usize) -> &'a Attribute {
        &self.data.attributes[self.base_attr(attr)]
    }

    /// Number of classes in the base dataset.
    pub fn n_classes(&self) -> usize {
        self.data.n_classes()
    }

    /// Class value dictionary of the base dataset.
    pub fn class_names(&self) -> &'a [String] {
        &self.data.class_names
    }

    /// Label of a view-local row.
    #[inline]
    pub fn label(&self, row: usize) -> Option<usize> {
        self.data.labels[self.base_row(row)]
    }

    /// View-local indices of rows with a known label.
    pub fn labeled_indices(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.label(i).is_some())
            .collect()
    }

    /// Class distribution over the view's labeled rows.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes()];
        for i in 0..self.len() {
            if let Some(l) = self.label(i) {
                counts[l] += 1;
            }
        }
        counts
    }

    /// The majority class index over the view's labeled rows.
    pub fn majority_class(&self) -> usize {
        let counts = self.class_counts();
        counts
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Cell value by view-local row and attribute.
    #[inline]
    pub fn get(&self, row: usize, attr: usize) -> Option<f64> {
        self.data.get(self.base_row(row), self.base_attr(attr))
    }

    /// A borrowed column accessor (carries the view's row selection).
    pub fn col(&self, attr: usize) -> ColumnView<'_> {
        let col = &self.data.columns[self.base_attr(attr)];
        ColumnView {
            values: &col.values,
            validity: &col.validity,
            rows: self.rows.as_deref(),
        }
    }

    /// Copy one view-local row's cells into `buf` (cleared first).
    pub fn fill_row(&self, row: usize, buf: &mut Vec<Option<f64>>) {
        buf.clear();
        let base = self.base_row(row);
        for j in 0..self.n_attributes() {
            let col = &self.data.columns[self.base_attr(j)];
            buf.push(col.validity.get(base).then(|| col.values[base]));
        }
    }

    /// Narrow to a subset of this view's rows (indices are view-local and
    /// may repeat). Borrows `rows` — no copies.
    pub fn select_rows<'b>(&'b self, rows: &'b [usize]) -> InstancesView<'b> {
        let mapped: Cow<'b, [usize]> = match &self.rows {
            None => Cow::Borrowed(rows),
            Some(_) => Cow::Owned(rows.iter().map(|&i| self.base_row(i)).collect()),
        };
        InstancesView {
            data: self.data,
            rows: Some(mapped),
            cols: self.cols.as_deref().map(Cow::Borrowed),
        }
    }

    /// Narrow to a subset of this view's rows with an owned index vector
    /// (for views that must outlive the index buffer, e.g. holdout
    /// splits returned to the caller).
    pub fn select_rows_owned(&self, rows: Vec<usize>) -> InstancesView<'a> {
        let mapped: Vec<usize> = match &self.rows {
            None => rows,
            Some(_) => rows.iter().map(|&i| self.base_row(i)).collect(),
        };
        InstancesView {
            data: self.data,
            rows: Some(Cow::Owned(mapped)),
            cols: self.cols.clone(),
        }
    }

    /// Narrow to a subset of this view's attributes (view-local indices).
    pub fn select_attrs<'b>(&'b self, attrs: &'b [usize]) -> InstancesView<'b> {
        let mapped: Cow<'b, [usize]> = match &self.cols {
            None => Cow::Borrowed(attrs),
            Some(_) => Cow::Owned(attrs.iter().map(|&j| self.base_attr(j)).collect()),
        };
        InstancesView {
            data: self.data,
            rows: self.rows.as_deref().map(Cow::Borrowed),
            cols: Some(mapped),
        }
    }

    /// Attribute mask variant that owns its indices (outlives the buffer).
    pub fn select_attrs_owned(&self, attrs: Vec<usize>) -> InstancesView<'a> {
        let mapped: Vec<usize> = match &self.cols {
            None => attrs,
            Some(_) => attrs.iter().map(|&j| self.base_attr(j)).collect(),
        };
        InstancesView {
            data: self.data,
            rows: self.rows.clone(),
            cols: Some(Cow::Owned(mapped)),
        }
    }

    /// Per-attribute `(min, max)`: cached stats when the view selects all
    /// rows, recomputed over the selection otherwise.
    pub fn numeric_ranges(&self) -> Vec<Option<(f64, f64)>> {
        (0..self.n_attributes())
            .map(|j| self.stats_of(j).range)
            .collect()
    }

    /// Per-attribute mean (cached or recomputed; see
    /// [`InstancesView::numeric_ranges`]).
    pub fn numeric_means(&self) -> Vec<Option<f64>> {
        (0..self.n_attributes())
            .map(|j| self.stats_of(j).mean)
            .collect()
    }

    /// Per-attribute modal category (cached or recomputed).
    pub fn modes(&self) -> Vec<Option<f64>> {
        (0..self.n_attributes())
            .map(|j| self.stats_of(j).mode)
            .collect()
    }

    /// Stats of one view-local attribute: the dataset's cached stats when
    /// no row mask is active, else recomputed over the selected rows.
    pub fn stats_of(&self, attr: usize) -> ColumnStats {
        let base = self.base_attr(attr);
        match &self.rows {
            None => self.data.columns[base].stats.clone(),
            Some(rows) => {
                let col = &self.data.columns[base];
                compute_stats_over(
                    &self.data.attributes[base].kind,
                    &col.values,
                    &col.validity,
                    rows,
                )
            }
        }
    }

    /// Materialize the view into an owned [`Instances`] (used where an
    /// owned dataset is genuinely needed, e.g. handing a reduced dataset
    /// back to a caller).
    pub fn materialize(&self) -> Instances {
        let attrs: Vec<Attribute> = (0..self.n_attributes())
            .map(|j| self.attribute(j).clone())
            .collect();
        let columns = (0..self.n_attributes())
            .map(|j| {
                let base = self.base_attr(j);
                let col = &self.data.columns[base];
                match &self.rows {
                    None => col.clone(),
                    Some(rows) => col.gather(&self.data.attributes[base].kind, rows),
                }
            })
            .collect();
        Instances {
            attributes: attrs,
            labels: (0..self.len()).map(|i| self.label(i)).collect(),
            class_names: self.data.class_names.clone(),
            columns,
            n_rows: self.len(),
        }
    }
}

/// A borrowed single-column accessor carrying an optional row selection.
///
/// `get(i)` addresses the `i`-th selected row; [`ColumnView::dense`]
/// exposes the raw contiguous slices on unmasked columns for tight
/// kernel loops.
#[derive(Debug, Clone, Copy)]
pub struct ColumnView<'a> {
    values: &'a [f64],
    validity: &'a Bitmap,
    rows: Option<&'a [usize]>,
}

impl<'a> ColumnView<'a> {
    /// Number of (selected) rows.
    pub fn len(&self) -> usize {
        match self.rows {
            Some(r) => r.len(),
            None => self.values.len(),
        }
    }

    /// True iff the column view has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cell value by view-local row index.
    #[inline]
    pub fn get(&self, i: usize) -> Option<f64> {
        let r = match self.rows {
            Some(rows) => rows[i],
            None => i,
        };
        self.validity.get(r).then(|| self.values[r])
    }

    /// Presence of a view-local row.
    #[inline]
    pub fn is_present(&self, i: usize) -> bool {
        let r = match self.rows {
            Some(rows) => rows[i],
            None => i,
        };
        self.validity.get(r)
    }

    /// The raw `(values, validity)` slices when no row selection is
    /// active (the fast path for dense kernels); `None` when masked.
    pub fn dense(&self) -> Option<(&'a [f64], &'a Bitmap)> {
        match self.rows {
            None => Some((self.values, self.validity)),
            Some(_) => None,
        }
    }

    /// The active row selection, if any.
    pub fn row_selection(&self) -> Option<&'a [usize]> {
        self.rows
    }

    /// Iterate cells in view order.
    pub fn iter(&self) -> impl Iterator<Item = Option<f64>> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openbi_table::Column;

    fn table() -> Table {
        Table::new(vec![
            Column::from_i64("id", [1, 2, 3, 4]),
            Column::from_f64("x", [0.5, 1.5, 2.5, 3.5]),
            Column::from_opt_str(
                "color",
                [
                    Some("red".to_string()),
                    Some("blue".to_string()),
                    None,
                    Some("red".to_string()),
                ],
            ),
            Column::from_bool("flag", [true, false, true, true]),
            Column::from_str_values("class", ["a", "b", "a", "a"]),
        ])
        .unwrap()
    }

    #[test]
    fn builds_typed_attributes() {
        let inst = Instances::from_table(&table(), Some("class"), &["id"]).unwrap();
        assert_eq!(inst.n_attributes(), 3);
        assert_eq!(inst.attributes[0].kind, AttrKind::Numeric);
        assert_eq!(
            inst.attributes[1].kind,
            AttrKind::Nominal(vec!["red".into(), "blue".into()])
        );
        assert_eq!(inst.attributes[2].kind.cardinality(), 2);
        assert_eq!(inst.class_names, vec!["a", "b"]);
        assert_eq!(inst.len(), 4);
    }

    #[test]
    fn nominal_codes_match_dictionary() {
        let inst = Instances::from_table(&table(), Some("class"), &["id"]).unwrap();
        assert_eq!(inst.get(0, 1), Some(0.0)); // red
        assert_eq!(inst.get(1, 1), Some(1.0)); // blue
        assert_eq!(inst.get(2, 1), None);
        assert_eq!(inst.get(3, 1), Some(0.0)); // red again
        assert_eq!(inst.labels, vec![Some(0), Some(1), Some(0), Some(0)]);
    }

    #[test]
    fn no_target_leaves_unlabeled() {
        let inst = Instances::from_table(&table(), None, &["id"]).unwrap();
        assert_eq!(inst.n_classes(), 0);
        assert!(inst.labels.iter().all(Option::is_none));
        assert!(inst.labeled_indices().is_empty());
    }

    #[test]
    fn missing_target_column_errors() {
        assert!(Instances::from_table(&table(), Some("nope"), &[]).is_err());
    }

    #[test]
    fn all_columns_excluded_errors() {
        let t = Table::new(vec![Column::from_i64("only", [1])]).unwrap();
        assert!(Instances::from_table(&t, None, &["only"]).is_err());
    }

    #[test]
    fn stats_helpers() {
        let inst = Instances::from_table(&table(), Some("class"), &["id"]).unwrap();
        assert_eq!(inst.class_counts(), vec![3, 1]);
        assert_eq!(inst.majority_class(), 0);
        let ranges = inst.numeric_ranges();
        assert_eq!(ranges[0], Some((0.5, 3.5)));
        assert_eq!(ranges[1], None);
        let means = inst.numeric_means();
        assert_eq!(means[0], Some(2.0));
        let modes = inst.modes();
        assert_eq!(modes[1], Some(0.0)); // red is modal
        assert_eq!(modes[0], None);
    }

    #[test]
    fn subset_selects_rows() {
        let inst = Instances::from_table(&table(), Some("class"), &["id"]).unwrap();
        let s = inst.subset(&[3, 0, 3]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.labels, vec![Some(0), Some(0), Some(0)]);
        assert_eq!(s.get(0, 0), Some(3.5));
    }

    #[test]
    fn bitmap_set_get_count() {
        let mut b = Bitmap::new(130, false);
        assert_eq!(b.len(), 130);
        assert_eq!(b.count_ones(), 0);
        assert!(b.none_set());
        b.set(0, true);
        b.set(64, true);
        b.set(129, true);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(63) && !b.get(128));
        assert_eq!(b.count_ones(), 3);
        b.set(64, false);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn bitmap_filled_clears_tail_bits() {
        let b = Bitmap::new(70, true);
        assert!(b.all_set());
        assert_eq!(b.count_ones(), 70);
        // The 6-bit tail word must not carry set bits past `len`,
        // so equal-length bitmaps compare by word slices.
        assert_eq!(b.words()[1], (1u64 << 6) - 1);
        assert_eq!(b, {
            let mut p = Bitmap::with_capacity(70);
            for _ in 0..70 {
                p.push(true);
            }
            p
        });
    }

    #[test]
    fn bitmap_all_missing_and_no_missing_columns() {
        let attr = Attribute {
            name: "x".into(),
            kind: AttrKind::Numeric,
        };
        let full = Instances::from_rows(
            vec![attr.clone()],
            vec![vec![Some(1.0)], vec![Some(2.0)], vec![Some(3.0)]],
            vec![None; 3],
            vec![],
        );
        assert!(full.column_validity(0).all_set());
        assert_eq!(full.column_stats(0).present, 3);
        let empty = Instances::from_rows(
            vec![attr],
            vec![vec![None], vec![None], vec![None]],
            vec![None; 3],
            vec![],
        );
        assert!(empty.column_validity(0).none_set());
        assert_eq!(empty.column_stats(0).present, 0);
        assert_eq!(empty.numeric_ranges()[0], None);
        assert_eq!(empty.numeric_means()[0], None);
        assert!(empty.column_values(0).iter().all(|v| v.is_nan()));
    }

    #[test]
    fn present_nan_stays_distinct_from_missing() {
        let attr = Attribute {
            name: "x".into(),
            kind: AttrKind::Numeric,
        };
        let inst = Instances::from_rows(
            vec![attr],
            vec![vec![Some(f64::NAN)], vec![None]],
            vec![None; 2],
            vec![],
        );
        assert!(inst.get(0, 0).unwrap().is_nan());
        assert_eq!(inst.get(1, 0), None);
        assert_eq!(inst.column_stats(0).present, 1);
        // A present NaN is unequal to itself — old Some(NAN) semantics.
        assert_ne!(inst, inst.clone());
    }

    #[test]
    fn set_recomputes_cached_stats() {
        let inst = Instances::from_table(&table(), Some("class"), &["id"]).unwrap();
        let mut inst = inst;
        assert_eq!(inst.numeric_means()[0], Some(2.0));
        inst.set(0, 0, None);
        assert_eq!(inst.numeric_ranges()[0], Some((1.5, 3.5)));
        assert_eq!(inst.numeric_means()[0], Some(2.5));
        assert_eq!(inst.column_stats(0).present, 3);
        inst.set(0, 0, Some(10.0));
        assert_eq!(inst.numeric_ranges()[0], Some((1.5, 10.0)));
    }

    #[test]
    fn view_masking_matches_materialized_subset() {
        let inst = Instances::from_table(&table(), Some("class"), &["id"]).unwrap();
        let view = inst.view();
        assert_eq!(view.numeric_ranges(), inst.numeric_ranges());
        let rows = [3usize, 0, 3];
        let masked = view.select_rows(&rows);
        let owned = inst.subset(&rows);
        assert_eq!(masked.len(), 3);
        assert_eq!(masked.numeric_ranges(), owned.numeric_ranges());
        assert_eq!(masked.numeric_means(), owned.numeric_means());
        assert_eq!(masked.modes(), owned.modes());
        assert_eq!(masked.class_counts(), owned.class_counts());
        assert_eq!(masked.materialize(), owned);
        // Chained selection composes through to base rows.
        let narrower = masked.select_rows(&[1]);
        assert_eq!(narrower.get(0, 0), Some(0.5));
        assert_eq!(narrower.base_row(0), 0);
    }

    #[test]
    fn view_attr_masking_remaps_indices() {
        let inst = Instances::from_table(&table(), Some("class"), &["id"]).unwrap();
        let view = inst.view();
        let attrs = [2usize, 0];
        let masked = view.select_attrs(&attrs);
        assert_eq!(masked.n_attributes(), 2);
        assert_eq!(masked.attribute(0).name, "flag");
        assert_eq!(masked.attribute(1).name, "x");
        assert_eq!(masked.get(0, 1), Some(0.5));
        // Stats follow the mask.
        assert_eq!(masked.numeric_ranges(), vec![None, Some((0.5, 3.5))]);
        // Chained attr selection maps through the existing mask.
        let narrower = masked.select_attrs(&[1]);
        assert_eq!(narrower.attribute(0).name, "x");
        let m = narrower.materialize();
        assert_eq!(m.n_attributes(), 1);
        assert_eq!(m.attributes[0].name, "x");
    }

    #[test]
    fn masked_view_stats_recompute_in_selection_order() {
        let inst = Instances::from_table(&table(), Some("class"), &["id"]).unwrap();
        let view = inst.view();
        let rows = [2usize, 1];
        let masked = view.select_rows(&rows);
        // color: row 2 is missing, row 1 is "blue" (code 1).
        let stats = masked.stats_of(1);
        assert_eq!(stats.present, 1);
        assert_eq!(stats.mode, Some(1.0));
        // x over rows {2, 1}.
        assert_eq!(masked.stats_of(0).range, Some((1.5, 2.5)));
    }

    #[test]
    fn column_view_dense_and_masked_access() {
        let inst = Instances::from_table(&table(), Some("class"), &["id"]).unwrap();
        let dense = inst.col(1);
        assert!(dense.dense().is_some());
        assert_eq!(dense.len(), 4);
        assert_eq!(dense.get(2), None);
        assert!(!dense.is_present(2));
        let view = inst.view();
        let rows = [2usize, 0];
        let masked_view = view.select_rows(&rows);
        let col = masked_view.col(1);
        assert!(col.dense().is_none());
        assert_eq!(col.len(), 2);
        assert_eq!(col.get(0), None);
        assert_eq!(col.get(1), Some(0.0));
        assert_eq!(col.iter().collect::<Vec<_>>(), vec![None, Some(0.0)]);
    }

    #[test]
    fn from_rows_round_trips_through_row_vec() {
        let inst = Instances::from_table(&table(), Some("class"), &["id"]).unwrap();
        let rows: Vec<Vec<Option<f64>>> = (0..inst.len()).map(|i| inst.row_vec(i)).collect();
        let rebuilt = Instances::from_rows(
            inst.attributes.clone(),
            rows,
            inst.labels.clone(),
            inst.class_names.clone(),
        );
        assert_eq!(rebuilt, inst);
    }
}
