//! # openbi-mining
//!
//! The data-mining substrate of OpenBI, implemented from scratch:
//! preprocessing (discretization, normalization, mean/mode and k-NN
//! imputation), classification (ZeroR, OneR, NaiveBayes, C4.5-style
//! decision trees, kNN, logistic regression, random forests), k-means
//! clustering, Apriori association rules with Berti-Equille-style quality
//! measures, CART regression trees, OLS linear regression, PCA, and
//! seeded stratified evaluation.
//!
//! Every classifier tolerates missing values — mandatory here, because
//! the quality experiments train on deliberately degraded data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod cluster;
pub mod error;
pub mod eval;
pub mod instances;
pub mod matrix;
pub mod preprocess;
pub mod reduce;
pub mod reference;
pub mod regression;
pub mod rules;
pub mod select;

pub use classify::{AlgorithmSpec, Classifier};
pub use error::{MiningError, Result};
pub use eval::{
    cross_validate, cross_validate_with, holdout_split, ConfusionMatrix, CrossValOptions,
    EvalResult,
};
pub use instances::{
    AttrKind, Attribute, Bitmap, ColumnStats, ColumnView, Instances, InstancesView,
};
pub use reduce::Pca;
pub use rules::{Apriori, Rule};
pub use select::{cfs_select, information_gain, information_gain_ranking, project, wrapper_select};
