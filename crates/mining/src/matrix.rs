//! Minimal dense-matrix routines used by PCA and linear models:
//! multiplication, transpose, Gaussian elimination with partial
//! pivoting, and the cyclic Jacobi eigen-decomposition for symmetric
//! matrices.

use crate::error::{MiningError, Result};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from nested rows (must be rectangular and non-empty).
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let r = rows.len();
        if r == 0 {
            return Err(MiningError::InvalidParameter("empty matrix".into()));
        }
        let c = rows[0].len();
        if rows.iter().any(|row| row.len() != c) {
            return Err(MiningError::InvalidParameter("ragged matrix".into()));
        }
        Ok(Matrix {
            rows: r,
            cols: c,
            data: rows.iter().flatten().copied().collect(),
        })
    }

    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(MiningError::InvalidParameter(format!(
                "matmul shape mismatch: {}x{} * {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// One row as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Solve `self * x = b` via Gaussian elimination with partial
    /// pivoting (square systems only).
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.rows;
        if self.cols != n || b.len() != n {
            return Err(MiningError::InvalidParameter(
                "solve requires a square system".into(),
            ));
        }
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // Partial pivot.
            let mut pivot = col;
            for r in (col + 1)..n {
                if a[r * n + col].abs() > a[pivot * n + col].abs() {
                    pivot = r;
                }
            }
            if a[pivot * n + col].abs() < 1e-12 {
                return Err(MiningError::Numeric("singular matrix in solve".into()));
            }
            if pivot != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot * n + j);
                }
                x.swap(col, pivot);
            }
            let d = a[col * n + col];
            for r in (col + 1)..n {
                let f = a[r * n + col] / d;
                if f == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[r * n + j] -= f * a[col * n + j];
                }
                x[r] -= f * x[col];
            }
        }
        for col in (0..n).rev() {
            let mut s = x[col];
            for j in (col + 1)..n {
                s -= a[col * n + j] * x[j];
            }
            x[col] = s / a[col * n + col];
        }
        Ok(x)
    }

    /// Eigen-decomposition of a **symmetric** matrix by the cyclic Jacobi
    /// method. Returns `(eigenvalues, eigenvectors)` sorted by descending
    /// eigenvalue; eigenvectors are the *columns* of the returned matrix.
    pub fn symmetric_eigen(&self, max_sweeps: usize) -> Result<(Vec<f64>, Matrix)> {
        let n = self.rows;
        if self.cols != n {
            return Err(MiningError::InvalidParameter(
                "eigen requires a square matrix".into(),
            ));
        }
        let mut a = self.clone();
        let mut v = Matrix::identity(n);
        for _ in 0..max_sweeps {
            // Off-diagonal Frobenius norm.
            let mut off = 0.0;
            for i in 0..n {
                for j in 0..n {
                    if i != j {
                        off += a[(i, j)] * a[(i, j)];
                    }
                }
            }
            if off.sqrt() < 1e-12 {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    if a[(p, q)].abs() < 1e-15 {
                        continue;
                    }
                    let theta = (a[(q, q)] - a[(p, p)]) / (2.0 * a[(p, q)]);
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    for k in 0..n {
                        let akp = a[(k, p)];
                        let akq = a[(k, q)];
                        a[(k, p)] = c * akp - s * akq;
                        a[(k, q)] = s * akp + c * akq;
                    }
                    for k in 0..n {
                        let apk = a[(p, k)];
                        let aqk = a[(q, k)];
                        a[(p, k)] = c * apk - s * aqk;
                        a[(q, k)] = s * apk + c * aqk;
                    }
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }
        let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (a[(i, i)], i)).collect();
        pairs.sort_by(|x, y| y.0.total_cmp(&x.0));
        let eigenvalues: Vec<f64> = pairs.iter().map(|(val, _)| *val).collect();
        let mut vectors = Matrix::zeros(n, n);
        for (new_col, (_, old_col)) in pairs.iter().enumerate() {
            for r in 0..n {
                vectors[(r, new_col)] = v[(r, *old_col)];
            }
        }
        Ok((eigenvalues, vectors))
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_and_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0], vec![6.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.row(0), &[17.0]);
        assert_eq!(c.row(1), &[39.0]);
        let at = a.transpose();
        assert_eq!(at[(0, 1)], 3.0);
        assert!(a.matmul(&a.matmul(&b).unwrap().transpose()).is_err());
    }

    #[test]
    fn solve_recovers_solution() {
        let a = Matrix::from_rows(&[
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ])
        .unwrap();
        let b = [8.0, -11.0, -3.0];
        let x = a.solve(&b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
        assert!((x[2] + 1.0).abs() < 1e-9);
    }

    #[test]
    fn solve_singular_errors() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(matches!(a.solve(&[1.0, 2.0]), Err(MiningError::Numeric(_))));
    }

    #[test]
    fn eigen_of_diagonal() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let (vals, _) = a.symmetric_eigen(50).unwrap();
        assert!((vals[0] - 3.0).abs() < 1e-9);
        assert!((vals[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn eigen_known_symmetric() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let (vals, vecs) = a.symmetric_eigen(50).unwrap();
        assert!((vals[0] - 3.0).abs() < 1e-9);
        assert!((vals[1] - 1.0).abs() < 1e-9);
        // Leading eigenvector is (1,1)/sqrt(2) up to sign.
        let v0 = (vecs[(0, 0)], vecs[(1, 0)]);
        assert!((v0.0.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-6);
        assert!((v0.0 - v0.1).abs() < 1e-6, "components equal up to sign");
    }

    #[test]
    fn eigen_vectors_reconstruct_matrix() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.25],
            vec![0.5, 0.25, 2.0],
        ])
        .unwrap();
        let (vals, vecs) = a.symmetric_eigen(100).unwrap();
        // Reconstruct A = V D V^T.
        let mut d = Matrix::zeros(3, 3);
        for i in 0..3 {
            d[(i, i)] = vals[i];
        }
        let rec = vecs.matmul(&d).unwrap().matmul(&vecs.transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn from_rows_validates() {
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }
}
