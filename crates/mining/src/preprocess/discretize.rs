//! Discretization of numeric columns into labeled bins — the bridge from
//! numeric data to association-rule mining.

use crate::error::{MiningError, Result};
use openbi_table::{stats, Column, Table};

/// Binning strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinStrategy {
    /// Equal-width bins over `[min, max]`.
    EqualWidth,
    /// Equal-frequency bins (quantile cut points).
    EqualFrequency,
}

/// Replace a numeric column with a string column of bin labels
/// `"{name}=[lo,hi)"`. Nulls stay null.
pub fn discretize_column(
    table: &Table,
    name: &str,
    bins: usize,
    strategy: BinStrategy,
) -> Result<Table> {
    if bins < 2 {
        return Err(MiningError::InvalidParameter(
            "discretization needs at least 2 bins".into(),
        ));
    }
    let col = table.column(name)?;
    if !col.dtype().is_numeric() {
        return Err(MiningError::InvalidParameter(format!(
            "column {name} is not numeric"
        )));
    }
    let values = col.to_f64_vec();
    let mut non_null: Vec<f64> = values.iter().flatten().copied().collect();
    if non_null.is_empty() {
        return Err(MiningError::InvalidDataset(format!(
            "column {name} has no numeric values"
        )));
    }
    non_null.sort_by(f64::total_cmp);
    let lo = non_null[0];
    let hi = non_null[non_null.len() - 1];
    // Cut points between bins (ascending, len = bins - 1).
    let cuts: Vec<f64> = match strategy {
        BinStrategy::EqualWidth => {
            let width = (hi - lo) / bins as f64;
            (1..bins).map(|i| lo + width * i as f64).collect()
        }
        BinStrategy::EqualFrequency => (1..bins)
            .map(|i| stats::quantile_sorted(&non_null, i as f64 / bins as f64))
            .collect(),
    };
    let bin_of = |x: f64| -> usize { cuts.iter().filter(|&&c| x >= c).count() };
    let labels: Vec<Option<String>> = values
        .iter()
        .map(|v| v.map(|x| format!("{name}=b{}", bin_of(x) + 1)))
        .collect();
    let mut out = table.clone();
    out.replace_column(Column::from_opt_str(name.to_string(), labels))?;
    Ok(out)
}

/// Discretize every numeric column of a table (identifiers and the like
/// can be excluded).
pub fn discretize_all(
    table: &Table,
    bins: usize,
    strategy: BinStrategy,
    exclude: &[&str],
) -> Result<Table> {
    let numeric: Vec<String> = table
        .columns()
        .iter()
        .filter(|c| c.dtype().is_numeric() && !exclude.contains(&c.name()))
        .map(|c| c.name().to_string())
        .collect();
    let mut out = table.clone();
    for name in numeric {
        out = discretize_column(&out, &name, bins, strategy)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use openbi_table::Value;

    fn table() -> Table {
        Table::new(vec![Column::from_f64(
            "x",
            (0..100).map(f64::from).collect::<Vec<f64>>(),
        )])
        .unwrap()
    }

    #[test]
    fn equal_width_splits_range() {
        let out = discretize_column(&table(), "x", 4, BinStrategy::EqualWidth).unwrap();
        assert_eq!(out.get("x", 0).unwrap(), Value::Str("x=b1".into()));
        assert_eq!(out.get("x", 30).unwrap(), Value::Str("x=b2".into()));
        assert_eq!(out.get("x", 99).unwrap(), Value::Str("x=b4".into()));
    }

    #[test]
    fn equal_frequency_balances_counts() {
        // Skewed data: equal-width would cram most rows into bin 1.
        let vals: Vec<f64> = (0..100)
            .map(|i| if i < 90 { i as f64 } else { 1000.0 })
            .collect();
        let t = Table::new(vec![Column::from_f64("x", vals)]).unwrap();
        let out = discretize_column(&t, "x", 4, BinStrategy::EqualFrequency).unwrap();
        let mut counts = std::collections::HashMap::new();
        for i in 0..100 {
            *counts
                .entry(out.get("x", i).unwrap().to_string())
                .or_insert(0usize) += 1;
        }
        for (_, c) in counts {
            assert!((20..=30).contains(&c), "bin count {c}");
        }
    }

    #[test]
    fn nulls_stay_null() {
        let t = Table::new(vec![Column::from_opt_f64(
            "x",
            [Some(1.0), None, Some(3.0), Some(5.0)],
        )])
        .unwrap();
        let out = discretize_column(&t, "x", 2, BinStrategy::EqualWidth).unwrap();
        assert!(out.get("x", 1).unwrap().is_null());
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(discretize_column(&table(), "x", 1, BinStrategy::EqualWidth).is_err());
        assert!(discretize_column(&table(), "nope", 2, BinStrategy::EqualWidth).is_err());
        let t = Table::new(vec![Column::from_str_values("s", ["a"])]).unwrap();
        assert!(discretize_column(&t, "s", 2, BinStrategy::EqualWidth).is_err());
    }

    #[test]
    fn discretize_all_skips_excluded() {
        let t = Table::new(vec![
            Column::from_f64("a", [1.0, 2.0, 3.0]),
            Column::from_f64("id", [1.0, 2.0, 3.0]),
            Column::from_str_values("s", ["x", "y", "z"]),
        ])
        .unwrap();
        let out = discretize_all(&t, 2, BinStrategy::EqualWidth, &["id"]).unwrap();
        assert_eq!(
            out.column("a").unwrap().dtype(),
            openbi_table::DataType::Str
        );
        assert_eq!(
            out.column("id").unwrap().dtype(),
            openbi_table::DataType::Float
        );
        assert_eq!(out.column("s").unwrap(), t.column("s").unwrap());
    }
}
