//! Missing-value imputation: mean/mode baseline and k-NN imputation
//! (Troyanskaya et al. \[16\], the paper's reference for missing-value
//! estimation).

use crate::error::Result;
use openbi_table::{stats, Column, DataType, Table, Value};

/// Fill numeric nulls with the column mean and string/bool nulls with the
/// column mode. Columns that are entirely null are left unchanged.
pub fn impute_mean_mode(table: &Table, exclude: &[&str]) -> Result<Table> {
    let mut out = table.clone();
    for col in table.columns() {
        if exclude.contains(&col.name()) || col.null_count() == 0 {
            continue;
        }
        let fill: Option<Value> = match col.dtype() {
            DataType::Float => stats::mean(col).map(Value::Float),
            DataType::Int => stats::mean(col).map(|m| Value::Int(m.round() as i64)),
            DataType::Str | DataType::Bool => {
                let counts = stats::value_counts(col);
                counts
                    .into_iter()
                    .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
                    .map(|(v, _)| match col.dtype() {
                        DataType::Bool => Value::Bool(v == "true"),
                        _ => Value::Str(v),
                    })
            }
        };
        let Some(fill) = fill else { continue };
        for row in 0..col.len() {
            if col.get(row)?.is_null() {
                out.set(col.name().to_string().as_str(), row, fill.clone())?;
            }
        }
    }
    Ok(out)
}

/// k-NN imputation of numeric columns: each missing cell is filled with
/// the mean of that attribute among the k nearest rows (distance over
/// min-max-normalized numeric attributes present in both rows).
/// Non-numeric columns fall back to mode imputation. Quadratic; intended
/// for datasets in the experiment-size range.
///
/// The normalized feature matrix is one flat row-major `Vec<f64>` with a
/// parallel presence mask (no per-row allocations), and neighbor
/// selection partitions the k nearest with `select_nth_unstable_by`
/// using a `(distance, row)` tie-break — the same k rows, in the same
/// order, as the old full sort.
pub fn impute_knn(table: &Table, k: usize, exclude: &[&str]) -> Result<Table> {
    let numeric: Vec<&Column> = table
        .columns()
        .iter()
        .filter(|c| c.dtype().is_numeric() && !exclude.contains(&c.name()))
        .collect();
    let n = table.n_rows();
    let d = numeric.len();
    // Flat row-major normalized matrix + presence mask.
    let mut values = vec![0.0f64; n * d];
    let mut present = vec![false; n * d];
    for (ci, col) in numeric.iter().enumerate() {
        let raw = col.to_f64_vec();
        let vals: Vec<f64> = raw.iter().flatten().copied().collect();
        let (lo, hi) = if vals.is_empty() {
            (0.0, 1.0)
        } else {
            (
                vals.iter().cloned().fold(f64::INFINITY, f64::min),
                vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            )
        };
        let span = if hi > lo { hi - lo } else { 1.0 };
        for (r, v) in raw.iter().enumerate() {
            if let Some(x) = v {
                values[r * d + ci] = (x - lo) / span;
                present[r * d + ci] = true;
            }
        }
    }
    let distance = |a: usize, b: usize| -> Option<f64> {
        let (va, pa) = (&values[a * d..(a + 1) * d], &present[a * d..(a + 1) * d]);
        let (vb, pb) = (&values[b * d..(b + 1) * d], &present[b * d..(b + 1) * d]);
        let mut sum = 0.0;
        let mut dims = 0usize;
        for i in 0..d {
            if pa[i] && pb[i] {
                sum += (va[i] - vb[i]) * (va[i] - vb[i]);
                dims += 1;
            }
        }
        // Require at least one shared dimension.
        (dims > 0).then(|| (sum / dims as f64).sqrt())
    };
    let mut out = table.clone();
    for (ci, col) in numeric.iter().enumerate() {
        if col.null_count() == 0 {
            continue;
        }
        let raw = col.to_f64_vec();
        let is_int = col.dtype() == DataType::Int;
        for row in 0..n {
            if raw[row].is_some() {
                continue;
            }
            // Neighbors with a value in this attribute.
            let mut candidates: Vec<(f64, usize, f64)> = (0..n)
                .filter(|&j| j != row)
                .filter_map(|j| {
                    let v = raw[j]?;
                    let dist = distance(row, j)?;
                    Some((dist, j, v))
                })
                .collect();
            // (distance, row index) is a total order, so partition + sort
            // of the front yields exactly the old stable full sort's
            // first k entries.
            let order = |a: &(f64, usize, f64), b: &(f64, usize, f64)| {
                a.0.total_cmp(&b.0).then(a.1.cmp(&b.1))
            };
            let kk = k.min(candidates.len());
            if kk > 0 && kk < candidates.len() {
                candidates.select_nth_unstable_by(kk - 1, order);
            }
            candidates[..kk].sort_unstable_by(order);
            let neighbors = &candidates[..kk];
            let fill = if neighbors.is_empty() {
                stats::mean(col)
            } else {
                Some(neighbors.iter().map(|(_, _, v)| *v).sum::<f64>() / neighbors.len() as f64)
            };
            if let Some(f) = fill {
                let value = if is_int {
                    Value::Int(f.round() as i64)
                } else {
                    Value::Float(f)
                };
                out.set(numeric[ci].name().to_string().as_str(), row, value)?;
            }
        }
    }
    // Non-numeric nulls: mode.
    impute_mean_mode(&out, exclude)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_mode_fills_all_kinds() {
        let t = Table::new(vec![
            Column::from_opt_f64("x", [Some(1.0), None, Some(3.0)]),
            Column::from_opt_i64("k", [Some(2), None, Some(4)]),
            Column::from_opt_str("s", [Some("a".to_string()), Some("a".to_string()), None]),
        ])
        .unwrap();
        let out = impute_mean_mode(&t, &[]).unwrap();
        assert_eq!(out.total_null_count(), 0);
        assert_eq!(out.get("x", 1).unwrap(), Value::Float(2.0));
        assert_eq!(out.get("k", 1).unwrap(), Value::Int(3));
        assert_eq!(out.get("s", 2).unwrap(), Value::Str("a".into()));
    }

    #[test]
    fn exclusions_left_null() {
        let t = Table::new(vec![Column::from_opt_f64("x", [Some(1.0), None])]).unwrap();
        let out = impute_mean_mode(&t, &["x"]).unwrap();
        assert_eq!(out.total_null_count(), 1);
    }

    #[test]
    fn all_null_column_left_alone() {
        let t = Table::new(vec![Column::from_opt_f64("x", [None, None])]).unwrap();
        let out = impute_mean_mode(&t, &[]).unwrap();
        assert_eq!(out.total_null_count(), 2);
    }

    #[test]
    fn knn_uses_local_structure() {
        // Two clusters: x≈0 has y≈0, x≈10 has y≈100. A missing y at
        // x=10.2 should be imputed near 100, not the global mean (~50).
        let mut xs = Vec::new();
        let mut ys: Vec<Option<f64>> = Vec::new();
        for i in 0..10 {
            xs.push(i as f64 * 0.1);
            ys.push(Some(i as f64 * 0.1));
            xs.push(10.0 + i as f64 * 0.1);
            ys.push(Some(100.0 + i as f64 * 0.1));
        }
        xs.push(10.2);
        ys.push(None);
        let t = Table::new(vec![
            Column::from_f64("x", xs),
            Column::from_opt_f64("y", ys),
        ])
        .unwrap();
        let out = impute_knn(&t, 3, &[]).unwrap();
        let filled = out.get("y", 20).unwrap().as_f64().unwrap();
        assert!(filled > 90.0, "kNN imputed {filled}, expected ≈100");
        // Mean imputation would give ~50.
        let mean_out = impute_mean_mode(&t, &[]).unwrap();
        let mean_filled = mean_out.get("y", 20).unwrap().as_f64().unwrap();
        assert!((mean_filled - 50.0).abs() < 5.0);
    }

    #[test]
    fn knn_falls_back_to_mean_when_isolated() {
        // Row 2 shares no observed dimensions with others except y itself.
        let t = Table::new(vec![
            Column::from_opt_f64("x", [Some(0.0), Some(1.0), None]),
            Column::from_opt_f64("y", [Some(10.0), Some(20.0), None]),
        ])
        .unwrap();
        let out = impute_knn(&t, 2, &[]).unwrap();
        assert_eq!(out.get("y", 2).unwrap(), Value::Float(15.0));
    }

    #[test]
    fn knn_preserves_integer_type() {
        let t = Table::new(vec![
            Column::from_f64("x", [0.0, 0.1, 0.2, 5.0]),
            Column::from_opt_i64("k", [Some(10), Some(10), None, Some(99)]),
        ])
        .unwrap();
        let out = impute_knn(&t, 2, &[]).unwrap();
        assert_eq!(out.column("k").unwrap().dtype(), DataType::Int);
        assert_eq!(out.get("k", 2).unwrap(), Value::Int(10));
    }
}
