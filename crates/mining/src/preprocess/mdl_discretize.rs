//! Supervised discretization: recursive entropy-based splitting with the
//! Fayyad–Irani MDL stopping criterion — the standard companion of
//! C4.5-style learners and the principled alternative to the
//! equal-width/equal-frequency bins in [`super::discretize`].

use crate::error::{MiningError, Result};
use openbi_table::{Column, Table};

fn entropy(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total as f64;
            -p * p.log2()
        })
        .sum()
}

fn class_counts(labels: &[usize], n_classes: usize) -> Vec<usize> {
    let mut counts = vec![0usize; n_classes];
    for &l in labels {
        counts[l] += 1;
    }
    counts
}

fn distinct_classes(counts: &[usize]) -> usize {
    counts.iter().filter(|&&c| c > 0).count()
}

/// Recursively find MDL-accepted cut points on `(value, class)` pairs
/// sorted by value. Appends accepted cuts to `cuts`.
fn split(pairs: &[(f64, usize)], n_classes: usize, cuts: &mut Vec<f64>, depth: usize) {
    let n = pairs.len();
    if n < 4 || depth > 16 {
        return;
    }
    let labels: Vec<usize> = pairs.iter().map(|p| p.1).collect();
    let total_counts = class_counts(&labels, n_classes);
    let parent_entropy = entropy(&total_counts);
    if parent_entropy == 0.0 {
        return;
    }
    // Best boundary by information gain (only between class changes at
    // distinct values — Fayyad's theorem says optimal cuts lie there).
    let mut best: Option<(usize, f64, f64)> = None; // (idx, cut, gain)
    let mut left_counts = vec![0usize; n_classes];
    for i in 0..n - 1 {
        left_counts[pairs[i].1] += 1;
        if pairs[i].0 == pairs[i + 1].0 {
            continue;
        }
        let right_counts: Vec<usize> = total_counts
            .iter()
            .zip(&left_counts)
            .map(|(t, l)| t - l)
            .collect();
        let nl = (i + 1) as f64;
        let nr = (n - i - 1) as f64;
        let cond =
            (nl / n as f64) * entropy(&left_counts) + (nr / n as f64) * entropy(&right_counts);
        let gain = parent_entropy - cond;
        if best.map(|(_, _, g)| gain > g).unwrap_or(gain > 0.0) {
            best = Some((i, (pairs[i].0 + pairs[i + 1].0) / 2.0, gain));
        }
    }
    let Some((idx, cut, gain)) = best else { return };
    // MDL criterion (Fayyad & Irani 1993):
    // gain > [log2(n−1) + log2(3^k − 2) − (k·H − k1·H1 − k2·H2)] / n
    let left: Vec<(f64, usize)> = pairs[..=idx].to_vec();
    let right: Vec<(f64, usize)> = pairs[idx + 1..].to_vec();
    let lc = class_counts(&left.iter().map(|p| p.1).collect::<Vec<_>>(), n_classes);
    let rc = class_counts(&right.iter().map(|p| p.1).collect::<Vec<_>>(), n_classes);
    let k = distinct_classes(&total_counts) as f64;
    let k1 = distinct_classes(&lc) as f64;
    let k2 = distinct_classes(&rc) as f64;
    let delta =
        (3f64.powf(k) - 2.0).log2() - (k * parent_entropy - k1 * entropy(&lc) - k2 * entropy(&rc));
    let threshold = (((n - 1) as f64).log2() + delta) / n as f64;
    if gain <= threshold {
        return;
    }
    cuts.push(cut);
    split(&left, n_classes, cuts, depth + 1);
    split(&right, n_classes, cuts, depth + 1);
}

/// Compute the MDL-accepted cut points of one numeric column against a
/// class column. Returns cuts in ascending order (possibly empty: the
/// attribute carries no MDL-justified signal).
pub fn mdl_cut_points(table: &Table, column: &str, target: &str) -> Result<Vec<f64>> {
    let col = table.column(column)?;
    if !col.dtype().is_numeric() {
        return Err(MiningError::InvalidParameter(format!(
            "column {column} is not numeric"
        )));
    }
    let cls = table.column(target)?;
    // Build the class dictionary.
    let mut dict: Vec<String> = Vec::new();
    let mut pairs: Vec<(f64, usize)> = Vec::new();
    for i in 0..table.n_rows() {
        let (Some(v), label) = (col.get(i)?.as_f64(), cls.get(i)?) else {
            continue;
        };
        if label.is_null() {
            continue;
        }
        let s = label.to_string();
        let id = match dict.iter().position(|d| *d == s) {
            Some(p) => p,
            None => {
                dict.push(s);
                dict.len() - 1
            }
        };
        pairs.push((v, id));
    }
    if dict.len() < 2 {
        return Err(MiningError::InvalidDataset(
            "MDL discretization needs >= 2 classes".into(),
        ));
    }
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut cuts = Vec::new();
    split(&pairs, dict.len(), &mut cuts, 0);
    cuts.sort_by(f64::total_cmp);
    Ok(cuts)
}

/// Replace a numeric column with MDL-supervised bin labels
/// `"{name}=b{i}"`. Columns with no accepted cut become a single bucket
/// `"{name}=b1"` (documented behavior: the attribute is uninformative).
pub fn mdl_discretize_column(table: &Table, column: &str, target: &str) -> Result<Table> {
    let cuts = mdl_cut_points(table, column, target)?;
    let col = table.column(column)?;
    let labels: Vec<Option<String>> = col
        .to_f64_vec()
        .iter()
        .map(|v| {
            v.map(|x| {
                let bin = cuts.iter().filter(|&&c| x >= c).count();
                format!("{column}=b{}", bin + 1)
            })
        })
        .collect();
    let mut out = table.clone();
    out.replace_column(Column::from_opt_str(column.to_string(), labels))?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use openbi_table::Value;

    /// x < 10 → "a", x in [10,20) → "b", x >= 20 → "a" again.
    fn three_region_table() -> Table {
        let xs: Vec<f64> = (0..90).map(|i| i as f64 / 3.0).collect();
        let labels: Vec<&str> = xs
            .iter()
            .map(|&x| if (10.0..20.0).contains(&x) { "b" } else { "a" })
            .collect();
        Table::new(vec![
            Column::from_f64("x", xs),
            Column::from_str_values("class", labels),
        ])
        .unwrap()
    }

    #[test]
    fn finds_both_true_boundaries() {
        let cuts = mdl_cut_points(&three_region_table(), "x", "class").unwrap();
        assert_eq!(cuts.len(), 2, "cuts {cuts:?}");
        assert!((cuts[0] - 10.0).abs() < 0.5, "first cut {}", cuts[0]);
        assert!((cuts[1] - 20.0).abs() < 0.5, "second cut {}", cuts[1]);
    }

    #[test]
    fn uninformative_attribute_gets_no_cuts() {
        // Class alternates independently of x: no MDL-justified cut.
        let xs: Vec<f64> = (0..80).map(f64::from).collect();
        let labels: Vec<&str> = (0..80)
            .map(|i| if i % 2 == 0 { "a" } else { "b" })
            .collect();
        let t = Table::new(vec![
            Column::from_f64("x", xs),
            Column::from_str_values("class", labels),
        ])
        .unwrap();
        // Alternating with x means every value change is a class change;
        // gain per cut is tiny and MDL must reject it.
        let cuts = mdl_cut_points(&t, "x", "class").unwrap();
        assert!(cuts.len() <= 1, "spurious cuts {cuts:?}");
    }

    #[test]
    fn discretized_column_has_bin_labels() {
        let out = mdl_discretize_column(&three_region_table(), "x", "class").unwrap();
        assert_eq!(out.get("x", 0).unwrap(), Value::Str("x=b1".into()));
        assert_eq!(out.get("x", 45).unwrap(), Value::Str("x=b2".into()));
        assert_eq!(out.get("x", 89).unwrap(), Value::Str("x=b3".into()));
    }

    #[test]
    fn nulls_and_single_class_handled() {
        let t = Table::new(vec![
            Column::from_opt_f64("x", [Some(1.0), None, Some(3.0)]),
            Column::from_str_values("class", ["a", "a", "a"]),
        ])
        .unwrap();
        assert!(mdl_cut_points(&t, "x", "class").is_err());
    }

    #[test]
    fn non_numeric_rejected() {
        let t = Table::new(vec![
            Column::from_str_values("s", ["p", "q"]),
            Column::from_str_values("class", ["a", "b"]),
        ])
        .unwrap();
        assert!(mdl_cut_points(&t, "s", "class").is_err());
    }

    #[test]
    fn mdl_beats_equal_width_on_skewed_boundaries() {
        // Boundary at x = 2 inside a long tail: equal-width with 3 bins
        // puts the cut far from 2; MDL nails it.
        let xs: Vec<f64> = (0..120).map(|i| (i as f64 / 4.0).powi(2)).collect();
        let labels: Vec<&str> = xs
            .iter()
            .map(|&x| if x < 2.0 { "lo" } else { "hi" })
            .collect();
        let t = Table::new(vec![
            Column::from_f64("x", xs),
            Column::from_str_values("class", labels),
        ])
        .unwrap();
        let cuts = mdl_cut_points(&t, "x", "class").unwrap();
        assert_eq!(cuts.len(), 1);
        assert!((cuts[0] - 2.0).abs() < 0.5, "cut at {}", cuts[0]);
    }
}
