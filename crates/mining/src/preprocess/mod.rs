//! Preprocessing: the paper's emphasized phase of KDD ("it requires
//! significantly more effort than the data mining task itself" \[9\]).

pub mod discretize;
pub mod impute;
pub mod mdl_discretize;
pub mod normalize;

pub use discretize::{discretize_all, discretize_column, BinStrategy};
pub use impute::{impute_knn, impute_mean_mode};
pub use mdl_discretize::{mdl_cut_points, mdl_discretize_column};
pub use normalize::{min_max_scale, z_score};
