//! Numeric normalization: min-max scaling and z-scoring of table
//! columns.

use crate::error::Result;
use openbi_table::{stats, Column, Table};

/// Min-max scale the named numeric columns into `[0,1]` (constant
/// columns map to 0.5). Nulls stay null.
pub fn min_max_scale(table: &Table, columns: &[&str]) -> Result<Table> {
    let mut out = table.clone();
    for name in columns {
        let col = table.column(name)?;
        let values = col.to_f64_vec();
        let non_null: Vec<f64> = values.iter().flatten().copied().collect();
        if non_null.is_empty() {
            continue;
        }
        let lo = non_null.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = non_null.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let scaled: Vec<Option<f64>> = values
            .iter()
            .map(|v| v.map(|x| if hi > lo { (x - lo) / (hi - lo) } else { 0.5 }))
            .collect();
        out.replace_column(Column::from_opt_f64(name.to_string(), scaled))?;
    }
    Ok(out)
}

/// Z-score the named numeric columns (constant columns map to 0).
pub fn z_score(table: &Table, columns: &[&str]) -> Result<Table> {
    let mut out = table.clone();
    for name in columns {
        let col = table.column(name)?;
        let Some(mean) = stats::mean(col) else {
            continue;
        };
        let std = stats::std_dev(col).unwrap_or(0.0);
        let scaled: Vec<Option<f64>> = col
            .to_f64_vec()
            .iter()
            .map(|v| v.map(|x| if std > 0.0 { (x - mean) / std } else { 0.0 }))
            .collect();
        out.replace_column(Column::from_opt_f64(name.to_string(), scaled))?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use openbi_table::Value;

    fn table() -> Table {
        Table::new(vec![
            Column::from_f64("x", [0.0, 5.0, 10.0]),
            Column::from_opt_f64("y", [Some(2.0), None, Some(4.0)]),
            Column::from_f64("c", [7.0, 7.0, 7.0]),
        ])
        .unwrap()
    }

    #[test]
    fn min_max_maps_to_unit_interval() {
        let out = min_max_scale(&table(), &["x"]).unwrap();
        assert_eq!(out.get("x", 0).unwrap(), Value::Float(0.0));
        assert_eq!(out.get("x", 1).unwrap(), Value::Float(0.5));
        assert_eq!(out.get("x", 2).unwrap(), Value::Float(1.0));
    }

    #[test]
    fn nulls_preserved() {
        let out = min_max_scale(&table(), &["y"]).unwrap();
        assert!(out.get("y", 1).unwrap().is_null());
        assert_eq!(out.get("y", 0).unwrap(), Value::Float(0.0));
    }

    #[test]
    fn constant_column_maps_to_center() {
        let out = min_max_scale(&table(), &["c"]).unwrap();
        assert_eq!(out.get("c", 0).unwrap(), Value::Float(0.5));
        let out = z_score(&table(), &["c"]).unwrap();
        assert_eq!(out.get("c", 0).unwrap(), Value::Float(0.0));
    }

    #[test]
    fn z_score_standardizes() {
        let out = z_score(&table(), &["x"]).unwrap();
        let vals: Vec<f64> = out
            .column("x")
            .unwrap()
            .to_f64_vec()
            .into_iter()
            .flatten()
            .collect();
        let mean = vals.iter().sum::<f64>() / 3.0;
        assert!(mean.abs() < 1e-12);
        assert!((vals[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn missing_column_errors() {
        assert!(min_max_scale(&table(), &["nope"]).is_err());
        assert!(z_score(&table(), &["nope"]).is_err());
    }

    #[test]
    fn untouched_columns_survive() {
        let out = min_max_scale(&table(), &["x"]).unwrap();
        assert_eq!(out.column("c").unwrap(), table().column("c").unwrap());
    }
}
