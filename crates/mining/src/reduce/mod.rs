//! Dimensionality reduction.

pub mod pca;

pub use pca::Pca;
