//! Principal Component Analysis via Jacobi eigen-decomposition of the
//! covariance matrix.
//!
//! The paper (§1) notes that dimensionality reduction like PCA loses
//! information ("data structure cannot be considered") — experiment E9
//! quantifies that trade-off, and this is the implementation it uses.
//!
//! Both the covariance estimate and the projection work on centered
//! dense columns (missing → 0 after mean-centering), walking pairs of
//! contiguous column slices; each accumulator still sees its additions
//! in row order, so results are bit-identical to the row-major code.

use crate::error::{MiningError, Result};
use crate::instances::{AttrKind, Attribute, Instances};
use crate::matrix::Matrix;

/// A fitted PCA transform.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Component count retained.
    pub components: usize,
    /// Attribute indices of the numeric attributes used.
    attr_indices: Vec<usize>,
    /// Per-attribute means (centering).
    means: Vec<f64>,
    /// Projection matrix (d × k, columns = principal axes).
    projection: Matrix,
    /// All eigenvalues, descending.
    eigenvalues: Vec<f64>,
}

/// Centered dense copies of the numeric attribute columns: missing
/// values become 0 (i.e. the mean, after centering).
fn centered_columns(data: &Instances, attr_indices: &[usize], means: &[f64]) -> Vec<Vec<f64>> {
    attr_indices
        .iter()
        .zip(means)
        .map(|(&a, &m)| {
            let values = data.column_values(a);
            let validity = data.column_validity(a);
            (0..data.len())
                .map(|r| if validity.get(r) { values[r] - m } else { 0.0 })
                .collect()
        })
        .collect()
}

impl Pca {
    /// Fit a PCA with `components` axes on the numeric attributes.
    /// Missing values are mean-imputed for the covariance estimate.
    pub fn fit(data: &Instances, components: usize) -> Result<Pca> {
        let attr_indices: Vec<usize> = data
            .attributes
            .iter()
            .enumerate()
            .filter(|(_, a)| a.kind == AttrKind::Numeric)
            .map(|(i, _)| i)
            .collect();
        let d = attr_indices.len();
        if d == 0 {
            return Err(MiningError::InvalidDataset(
                "PCA needs numeric attributes".into(),
            ));
        }
        if components == 0 || components > d {
            return Err(MiningError::InvalidParameter(format!(
                "components must be in 1..={d}"
            )));
        }
        let n = data.len();
        if n < 2 {
            return Err(MiningError::InvalidDataset("PCA needs >= 2 rows".into()));
        }
        let all_means = data.numeric_means();
        let means: Vec<f64> = attr_indices
            .iter()
            .map(|&a| all_means[a].unwrap_or(0.0))
            .collect();
        // Covariance matrix: each upper-triangle cell is a dot product
        // of two centered columns, accumulated in row order.
        let xc = centered_columns(data, &attr_indices, &means);
        let mut cov = Matrix::zeros(d, d);
        for i in 0..d {
            for j in i..d {
                let mut s = 0.0;
                for (xi, xj) in xc[i].iter().zip(&xc[j]) {
                    s += xi * xj;
                }
                cov[(i, j)] = s;
            }
        }
        for i in 0..d {
            for j in i..d {
                let v = cov[(i, j)] / (n - 1) as f64;
                cov[(i, j)] = v;
                cov[(j, i)] = v;
            }
        }
        let (eigenvalues, vectors) = cov.symmetric_eigen(100)?;
        let mut projection = Matrix::zeros(d, components);
        for i in 0..d {
            for j in 0..components {
                projection[(i, j)] = vectors[(i, j)];
            }
        }
        Ok(Pca {
            components,
            attr_indices,
            means,
            projection,
            eigenvalues,
        })
    }

    /// Fraction of total variance captured by the retained components.
    pub fn explained_variance_ratio(&self) -> f64 {
        let total: f64 = self.eigenvalues.iter().map(|v| v.max(0.0)).sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.eigenvalues
            .iter()
            .take(self.components)
            .map(|v| v.max(0.0))
            .sum::<f64>()
            / total
    }

    /// All eigenvalues, descending.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Project a dataset onto the retained components. Nominal attributes
    /// are dropped; the class labels are carried through, so the output
    /// remains a classification dataset with attributes `pc1..pck`.
    pub fn transform(&self, data: &Instances) -> Result<Instances> {
        let attributes: Vec<Attribute> = (0..self.components)
            .map(|i| Attribute {
                name: format!("pc{}", i + 1),
                kind: AttrKind::Numeric,
            })
            .collect();
        let n = data.len();
        let xc = centered_columns(data, &self.attr_indices, &self.means);
        // One output column per component; every cell accumulates over
        // source columns in ascending order (the old per-row dot
        // product's order), one contiguous column at a time.
        let mut out = vec![vec![0.0f64; n]; self.components];
        for (i, col) in xc.iter().enumerate() {
            for (j, out_col) in out.iter_mut().enumerate() {
                let p = self.projection[(i, j)];
                for (o, xi) in out_col.iter_mut().zip(col) {
                    *o += xi * p;
                }
            }
        }
        let rows: Vec<Vec<Option<f64>>> = (0..n)
            .map(|r| out.iter().map(|c| Some(c[r])).collect())
            .collect();
        Ok(Instances::from_rows(
            attributes,
            rows,
            data.labels.clone(),
            data.class_names.clone(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn correlated_data() -> Instances {
        // Points along the line y ≈ 2x with small orthogonal spread.
        let mut rows = Vec::new();
        for i in 0..50 {
            let t = i as f64 * 0.1;
            let wiggle = if i % 2 == 0 { 0.05 } else { -0.05 };
            rows.push(vec![Some(t + wiggle), Some(2.0 * t - wiggle)]);
        }
        let labels = vec![None; rows.len()];
        Instances::from_rows(
            vec![
                Attribute {
                    name: "x".into(),
                    kind: AttrKind::Numeric,
                },
                Attribute {
                    name: "y".into(),
                    kind: AttrKind::Numeric,
                },
            ],
            rows,
            labels,
            vec![],
        )
    }

    #[test]
    fn first_component_captures_most_variance() {
        let pca = Pca::fit(&correlated_data(), 1).unwrap();
        assert!(
            pca.explained_variance_ratio() > 0.99,
            "explained {}",
            pca.explained_variance_ratio()
        );
    }

    #[test]
    fn full_rank_explains_everything() {
        let pca = Pca::fit(&correlated_data(), 2).unwrap();
        assert!((pca.explained_variance_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn transform_produces_pc_attributes() {
        let d = correlated_data();
        let pca = Pca::fit(&d, 1).unwrap();
        let t = pca.transform(&d).unwrap();
        assert_eq!(t.n_attributes(), 1);
        assert_eq!(t.attributes[0].name, "pc1");
        assert_eq!(t.len(), d.len());
    }

    #[test]
    fn projected_variance_matches_eigenvalue() {
        let d = correlated_data();
        let pca = Pca::fit(&d, 1).unwrap();
        let t = pca.transform(&d).unwrap();
        let vals: Vec<f64> = (0..t.len()).map(|r| t.get(r, 0).unwrap()).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let var =
            vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (vals.len() - 1) as f64;
        assert!((var - pca.eigenvalues()[0]).abs() < 1e-6);
    }

    #[test]
    fn labels_carried_through() {
        let mut d = correlated_data();
        d.class_names = vec!["a".into(), "b".into()];
        d.labels = (0..d.len()).map(|i| Some(i % 2)).collect();
        let pca = Pca::fit(&d, 1).unwrap();
        let t = pca.transform(&d).unwrap();
        assert_eq!(t.labels, d.labels);
        assert_eq!(t.class_names, d.class_names);
    }

    #[test]
    fn invalid_component_counts_rejected() {
        let d = correlated_data();
        assert!(Pca::fit(&d, 0).is_err());
        assert!(Pca::fit(&d, 3).is_err());
    }

    #[test]
    fn missing_values_mean_imputed() {
        let mut d = correlated_data();
        d.set(0, 0, None);
        let pca = Pca::fit(&d, 1).unwrap();
        let t = pca.transform(&d).unwrap();
        assert!(t.get(0, 0).unwrap().is_finite());
    }
}
