//! The pre-rewrite cross-validation loop: stratified folds realized by
//! **cloning** `subset()` per fold — exactly what the zero-copy view
//! path replaced. Fold assignment is byte-identical to the live
//! implementation (same RNG, same shuffle, same round-robin deal), so
//! any divergence between this and the live `cross_validate` is a
//! kernel difference, not a fold difference.

use super::build;
use super::instances::Instances;
use crate::classify::AlgorithmSpec;
use crate::error::{MiningError, Result};
use crate::eval::{ConfusionMatrix, EvalResult};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;

/// Stratified fold assignment (pre-rewrite copy).
pub fn stratified_folds(data: &Instances, folds: usize, seed: u64) -> Result<Vec<Vec<usize>>> {
    if folds < 2 {
        return Err(MiningError::InvalidParameter(
            "cross-validation needs at least 2 folds".into(),
        ));
    }
    let labeled = data.labeled_indices();
    if labeled.len() < folds {
        return Err(MiningError::InvalidDataset(format!(
            "{} labeled rows cannot fill {} folds",
            labeled.len(),
            folds
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); data.n_classes().max(1)];
    for &i in &labeled {
        per_class[data.labels[i].expect("labeled")].push(i);
    }
    let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); folds];
    let mut next = 0usize;
    for class_rows in &mut per_class {
        class_rows.shuffle(&mut rng);
        for &row in class_rows.iter() {
            assignment[next % folds].push(row);
            next += 1;
        }
    }
    Ok(assignment)
}

struct FoldOutcome {
    actual: Vec<usize>,
    predicted: Vec<usize>,
    accuracy: f64,
    train_ms: f64,
    predict_ms: f64,
    model_size: f64,
}

fn run_fold(
    data: &Instances,
    spec: &AlgorithmSpec,
    fold_rows: &[Vec<usize>],
    f: usize,
    train_buf: &mut Vec<usize>,
) -> Result<FoldOutcome> {
    train_buf.clear();
    for (i, rows) in fold_rows.iter().enumerate() {
        if i != f {
            train_buf.extend_from_slice(rows);
        }
    }
    let test_rows = &fold_rows[f];
    let train = data.subset(train_buf);
    let test = data.subset(test_rows);
    let mut model = build(spec);
    let t0 = Instant::now();
    model.fit(&train)?;
    let train_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let predicted = model.predict(&test)?;
    let predict_ms = t1.elapsed().as_secs_f64() * 1e3;
    let mut actual = Vec::with_capacity(test_rows.len());
    let mut correct = 0usize;
    for (p, l) in predicted.iter().zip(&test.labels) {
        let l = l.expect("stratified folds hold labeled rows");
        actual.push(l);
        if *p == l {
            correct += 1;
        }
    }
    Ok(FoldOutcome {
        accuracy: correct as f64 / test.len().max(1) as f64,
        actual,
        predicted,
        train_ms,
        predict_ms,
        model_size: model.model_size() as f64,
    })
}

/// Sequential stratified k-fold CV over the reference kernels; returns
/// the same [`EvalResult`] type as the live implementation so results
/// compare field-for-field.
pub fn cross_validate(
    data: &Instances,
    spec: &AlgorithmSpec,
    folds: usize,
    seed: u64,
) -> Result<EvalResult> {
    let fold_rows = stratified_folds(data, folds, seed)?;
    let n_labeled: usize = fold_rows.iter().map(Vec::len).sum();
    let mut train_buf = Vec::with_capacity(n_labeled);
    let mut actual = Vec::with_capacity(n_labeled);
    let mut predicted = Vec::with_capacity(n_labeled);
    let mut fold_accuracies = Vec::with_capacity(folds);
    let mut train_ms = 0.0;
    let mut predict_ms = 0.0;
    let mut model_size_sum = 0.0;
    for f in 0..folds {
        let o = run_fold(data, spec, &fold_rows, f, &mut train_buf)?;
        actual.extend(o.actual);
        predicted.extend(o.predicted);
        fold_accuracies.push(o.accuracy);
        train_ms += o.train_ms;
        predict_ms += o.predict_ms;
        model_size_sum += o.model_size;
    }
    Ok(EvalResult {
        algorithm: spec.to_string(),
        confusion: ConfusionMatrix::from_predictions(&data.class_names, &actual, &predicted)?,
        fold_accuracies,
        train_ms,
        predict_ms,
        model_size: model_size_sum / folds as f64,
    })
}
