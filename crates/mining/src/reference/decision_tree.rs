//! A C4.5-style decision tree: gain-ratio splits, binary thresholds on
//! numeric attributes, multiway splits on nominal attributes, missing
//! values routed to the most populated branch.

use super::instances::{AttrKind, Instances};
use super::Classifier;
use crate::error::{MiningError, Result};

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        class: usize,
    },
    NumericSplit {
        attribute: usize,
        threshold: f64,
        /// Branch for missing values (index into `children`: 0 = left).
        missing_to: usize,
        children: Vec<Node>, // exactly [left (<=), right (>)]
    },
    NominalSplit {
        attribute: usize,
        missing_to: usize,
        /// One child per category (same order as the dictionary).
        children: Vec<Node>,
        /// Fallback class for unseen categories.
        default: usize,
    },
}

impl Node {
    fn size(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::NumericSplit { children, .. } | Node::NominalSplit { children, .. } => {
                1 + children.iter().map(Node::size).sum::<usize>()
            }
        }
    }

    fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::NumericSplit { children, .. } | Node::NominalSplit { children, .. } => {
                1 + children.iter().map(Node::depth).max().unwrap_or(0)
            }
        }
    }
}

/// The decision-tree classifier.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    /// Maximum depth of the tree.
    pub max_depth: usize,
    /// Minimum number of rows in a leaf.
    pub min_leaf: usize,
    /// Restrict split search to these attribute indices (used by the
    /// random forest for feature subsampling). `None` = all attributes.
    pub feature_subset: Option<Vec<usize>>,
    root: Option<Node>,
}

fn entropy(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total as f64;
            -p * p.log2()
        })
        .sum()
}

struct Split {
    attribute: usize,
    /// `Some(threshold)` for numeric, `None` for nominal.
    threshold: Option<f64>,
    gain_ratio: f64,
    /// Row partitions (numeric: [left, right]; nominal: per category).
    partitions: Vec<Vec<usize>>,
    missing_rows: Vec<usize>,
}

impl DecisionTree {
    /// Create an untrained tree.
    pub fn new(max_depth: usize, min_leaf: usize) -> Self {
        DecisionTree {
            max_depth: max_depth.max(1),
            min_leaf: min_leaf.max(1),
            feature_subset: None,
            root: None,
        }
    }

    /// Number of nodes in the fitted tree.
    pub fn node_count(&self) -> usize {
        self.root.as_ref().map(Node::size).unwrap_or(0)
    }

    /// Depth of the fitted tree.
    pub fn depth(&self) -> usize {
        self.root.as_ref().map(Node::depth).unwrap_or(0)
    }

    fn class_counts(data: &Instances, rows: &[usize]) -> Vec<usize> {
        let mut counts = vec![0usize; data.n_classes()];
        for &i in rows {
            if let Some(l) = data.labels[i] {
                counts[l] += 1;
            }
        }
        counts
    }

    fn majority(counts: &[usize], fallback: usize) -> usize {
        counts
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .filter(|(_, c)| **c > 0)
            .map(|(i, _)| i)
            .unwrap_or(fallback)
    }

    fn best_split(&self, data: &Instances, rows: &[usize], parent_entropy: f64) -> Option<Split> {
        let n = rows.len() as f64;
        let mut best: Option<Split> = None;
        let attrs: Vec<usize> = match &self.feature_subset {
            Some(subset) => subset.clone(),
            None => (0..data.n_attributes()).collect(),
        };
        for a in attrs {
            let missing_rows: Vec<usize> = rows
                .iter()
                .copied()
                .filter(|&i| data.rows[i][a].is_none())
                .collect();
            let present: Vec<usize> = rows
                .iter()
                .copied()
                .filter(|&i| data.rows[i][a].is_some())
                .collect();
            if present.len() < 2 * self.min_leaf {
                continue;
            }
            let present_frac = present.len() as f64 / n;
            match &data.attributes[a].kind {
                AttrKind::Numeric => {
                    // Candidate thresholds: midpoints between distinct
                    // sorted values (capped for speed).
                    let mut vals: Vec<(f64, usize)> = present
                        .iter()
                        .map(|&i| (data.rows[i][a].expect("present"), i))
                        .collect();
                    vals.sort_by(|x, y| x.0.total_cmp(&y.0));
                    // Prefix class counts for O(1) split evaluation.
                    let n_classes = data.n_classes();
                    let total_counts = Self::class_counts(data, &present);
                    let mut left_counts = vec![0usize; n_classes];
                    let mut i = 0;
                    while i + 1 < vals.len() {
                        if let Some(l) = data.labels[vals[i].1] {
                            left_counts[l] += 1;
                        }
                        let (v, _) = vals[i];
                        let (next_v, _) = vals[i + 1];
                        i += 1;
                        if v == next_v {
                            continue;
                        }
                        let left_n = i;
                        let right_n = vals.len() - i;
                        if left_n < self.min_leaf || right_n < self.min_leaf {
                            continue;
                        }
                        let right_counts: Vec<usize> = total_counts
                            .iter()
                            .zip(&left_counts)
                            .map(|(t, l)| t - l)
                            .collect();
                        let child_entropy = (left_n as f64 / present.len() as f64)
                            * entropy(&left_counts)
                            + (right_n as f64 / present.len() as f64) * entropy(&right_counts);
                        let gain = present_frac * (parent_entropy - child_entropy);
                        if gain <= 1e-12 {
                            continue;
                        }
                        let p_l = left_n as f64 / present.len() as f64;
                        let split_info = -p_l * p_l.log2() - (1.0 - p_l) * (1.0 - p_l).log2();
                        let gain_ratio = gain / split_info.max(1e-9);
                        if best
                            .as_ref()
                            .map(|b| gain_ratio > b.gain_ratio)
                            .unwrap_or(true)
                        {
                            let threshold = (v + next_v) / 2.0;
                            let left: Vec<usize> = present
                                .iter()
                                .copied()
                                .filter(|&r| data.rows[r][a].expect("present") <= threshold)
                                .collect();
                            let right: Vec<usize> = present
                                .iter()
                                .copied()
                                .filter(|&r| data.rows[r][a].expect("present") > threshold)
                                .collect();
                            best = Some(Split {
                                attribute: a,
                                threshold: Some(threshold),
                                gain_ratio,
                                partitions: vec![left, right],
                                missing_rows: missing_rows.clone(),
                            });
                        }
                    }
                }
                AttrKind::Nominal(dict) => {
                    if dict.len() < 2 {
                        continue;
                    }
                    let mut partitions: Vec<Vec<usize>> = vec![Vec::new(); dict.len()];
                    for &i in &present {
                        let idx = data.rows[i][a].expect("present") as usize;
                        if idx < dict.len() {
                            partitions[idx].push(i);
                        }
                    }
                    let non_empty = partitions.iter().filter(|p| !p.is_empty()).count();
                    if non_empty < 2 {
                        continue;
                    }
                    let mut child_entropy = 0.0;
                    let mut split_info = 0.0;
                    for p in &partitions {
                        if p.is_empty() {
                            continue;
                        }
                        let frac = p.len() as f64 / present.len() as f64;
                        child_entropy += frac * entropy(&Self::class_counts(data, p));
                        split_info -= frac * frac.log2();
                    }
                    let gain = present_frac * (parent_entropy - child_entropy);
                    if gain <= 1e-12 {
                        continue;
                    }
                    let gain_ratio = gain / split_info.max(1e-9);
                    if best
                        .as_ref()
                        .map(|b| gain_ratio > b.gain_ratio)
                        .unwrap_or(true)
                    {
                        best = Some(Split {
                            attribute: a,
                            threshold: None,
                            gain_ratio,
                            partitions,
                            missing_rows: missing_rows.clone(),
                        });
                    }
                }
            }
        }
        best
    }

    fn build(&self, data: &Instances, rows: &[usize], depth: usize, fallback: usize) -> Node {
        let counts = Self::class_counts(data, rows);
        let majority = Self::majority(&counts, fallback);
        let non_zero_classes = counts.iter().filter(|&&c| c > 0).count();
        if depth >= self.max_depth || rows.len() < 2 * self.min_leaf || non_zero_classes <= 1 {
            return Node::Leaf { class: majority };
        }
        let parent_entropy = entropy(&counts);
        let Some(split) = self.best_split(data, rows, parent_entropy) else {
            return Node::Leaf { class: majority };
        };
        // Missing rows follow the most populated partition.
        let missing_to = split
            .partitions
            .iter()
            .enumerate()
            .max_by_key(|(_, p)| p.len())
            .map(|(i, _)| i)
            .unwrap_or(0);
        let children: Vec<Node> = split
            .partitions
            .iter()
            .enumerate()
            .map(|(pi, partition)| {
                let mut child_rows = partition.clone();
                if pi == missing_to {
                    child_rows.extend_from_slice(&split.missing_rows);
                }
                if child_rows.is_empty() {
                    Node::Leaf { class: majority }
                } else {
                    self.build(data, &child_rows, depth + 1, majority)
                }
            })
            .collect();
        match split.threshold {
            Some(threshold) => Node::NumericSplit {
                attribute: split.attribute,
                threshold,
                missing_to,
                children,
            },
            None => Node::NominalSplit {
                attribute: split.attribute,
                missing_to,
                children,
                default: majority,
            },
        }
    }

    fn walk(&self, node: &Node, row: &[Option<f64>]) -> usize {
        match node {
            Node::Leaf { class } => *class,
            Node::NumericSplit {
                attribute,
                threshold,
                missing_to,
                children,
            } => {
                let child = match row.get(*attribute).copied().flatten() {
                    Some(v) => {
                        if v <= *threshold {
                            0
                        } else {
                            1
                        }
                    }
                    None => *missing_to,
                };
                self.walk(&children[child], row)
            }
            Node::NominalSplit {
                attribute,
                missing_to,
                children,
                default,
            } => match row.get(*attribute).copied().flatten() {
                Some(v) => {
                    let idx = v as usize;
                    if idx < children.len() {
                        self.walk(&children[idx], row)
                    } else {
                        *default
                    }
                }
                None => self.walk(&children[*missing_to], row),
            },
        }
    }
}

impl Classifier for DecisionTree {
    fn name(&self) -> &'static str {
        "DecisionTree"
    }

    fn fit(&mut self, data: &Instances) -> Result<()> {
        let labeled = data.labeled_indices();
        if labeled.is_empty() {
            return Err(MiningError::InvalidDataset(
                "DecisionTree needs labeled rows".into(),
            ));
        }
        let fallback = data.majority_class();
        self.root = Some(self.build(data, &labeled, 0, fallback));
        Ok(())
    }

    fn predict_row(&self, row: &[Option<f64>]) -> Result<usize> {
        let root = self
            .root
            .as_ref()
            .ok_or(MiningError::NotFitted("DecisionTree"))?;
        Ok(self.walk(root, row))
    }

    fn model_size(&self) -> usize {
        self.node_count()
    }
}
