//! The [`Instances`] mining dataset: a typed feature matrix with an
//! optional nominal class attribute, built from an `openbi-table` table.
//!
//! Numeric attributes hold their value; nominal attributes hold a
//! category index (as `f64` so one row type serves both). Missing cells
//! are `None` — classifiers must tolerate them, since the quality
//! experiments inject missingness on purpose.

use crate::error::{MiningError, Result};
pub use crate::instances::{AttrKind, Attribute};
use openbi_table::{DataType, Table, Value};

/// A mining dataset: rows of optional feature values plus optional class
/// labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Instances {
    /// Attribute metadata, in column order.
    pub attributes: Vec<Attribute>,
    /// Feature rows; nominal values are category indices.
    pub rows: Vec<Vec<Option<f64>>>,
    /// Class label index per row (`None` = unlabeled).
    pub labels: Vec<Option<usize>>,
    /// Class value dictionary (empty when the dataset has no target).
    pub class_names: Vec<String>,
}

impl Instances {
    /// Build instances from a table.
    ///
    /// * `target`: optional class column (any type; values are stringified
    ///   into a nominal dictionary).
    /// * `exclude`: columns to skip entirely (identifiers etc.).
    pub fn from_table(table: &Table, target: Option<&str>, exclude: &[&str]) -> Result<Self> {
        if let Some(t) = target {
            table.column(t)?;
        }
        let mut attributes = Vec::new();
        let mut columns: Vec<(usize, AttrKind, Vec<Option<f64>>)> = Vec::new();
        for col in table.columns() {
            if exclude.contains(&col.name()) || Some(col.name()) == target {
                continue;
            }
            let (kind, data): (AttrKind, Vec<Option<f64>>) = match col.dtype() {
                DataType::Int | DataType::Float => (AttrKind::Numeric, col.to_f64_vec()),
                DataType::Bool => (
                    AttrKind::Nominal(vec!["false".into(), "true".into()]),
                    col.iter()
                        .map(|v| v.as_bool().map(|b| if b { 1.0 } else { 0.0 }))
                        .collect(),
                ),
                DataType::Str => {
                    let mut dict: Vec<String> = Vec::new();
                    let data = col
                        .iter()
                        .map(|v| match v {
                            Value::Null => None,
                            v => {
                                let s = v.to_string();
                                let idx = match dict.iter().position(|d| *d == s) {
                                    Some(i) => i,
                                    None => {
                                        dict.push(s);
                                        dict.len() - 1
                                    }
                                };
                                Some(idx as f64)
                            }
                        })
                        .collect();
                    (AttrKind::Nominal(dict), data)
                }
            };
            attributes.push(Attribute {
                name: col.name().to_string(),
                kind,
            });
            columns.push((
                attributes.len() - 1,
                attributes.last().expect("pushed").kind.clone(),
                data,
            ));
        }
        if attributes.is_empty() {
            return Err(MiningError::InvalidDataset(
                "no usable feature columns".to_string(),
            ));
        }
        let n = table.n_rows();
        let mut rows: Vec<Vec<Option<f64>>> = vec![Vec::with_capacity(attributes.len()); n];
        for (_, _, data) in &columns {
            for (r, v) in data.iter().enumerate() {
                rows[r].push(*v);
            }
        }
        let (labels, class_names) = match target {
            Some(t) => {
                let col = table.column(t)?;
                let mut dict: Vec<String> = Vec::new();
                let labels = col
                    .iter()
                    .map(|v| match v {
                        Value::Null => None,
                        v => {
                            let s = v.to_string();
                            let idx = match dict.iter().position(|d| *d == s) {
                                Some(i) => i,
                                None => {
                                    dict.push(s);
                                    dict.len() - 1
                                }
                            };
                            Some(idx)
                        }
                    })
                    .collect();
                (labels, dict)
            }
            None => (vec![None; n], vec![]),
        };
        Ok(Instances {
            attributes,
            rows,
            labels,
            class_names,
        })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of attributes.
    pub fn n_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Indices of rows with a known label.
    pub fn labeled_indices(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.labels[i].is_some())
            .collect()
    }

    /// Class distribution over labeled rows.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes()];
        for l in self.labels.iter().flatten() {
            counts[*l] += 1;
        }
        counts
    }

    /// A new dataset holding only the given rows (indices may repeat).
    pub fn subset(&self, indices: &[usize]) -> Instances {
        Instances {
            attributes: self.attributes.clone(),
            rows: indices.iter().map(|&i| self.rows[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            class_names: self.class_names.clone(),
        }
    }

    /// Per-attribute `(min, max)` over non-missing numeric values
    /// (`None` for nominal or all-missing attributes).
    pub fn numeric_ranges(&self) -> Vec<Option<(f64, f64)>> {
        self.attributes
            .iter()
            .enumerate()
            .map(|(a, attr)| {
                if attr.kind != AttrKind::Numeric {
                    return None;
                }
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                let mut any = false;
                for row in &self.rows {
                    if let Some(v) = row[a] {
                        lo = lo.min(v);
                        hi = hi.max(v);
                        any = true;
                    }
                }
                any.then_some((lo, hi))
            })
            .collect()
    }

    /// Per-attribute mean over non-missing numeric values (`None` for
    /// nominal attributes; nominal get their modal category instead via
    /// [`Instances::modes`]).
    pub fn numeric_means(&self) -> Vec<Option<f64>> {
        self.attributes
            .iter()
            .enumerate()
            .map(|(a, attr)| {
                if attr.kind != AttrKind::Numeric {
                    return None;
                }
                let vals: Vec<f64> = self.rows.iter().filter_map(|r| r[a]).collect();
                if vals.is_empty() {
                    None
                } else {
                    Some(vals.iter().sum::<f64>() / vals.len() as f64)
                }
            })
            .collect()
    }

    /// Per-attribute modal category index for nominal attributes.
    pub fn modes(&self) -> Vec<Option<f64>> {
        self.attributes
            .iter()
            .enumerate()
            .map(|(a, attr)| {
                let AttrKind::Nominal(dict) = &attr.kind else {
                    return None;
                };
                let mut counts = vec![0usize; dict.len()];
                for row in &self.rows {
                    if let Some(v) = row[a] {
                        let idx = v as usize;
                        if idx < counts.len() {
                            counts[idx] += 1;
                        }
                    }
                }
                counts
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, c)| **c)
                    .map(|(i, _)| i as f64)
            })
            .collect()
    }

    /// The majority class index over labeled rows (0 if unlabeled).
    pub fn majority_class(&self) -> usize {
        let counts = self.class_counts();
        counts
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}
